// Figure 14: index size (number of index-tree nodes) as the dataset grows,
// for random, breadth-first, depth-first and probability-based constraint
// sequencing, on the paper's two synthetic configurations:
//   (a) L3 F5 A25 I0 P40
//   (b) L5 F3 A40 I0 P5
// Also reports the §6.2 sharing ratio (index nodes : sequence elements).
//
// Expected shape (paper): Random >> Breadth-first > Depth-first > Constraint
// at every size, with the gap growing with dataset size; configuration (b)
// (longer sequences) has more nodes than (a) for every method.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/synthetic.h"

namespace xseq {
namespace {

void RunConfig(const char* label, const SyntheticParams& params,
               const std::vector<DocId>& sizes) {
  bench::Header(std::string("Figure 14") + label + "  dataset " +
                params.Name());
  std::printf("%-14s %10s %14s %14s %12s\n", "sequencer", "docs",
              "index nodes", "seq elements", "nodes/elems");

  const SequencerKind kinds[] = {
      SequencerKind::kRandom, SequencerKind::kBreadthFirst,
      SequencerKind::kDepthFirst, SequencerKind::kProbability};

  for (SequencerKind kind : kinds) {
    for (DocId n : sizes) {
      IndexOptions opts;
      opts.sequencer = kind;
      CollectionBuilder builder(opts);
      SyntheticDataset gen(params, builder.names(), builder.values());
      CollectionIndex idx = bench::BuildStreaming(
          &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
      auto s = idx.Stats();
      std::printf("%-14s %10u %14llu %14llu %12.3f\n",
                  SequencerKindName(kind), n,
                  static_cast<unsigned long long>(s.trie_nodes),
                  static_cast<unsigned long long>(s.sequence_elements),
                  s.sequence_elements == 0
                      ? 0.0
                      : static_cast<double>(s.trie_nodes) /
                            static_cast<double>(s.sequence_elements));
    }
  }
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  // Paper: up to 2.5M documents. Default: laptop-sized steps.
  std::vector<xseq::DocId> sizes;
  for (xseq::DocId base : {10000u, 20000u, 40000u, 80000u}) {
    sizes.push_back(xseq::bench::Scaled(flags, base, base * 30));
  }

  xseq::SyntheticParams a;  // L3 F5 A25 I0 P40
  a.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  xseq::SyntheticParams b;
  b.max_height = 5;
  b.max_fanout = 3;
  b.value_percent = 40;
  b.prob_floor = 5;
  b.seed = a.seed;

  xseq::RunConfig("(a)", a, sizes);
  xseq::RunConfig("(b)", b, sizes);

  xseq::bench::Note(
      "paper shape: random >> breadth-first > depth-first > constraint;"
      " gap widens with dataset size");
  return 0;
}
