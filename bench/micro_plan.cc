// Planner/caching harness: cold vs warm compilation through the plan
// cache, result-cache hit latency through a QueryService, and end-to-end
// throughput with the caches off vs on — all on the Table 7 XMark query
// shapes.
//
//   micro_plan [--n=N] [--scale=f] [--rounds=R] [--seed=S]
//              [--min_warm_speedup=X] [--min_hit_rate=F]
//              [--out=bench/BENCH_plan.json]
//
// Emits bench/BENCH_plan.json: {..., "cold_compile_us", "warm_compile_us",
// "warm_speedup", "plan_hit_rate", "result_hit_us", "qps_nocache",
// "qps_cache", "qps_speedup"} — schema-checked by scripts/bench_smoke.sh.
//
// Two gates make this a regression harness, not just a report: the warm
// (cached) compile path must be at least --min_warm_speedup times faster
// than a cold compile (default 5x), and the plan-cache hit rate over the
// warm phase must reach --min_hit_rate (default 0.5). Violations exit 1.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/query/plan_cache.h"
#include "src/query/query_pattern.h"
#include "src/server/query_service.h"
#include "src/server/result_cache.h"

namespace xseq {
namespace {

const char* kShapes[4] = {
    "/site//item[location='United States']/mail/date[text='07/05/2000']",
    "/site//person/*/age[text='32']",
    "//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
    "/site//person/name",
};

int Run(const FlagSet& flags) {
  const DocId n = static_cast<DocId>(flags.GetInt(
      "n", static_cast<int64_t>(bench::Scaled(flags, 5000, 50000))));
  const int rounds = static_cast<int>(flags.GetInt("rounds", 20));
  const double min_warm_speedup = flags.GetDouble("min_warm_speedup", 5.0);
  const double min_hit_rate = flags.GetDouble("min_hit_rate", 0.5);
  const std::string out_path =
      flags.GetString("out", "bench/BENCH_plan.json");

  bench::Header("query planning: " + std::to_string(n) +
                " XMark records, " + std::to_string(rounds) + " rounds");

  XMarkParams params;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  CollectionBuilder builder{IndexOptions{}};
  XMarkGenerator gen(params, builder.names(), builder.values());
  CollectionIndex index = bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, n);

  // Phase 1: cold vs warm compilation through a dedicated plan cache.
  // Cold samples clear the cache first; warm samples rerun the same query
  // and must hit. compile_micros isolates the compile stage (miss: full
  // pipeline + insert; hit: lookup + stat replay) from matching.
  PlanCache cache;
  ExecOptions exec;
  exec.plan.cache = &cache;
  uint64_t cold_us = 0, warm_us = 0;
  uint64_t cold_samples = 0, warm_samples = 0;
  MatchContext ctx;
  for (const char* shape : kShapes) {
    auto pattern = ParseXPath(shape);
    if (!pattern.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", shape,
                   pattern.status().ToString().c_str());
      return 1;
    }
    ExecOptions opts = exec;
    opts.plan.cache_key = shape;
    for (int r = 0; r < rounds; ++r) {
      cache.Clear();
      ExecStats stats;
      auto docs = index.executor().ExecutePattern(*pattern, &stats, opts,
                                                  &ctx);
      if (!docs.ok()) {
        std::fprintf(stderr, "query %s: %s\n", shape,
                     docs.status().ToString().c_str());
        return 1;
      }
      cold_us += static_cast<uint64_t>(stats.compile_micros);
      ++cold_samples;
    }
    for (int r = 0; r < rounds; ++r) {
      ExecStats stats;
      auto docs = index.executor().ExecutePattern(*pattern, &stats, opts,
                                                  &ctx);
      if (!docs.ok()) {
        std::fprintf(stderr, "query %s: %s\n", shape,
                     docs.status().ToString().c_str());
        return 1;
      }
      if (r > 0 && stats.plan_cache_hits == 0) {
        std::fprintf(stderr, "warm run of %s missed the plan cache\n", shape);
        return 1;
      }
      warm_us += static_cast<uint64_t>(stats.compile_micros);
      ++warm_samples;
    }
  }
  const double cold_avg =
      static_cast<double>(cold_us) / static_cast<double>(cold_samples);
  // Sub-microsecond warm hits round to zero; clamp so the ratio is finite
  // (and conservative: the true speedup is higher).
  const double warm_avg = std::max(
      0.5, static_cast<double>(warm_us) / static_cast<double>(warm_samples));
  const double warm_speedup = cold_avg / warm_avg;

  PlanCache::Stats cs = cache.GetStats();
  // Hit rate over the warm phase only: every cold lookup misses by
  // construction (the cache is cleared first), so folding them in would
  // just restate the cold/warm split. All hits come from warm lookups.
  const double hit_rate =
      warm_samples > 0
          ? static_cast<double>(cs.hits) / static_cast<double>(warm_samples)
          : 0.0;
  std::printf("%-14s cold %8.1f us   warm %8.1f us   speedup %6.1fx\n",
              "compile:", cold_avg, warm_avg, warm_speedup);
  std::printf("%-14s %llu hits / %llu misses (%.1f%% hit rate)\n",
              "plan cache:", static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses), hit_rate * 100.0);

  // Phase 2: result-cache hit latency through a QueryService (the hit is
  // served on the calling thread — no queue, no worker handoff).
  auto shared_index = std::make_shared<CollectionIndex>(std::move(index));
  QueryService::Backend backend = [shared_index](std::string_view xpath,
                                                 const ExecOptions& opts) {
    return shared_index->Query(xpath, opts);
  };
  double result_hit_us = 0.0;
  {
    ResultCache results;
    ServiceOptions sopts;
    sopts.workers = 2;
    sopts.result_cache = &results;
    sopts.generation = [] { return uint64_t{1}; };  // immutable corpus
    QueryService service(backend, sopts);
    uint64_t total_us = 0, hits = 0;
    for (const char* shape : kShapes) {
      auto first = service.Execute(shape);
      if (!first.ok()) {
        std::fprintf(stderr, "serve %s: %s\n", shape,
                     first.status().ToString().c_str());
        return 1;
      }
      for (int r = 0; r < rounds; ++r) {
        Timer timer;
        auto hit = service.Execute(shape);
        const uint64_t us = static_cast<uint64_t>(timer.ElapsedMicros());
        if (!hit.ok()) {
          std::fprintf(stderr, "serve %s: %s\n", shape,
                       hit.status().ToString().c_str());
          return 1;
        }
        if (hit->stats.result_cache_hits == 0) {
          std::fprintf(stderr, "repeat of %s missed the result cache\n",
                       shape);
          return 1;
        }
        total_us += us;
        ++hits;
      }
    }
    result_hit_us =
        static_cast<double>(total_us) / static_cast<double>(hits);
    std::printf("%-14s %8.1f us per cached answer\n", "result hit:",
                result_hit_us);
  }

  // Phase 3: end-to-end throughput, caches off vs on, on a repeated-query
  // workload (the serving steady state the caches are designed for).
  auto measure = [&](bool caching) -> double {
    ResultCache results;
    ServiceOptions sopts;
    sopts.workers = 2;
    if (caching) {
      sopts.result_cache = &results;
      sopts.generation = [] { return uint64_t{1}; };
    }
    QueryService service(backend, sopts);
    Timer wall;
    uint64_t ok = 0;
    for (int r = 0; r < rounds; ++r) {
      for (const char* shape : kShapes) {
        auto result = service.Execute(shape);
        if (result.ok()) ++ok;
      }
    }
    const double elapsed = wall.ElapsedSeconds();
    return elapsed > 0 ? static_cast<double>(ok) / elapsed : 0.0;
  };
  const double qps_nocache = measure(false);
  const double qps_cache = measure(true);
  const double qps_speedup = qps_nocache > 0 ? qps_cache / qps_nocache : 0.0;
  std::printf("%-14s %10.0f qps uncached   %10.0f qps cached (%.1fx)\n",
              "end to end:", qps_nocache, qps_cache, qps_speedup);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"bench\":\"plan\",\"n\":%llu,\"rounds\":%d,"
      "\"cold_compile_us\":%.1f,\"warm_compile_us\":%.1f,"
      "\"warm_speedup\":%.1f,\"plan_hit_rate\":%.4f,"
      "\"result_hit_us\":%.1f,\"qps_nocache\":%.1f,\"qps_cache\":%.1f,"
      "\"qps_speedup\":%.2f}\n",
      static_cast<unsigned long long>(n), rounds, cold_avg, warm_avg,
      warm_speedup, hit_rate, result_hit_us, qps_nocache, qps_cache,
      qps_speedup);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (warm_speedup < min_warm_speedup) {
    std::fprintf(stderr,
                 "FAIL: warm compile speedup %.1fx below the %.1fx gate\n",
                 warm_speedup, min_warm_speedup);
    return 1;
  }
  if (hit_rate < min_hit_rate) {
    std::fprintf(stderr,
                 "FAIL: plan-cache hit rate %.2f below the %.2f gate\n",
                 hit_rate, min_hit_rate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
