// Ablation: the three value representations (Section 2.1's two options
// plus the exact default).
//   exact  — one designator per distinct string
//   hashed — ViST's h(value) designators (range 1000): smaller symbol
//            space, possible false positives
//   chars  — per-character chains (Index Fabric style): biggest index,
//            prefix predicates for free
//
// Reported per mode: index nodes, bytes, build time, equality-query time,
// and the hashed mode's false-positive overshoot.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/dblp.h"

namespace xseq {
namespace {

struct ModeResult {
  CollectionIndex idx;
  double build_s;
};

ModeResult Build(ValueMode mode, DocId n, uint64_t seed) {
  DblpParams params;
  params.seed = seed;
  IndexOptions opts;
  opts.value_mode = mode;
  CollectionBuilder builder(opts);
  DblpGenerator gen(params, builder.names(), builder.values());
  Timer t;
  CollectionIndex idx = bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
  return ModeResult{std::move(idx), t.ElapsedSeconds()};
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 30000, 120000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  const char* kQueries[] = {
      "//author[text='David']",
      "/book[key='Maier']/author",
      "/inproceedings[booktitle='VLDB']/title",
  };

  bench::Header("Ablation: value representation (DBLP-like, " +
                std::to_string(n) + " records)");
  std::printf("%-8s %12s %12s %10s %12s %10s\n", "mode", "index nodes",
              "bytes", "build(s)", "query (us)", "results");

  std::vector<DocId> exact_results;
  struct Cfg {
    const char* name;
    ValueMode mode;
  };
  const Cfg cfgs[] = {{"exact", ValueMode::kExact},
                      {"hashed", ValueMode::kHashed},
                      {"chars", ValueMode::kCharSequence}};
  for (const Cfg& cfg : cfgs) {
    ModeResult r = Build(cfg.mode, n, seed);
    uint64_t us = 0, results = 0;
    for (const char* q : kQueries) {
      Timer t;
      auto res = r.idx.Query(q);
      if (!res.ok()) return 1;
      us += static_cast<uint64_t>(t.ElapsedMicros());
      results += res->docs.size();
    }
    if (cfg.mode == ValueMode::kExact) {
      exact_results.push_back(static_cast<DocId>(results));
    }
    auto s = r.idx.Stats();
    std::printf("%-8s %12llu %12llu %10.2f %12.1f %10llu\n", cfg.name,
                static_cast<unsigned long long>(s.trie_nodes),
                static_cast<unsigned long long>(s.memory_bytes),
                r.build_s, static_cast<double>(us) / 3.0,
                static_cast<unsigned long long>(results));
  }
  bench::Note("expected: chars > exact > hashed in index size; hashed may "
              "over-report (hash collisions) but never misses; chars "
              "additionally supports starts-with() predicates");
  return 0;
}
