// Table 7: query performance on XMark (the paper's Table 4 queries).
//
//   Q1 /site//item[location='United States']/mail/date[text='07/05/2000']
//   Q2 /site//person/*/age[text='32']
//   Q3 //closed_auction[seller/person='person11304']/date[text='12/15/1999']
//
// Reported per query: compiled sequence length, result size, # disk
// accesses (cold buffer-pool misses on the paged index) and elapsed time.
// Paper: 23/5/9 disk accesses, ≤0.1 s each on a 1.8 GHz PC.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/storage/paged_index.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  // XMark factor 1 is ~115 MB; our records are ~25 nodes, so ~160k records
  // approximates the paper's collection. Default is half that.
  DocId n = bench::Scaled(flags, 80000, 160000);

  XMarkParams params;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  IndexOptions opts;  // g_best constraint sequencing
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  Timer build_timer;
  CollectionIndex idx = bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
  PagedIndex paged = PagedIndex::Build(idx.index());

  bench::Header("Table 7  query performance on XMark-like data (" +
                std::to_string(n) + " records, built in " +
                std::to_string(build_timer.ElapsedSeconds()) + " s, " +
                std::to_string(paged.total_pages()) + " pages)");
  std::printf("%-4s %12s %12s %15s %12s %12s\n", "", "query length",
              "result size", "# disk accesses", "(index-only)",
              "time (ms)");

  const char* queries[3] = {
      "/site//item[location='United States']/mail/date[text='07/05/2000']",
      "/site//person/*/age[text='32']",
      "//closed_auction[seller/person='person11304']"
      "/date[text='12/15/1999']",
  };

  for (int qi = 0; qi < 3; ++qi) {
    auto pattern = ParseXPath(queries[qi]);
    if (!pattern.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   pattern.status().ToString().c_str());
      return 1;
    }
    auto compiled = idx.executor().Compile(*pattern);
    if (!compiled.ok()) {
      std::fprintf(stderr, "compile: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    size_t max_len = 0;
    for (const QuerySeq& qs : *compiled) {
      max_len = std::max(max_len, qs.size());
    }

    // Cold run against the paged index: the pool starts empty.
    BufferPool pool(&paged.file(), 1024);
    pool.SetRegionBoundary(paged.first_data_page());
    std::vector<DocId> docs;
    Timer timer;
    for (const QuerySeq& qs : *compiled) {
      Status st = paged.Match(qs, MatchMode::kConstraint, &pool, &docs);
      if (!st.ok()) {
        std::fprintf(stderr, "match: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    double ms = timer.ElapsedMillis();
    std::printf("Q%-3d %12zu %12zu %15llu %12llu %12.3f\n", qi + 1,
                max_len, docs.size(),
                static_cast<unsigned long long>(pool.misses()),
                static_cast<unsigned long long>(pool.link_misses()), ms);
  }
  bench::Note("paper: Q1 len 6 -> 1 result, 23 accesses, 0.10 s; "
              "Q2 len 3 -> 167, 5, 0.02 s; Q3 len 5 -> 6, 9, 0.07 s");
  bench::Note("shape to match: short queries touch few pages; every query "
              "well under 0.1 s");
  return 0;
}
