// Microbenchmarks: index-tree construction (insert vs bulk load, freeze).

#include <benchmark/benchmark.h>

#include "src/gen/synthetic.h"
#include "src/index/trie.h"
#include "src/schema/schema.h"
#include "src/seq/sequencer.h"

namespace xseq {
namespace {

/// Pre-sequenced corpus for trie benchmarks.
struct SeqCorpus {
  std::vector<std::pair<Sequence, DocId>> seqs;

  SeqCorpus() {
    NameTable names;
    ValueEncoder values;
    PathDict dict;
    SyntheticParams params;
    SyntheticDataset gen(params, &names, &values);
    Schema schema;
    std::vector<Document> docs;
    std::vector<std::vector<PathId>> paths;
    for (DocId d = 0; d < 2000; ++d) {
      docs.push_back(gen.Generate(d));
      paths.push_back(BindPaths(docs.back(), &dict));
      schema.Observe(docs.back(), paths.back());
    }
    auto model = schema.BuildModel(dict);
    auto sequencer = MakeSequencer(SequencerKind::kProbability, model);
    for (size_t i = 0; i < docs.size(); ++i) {
      seqs.emplace_back(sequencer->Encode(docs[i], paths[i]),
                        docs[i].id());
    }
  }
};

SeqCorpus& GetSeqs() {
  static SeqCorpus* corpus = new SeqCorpus();
  return *corpus;
}

void BM_TrieInsert(benchmark::State& state) {
  SeqCorpus& c = GetSeqs();
  for (auto _ : state) {
    TrieBuilder builder;
    for (const auto& [seq, doc] : c.seqs) {
      benchmark::DoNotOptimize(builder.Insert(seq, doc).ok());
    }
    benchmark::DoNotOptimize(builder.node_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.seqs.size()));
}
BENCHMARK(BM_TrieInsert);

void BM_TrieBulkLoad(benchmark::State& state) {
  SeqCorpus& c = GetSeqs();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<std::pair<Sequence, DocId>> input = c.seqs;
    state.ResumeTiming();
    TrieBuilder builder;
    benchmark::DoNotOptimize(builder.BulkLoad(&input).ok());
    benchmark::DoNotOptimize(builder.node_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(c.seqs.size()));
}
BENCHMARK(BM_TrieBulkLoad);

void BM_TrieFreeze(benchmark::State& state) {
  SeqCorpus& c = GetSeqs();
  for (auto _ : state) {
    state.PauseTiming();
    TrieBuilder builder;
    for (const auto& [seq, doc] : c.seqs) {
      Status st = builder.Insert(seq, doc);
      benchmark::DoNotOptimize(st.ok());
    }
    state.ResumeTiming();
    FrozenIndex idx = std::move(builder).Freeze();
    benchmark::DoNotOptimize(idx.node_count());
  }
}
BENCHMARK(BM_TrieFreeze);

}  // namespace
}  // namespace xseq

BENCHMARK_MAIN();
