// Link-compression harness: codec density and throughput, plus the wall
// cost of matching through the block-compressed link core against a flat
// uncompressed accessor.
//
// Size is measured on the paper's size corpora — the two fig14 synthetic
// configurations, the table5 XMark collection — plus the fig15
// identical-siblings mix; wall clock is measured on the query corpora
// (fig15 mix, table7 XMark queries).
//
//   micro_compress [--docs=N] [--reps=R]
//                  [--min_size_reduction_pct=30]
//                  [--max_wall_regression_pct=10]
//                  [--out=bench/BENCH_compress.json]
//
// Emits one JSON object with a per-corpus array: packed vs logical link
// bytes, bits per entry, and — for the query corpora — pack/unpack
// throughput (million entries per second) and min-of-R wall clocks for
// the compressed engine vs the flat baseline. Two gates make it a
// regression harness: the packed link region summed over every corpus
// must be at least --min_size_reduction_pct smaller than the flat
// 12-byte-entry layout (per-corpus reductions are reported unmanaged —
// an adversarial corpus may expand), and each query corpus's compressed
// wall clock must stay within --max_wall_regression_pct of the flat
// accessor's. Violations exit 1.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"
#include "src/gen/xmark.h"
#include "src/index/link_codec.h"
#include "src/index/matcher_impl.h"
#include "src/query/query_pattern.h"

namespace xseq {
namespace {

/// The pre-compression link layout: per-path flat arrays of serials, ends
/// and link-local cover indices, materialized once from the index.
struct FlatLinks {
  std::vector<uint32_t> off;  // per-path entry offset, size paths+1
  std::vector<uint32_t> serials, ends, covers;

  explicit FlatLinks(const FrozenIndex& fi) {
    size_t paths = fi.distinct_paths();
    off.assign(paths + 1, 0);
    for (PathId p = 0; p < paths; ++p) {
      off[p + 1] = off[p] + fi.LinkSize(p);
    }
    serials.reserve(off[paths]);
    ends.reserve(off[paths]);
    covers.reserve(off[paths]);
    for (PathId p = 0; p < paths; ++p) {
      for (const FrozenIndex::LinkEntry& e : fi.Link(p)) {
        serials.push_back(e.serial);
        ends.push_back(e.end);
      }
      std::vector<uint32_t> c = fi.LinkCover(p);
      covers.insert(covers.end(), c.begin(), c.end());
    }
  }
};

/// Accessor over FlatLinks — the uncompressed wall-clock baseline. Runs
/// the identical MatchCore; only link reads differ (direct array loads,
/// no block decode, no cache).
class FlatAccessor {
 public:
  FlatAccessor(const FrozenIndex& fi, const FlatLinks& links)
      : fi_(&fi), links_(&links) {}

  void BindCache(LinkBlockCache* cache) { (void)cache; }

  uint32_t node_count() const {
    return static_cast<uint32_t>(fi_->node_count());
  }
  uint32_t LinkSize(PathId p) const {
    return links_->off[p + 1] - links_->off[p];
  }
  uint32_t LinkBlockBaseSerial(PathId p, uint32_t b) const {
    return LinkSerial(p, b * kLinkBlockSize);
  }
  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return links_->serials[links_->off[p] + i];
  }
  uint32_t LinkEnd(PathId p, uint32_t i) const {
    return links_->ends[links_->off[p] + i];
  }
  uint32_t LinkCover(PathId p, uint32_t i) const {
    return links_->covers[links_->off[p] + i];
  }
  LinkColumns LinkBlockColumns(PathId p, uint32_t b,
                               uint32_t streams) const {
    (void)streams;  // flat columns are always materialized
    const uint32_t base = links_->off[p] + b * kLinkBlockSize;
    return {links_->serials.data() + base, links_->ends.data() + base,
            links_->covers.data() + base};
  }
  // Flat views point into permanent arrays, so they never die.
  uint64_t DecodeStamp() const { return 0; }
  // Never retains (the flat engine doesn't use the block cache).
  uint64_t CacheIdentity() const { return 0; }
  bool HasNested(PathId p) const { return fi_->HasNested(p); }
  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    (void)end;
    return fi_->DocOffsetsInSubtree(serial);
  }
  DocId DocAt(uint32_t offset) const { return fi_->doc_at(offset); }

 private:
  const FrozenIndex* fi_;
  const FlatLinks* links_;
};

struct Corpus {
  std::string name;
  std::unique_ptr<CollectionIndex> idx;
  /// Query mix; empty for size-only corpora (no wall measurement).
  std::vector<std::vector<QuerySeq>> compiled;
  /// Passes over the mix per timed rep: small mixes (table7's three
  /// XPaths run in ~40us) are looped until the timed region is
  /// milliseconds, else the wall gate flaps on scheduler noise.
  int wall_iters = 1;
};

/// Size-only corpus: one of the two fig14 synthetic configurations.
Corpus MakeFig14Corpus(char config, DocId docs) {
  Corpus c;
  SyntheticParams params;  // (a) L3 F5 A25 I0 P40
  if (config == 'b') {     // (b) L5 F3 A40 I0 P5
    params.max_height = 5;
    params.max_fanout = 3;
    params.value_percent = 40;
    params.prob_floor = 5;
  }
  c.name = std::string("fig14") + config + "_synthetic";
  IndexOptions opts;
  CollectionBuilder builder(opts);
  SyntheticDataset gen(params, builder.names(), builder.values());
  c.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  return c;
}

Corpus MakeFig15Corpus(DocId docs) {
  Corpus c;
  c.name = "fig15_identical_siblings";
  SyntheticParams params;
  params.identical_percent = 80;
  params.value_percent = 25;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  SyntheticDataset gen(params, builder.names(), builder.values());
  c.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  Rng rng(params.seed, 29);
  for (int q = 0; q < 48; ++q) {
    Document sample = gen.Generate(rng.Uniform(docs));
    QueryPattern pattern =
        SampleQueryPattern(sample, c.idx->names(), 5, &rng, 0.4);
    auto compiled = c.idx->executor().Compile(pattern);
    if (compiled.ok() && !compiled->empty()) {
      c.compiled.push_back(std::move(*compiled));
    }
  }
  return c;
}

/// XMark: the table5 size collection, queried with the table7 XPaths.
Corpus MakeTable7Corpus(DocId docs) {
  Corpus c;
  c.name = "table5_7_xmark";
  XMarkParams params;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  c.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  const char* queries[3] = {
      "/site//item[location='United States']/mail/date[text='07/05/2000']",
      "/site//person/*/age[text='32']",
      "//closed_auction[seller/person='person11304']"
      "/date[text='12/15/1999']",
  };
  for (const char* q : queries) {
    auto pattern = ParseXPath(q);
    if (!pattern.ok()) continue;
    auto compiled = c.idx->executor().Compile(*pattern);
    if (compiled.ok() && !compiled->empty()) {
      c.compiled.push_back(std::move(*compiled));
    }
  }
  c.wall_iters = 512;
  return c;
}

struct CorpusResult {
  std::string name;
  bool has_wall = false;
  uint64_t entries = 0;
  uint64_t packed_bytes = 0;
  uint64_t logical_bytes = 0;
  double bits_per_entry = 0.0;
  double reduction_pct = 0.0;
  double pack_mentries_s = 0.0;
  double unpack_mentries_s = 0.0;
  double wall_compressed_ms = 0.0;
  double wall_flat_ms = 0.0;
  double wall_delta_pct = 0.0;
  // Sanity: both engines must produce the same answers.
  uint64_t result_docs_compressed = 0;
  uint64_t result_docs_flat = 0;
};

/// Min-of-reps wall clock of one full query mix through `run`.
template <typename RunFn>
double MinWallMs(int reps, const RunFn& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    run();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

CorpusResult Measure(const Corpus& c, const FlatLinks& flat, int reps) {
  const FrozenIndex& fi = c.idx->index();
  CorpusResult r;
  r.name = c.name;
  r.has_wall = !c.compiled.empty();
  r.entries = flat.off.back();
  r.packed_bytes = fi.PackedLinkBytes();
  r.logical_bytes = fi.LogicalLinkBytes();
  r.bits_per_entry =
      r.entries > 0
          ? 8.0 * static_cast<double>(r.packed_bytes) /
                static_cast<double>(r.entries)
          : 0.0;
  r.reduction_pct =
      r.logical_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(r.packed_bytes) /
                               static_cast<double>(r.logical_bytes))
          : 0.0;
  if (!r.has_wall) return r;

  // Pack throughput: re-encode every link from the flat arrays.
  {
    uint64_t packed_entries = 0;
    double ms = MinWallMs(reps, [&] {
      std::vector<uint64_t> words;
      words.reserve(fi.link_words().size());
      packed_entries = 0;
      for (PathId p = 0; p < fi.distinct_paths(); ++p) {
        const uint32_t n = fi.LinkSize(p);
        const uint32_t base = flat.off[p];
        for (uint32_t off = 0; off < n; off += kLinkBlockSize) {
          uint32_t count = std::min(kLinkBlockSize, n - off);
          LinkBlockHeader h = PackLinkBlock(
              flat.serials.data() + base + off, flat.ends.data() + base + off,
              flat.covers.data() + base + off, count, off, &words);
          packed_entries += LinkBlockCount(h);
        }
      }
    });
    r.pack_mentries_s =
        ms > 0 ? static_cast<double>(packed_entries) / (ms * 1e3) : 0.0;
  }

  // Unpack throughput: decode every block of every link.
  {
    uint64_t decoded = 0;
    double ms = MinWallMs(reps, [&] {
      LinkBlockScratch scratch;
      decoded = 0;
      for (PathId p = 0; p < fi.distinct_paths(); ++p) {
        for (uint32_t b = 0; b < fi.LinkBlocks(p); ++b) {
          fi.DecodeLinkBlock(p, b, &scratch);
          decoded += LinkBlockCount(fi.LinkBlock(p, b));
        }
      }
    });
    r.unpack_mentries_s =
        ms > 0 ? static_cast<double>(decoded) / (ms * 1e3) : 0.0;
  }

  // Wall clock, compressed engine vs flat accessor, same sequences, same
  // MatchCore. Min over reps per engine de-noises scheduler spikes;
  // wall_iters passes per rep keep the timed region in milliseconds.
  MatchContext ctx;
  auto run_compressed = [&] {
    for (int it = 0; it < c.wall_iters; ++it) {
      r.result_docs_compressed = 0;
      for (const auto& seqs : c.compiled) {
        std::vector<DocId> out;
        for (const QuerySeq& qs : seqs) {
          Status st = MatchSequence(fi, qs, MatchMode::kConstraint, &out,
                                    nullptr, &ctx);
          if (!st.ok()) {
            std::fprintf(stderr, "match: %s\n", st.ToString().c_str());
            std::exit(1);
          }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        r.result_docs_compressed += out.size();
      }
    }
  };
  auto run_flat = [&] {
    FlatAccessor acc(fi, flat);
    for (int it = 0; it < c.wall_iters; ++it) {
      r.result_docs_flat = 0;
      for (const auto& seqs : c.compiled) {
        std::vector<DocId> out;
        for (const QuerySeq& qs : seqs) {
          Status st = internal::MatchCore(acc, qs, MatchMode::kConstraint,
                                          &out, nullptr, &ctx);
          if (!st.ok()) {
            std::fprintf(stderr, "flat match: %s\n",
                         st.ToString().c_str());
            std::exit(1);
          }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        r.result_docs_flat += out.size();
      }
    }
  };
  // One untimed pass per engine warms the block cache, the page cache
  // and the CPU governor. Each rep then times the two engines back to
  // back and keeps their ratio: within one ~100ms pair the machine's
  // frequency/scheduler drift is shared, so the ratio is far more stable
  // than the two absolute clocks it divides — and the median over reps
  // shrugs off the odd preempted pair that would flap a min-based gate.
  run_compressed();
  run_flat();
  const double iters = static_cast<double>(c.wall_iters);
  double best_compressed = 1e300, best_flat = 1e300;
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const double tc = MinWallMs(1, run_compressed);
    const double tf = MinWallMs(1, run_flat);
    best_compressed = std::min(best_compressed, tc);
    best_flat = std::min(best_flat, tf);
    if (tf > 0) ratios.push_back(tc / tf);
  }
  r.wall_compressed_ms = best_compressed / iters;
  r.wall_flat_ms = best_flat / iters;
  if (!ratios.empty()) {
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    r.wall_delta_pct = 100.0 * (ratios[ratios.size() / 2] - 1.0);
  }
  return r;
}

int Run(const FlagSet& flags) {
  const DocId docs = static_cast<DocId>(flags.GetInt("docs", 4000));
  const int reps = static_cast<int>(flags.GetInt("reps", 3));
  const double min_size_reduction =
      flags.GetDouble("min_size_reduction_pct", 30.0);
  const double max_wall_regression =
      flags.GetDouble("max_wall_regression_pct", 10.0);
  const std::string out_path =
      flags.GetString("out", "bench/BENCH_compress.json");

  bench::Header("link compression: " + std::to_string(docs) +
                " docs per corpus, min of " + std::to_string(reps) +
                " reps");

  std::vector<Corpus> corpora;
  corpora.push_back(MakeFig14Corpus('a', docs));
  corpora.push_back(MakeFig14Corpus('b', docs));
  corpora.push_back(MakeFig15Corpus(docs));
  corpora.push_back(MakeTable7Corpus(docs));

  uint64_t total_packed = 0, total_logical = 0;
  std::vector<CorpusResult> results;
  for (const Corpus& c : corpora) {
    FlatLinks flat(c.idx->index());
    results.push_back(Measure(c, flat, reps));
    const CorpusResult& r = results.back();
    total_packed += r.packed_bytes;
    total_logical += r.logical_bytes;
    std::printf(
        "%-26s %8llu entries  %6.2f bits/entry  %5.1f%% smaller\n",
        r.name.c_str(), static_cast<unsigned long long>(r.entries),
        r.bits_per_entry, r.reduction_pct);
    if (!r.has_wall) continue;
    std::printf(
        "%-26s pack %7.1f Me/s   unpack %7.1f Me/s\n", "",
        r.pack_mentries_s, r.unpack_mentries_s);
    std::printf(
        "%-26s wall %7.3f ms compressed vs %7.3f ms flat "
        "(median pair delta %+.1f%%)\n",
        "", r.wall_compressed_ms, r.wall_flat_ms, r.wall_delta_pct);
  }
  const double total_reduction =
      total_logical > 0
          ? 100.0 * (1.0 - static_cast<double>(total_packed) /
                               static_cast<double>(total_logical))
          : 0.0;
  std::printf("%-26s %.1f%% smaller (%llu -> %llu bytes)\n",
              "total link region", total_reduction,
              static_cast<unsigned long long>(total_logical),
              static_cast<unsigned long long>(total_packed));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench\":\"compress\",\"docs\":%llu,\"reps\":%d,"
               "\"corpora\":[\n",
               static_cast<unsigned long long>(docs), reps);
  for (size_t i = 0; i < results.size(); ++i) {
    const CorpusResult& r = results[i];
    std::fprintf(
        out,
        "{\"name\":\"%s\",\"entries\":%llu,\"packed_bytes\":%llu,"
        "\"logical_bytes\":%llu,\"bits_per_entry\":%.2f,"
        "\"reduction_pct\":%.1f",
        r.name.c_str(), static_cast<unsigned long long>(r.entries),
        static_cast<unsigned long long>(r.packed_bytes),
        static_cast<unsigned long long>(r.logical_bytes), r.bits_per_entry,
        r.reduction_pct);
    if (r.has_wall) {
      std::fprintf(
          out,
          ",\"pack_mentries_s\":%.1f,\"unpack_mentries_s\":%.1f,"
          "\"wall_compressed_ms\":%.3f,\"wall_flat_ms\":%.3f,"
          "\"wall_delta_pct\":%.1f,\"result_docs\":%llu",
          r.pack_mentries_s, r.unpack_mentries_s, r.wall_compressed_ms,
          r.wall_flat_ms, r.wall_delta_pct,
          static_cast<unsigned long long>(r.result_docs_compressed));
    }
    std::fprintf(out, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out,
               "],\"total_packed_bytes\":%llu,"
               "\"total_logical_bytes\":%llu,"
               "\"total_reduction_pct\":%.1f}\n",
               static_cast<unsigned long long>(total_packed),
               static_cast<unsigned long long>(total_logical),
               total_reduction);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  int violations = 0;
  if (total_reduction < min_size_reduction) {
    std::fprintf(stderr,
                 "FAIL: total link size reduction %.1f%% below the %.1f%% "
                 "gate\n",
                 total_reduction, min_size_reduction);
    ++violations;
  }
  for (const CorpusResult& r : results) {
    if (!r.has_wall) continue;
    if (r.result_docs_compressed != r.result_docs_flat) {
      std::fprintf(
          stderr, "FAIL: %s result drift: %llu compressed vs %llu flat\n",
          r.name.c_str(),
          static_cast<unsigned long long>(r.result_docs_compressed),
          static_cast<unsigned long long>(r.result_docs_flat));
      ++violations;
    }
    if (r.wall_delta_pct > max_wall_regression) {
      std::fprintf(stderr,
                   "FAIL: %s compressed wall %.1f%% over flat (budget "
                   "%.1f%%)\n",
                   r.name.c_str(), r.wall_delta_pct, max_wall_regression);
      ++violations;
    }
  }
  return violations > 0 ? 1 : 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
