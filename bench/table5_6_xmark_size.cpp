// Tables 5 and 6: XMark index size, depth-first (DF) vs probability-based
// constraint sequencing (CS), with and without identical sibling nodes.
//
// Expected shape: CS ≈ half the nodes of DF (paper: e.g. 900,534 vs
// 463,943 at 41,666 records with identical siblings), in both variants.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"

namespace xseq {
namespace {

void RunVariant(const char* title, bool identical,
                const std::vector<DocId>& sizes, uint64_t seed) {
  bench::Header(title);
  std::printf("%10s %12s %14s %14s %10s\n", "records", "nodes", "DF", "CS",
              "CS/DF");
  for (DocId n : sizes) {
    uint64_t stats_nodes = 0;
    uint64_t trie_nodes[2] = {0, 0};
    SequencerKind kinds[2] = {SequencerKind::kDepthFirst,
                              SequencerKind::kProbability};
    for (int k = 0; k < 2; ++k) {
      XMarkParams params;
      params.allow_identical_siblings = identical;
      params.seed = seed;
      IndexOptions opts;
      opts.sequencer = kinds[k];
      CollectionBuilder builder(opts);
      XMarkGenerator gen(params, builder.names(), builder.values());
      CollectionIndex idx = bench::BuildStreaming(
          &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
      auto s = idx.Stats();
      stats_nodes = s.sequence_elements;
      trie_nodes[k] = s.trie_nodes;
    }
    std::printf("%10u %12llu %14llu %14llu %10.3f\n", n,
                static_cast<unsigned long long>(stats_nodes),
                static_cast<unsigned long long>(trie_nodes[0]),
                static_cast<unsigned long long>(trie_nodes[1]),
                static_cast<double>(trie_nodes[1]) /
                    static_cast<double>(trie_nodes[0]));
  }
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::vector<DocId> t5, t6;
  if (flags.GetBool("full", false)) {
    t5 = {41666, 50000, 58333, 75000, 83333};   // paper Table 5
    t6 = {20000, 30000, 40000, 50000, 65250};   // paper Table 6
  } else {
    double scale = flags.GetDouble("scale", 1.0);
    for (DocId base : {8000u, 12000u, 16000u}) {
      t5.push_back(static_cast<DocId>(base * scale));
      t6.push_back(static_cast<DocId>(base * scale));
    }
  }

  RunVariant("Table 5  XMark index size (identical sibling nodes)", true,
             t5, seed);
  RunVariant("Table 6  XMark index size (no identical sibling nodes)",
             false, t6, seed);
  bench::Note("paper shape: CS roughly halves DF's index nodes in both "
              "variants (Table 5: ~0.52, Table 6: ~0.53)");
  return 0;
}
