// Table 8: query performance on DBLP — sequence index (CS) vs the
// traditional query-by-path (DataGuide-like) and query-by-node (XISS-like)
// baselines, on the paper's four queries:
//
//   Q1 /inproceedings/title
//   Q2 /book[key='Maier']/author
//   Q3 /*/author[text='David']
//   Q4 //author[text='David']
//
// Paper (seconds): paths 0.01/2.1/1.9/1.8, nodes 1.4/2.5/4.9/4.2,
// CS 0.02/0.30/0.31/0.31. Shape: paths is competitive only on the plain
// path query; CS wins every query with values/branching/wildcards by ~5-15x.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/node_index.h"
#include "src/baseline/path_index.h"
#include "src/gen/dblp.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  // Paper: 407,417 records. Baselines retain documents, so default smaller.
  DocId n = bench::Scaled(flags, 60000, 407417);

  DblpParams params;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  IndexOptions opts;
  opts.keep_documents = true;  // baselines are built from the documents
  CollectionBuilder builder(opts);
  DblpGenerator gen(params, builder.names(), builder.values());
  for (DocId d = 0; d < n; ++d) {
    Status st = builder.Add(gen.Generate(d));
    if (!st.ok()) return 1;
  }
  auto idx_or = std::move(builder).Finish();
  if (!idx_or.ok()) return 1;
  CollectionIndex idx = std::move(*idx_or);

  std::vector<std::vector<PathId>> paths;
  for (const Document& d : idx.documents()) {
    paths.push_back(FindPaths(d, idx.dict()));
  }
  PathIndexBaseline by_path = PathIndexBaseline::Build(idx.documents(),
                                                       paths);
  NodeIndexBaseline by_node = NodeIndexBaseline::Build(idx.documents());

  bench::Header("Table 8  query performance on DBLP-like data (" +
                std::to_string(n) + " records)");
  std::printf("%-4s %-34s %10s %10s %10s %8s\n", "", "path expression",
              "paths (s)", "nodes (s)", "CS (s)", "results");

  const char* queries[4] = {
      "/inproceedings/title",
      "/book[key='Maier']/author",
      "/*/author[text='David']",
      "//author[text='David']",
  };

  for (int qi = 0; qi < 4; ++qi) {
    auto pattern = ParseXPath(queries[qi]);
    if (!pattern.ok()) return 1;

    // Warm-up pass (page in the postings) so timing compares algorithms,
    // not first-touch faults.
    (void)by_path.Query(*pattern, idx.dict(), idx.names(), idx.values());
    (void)by_node.Query(*pattern, idx.dict(), idx.names(), idx.values());
    (void)idx.executor().ExecutePattern(*pattern);

    Timer tp;
    auto rp = by_path.Query(*pattern, idx.dict(), idx.names(),
                            idx.values());
    double paths_s = tp.ElapsedSeconds();

    Timer tn;
    auto rn = by_node.Query(*pattern, idx.dict(), idx.names(),
                            idx.values());
    double nodes_s = tn.ElapsedSeconds();

    Timer tc;
    auto rc = idx.executor().ExecutePattern(*pattern);
    double cs_s = tc.ElapsedSeconds();

    if (!rp.ok() || !rn.ok() || !rc.ok()) return 1;
    if (*rp != *rc || *rn != *rc) {
      std::fprintf(stderr, "METHODS DISAGREE on %s (%zu/%zu/%zu)\n",
                   queries[qi], rp->size(), rn->size(), rc->size());
      return 1;
    }
    std::printf("Q%-3d %-34s %10.4f %10.4f %10.4f %8zu\n", qi + 1,
                queries[qi], paths_s, nodes_s, cs_s, rc->size());
  }
  bench::Note("paper (s): paths 0.01/2.1/1.9/1.8, nodes 1.4/2.5/4.9/4.2, "
              "CS 0.02/0.30/0.31/0.31");
  bench::Note("shape to match: paths fast only on Q1; CS fastest or tied "
              "everywhere; nodes slowest on wildcard/value queries");
  return 0;
}
