// Workload breakdown: the cost profile of the sequence index across query
// *classes* — the dimension the paper's intro argues about (tree patterns
// as first-class queries, no joins):
//
//   path      /site/people/person/name           plain root path
//   value     //person/name[.=V]                 path + value predicate
//   twig      //person[emailaddress][name]       branching, no values
//   twigval   //person[name=V]/emailaddress      branching + value
//   wildcard  /site/*/person/*/age               star steps
//
// For each class: average time, candidates expanded, link probes, and
// result sizes over an XMark-like collection.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 40000, 160000);

  XMarkParams params;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  IndexOptions opts;
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  CollectionIndex idx = bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, n);

  struct Class {
    const char* name;
    std::vector<std::string> queries;
  };
  const Class classes[] = {
      {"path",
       {"/site/people/person/name", "/site/closed_auctions/closed_auction",
        "/site/open_auctions/open_auction/current"}},
      {"value",
       {"//person/profile/age[.='32']", "//item/location[.='Germany']",
        "//closed_auction/price[.='500']"}},
      {"twig",
       {"//person[emailaddress][phone]", "//item[shipping][incategory]",
        "//open_auction[reserve][privacy]"}},
      {"twigval",
       {"//person[profile/age='32']/emailaddress",
        "//item[location='Japan']/quantity",
        "//open_auction[type='Featured']/initial"}},
      {"wildcard",
       {"/site/*/person/*/age", "/site/regions/*/item/location",
        "//item/*[.='Cash']"}},
  };

  bench::Header("Workload breakdown on XMark-like data (" +
                std::to_string(n) + " records, g_best index)");
  std::printf("%-10s %12s %14s %14s %12s %10s\n", "class", "time (us)",
              "candidates", "link probes", "sequences", "results");

  for (const Class& cls : classes) {
    uint64_t us = 0, candidates = 0, probes = 0, sequences = 0,
             results = 0;
    for (const std::string& q : cls.queries) {
      Timer t;
      auto r = idx.Query(q);
      if (!r.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.c_str(),
                     r.status().ToString().c_str());
        return 1;
      }
      us += static_cast<uint64_t>(t.ElapsedMicros());
      candidates += r->stats.match.candidates;
      probes += r->stats.match.link_binary_searches;
      sequences += r->stats.matched_sequences;
      results += r->docs.size();
    }
    double k = static_cast<double>(cls.queries.size());
    std::printf("%-10s %12.1f %14.1f %14.1f %12.1f %10.1f\n", cls.name,
                us / k, candidates / k, probes / k, sequences / k,
                results / k);
  }
  bench::Note("the tree-pattern classes (twig, twigval) run as single "
              "index probes — the join-free behaviour the paper's intro "
              "motivates");
  return 0;
}
