// Ablation: what does the sibling-cover test buy, and what does it cost?
//
// Three configurations answer the same workload on data with identical
// siblings:
//   constraint    — Algorithm 1 with the sibling-cover test (xseq)
//   naive         — plain subsequence matching (wrong answers: false alarms)
//   naive+verify  — naive plus per-document verification (the ViST recipe)
//
// Reported: query time, the false-alarm rate naive incurs, and the overhead
// constraint matching pays versus raw naive matching.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"
#include "src/query/oracle.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 30000, 150000);
  int queries = static_cast<int>(flags.GetInt("queries", 60));

  bench::Header("Ablation: sibling-cover test (dataset L3F5A25I?P40, " +
                std::to_string(n) + " docs, " + std::to_string(queries) +
                " queries of length 6)");
  std::printf("%6s %14s %14s %14s %16s %14s\n", "I (%)", "constraint(us)",
              "naive (us)", "naive+vfy(us)", "false alarms/q",
              "sib checks/q");

  for (int identical : {0, 20, 40, 80}) {
    SyntheticParams params;
    params.identical_percent = identical;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    IndexOptions opts;
    CollectionBuilder builder(opts);
    SyntheticDataset gen(params, builder.names(), builder.values());
    CollectionIndex idx = bench::BuildStreaming(
        &builder, [&gen](DocId d) { return gen.Generate(d); }, n);

    Rng rng(3, 31);
    uint64_t cs_us = 0, naive_us = 0, verify_us = 0, alarms = 0,
             checks = 0;
    for (int q = 0; q < queries; ++q) {
      Document sample = gen.Generate(rng.Uniform(n));
      QueryPattern pattern =
          SampleQueryPattern(sample, idx.names(), 6, &rng, 0.5);

      ExecOptions cs_opts;
      ExecStats cs_stats;
      Timer t1;
      auto rc = idx.executor().ExecutePattern(pattern, &cs_stats, cs_opts);
      cs_us += static_cast<uint64_t>(t1.ElapsedMicros());
      checks += cs_stats.match.sibling_checks;

      ExecOptions nv_opts;
      nv_opts.mode = MatchMode::kNaive;
      Timer t2;
      auto rn = idx.executor().ExecutePattern(pattern, nullptr, nv_opts);
      naive_us += static_cast<uint64_t>(t2.ElapsedMicros());

      if (!rc.ok() || !rn.ok()) return 1;
      alarms += rn->size() - rc->size();

      // The ViST-style cleanup: verify each naive candidate against the
      // regenerated document.
      Timer t3;
      auto inst = InstantiatePattern(pattern, idx.dict(), idx.names(),
                                     idx.values());
      if (!inst.ok()) return 1;
      size_t kept = 0;
      for (DocId d : *rn) {
        Document doc = gen.Generate(d);
        for (const ConcreteQuery& cq : inst->queries) {
          if (OracleContains(doc, cq)) {
            ++kept;
            break;
          }
        }
      }
      verify_us += static_cast<uint64_t>(t2.ElapsedMicros()) +
                   static_cast<uint64_t>(t3.ElapsedMicros());
      if (kept != rc->size()) {
        std::fprintf(stderr, "verification disagrees with constraint!\n");
        return 1;
      }
    }
    std::printf("%6d %14.1f %14.1f %14.1f %16.2f %14.1f\n", identical,
                static_cast<double>(cs_us) / queries,
                static_cast<double>(naive_us) / queries,
                static_cast<double>(verify_us) / queries,
                static_cast<double>(alarms) / queries,
                static_cast<double>(checks) / queries);
  }
  bench::Note("expected: at I=0 constraint == naive (the test never "
              "fires); as I grows, naive needs an expensive verify pass "
              "for its false alarms while constraint stays self-contained");
  return 0;
}
