// Hot-swap latency harness: measures what a generation swap costs the
// queries that are in flight while it happens. An in-process
// TopologyManager serves reader threads directly (no sockets, no result
// cache — the swap itself is the only variable). Two phases over the same
// reader workload:
//
//   1. steady — readers run with no reloads; baseline p50/p99.
//   2. swap   — the same readers while a background thread reloads
//      alternating generation images continuously.
//
// The RCU swap promises: no request is ever dropped (dropped == 0 is
// asserted in-binary, not just reported) and tail latency across a swap
// stays within a small factor of steady state (the ratio is emitted and
// gated by scripts/bench_smoke.sh at <= 2x by default).
//
//   micro_swap [--n=N] [--scale=f] [--shards=S] [--readers=R] [--ops=K]
//              [--dir=TMPDIR] [--out=BENCH_swap.json]
//
// Emits BENCH_swap.json: {..., "steady_p99_us", "swap_p99_us",
// "p99_ratio", "swaps", "requests", "dropped", "qps"} — schema-checked by
// scripts/bench_smoke.sh.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/server/sharded_collection.h"
#include "src/server/topology.h"

namespace xseq {
namespace {

const char* kShapes[4] = {
    "/site//item[location='United States']/mail/date[text='07/05/2000']",
    "/site//person/*/age[text='32']",
    "//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
    "/site//person/name",
};

/// Builds one generation image on disk: `n` XMark records from `seed`.
bool SaveGeneration(const std::string& prefix, DocId n, int shards,
                    uint64_t seed) {
  ShardedOptions sopts;
  sopts.shards = shards;
  ShardedCollection col(sopts);
  XMarkParams params;
  params.seed = seed;
  std::vector<std::unique_ptr<XMarkGenerator>> gens;
  for (size_t s = 0; s < col.shard_count(); ++s) {
    gens.push_back(std::make_unique<XMarkGenerator>(params, col.names(s),
                                                    col.values(s)));
  }
  for (DocId d = 0; d < n; ++d) {
    Status st = col.Add(gens[col.ShardOf(d)]->Generate(d));
    if (!st.ok()) {
      std::fprintf(stderr, "add: %s\n", st.ToString().c_str());
      return false;
    }
  }
  Status st = col.Seal();
  if (!st.ok()) {
    std::fprintf(stderr, "seal: %s\n", st.ToString().c_str());
    return false;
  }
  st = col.Save(prefix);
  if (!st.ok()) {
    std::fprintf(stderr, "save %s: %s\n", prefix.c_str(),
                 st.ToString().c_str());
    return false;
  }
  return true;
}

struct Tally {
  std::vector<uint64_t> latencies_us;
  uint64_t ok = 0;
  uint64_t dropped = 0;  ///< failed queries; the swap contract says zero
};

/// `readers` threads, `ops` queries each, against the live topology.
Tally OfferLoad(const TopologyManager& topo, int readers, int ops) {
  std::vector<Tally> tallies(static_cast<size_t>(readers));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&tallies, &topo, r, ops] {
      Tally& tally = tallies[static_cast<size_t>(r)];
      tally.latencies_us.reserve(static_cast<size_t>(ops));
      for (int i = 0; i < ops; ++i) {
        Timer timer;
        auto result = topo.Query(kShapes[(i + r) % 4]);
        const uint64_t us =
            static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
        if (result.ok()) {
          ++tally.ok;
          tally.latencies_us.push_back(us);
        } else {
          ++tally.dropped;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tally merged;
  for (Tally& t : tallies) {
    merged.ok += t.ok;
    merged.dropped += t.dropped;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               t.latencies_us.begin(), t.latencies_us.end());
  }
  return merged;
}

uint64_t Percentile(std::vector<uint64_t>* v, double p) {
  if (v->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + static_cast<long>(idx), v->end());
  return (*v)[idx];
}

int Run(const FlagSet& flags) {
  const DocId n = static_cast<DocId>(
      flags.GetInt("n", static_cast<int64_t>(bench::Scaled(flags, 3000, 30000))));
  const int shards = static_cast<int>(flags.GetInt("shards", 4));
  const int readers = static_cast<int>(flags.GetInt("readers", 4));
  const int ops = static_cast<int>(flags.GetInt("ops", 400));
  const std::string dir = flags.GetString("dir", "/tmp");
  const std::string out_path = flags.GetString("out", "BENCH_swap.json");

  bench::Header("generation hot-swap: " + std::to_string(n) +
                " XMark records x 2 generations, " + std::to_string(shards) +
                " shards, " + std::to_string(readers) + " readers x " +
                std::to_string(ops) + " ops");

  const std::string prefix_a = dir + "/xseq_bench_swap_a";
  const std::string prefix_b = dir + "/xseq_bench_swap_b";
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (!SaveGeneration(prefix_a, n, shards, seed) ||
      !SaveGeneration(prefix_b, n, shards, seed + 1)) {
    return 1;
  }

  TopologyManager topo;
  {
    auto gen = topo.Reload(prefix_a);
    if (!gen.ok()) {
      std::fprintf(stderr, "initial load: %s\n",
                   gen.status().ToString().c_str());
      return 1;
    }
  }

  // Phase 1: steady state, no swaps.
  Tally steady = OfferLoad(topo, readers, ops);
  const uint64_t steady_p50 = Percentile(&steady.latencies_us, 0.50);
  const uint64_t steady_p99 = Percentile(&steady.latencies_us, 0.99);
  std::printf("%-8s p50 %6llu us   p99 %6llu us   dropped %llu\n",
              "steady:", static_cast<unsigned long long>(steady_p50),
              static_cast<unsigned long long>(steady_p99),
              static_cast<unsigned long long>(steady.dropped));

  // Phase 2: the same load while generations swap continuously.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> swaps{0};
  std::atomic<uint64_t> swap_failures{0};
  std::thread swapper([&] {
    int next = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto gen = topo.Reload(next % 2 == 0 ? prefix_a : prefix_b);
      if (gen.ok()) {
        ++swaps;
      } else {
        ++swap_failures;
      }
      ++next;
    }
  });
  Timer wall;
  Tally swap = OfferLoad(topo, readers, ops);
  const double elapsed = wall.ElapsedSeconds();
  stop.store(true);
  swapper.join();

  const uint64_t swap_p50 = Percentile(&swap.latencies_us, 0.50);
  const uint64_t swap_p99 = Percentile(&swap.latencies_us, 0.99);
  const double qps =
      elapsed > 0 ? static_cast<double>(swap.ok) / elapsed : 0.0;
  const double ratio =
      steady_p99 > 0 ? static_cast<double>(swap_p99) /
                           static_cast<double>(steady_p99)
                     : 0.0;
  std::printf("%-8s p50 %6llu us   p99 %6llu us   dropped %llu   "
              "%llu swaps (%.0f qps)\n",
              "swap:", static_cast<unsigned long long>(swap_p50),
              static_cast<unsigned long long>(swap_p99),
              static_cast<unsigned long long>(swap.dropped),
              static_cast<unsigned long long>(swaps.load()), qps);
  bench::Note("p99 across swaps = " + std::to_string(ratio) + "x steady");

  const uint64_t dropped = steady.dropped + swap.dropped;
  const uint64_t requests = steady.ok + swap.ok + dropped;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"bench\":\"swap\",\"n\":%llu,\"shards\":%d,\"readers\":%d,"
      "\"ops_per_reader\":%d,\"steady_p50_us\":%llu,\"steady_p99_us\":%llu,"
      "\"swap_p50_us\":%llu,\"swap_p99_us\":%llu,\"p99_ratio\":%.3f,"
      "\"swaps\":%llu,\"swap_failures\":%llu,\"requests\":%llu,"
      "\"dropped\":%llu,\"qps\":%.1f}\n",
      static_cast<unsigned long long>(n), shards, readers, ops,
      static_cast<unsigned long long>(steady_p50),
      static_cast<unsigned long long>(steady_p99),
      static_cast<unsigned long long>(swap_p50),
      static_cast<unsigned long long>(swap_p99), ratio,
      static_cast<unsigned long long>(swaps.load()),
      static_cast<unsigned long long>(swap_failures.load()),
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(dropped), qps);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  // The contract, enforced where it cannot be ignored: an RCU swap never
  // drops a request, and every swap attempt over two valid images lands.
  if (dropped != 0) {
    std::fprintf(stderr, "FAIL: %llu requests dropped across swaps\n",
                 static_cast<unsigned long long>(dropped));
    return 1;
  }
  if (swap_failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu reloads of a valid image failed\n",
                 static_cast<unsigned long long>(swap_failures.load()));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
