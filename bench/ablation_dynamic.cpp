// Ablation: dynamic (segmented) index vs one-shot build.
//
// The ViST lineage stresses dynamic maintenance; xseq's DynamicIndex
// trades query cost (one probe per segment) for O(1) insertion into a
// buffer. This measures that trade and what Compact() buys back.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/dynamic_index.h"
#include "src/gen/querygen.h"
#include "src/gen/xmark.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 40000, 160000);
  int queries = static_cast<int>(flags.GetInt("queries", 60));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::Header("Ablation: dynamic segmented index (" + std::to_string(n) +
                " XMark records)");

  // Dynamic, incremental ingestion.
  DynamicOptions dopts;
  dopts.flush_threshold = n / 16 + 1;
  DynamicIndex dyn(dopts);
  XMarkParams params;
  params.seed = seed;
  XMarkGenerator gen(params, dyn.names(), dyn.values());
  Timer ingest;
  for (DocId d = 0; d < n; ++d) {
    if (!dyn.Add(gen.Generate(d)).ok()) return 1;
  }
  if (!dyn.Flush().ok()) return 1;
  double dyn_build_s = ingest.ElapsedSeconds();

  // One-shot reference (streaming two-pass).
  IndexOptions sopts;
  CollectionBuilder builder(sopts);
  XMarkGenerator gen2(params, builder.names(), builder.values());
  Timer oneshot;
  CollectionIndex ref = bench::BuildStreaming(
      &builder, [&gen2](DocId d) { return gen2.Generate(d); }, n);
  double ref_build_s = oneshot.ElapsedSeconds();

  // Query workload against both, plus the compacted dynamic index.
  auto run = [&](auto&& query_fn) {
    Rng rng(9, 27);
    uint64_t us = 0;
    NameTable names;
    ValueEncoder values;
    XMarkGenerator sampler(params, &names, &values);
    for (int q = 0; q < queries; ++q) {
      Document sample = sampler.Generate(rng.Uniform(n));
      QueryPattern pattern =
          SampleQueryPattern(sample, names, 6, &rng, 0.5);
      Timer t;
      if (!query_fn(pattern)) std::abort();
      us += static_cast<uint64_t>(t.ElapsedMicros());
    }
    return static_cast<double>(us) / queries;
  };

  double seg_us = run([&](const QueryPattern& p) {
    return dyn.ExecutePattern(p).ok();
  });
  uint64_t seg_nodes = dyn.TotalIndexNodes();
  size_t seg_count = dyn.segment_count();

  Timer compact_timer;
  if (!dyn.Compact().ok()) return 1;
  double compact_s = compact_timer.ElapsedSeconds();
  double compacted_us = run([&](const QueryPattern& p) {
    return dyn.ExecutePattern(p).ok();
  });

  double ref_us = run([&](const QueryPattern& p) {
    return ref.executor().ExecutePattern(p).ok();
  });

  std::printf("%-22s %12s %14s %14s\n", "configuration", "build (s)",
              "index nodes", "query (us)");
  std::printf("%-22s %12.2f %14llu %14.1f\n",
              ("dynamic, " + std::to_string(seg_count) + " segments")
                  .c_str(),
              dyn_build_s, static_cast<unsigned long long>(seg_nodes),
              seg_us);
  std::printf("%-22s %12.2f %14llu %14.1f\n", "dynamic, compacted",
              compact_s,
              static_cast<unsigned long long>(dyn.TotalIndexNodes()),
              compacted_us);
  std::printf("%-22s %12.2f %14llu %14.1f\n", "one-shot reference",
              ref_build_s,
              static_cast<unsigned long long>(ref.Stats().trie_nodes),
              ref_us);
  bench::Note("expected: segmented queries pay a per-segment probe; "
              "Compact() recovers one-shot node counts and query cost");
  return 0;
}
