// Instrumentation overhead: the fig15 identical-siblings query mix executed
// end to end (compile + match) under four observability configurations —
// metrics disabled, metrics enabled, metrics + per-query tracing, and
// metrics + tracing + a tail-sampled structured access log (the full
// serving-plane observability stack).
//
// Two modes:
//   * default        — google-benchmark micros for the primitive costs
//     (counter add, histogram record, the disabled-site guard).
//   * --json=<path>  — the overhead workload. Each rep runs every config
//     once, interleaved, and each config's score is the minimum wall time
//     over --reps (default 9) reps: on a shared host the minimum is the
//     least-noisy estimator of the true cost. Writes BENCH_obs.json and
//     exits 1 when the metrics-enabled (tracing off) run is more than
//     --max_overhead_pct (default 2) slower than the disabled run.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/collection_index.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"
#include "src/obs/metrics.h"
#include "src/obs/request_log.h"
#include "src/obs/trace.h"
#include "src/util/flags.h"
#include "src/util/timer.h"

namespace xseq {
namespace {

// ---------------------------------------------------------------------------
// Primitive-cost microbenchmarks.

void BM_CounterAdd(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Increment();
    benchmark::DoNotOptimize(&c);
  }
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram h;
  uint64_t v = 0;
  for (auto _ : state) {
    h.Record(v++ & 0xFFF);
    benchmark::DoNotOptimize(&h);
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_DisabledSiteGuard(benchmark::State& state) {
  // The whole per-site cost when metrics are off: one relaxed load + branch.
  obs::ScopedMetricsEnabled off(false);
  for (auto _ : state) {
    bool enabled = obs::MetricsEnabled();
    benchmark::DoNotOptimize(enabled);
  }
}
BENCHMARK(BM_DisabledSiteGuard);

void BM_RequestLogLineFormat(benchmark::State& state) {
  // Pure formatting cost of one access-log line (the write is I/O-bound
  // and measured by the --json workload instead).
  obs::RequestLogRecord rec;
  rec.ts_us = 1700000000000000ull;
  rec.request_id = 7;
  rec.trace_id = 0xBEEF;
  rec.query = "/a/b/c[text='v1']";
  rec.latency_us = 1234;
  rec.queue_us = 56;
  rec.docs = 9;
  for (auto _ : state) {
    std::string line = obs::RequestLogLine(rec, "sampled");
    benchmark::DoNotOptimize(line.data());
  }
}
BENCHMARK(BM_RequestLogLineFormat);

// ---------------------------------------------------------------------------
// --json overhead workload.

struct Workload {
  std::unique_ptr<CollectionIndex> idx;
  std::vector<QueryPattern> patterns;
};

/// The fig15 identical-siblings mix from micro_match, kept at the pattern
/// level so each measured query pays the full instrumented path (compile,
/// instantiate, ordering expansion, match).
Workload MakeFig15Workload(DocId docs) {
  Workload w;
  SyntheticParams params;
  params.identical_percent = 80;
  params.value_percent = 25;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  SyntheticDataset gen(params, builder.names(), builder.values());
  w.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  Rng rng(params.seed, /*stream=*/29);
  for (int q = 0; q < 48; ++q) {
    Document sample = gen.Generate(rng.Uniform(docs));
    QueryPattern pattern = SampleQueryPattern(sample, w.idx->names(), 5,
                                              &rng, /*value_bias=*/0.4);
    auto compiled = w.idx->executor().Compile(pattern);
    if (compiled.ok() && !compiled->empty()) {
      w.patterns.push_back(std::move(pattern));
    }
  }
  return w;
}

/// One pass over every query; returns total result docs (a checksum that
/// also keeps the work from being optimized away).
uint64_t RunQueries(const Workload& w, const ExecOptions& exec,
                    obs::RequestLog* log = nullptr) {
  uint64_t total = 0;
  for (const QueryPattern& p : w.patterns) {
    Timer timer;
    auto r = w.idx->executor().ExecutePattern(p, /*stats=*/nullptr, exec);
    if (!r.ok()) {
      std::fprintf(stderr, "query: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
    total += r->size();
    if (log != nullptr) {
      // What the serving layer pays per request: build the record, run the
      // sampling policy, and (for the admitted minority) write one line.
      obs::RequestLogRecord rec;
      rec.latency_us = static_cast<uint64_t>(timer.ElapsedMicros());
      rec.docs = r->size();
      (void)log->Append(rec);
    }
  }
  return total;
}

struct ConfigResult {
  std::string name;
  double min_ms = 1e300;
  double sum_ms = 0.0;
  uint64_t checksum = 0;
};

int RunJsonMode(const FlagSet& flags) {
  const DocId docs = static_cast<DocId>(flags.GetInt("docs", 4000));
  const int reps = static_cast<int>(flags.GetInt("reps", 9));
  const double max_overhead_pct = flags.GetDouble("max_overhead_pct", 2.0);

  Workload w = MakeFig15Workload(docs);
  std::fprintf(stderr, "fig15 workload: %u docs, %zu queries, %d reps\n",
               static_cast<unsigned>(docs), w.patterns.size(), reps);

  obs::Tracer tracer;
  ConfigResult off{"metrics_off"};
  ConfigResult on{"metrics_on"};
  ConfigResult tracing{"tracing_on"};
  ConfigResult logging{"logging_on"};

  // The access-log leg: tail-sampling at the serving default (1 in 100 OK
  // requests admitted; nothing in this workload sheds or misses a deadline)
  // so the measured cost is dominated by record build + Classify, as in
  // production.
  obs::RequestLogOptions log_opts;
  log_opts.path = flags.GetString("log_path", "/tmp/xseq_micro_obs.jsonl");
  log_opts.sample_every = 100;
  log_opts.slow_micros = 0;
  auto request_log = obs::RequestLog::Open(log_opts);
  if (!request_log.ok()) {
    std::fprintf(stderr, "request log: %s\n",
                 request_log.status().ToString().c_str());
    return 1;
  }

  auto measure = [&w](ConfigResult* cfg, const ExecOptions& exec,
                      bool metrics, obs::RequestLog* log = nullptr) {
    obs::ScopedMetricsEnabled scoped(metrics);
    Timer timer;
    uint64_t sum = RunQueries(w, exec, log);
    double ms = timer.ElapsedMillis();
    cfg->min_ms = std::min(cfg->min_ms, ms);
    cfg->sum_ms += ms;
    if (cfg->checksum == 0) {
      cfg->checksum = sum;
    } else if (cfg->checksum != sum) {
      std::fprintf(stderr, "nondeterministic results in %s\n",
                   cfg->name.c_str());
      std::exit(1);
    }
  };

  // Warmup: fault in the index pages and the metric registrations.
  measure(&on, ExecOptions{}, /*metrics=*/true);
  on = ConfigResult{"metrics_on"};

  for (int rep = 0; rep < reps; ++rep) {
    measure(&off, ExecOptions{}, /*metrics=*/false);
    measure(&on, ExecOptions{}, /*metrics=*/true);
    ExecOptions traced;
    traced.tracer = &tracer;
    measure(&tracing, traced, /*metrics=*/true);
    measure(&logging, traced, /*metrics=*/true, request_log->get());
  }

  if (off.checksum != on.checksum || off.checksum != tracing.checksum ||
      off.checksum != logging.checksum) {
    std::fprintf(stderr, "result drift across configs\n");
    return 1;
  }

  const double overhead_pct =
      off.min_ms <= 0.0 ? 0.0 : (on.min_ms - off.min_ms) / off.min_ms * 100.0;
  const double tracing_pct =
      off.min_ms <= 0.0
          ? 0.0
          : (tracing.min_ms - off.min_ms) / off.min_ms * 100.0;
  const double logging_pct =
      off.min_ms <= 0.0
          ? 0.0
          : (logging.min_ms - off.min_ms) / off.min_ms * 100.0;
  const bool pass = overhead_pct < max_overhead_pct;

  char buf[1024];
  std::string json = "{\"bench\":\"micro_obs\",\"workload\":"
                     "\"fig15_identical_siblings\",";
  std::snprintf(buf, sizeof(buf),
                "\"docs\":%u,\"queries\":%zu,\"reps\":%d,\"configs\":[\n",
                static_cast<unsigned>(docs), w.patterns.size(), reps);
  json += buf;
  const ConfigResult* cfgs[4] = {&off, &on, &tracing, &logging};
  for (int i = 0; i < 4; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"min_wall_ms\":%.3f,"
                  "\"mean_wall_ms\":%.3f,\"result_docs\":%llu}%s\n",
                  cfgs[i]->name.c_str(), cfgs[i]->min_ms,
                  cfgs[i]->sum_ms / reps,
                  static_cast<unsigned long long>(cfgs[i]->checksum),
                  i + 1 < 4 ? "," : "");
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"metrics_overhead_pct\":%.3f,"
                "\"tracing_overhead_pct\":%.3f,"
                "\"logging_overhead_pct\":%.3f,"
                "\"max_overhead_pct\":%.1f,\"pass\":%s}\n",
                overhead_pct, tracing_pct, logging_pct, max_overhead_pct,
                pass ? "true" : "false");
  json += buf;

  std::string path = flags.GetString("json", "BENCH_obs.json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::fprintf(stderr,
               "wrote %s (metrics overhead %.2f%%, tracing %.2f%%, "
               "tracing+log %.2f%%, limit %.1f%%)\n",
               path.c_str(), overhead_pct, tracing_pct, logging_pct,
               max_overhead_pct);

  if (!pass) {
    std::fprintf(stderr,
                 "FAIL: metrics-on overhead %.2f%% exceeds %.1f%%\n",
                 overhead_pct, max_overhead_pct);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  if (flags.Has("json")) {
    return xseq::RunJsonMode(flags);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
