// Shared helpers for the table/figure reproduction harnesses.
//
// Every harness accepts:
//   --scale=<f>   multiply default dataset sizes by f
//   --full        paper-scale sizes (slow; minutes on one core)
//   --seed=<n>    dataset seed
// and prints paper-shaped rows plus enough context to compare against the
// original tables/figures (recorded in EXPERIMENTS.md).

#ifndef XSEQ_BENCH_BENCH_UTIL_H_
#define XSEQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/core/collection_index.h"
#include "src/util/flags.h"
#include "src/util/timer.h"

namespace xseq {
namespace bench {

/// A generator callback: document by id.
using DocFn = std::function<Document(DocId)>;

/// Streams `n` documents through the two-phase builder (no retention).
/// The generator must be deterministic per id.
inline CollectionIndex BuildStreaming(CollectionBuilder* builder,
                                      const DocFn& gen, DocId n) {
  for (DocId d = 0; d < n; ++d) {
    Status st = builder->Observe(gen(d));
    if (!st.ok()) {
      std::fprintf(stderr, "observe failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  Status st = builder->BeginIndexing();
  if (!st.ok()) std::abort();
  for (DocId d = 0; d < n; ++d) {
    st = builder->Index(gen(d));
    if (!st.ok()) {
      std::fprintf(stderr, "index failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  auto idx = std::move(*builder).Finish();
  if (!idx.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 idx.status().ToString().c_str());
    std::abort();
  }
  return std::move(*idx);
}

/// Scales `base` by --scale / --full.
inline DocId Scaled(const FlagSet& flags, DocId base, DocId full) {
  if (flags.GetBool("full", false)) return full;
  double scale = flags.GetDouble("scale", 1.0);
  DocId v = static_cast<DocId>(static_cast<double>(base) * scale);
  return v == 0 ? 1 : v;
}

/// Prints a rule + centered-ish title.
inline void Header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

}  // namespace bench
}  // namespace xseq

#endif  // XSEQ_BENCH_BENCH_UTIL_H_
