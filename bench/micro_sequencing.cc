// Microbenchmarks: sequencing throughput of every strategy.

#include <benchmark/benchmark.h>

#include "src/gen/synthetic.h"
#include "src/schema/schema.h"
#include "src/seq/sequencer.h"

namespace xseq {
namespace {

/// Shared corpus: 1000 synthetic documents + schema model.
struct Corpus {
  NameTable names;
  ValueEncoder values;
  PathDict dict;
  std::vector<Document> docs;
  std::vector<std::vector<PathId>> paths;
  std::shared_ptr<const SequencingModel> model;

  explicit Corpus(int identical) {
    SyntheticParams params;
    params.identical_percent = identical;
    SyntheticDataset gen(params, &names, &values);
    Schema schema;
    for (DocId d = 0; d < 1000; ++d) {
      docs.push_back(gen.Generate(d));
      paths.push_back(BindPaths(docs.back(), &dict));
      schema.Observe(docs.back(), paths.back());
    }
    model = schema.BuildModel(dict);
  }
};

Corpus& GetCorpus(int identical) {
  static Corpus* plain = new Corpus(0);
  static Corpus* repeats = new Corpus(40);
  return identical == 0 ? *plain : *repeats;
}

void BM_Sequence(benchmark::State& state, SequencerKind kind,
                 int identical) {
  Corpus& c = GetCorpus(identical);
  auto sequencer = MakeSequencer(kind, c.model);
  size_t i = 0;
  uint64_t nodes = 0;
  for (auto _ : state) {
    const Document& doc = c.docs[i % c.docs.size()];
    Sequence seq = sequencer->Encode(doc, c.paths[i % c.docs.size()]);
    benchmark::DoNotOptimize(seq.data());
    nodes += seq.size();
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(nodes));
}

BENCHMARK_CAPTURE(BM_Sequence, depth_first, SequencerKind::kDepthFirst, 0);
BENCHMARK_CAPTURE(BM_Sequence, breadth_first, SequencerKind::kBreadthFirst,
                  0);
BENCHMARK_CAPTURE(BM_Sequence, random, SequencerKind::kRandom, 0);
BENCHMARK_CAPTURE(BM_Sequence, probability, SequencerKind::kProbability, 0);
BENCHMARK_CAPTURE(BM_Sequence, probability_identical_siblings,
                  SequencerKind::kProbability, 40);

void BM_BindPaths(benchmark::State& state) {
  Corpus& c = GetCorpus(0);
  size_t i = 0;
  for (auto _ : state) {
    PathDict dict;
    auto paths = BindPaths(c.docs[i % c.docs.size()], &dict);
    benchmark::DoNotOptimize(paths.data());
    ++i;
  }
}
BENCHMARK(BM_BindPaths);

}  // namespace
}  // namespace xseq

BENCHMARK_MAIN();
