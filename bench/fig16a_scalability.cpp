// Figure 16(a): constraint-sequencing query time vs dataset size
// (L3 F5 A25 I10 P40, random tree-pattern queries of length 5).
//
// Expected shape: sub-linear growth — the paper plots CS on a log axis
// staying in the tens of milliseconds while the dataset grows 8x.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  int queries = static_cast<int>(flags.GetInt("queries", 100));
  size_t qlen = static_cast<size_t>(flags.GetInt("len", 5));

  bench::Header("Figure 16(a)  CS query time vs dataset size "
                "(L3F5A25I10P40, query length " + std::to_string(qlen) +
                ")");
  std::printf("%10s %14s %16s %14s %12s\n", "docs", "index nodes",
              "avg query (us)", "avg results", "us/result");

  for (DocId base : {12500u, 25000u, 50000u, 100000u}) {
    DocId n = bench::Scaled(flags, base, base * 4);
    SyntheticParams params;
    params.identical_percent = 10;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    IndexOptions opts;
    CollectionBuilder builder(opts);
    SyntheticDataset gen(params, builder.names(), builder.values());
    CollectionIndex idx = bench::BuildStreaming(
        &builder, [&gen](DocId d) { return gen.Generate(d); }, n);

    Rng rng(7, 11);
    uint64_t total_us = 0;
    uint64_t total_results = 0;
    for (int q = 0; q < queries; ++q) {
      Document sample = gen.Generate(rng.Uniform(n));
      QueryPattern pattern =
          SampleQueryPattern(sample, idx.names(), qlen, &rng, 0.6);
      Timer timer;
      auto r = idx.executor().ExecutePattern(pattern);
      if (!r.ok()) return 1;
      total_us += static_cast<uint64_t>(timer.ElapsedMicros());
      total_results += r->size();
    }
    std::printf("%10u %14llu %16.1f %14.1f %12.3f\n", n,
                static_cast<unsigned long long>(idx.Stats().trie_nodes),
                static_cast<double>(total_us) / queries,
                static_cast<double>(total_results) / queries,
                total_results == 0
                    ? 0.0
                    : static_cast<double>(total_us) /
                          static_cast<double>(total_results));
  }
  bench::Note("paper shape: near-flat (log-scale) query time as the "
              "dataset grows 8x");
  return 0;
}
