// Ablation: index-construction choices.
//   * bulk load (sort + LCP insertion) vs incremental hash-probing inserts
//   * build-time cost of each sequencing strategy
//
// The paper notes static data can be "bulk loaded by sorting the sequences
// first" — this quantifies that choice.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/index/trie.h"
#include "src/schema/schema.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 40000, 200000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // Shared corpus + model.
  NameTable names;
  ValueEncoder values;
  PathDict dict;
  Schema schema;
  XMarkParams params;
  params.seed = seed;
  XMarkGenerator gen(params, &names, &values);
  std::vector<Document> docs;
  std::vector<std::vector<PathId>> paths;
  docs.reserve(n);
  for (DocId d = 0; d < n; ++d) {
    docs.push_back(gen.Generate(d));
    paths.push_back(BindPaths(docs.back(), &dict));
    schema.Observe(docs.back(), paths.back());
  }
  auto model = schema.BuildModel(dict);

  bench::Header("Ablation: sequencing strategy build cost (" +
                std::to_string(n) + " XMark records)");
  std::printf("%-14s %14s %14s\n", "sequencer", "sequence (ms)",
              "elems/us");
  for (SequencerKind kind :
       {SequencerKind::kDepthFirst, SequencerKind::kBreadthFirst,
        SequencerKind::kRandom, SequencerKind::kProbability}) {
    auto sequencer = MakeSequencer(kind, model);
    Timer t;
    uint64_t elems = 0;
    for (size_t i = 0; i < docs.size(); ++i) {
      elems += sequencer->Encode(docs[i], paths[i]).size();
    }
    double ms = t.ElapsedMillis();
    std::printf("%-14s %14.1f %14.2f\n", SequencerKindName(kind), ms,
                static_cast<double>(elems) / (ms * 1000.0));
  }

  // Pre-sequence once with g_best for the insertion comparison.
  auto cs = MakeSequencer(SequencerKind::kProbability, model);
  std::vector<std::pair<Sequence, DocId>> seqs;
  seqs.reserve(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    seqs.emplace_back(cs->Encode(docs[i], paths[i]), docs[i].id());
  }

  bench::Header("Ablation: trie construction, incremental vs bulk load");
  std::printf("%-14s %14s %14s %14s\n", "method", "insert (ms)",
              "freeze (ms)", "nodes");
  {
    TrieBuilder b;
    Timer t;
    for (const auto& [seq, doc] : seqs) {
      if (!b.Insert(seq, doc).ok()) return 1;
    }
    double insert_ms = t.ElapsedMillis();
    size_t nodes = b.node_count();
    Timer tf;
    FrozenIndex idx = std::move(b).Freeze();
    std::printf("%-14s %14.1f %14.1f %14zu\n", "incremental", insert_ms,
                tf.ElapsedMillis(), nodes);
  }
  {
    std::vector<std::pair<Sequence, DocId>> input = seqs;
    TrieBuilder b;
    Timer t;
    if (!b.BulkLoad(&input).ok()) return 1;
    double insert_ms = t.ElapsedMillis();
    size_t nodes = b.node_count();
    Timer tf;
    FrozenIndex idx = std::move(b).Freeze();
    std::printf("%-14s %14.1f %14.1f %14zu\n", "bulk-load", insert_ms,
                tf.ElapsedMillis(), nodes);
  }
  bench::Note("expected: identical node counts; bulk load faster "
              "(sorting replaces per-element hash probes)");
  return 0;
}
