// Serving-layer load harness: an in-process XseqServer on a loopback TCP
// port, driven closed-loop by several client connections. Two phases:
//
//   1. throughput — C clients, each running `ops` queries back-to-back
//      against a well-provisioned server; reports aggregate queries/s and
//      client-observed p50/p99 latency (socket + framing + admission +
//      execution).
//   2. overload — the same corpus behind a deliberately starved server
//      (1 worker, queue of 1) under the same offered load; reports how
//      many requests were shed with kOverloaded. Shedding is the designed
//      behavior, so the phase asserts shed > 0 rather than treating it as
//      failure.
//
//   micro_serve [--n=N] [--scale=f] [--shards=S] [--clients=C] [--ops=K]
//               [--workers=W] [--out=BENCH_serve.json]
//
// Emits BENCH_serve.json: {..., "throughput_qps", "p50_us", "p99_us",
// "shed", "shed_rate"} — schema-checked by scripts/bench_smoke.sh.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/server/sharded_collection.h"
#include "src/util/thread_pool.h"

namespace xseq {
namespace {

const char* kShapes[4] = {
    "/site//item[location='United States']/mail/date[text='07/05/2000']",
    "/site//person/*/age[text='32']",
    "//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
    "/site//person/name",
};

struct ClientTally {
  std::vector<uint64_t> latencies_us;  ///< successful queries only
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t other_errors = 0;
};

/// One closed-loop client: connect, run `ops` queries, record latencies.
ClientTally DriveClient(int port, int ops, int offset) {
  ClientTally tally;
  auto client = XseqClient::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "client connect: %s\n",
                 client.status().ToString().c_str());
    tally.other_errors = static_cast<uint64_t>(ops);
    return tally;
  }
  for (int i = 0; i < ops; ++i) {
    Timer timer;
    auto result = client->Query(kShapes[(i + offset) % 4]);
    const uint64_t us =
        static_cast<uint64_t>(timer.ElapsedSeconds() * 1e6);
    if (result.ok()) {
      ++tally.ok;
      tally.latencies_us.push_back(us);
    } else if (result.status().IsOverloaded()) {
      ++tally.shed;
    } else {
      ++tally.other_errors;
    }
  }
  client->Close();
  return tally;
}

/// Runs `clients` closed-loop drivers against `server` and merges tallies.
ClientTally OfferLoad(XseqServer* server, int clients, int ops) {
  std::vector<ClientTally> tallies(static_cast<size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  const int port = server->port();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(
        [&tallies, c, port, ops] { tallies[static_cast<size_t>(c)] =
                                       DriveClient(port, ops, c); });
  }
  for (std::thread& t : threads) t.join();
  ClientTally merged;
  for (ClientTally& t : tallies) {
    merged.ok += t.ok;
    merged.shed += t.shed;
    merged.other_errors += t.other_errors;
    merged.latencies_us.insert(merged.latencies_us.end(),
                               t.latencies_us.begin(), t.latencies_us.end());
  }
  return merged;
}

uint64_t Percentile(std::vector<uint64_t>* v, double p) {
  if (v->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + static_cast<long>(idx), v->end());
  return (*v)[idx];
}

int Run(const FlagSet& flags) {
  const DocId n = static_cast<DocId>(
      flags.GetInt("n", static_cast<int64_t>(bench::Scaled(flags, 5000, 50000))));
  const int shards = static_cast<int>(flags.GetInt("shards", 4));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const int ops = static_cast<int>(flags.GetInt("ops", 50));
  const int workers =
      static_cast<int>(flags.GetInt("workers", ResolveThreadCount(0)));
  const std::string out_path = flags.GetString("out", "BENCH_serve.json");

  bench::Header("serving layer: " + std::to_string(n) + " XMark records, " +
                std::to_string(shards) + " shards, " +
                std::to_string(clients) + " clients x " +
                std::to_string(ops) + " ops");

  // Corpus: one sharded collection shared by both phases.
  ShardedOptions sopts;
  sopts.shards = shards;
  auto collection = std::make_shared<ShardedCollection>(sopts);
  {
    XMarkParams params;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    std::vector<std::unique_ptr<XMarkGenerator>> gens;
    for (size_t s = 0; s < collection->shard_count(); ++s) {
      gens.push_back(std::make_unique<XMarkGenerator>(
          params, collection->names(s), collection->values(s)));
    }
    for (DocId d = 0; d < n; ++d) {
      Status st = collection->Add(
          gens[collection->ShardOf(d)]->Generate(d));
      if (!st.ok()) {
        std::fprintf(stderr, "add: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    Status st = collection->Seal();
    if (!st.ok()) {
      std::fprintf(stderr, "seal: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  QueryService::Backend backend = [collection](std::string_view xpath,
                                               const ExecOptions& opts) {
    return collection->Query(xpath, opts);
  };

  // Phase 1: throughput against a provisioned server.
  double throughput_qps = 0.0;
  uint64_t p50 = 0, p99 = 0;
  uint64_t phase1_errors = 0;
  {
    ServerOptions options;
    options.service.workers = workers;
    options.service.max_queue = 256;
    XseqServer server(backend, options);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
      return 1;
    }
    Timer wall;
    ClientTally tally = OfferLoad(&server, clients, ops);
    const double elapsed = wall.ElapsedSeconds();
    server.Stop();
    throughput_qps =
        elapsed > 0 ? static_cast<double>(tally.ok) / elapsed : 0.0;
    p50 = Percentile(&tally.latencies_us, 0.50);
    p99 = Percentile(&tally.latencies_us, 0.99);
    phase1_errors = tally.shed + tally.other_errors;
    std::printf("%-12s %10.0f qps   p50 %6llu us   p99 %6llu us"
                "   errors %llu\n",
                "throughput:", throughput_qps,
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(phase1_errors));
  }

  // Phase 2: the same offered load against a starved server; admission
  // control must shed rather than queue without bound.
  uint64_t shed = 0, shed_total = 0;
  double shed_rate = 0.0;
  {
    ServerOptions options;
    options.service.workers = 1;
    options.service.max_queue = 1;
    XseqServer server(backend, options);
    Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "start: %s\n", st.ToString().c_str());
      return 1;
    }
    ClientTally tally =
        OfferLoad(&server, std::max(clients, 4), ops);
    server.Stop();
    shed = tally.shed;
    shed_total = tally.ok + tally.shed + tally.other_errors;
    shed_rate = shed_total > 0
                    ? static_cast<double>(shed) /
                          static_cast<double>(shed_total)
                    : 0.0;
    std::printf("%-12s %llu/%llu shed (%.1f%%), %llu served\n",
                "overload:", static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(shed_total),
                shed_rate * 100.0, static_cast<unsigned long long>(tally.ok));
    if (shed == 0) {
      std::fprintf(stderr,
                   "WARNING: starved server shed nothing — offered load too"
                   " low to exercise admission control\n");
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"bench\":\"serve\",\"n\":%llu,\"shards\":%d,\"clients\":%d,"
      "\"ops_per_client\":%d,\"workers\":%d,"
      "\"throughput_qps\":%.1f,\"p50_us\":%llu,\"p99_us\":%llu,"
      "\"errors\":%llu,\"shed\":%llu,\"shed_total\":%llu,"
      "\"shed_rate\":%.4f}\n",
      static_cast<unsigned long long>(n), shards, clients, ops, workers,
      throughput_qps, static_cast<unsigned long long>(p50),
      static_cast<unsigned long long>(p99),
      static_cast<unsigned long long>(phase1_errors),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(shed_total), shed_rate);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
