// Microbenchmarks: Algorithm 1 subsequence matching (constraint vs naive),
// query compilation, and end-to-end XPath execution.
//
// Two modes:
//   * default           — google-benchmark microbenchmarks.
//   * --json=<path>     — deterministic counter workloads (the fig15
//     identical-siblings mix, a fig16-style length sweep, and the table7
//     XMark queries) run against both the in-memory and the paged accessor;
//     wall clock + MatchStats totals are written as one JSON object per
//     line so shell tooling can grep instead of parsing. With
//     --baseline=<path> the run additionally compares itself against a
//     recorded BENCH_match.json and fails (exit 1) when
//     link_entries_read regresses by more than --guard_pct (default 10) or
//     the result set drifts (result_docs / terminals must match exactly).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "src/core/collection_index.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"
#include "src/gen/xmark.h"
#include "src/storage/paged_index.h"
#include "src/util/flags.h"
#include "src/util/timer.h"

namespace xseq {
namespace {

struct MatchCorpus {
  std::unique_ptr<CollectionIndex> idx;
  std::unique_ptr<SyntheticDataset> gen;
  std::vector<QuerySeq> queries;
  std::vector<QueryPattern> patterns;

  MatchCorpus() {
    SyntheticParams params;
    params.identical_percent = 20;
    IndexOptions opts;
    CollectionBuilder builder(opts);
    gen = std::make_unique<SyntheticDataset>(params, builder.names(),
                                             builder.values());
    for (DocId d = 0; d < 20000; ++d) {
      Status st = builder.Observe(gen->Generate(d));
      benchmark::DoNotOptimize(st.ok());
    }
    Status st = builder.BeginIndexing();
    benchmark::DoNotOptimize(st.ok());
    for (DocId d = 0; d < 20000; ++d) {
      st = builder.Index(gen->Generate(d));
      benchmark::DoNotOptimize(st.ok());
    }
    auto built = std::move(builder).Finish();
    idx = std::make_unique<CollectionIndex>(std::move(*built));

    Rng rng(3, 29);
    for (int i = 0; i < 64; ++i) {
      Document sample = gen->Generate(rng.Uniform(20000));
      patterns.push_back(
          SampleQueryPattern(sample, idx->names(), 5, &rng));
      auto compiled = idx->executor().Compile(patterns.back());
      if (compiled.ok()) {
        for (QuerySeq& qs : *compiled) queries.push_back(std::move(qs));
      }
    }
  }
};

MatchCorpus& GetCorpus() {
  static MatchCorpus* corpus = new MatchCorpus();
  return *corpus;
}

void BM_MatchSequence(benchmark::State& state, MatchMode mode) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = MatchSequence(c.idx->index(),
                              c.queries[i % c.queries.size()], mode, &out);
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_MatchSequence, constraint, MatchMode::kConstraint);
BENCHMARK_CAPTURE(BM_MatchSequence, naive, MatchMode::kNaive);

void BM_Compile(benchmark::State& state) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    auto compiled =
        c.idx->executor().Compile(c.patterns[i % c.patterns.size()]);
    benchmark::DoNotOptimize(compiled.ok());
    ++i;
  }
}
BENCHMARK(BM_Compile);

void BM_EndToEndXPath(benchmark::State& state) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    auto r = c.idx->executor().ExecutePattern(
        c.patterns[i % c.patterns.size()]);
    benchmark::DoNotOptimize(r.ok());
    ++i;
  }
}
BENCHMARK(BM_EndToEndXPath);

// ---------------------------------------------------------------------------
// --json counter workloads.

/// Totals of one (workload, accessor) cell.
struct CellResult {
  std::string name;
  std::string accessor;  // "memory" | "paged"
  size_t queries = 0;
  size_t sequences = 0;
  double wall_ms = 0.0;
  MatchStats stats;
  // Paged-only buffer-pool totals (0 for the in-memory accessor).
  uint64_t pool_fetches = 0;
  uint64_t pool_misses = 0;
  uint64_t pool_link_misses = 0;
};

/// One workload: an index plus the compiled sequences of its query mix.
struct Workload {
  std::string name;
  std::unique_ptr<CollectionIndex> idx;
  std::vector<std::vector<QuerySeq>> compiled;  // one entry per query
};

Workload MakeSyntheticWorkload(const std::string& name,
                               const SyntheticParams& params, DocId docs,
                               const std::vector<size_t>& lengths,
                               int queries_per_length, uint64_t rng_stream) {
  Workload w;
  w.name = name;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  SyntheticDataset gen(params, builder.names(), builder.values());
  w.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  Rng rng(params.seed, rng_stream);
  for (size_t len : lengths) {
    for (int q = 0; q < queries_per_length; ++q) {
      Document sample = gen.Generate(rng.Uniform(docs));
      QueryPattern pattern = SampleQueryPattern(sample, w.idx->names(), len,
                                                &rng, /*value_bias=*/0.4);
      auto compiled = w.idx->executor().Compile(pattern);
      if (compiled.ok() && !compiled->empty()) {
        w.compiled.push_back(std::move(*compiled));
      }
    }
  }
  return w;
}

Workload MakeXMarkWorkload(DocId docs) {
  Workload w;
  w.name = "table7_xmark";
  XMarkParams params;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  w.idx = std::make_unique<CollectionIndex>(bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, docs));
  const char* queries[3] = {
      "/site//item[location='United States']/mail/date[text='07/05/2000']",
      "/site//person/*/age[text='32']",
      "//closed_auction[seller/person='person11304']"
      "/date[text='12/15/1999']",
  };
  for (const char* q : queries) {
    auto pattern = ParseXPath(q);
    if (!pattern.ok()) continue;
    auto compiled = w.idx->executor().Compile(*pattern);
    if (compiled.ok() && !compiled->empty()) {
      w.compiled.push_back(std::move(*compiled));
    }
  }
  return w;
}

CellResult RunMemory(const Workload& w) {
  CellResult cell;
  cell.name = w.name;
  cell.accessor = "memory";
  cell.queries = w.compiled.size();
  Timer timer;
  for (const auto& seqs : w.compiled) {
    std::vector<DocId> out;
    for (const QuerySeq& qs : seqs) {
      ++cell.sequences;
      Status st = MatchSequence(w.idx->index(), qs, MatchMode::kConstraint,
                                &out, &cell.stats);
      if (!st.ok()) {
        std::fprintf(stderr, "match: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  }
  cell.wall_ms = timer.ElapsedMillis();
  return cell;
}

CellResult RunPaged(const Workload& w) {
  CellResult cell;
  cell.name = w.name;
  cell.accessor = "paged";
  cell.queries = w.compiled.size();
  PagedIndex paged = PagedIndex::Build(w.idx->index());
  BufferPool pool(&paged.file(), 1024);
  pool.SetRegionBoundary(paged.first_data_page());
  Timer timer;
  for (const auto& seqs : w.compiled) {
    // Cold per query, like the paper's per-query disk-access counts.
    pool.Clear();
    std::vector<DocId> out;
    for (const QuerySeq& qs : seqs) {
      ++cell.sequences;
      Status st = paged.Match(qs, MatchMode::kConstraint, &pool, &out,
                              &cell.stats);
      if (!st.ok()) {
        std::fprintf(stderr, "match: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
  }
  cell.wall_ms = timer.ElapsedMillis();
  cell.pool_fetches = pool.fetches();
  cell.pool_misses = pool.misses();
  cell.pool_link_misses = pool.link_misses();
  return cell;
}

void AppendCellJson(std::string* out, const CellResult& c) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"accessor\":\"%s\",\"queries\":%zu,"
      "\"sequences\":%zu,\"wall_ms\":%.3f,"
      "\"link_binary_searches\":%llu,\"link_entries_read\":%llu,"
      "\"link_gallop_probes\":%llu,"
      "\"candidates\":%llu,\"sibling_checks\":%llu,"
      "\"sibling_rejections\":%llu,\"terminals\":%llu,"
      "\"result_docs\":%llu,\"pool_fetches\":%llu,\"pool_misses\":%llu,"
      "\"pool_link_misses\":%llu}",
      c.name.c_str(), c.accessor.c_str(), c.queries, c.sequences, c.wall_ms,
      static_cast<unsigned long long>(c.stats.link_binary_searches),
      static_cast<unsigned long long>(c.stats.link_entries_read),
      static_cast<unsigned long long>(c.stats.link_gallop_probes),
      static_cast<unsigned long long>(c.stats.candidates),
      static_cast<unsigned long long>(c.stats.sibling_checks),
      static_cast<unsigned long long>(c.stats.sibling_rejections),
      static_cast<unsigned long long>(c.stats.terminals),
      static_cast<unsigned long long>(c.stats.result_docs),
      static_cast<unsigned long long>(c.pool_fetches),
      static_cast<unsigned long long>(c.pool_misses),
      static_cast<unsigned long long>(c.pool_link_misses));
  out->append(buf);
}

/// Pulls the integer field `key` out of the one-line JSON object `line`.
/// Returns false when absent (older baselines may lack newer fields).
bool ExtractField(const std::string& line, const std::string& key,
                  uint64_t* value) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *value = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
  return true;
}

/// Compares this run's cells against a recorded BENCH_match.json. Every
/// (name, accessor) cell present in the baseline must exist, produce the
/// identical result set, and stay within `guard_pct` of its recorded
/// link_entries_read. Returns the number of violations.
int CheckAgainstBaseline(const std::vector<CellResult>& cells,
                         const std::string& baseline_path, double guard_pct) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  int violations = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"name\":") == std::string::npos) continue;
    const CellResult* match = nullptr;
    for (const CellResult& c : cells) {
      if (line.find("\"name\":\"" + c.name + "\"") != std::string::npos &&
          line.find("\"accessor\":\"" + c.accessor + "\"") !=
              std::string::npos) {
        match = &c;
        break;
      }
    }
    if (match == nullptr) {
      std::fprintf(stderr, "GUARD: baseline cell missing from this run: %s\n",
                   line.c_str());
      ++violations;
      continue;
    }
    uint64_t base_reads = 0, base_docs = 0, base_terminals = 0;
    if (!ExtractField(line, "link_entries_read", &base_reads) ||
        !ExtractField(line, "result_docs", &base_docs) ||
        !ExtractField(line, "terminals", &base_terminals)) {
      std::fprintf(stderr, "GUARD: malformed baseline line: %s\n",
                   line.c_str());
      ++violations;
      continue;
    }
    if (match->stats.result_docs != base_docs ||
        match->stats.terminals != base_terminals) {
      std::fprintf(stderr,
                   "GUARD: %s/%s result drift: result_docs %llu vs %llu, "
                   "terminals %llu vs %llu\n",
                   match->name.c_str(), match->accessor.c_str(),
                   static_cast<unsigned long long>(match->stats.result_docs),
                   static_cast<unsigned long long>(base_docs),
                   static_cast<unsigned long long>(match->stats.terminals),
                   static_cast<unsigned long long>(base_terminals));
      ++violations;
    }
    double limit =
        static_cast<double>(base_reads) * (1.0 + guard_pct / 100.0);
    if (static_cast<double>(match->stats.link_entries_read) > limit) {
      std::fprintf(
          stderr,
          "GUARD: %s/%s link_entries_read %llu exceeds baseline %llu "
          "by more than %.0f%%\n",
          match->name.c_str(), match->accessor.c_str(),
          static_cast<unsigned long long>(match->stats.link_entries_read),
          static_cast<unsigned long long>(base_reads), guard_pct);
      ++violations;
    }
  }
  return violations;
}

int RunJsonMode(const FlagSet& flags) {
  // Sizes are smoke-scale: the counters are machine-independent, so small
  // deterministic corpora are enough to catch algorithmic regressions.
  DocId docs = static_cast<DocId>(flags.GetInt("docs", 4000));

  std::vector<Workload> workloads;
  {
    // fig15 mix: heavy identical siblings — the sibling-cover stress case.
    SyntheticParams params;
    params.identical_percent = 80;
    params.value_percent = 25;
    workloads.push_back(MakeSyntheticWorkload(
        "fig15_identical_siblings", params, docs, {5}, 48,
        /*rng_stream=*/29));
  }
  {
    // fig16 mix: query-length sweep on a mildly nested corpus.
    SyntheticParams params;
    params.identical_percent = 20;
    workloads.push_back(MakeSyntheticWorkload("fig16_query_lengths", params,
                                              docs, {2, 3, 4, 5, 6, 7, 8},
                                              8, /*rng_stream=*/11));
  }
  workloads.push_back(MakeXMarkWorkload(docs));

  std::vector<CellResult> cells;
  for (const Workload& w : workloads) {
    cells.push_back(RunMemory(w));
    cells.push_back(RunPaged(w));
  }

  std::string json = "{\"bench\":\"micro_match\",\"docs\":" +
                     std::to_string(docs) + ",\"cells\":[\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    AppendCellJson(&json, cells[i]);
    json += i + 1 < cells.size() ? ",\n" : "\n";
  }
  json += "]}\n";

  std::string path = flags.GetString("json", "BENCH_match.json");
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << json;
  out.close();
  std::fprintf(stderr, "wrote %s (%zu cells)\n", path.c_str(), cells.size());

  if (flags.Has("baseline")) {
    double guard_pct = flags.GetDouble("guard_pct", 10.0);
    int violations = CheckAgainstBaseline(
        cells, flags.GetString("baseline", ""), guard_pct);
    if (violations > 0) {
      std::fprintf(stderr, "GUARD: %d violation(s)\n", violations);
      return 1;
    }
    std::fprintf(stderr, "GUARD: ok (within %.0f%% of baseline)\n",
                 guard_pct);
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  if (flags.Has("json")) {
    return xseq::RunJsonMode(flags);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
