// Microbenchmarks: Algorithm 1 subsequence matching (constraint vs naive),
// query compilation, and end-to-end XPath execution.

#include <benchmark/benchmark.h>

#include "src/core/collection_index.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"

namespace xseq {
namespace {

struct MatchCorpus {
  std::unique_ptr<CollectionIndex> idx;
  std::unique_ptr<SyntheticDataset> gen;
  std::vector<QuerySeq> queries;
  std::vector<QueryPattern> patterns;

  MatchCorpus() {
    SyntheticParams params;
    params.identical_percent = 20;
    IndexOptions opts;
    CollectionBuilder builder(opts);
    gen = std::make_unique<SyntheticDataset>(params, builder.names(),
                                             builder.values());
    for (DocId d = 0; d < 20000; ++d) {
      Status st = builder.Observe(gen->Generate(d));
      benchmark::DoNotOptimize(st.ok());
    }
    Status st = builder.BeginIndexing();
    benchmark::DoNotOptimize(st.ok());
    for (DocId d = 0; d < 20000; ++d) {
      st = builder.Index(gen->Generate(d));
      benchmark::DoNotOptimize(st.ok());
    }
    auto built = std::move(builder).Finish();
    idx = std::make_unique<CollectionIndex>(std::move(*built));

    Rng rng(3, 29);
    for (int i = 0; i < 64; ++i) {
      Document sample = gen->Generate(rng.Uniform(20000));
      patterns.push_back(
          SampleQueryPattern(sample, idx->names(), 5, &rng));
      auto compiled = idx->executor().Compile(patterns.back());
      if (compiled.ok()) {
        for (QuerySeq& qs : *compiled) queries.push_back(std::move(qs));
      }
    }
  }
};

MatchCorpus& GetCorpus() {
  static MatchCorpus* corpus = new MatchCorpus();
  return *corpus;
}

void BM_MatchSequence(benchmark::State& state, MatchMode mode) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = MatchSequence(c.idx->index(),
                              c.queries[i % c.queries.size()], mode, &out);
    benchmark::DoNotOptimize(st.ok());
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
}
BENCHMARK_CAPTURE(BM_MatchSequence, constraint, MatchMode::kConstraint);
BENCHMARK_CAPTURE(BM_MatchSequence, naive, MatchMode::kNaive);

void BM_Compile(benchmark::State& state) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    auto compiled =
        c.idx->executor().Compile(c.patterns[i % c.patterns.size()]);
    benchmark::DoNotOptimize(compiled.ok());
    ++i;
  }
}
BENCHMARK(BM_Compile);

void BM_EndToEndXPath(benchmark::State& state) {
  MatchCorpus& c = GetCorpus();
  size_t i = 0;
  for (auto _ : state) {
    auto r = c.idx->executor().ExecutePattern(
        c.patterns[i % c.patterns.size()]);
    benchmark::DoNotOptimize(r.ok());
    ++i;
  }
}
BENCHMARK(BM_EndToEndXPath);

}  // namespace
}  // namespace xseq

BENCHMARK_MAIN();
