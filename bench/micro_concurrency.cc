// Concurrency scaling harness: build time and batch-query throughput on
// XMark-like data at 1/2/4/8 threads. Emits one JSON line per thread
// configuration (machine-readable scaling record) in addition to the
// human-readable table.
//
//   micro_concurrency [--n=N] [--scale=f] [--queries=Q] [--seed=S]
//                     [--out=bench/BENCH_concurrency.json]
//
// Parallel builds are bit-identical to serial ones, so every config also
// cross-checks its index node count against the threads=1 baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"
#include "src/util/thread_pool.h"

namespace xseq {
namespace {

int Run(const FlagSet& flags) {
  const DocId n = bench::Scaled(flags, 20000, 100000);
  const int query_rounds = flags.GetInt("queries", 8);
  const std::string out_path =
      flags.GetString("out", "bench/BENCH_concurrency.json");

  XMarkParams params;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // A mixed batch: value-selective, wildcard and '//' queries (the Table 7
  // shapes), replicated to make one QueryBatch call big enough to spread.
  const char* shapes[4] = {
      "/site//item[location='United States']/mail/date[text='07/05/2000']",
      "/site//person/*/age[text='32']",
      "//closed_auction[seller/person='person11304']/date[text='12/15/1999']",
      "/site//person/name",
  };
  std::vector<std::string> batch;
  for (int r = 0; r < query_rounds; ++r) {
    for (const char* q : shapes) batch.push_back(q);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }

  bench::Header("concurrency scaling on XMark (" + std::to_string(n) +
                " records, " + std::to_string(batch.size()) +
                " queries/batch, hardware threads: " +
                std::to_string(ResolveThreadCount(0)) + ")");
  std::printf("%8s %14s %14s %16s %12s\n", "threads", "build (s)",
              "batch (ms)", "queries/s", "index nodes");

  uint64_t baseline_nodes = 0;
  double base_build = 0.0;
  double base_qps = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    IndexOptions opts;
    opts.threads = threads;
    CollectionBuilder builder(opts);
    XMarkGenerator gen(params, builder.names(), builder.values());
    Timer build_timer;
    CollectionIndex idx = bench::BuildStreaming(
        &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
    const double build_s = build_timer.ElapsedSeconds();
    const uint64_t nodes = idx.Stats().trie_nodes;
    if (threads == 1) baseline_nodes = nodes;
    if (nodes != baseline_nodes) {
      std::fprintf(stderr,
                   "FATAL: threads=%d built %llu nodes, serial built %llu\n",
                   threads, static_cast<unsigned long long>(nodes),
                   static_cast<unsigned long long>(baseline_nodes));
      return 1;
    }

    // Warm once, then time the batch entry point.
    (void)idx.QueryBatch(batch, ExecOptions(), threads);
    Timer query_timer;
    auto results = idx.QueryBatch(batch, ExecOptions(), threads);
    const double batch_ms = query_timer.ElapsedMillis();
    size_t failed = 0;
    for (const auto& r : results) {
      if (!r.ok()) ++failed;
    }
    if (failed != 0) {
      std::fprintf(stderr, "FATAL: %zu queries failed\n", failed);
      return 1;
    }
    const double qps =
        batch_ms <= 0.0
            ? 0.0
            : static_cast<double>(batch.size()) / (batch_ms / 1000.0);
    if (threads == 1) {
      base_build = build_s;
      base_qps = qps;
    }

    std::printf("%8d %14.3f %14.3f %16.0f %12llu\n", threads, build_s,
                batch_ms, qps, static_cast<unsigned long long>(nodes));
    std::fprintf(
        out,
        "{\"bench\": \"concurrency\", \"dataset\": \"xmark\", "
        "\"records\": %llu, \"threads\": %d, \"build_seconds\": %.6f, "
        "\"batch_queries\": %zu, \"batch_millis\": %.6f, "
        "\"queries_per_second\": %.1f, \"build_speedup\": %.3f, "
        "\"query_speedup\": %.3f, \"index_nodes\": %llu}\n",
        static_cast<unsigned long long>(n), threads, build_s, batch.size(),
        batch_ms, qps, base_build > 0.0 ? base_build / build_s : 0.0,
        base_qps > 0.0 ? qps / base_qps : 0.0,
        static_cast<unsigned long long>(nodes));
  }
  std::fclose(out);
  bench::Note("wrote " + out_path);
  bench::Note("speedups are relative to threads=1 on this machine; with a "
              "single hardware core all configs time alike.");
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
