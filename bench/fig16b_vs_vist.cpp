// Figure 16(b): constraint sequencing (CS) vs a ViST-like engine
// (depth-first sequencing + naive subsequence matching + per-document
// false-alarm cleanup) as query length grows. Dataset L3 F5 A25 I10 P40,
// paper: 1 million records.
//
// Expected shape: ViST's time grows much faster with query length (larger
// DF index + cleanup of naive candidates); CS stays low.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/vist.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 100000, 1000000);
  int queries = static_cast<int>(flags.GetInt("queries", 50));

  SyntheticParams params;
  params.identical_percent = 10;
  params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  // CS index.
  IndexOptions cs_opts;
  CollectionBuilder cs_builder(cs_opts);
  SyntheticDataset cs_gen(params, cs_builder.names(), cs_builder.values());
  CollectionIndex cs_idx = bench::BuildStreaming(
      &cs_builder, [&cs_gen](DocId d) { return cs_gen.Generate(d); }, n);

  // ViST-like index: depth-first sequences over the same data.
  IndexOptions df_opts;
  df_opts.sequencer = SequencerKind::kDepthFirst;
  CollectionBuilder df_builder(df_opts);
  SyntheticDataset df_gen(params, df_builder.names(), df_builder.values());
  CollectionIndex df_idx = bench::BuildStreaming(
      &df_builder, [&df_gen](DocId d) { return df_gen.Generate(d); }, n);
  VistBaseline vist(&df_idx,
                    [&df_gen](DocId d) { return df_gen.Generate(d); });

  bench::Header("Figure 16(b)  CS vs ViST-like, query time vs query length "
                "(" + std::to_string(n) + " records)");
  std::printf("%8s %14s %14s %12s %16s\n", "length", "CS (us)",
              "ViST (us)", "ViST/CS", "naive cands/q");
  std::printf("  index nodes: CS %llu, DF %llu\n",
              static_cast<unsigned long long>(cs_idx.Stats().trie_nodes),
              static_cast<unsigned long long>(df_idx.Stats().trie_nodes));

  for (size_t len : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Rng rng(13, 17);
    uint64_t cs_us = 0, vist_us = 0, cands = 0;
    for (int q = 0; q < queries; ++q) {
      Document sample = cs_gen.Generate(rng.Uniform(n));
      QueryPattern pattern =
          SampleQueryPattern(sample, cs_idx.names(), len, &rng, 0.6);

      Timer t1;
      auto rc = cs_idx.executor().ExecutePattern(pattern);
      if (!rc.ok()) return 1;
      cs_us += static_cast<uint64_t>(t1.ElapsedMicros());

      Timer t2;
      VistStats vs;
      auto rv = vist.Query(pattern, &vs);
      if (!rv.ok()) return 1;
      vist_us += static_cast<uint64_t>(t2.ElapsedMicros());
      cands += vs.candidates;

      if (*rc != *rv) {
        std::fprintf(stderr, "CS and ViST disagree on %s\n",
                     pattern.source.c_str());
        return 1;
      }
    }
    std::printf("%8zu %14.1f %14.1f %12.2f %16.1f\n", len,
                static_cast<double>(cs_us) / queries,
                static_cast<double>(vist_us) / queries,
                cs_us == 0 ? 0.0
                           : static_cast<double>(vist_us) /
                                 static_cast<double>(cs_us),
                static_cast<double>(cands) / queries);
  }
  bench::Note("paper shape: ViST grows steeply with query length; CS stays "
              "low (paper plots ~2-14 ms CS vs up to seconds for ViST)");
  return 0;
}
