// Microbenchmarks: index persistence — encode/decode CPU cost, integrity
// inspection, and the crash-safe save/load path (temp write + fsync +
// rename) including the Env indirection.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/core/persist.h"
#include "src/gen/xmark.h"
#include "src/util/env.h"

namespace xseq {
namespace {

std::unique_ptr<CollectionIndex> BuildCorpus(DocId docs) {
  XMarkParams params;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  for (DocId d = 0; d < docs; ++d) {
    benchmark::DoNotOptimize(builder.Observe(gen.Generate(d)).ok());
  }
  benchmark::DoNotOptimize(builder.BeginIndexing().ok());
  for (DocId d = 0; d < docs; ++d) {
    benchmark::DoNotOptimize(builder.Index(gen.Generate(d)).ok());
  }
  auto built = std::move(builder).Finish();
  return std::make_unique<CollectionIndex>(std::move(*built));
}

void BM_EncodeIndex(benchmark::State& state) {
  auto idx = BuildCorpus(static_cast<DocId>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string data = EncodeCollectionIndex(*idx);
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_EncodeIndex)->Arg(1000)->Arg(10000);

void BM_DecodeIndex(benchmark::State& state) {
  auto idx = BuildCorpus(static_cast<DocId>(state.range(0)));
  std::string data = EncodeCollectionIndex(*idx);
  for (auto _ : state) {
    auto loaded = DecodeCollectionIndex(data);
    benchmark::DoNotOptimize(loaded.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_DecodeIndex)->Arg(1000)->Arg(10000);

void BM_InspectIndex(benchmark::State& state) {
  auto idx = BuildCorpus(static_cast<DocId>(state.range(0)));
  std::string data = EncodeCollectionIndex(*idx);
  for (auto _ : state) {
    IndexFileReport report = InspectEncodedIndex(data);
    benchmark::DoNotOptimize(report.status.ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_InspectIndex)->Arg(10000);

void BM_SaveAtomic(benchmark::State& state) {
  auto idx = BuildCorpus(static_cast<DocId>(state.range(0)));
  std::string path = "/tmp/xseq_bench_persist.idx";
  size_t bytes = EncodeCollectionIndex(*idx).size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SaveCollectionIndex(*idx, path).ok());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  std::remove(path.c_str());
}
BENCHMARK(BM_SaveAtomic)->Arg(1000)->Arg(10000);

void BM_LoadIndex(benchmark::State& state) {
  auto idx = BuildCorpus(static_cast<DocId>(state.range(0)));
  std::string path = "/tmp/xseq_bench_persist.idx";
  if (!SaveCollectionIndex(*idx, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    auto loaded = LoadCollectionIndex(path);
    benchmark::DoNotOptimize(loaded.ok());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_LoadIndex)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace xseq

BENCHMARK_MAIN();
