// Ablation (Impact 2 / Eq. 6): does boosting the weight of a frequently
// queried, highly selective path shrink the search space?
//
// Setup mirrors the paper's example: queries end in a selective value under
// a common structural prefix (…/profile/age[text=V]). We compare candidates
// expanded and query time with w(age)=1 vs w(age)=64.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/xmark.h"

namespace xseq {
namespace {

CollectionIndex BuildWeighted(DocId n, uint64_t seed, double weight) {
  XMarkParams params;
  params.seed = seed;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  XMarkGenerator gen(params, builder.names(), builder.values());
  for (DocId d = 0; d < n; ++d) {
    Status st = builder.Observe(gen.Generate(d));
    if (!st.ok()) std::abort();
  }
  if (weight != 1.0) {
    // Boost the whole selective branch: profile, age and age's values —
    // the paper's "make elements such as p4 appear earlier".
    Status st = builder.BoostPath("/site/people/person/profile", weight);
    if (!st.ok()) std::abort();
    st = builder.BoostValuesUnder("/site/people/person/profile/age",
                                  weight);
    if (!st.ok()) std::abort();
  }
  if (!builder.BeginIndexing().ok()) std::abort();
  for (DocId d = 0; d < n; ++d) {
    Status st = builder.Index(gen.Generate(d));
    if (!st.ok()) std::abort();
  }
  auto idx = std::move(builder).Finish();
  if (!idx.ok()) std::abort();
  return std::move(*idx);
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 40000, 160000);
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  bench::Header("Ablation: query-weight tuning (Impact 2), " +
                std::to_string(n) + " XMark records");
  std::printf("%-10s %14s %14s %14s %10s\n", "w(age)", "index nodes",
              "candidates", "time (us)", "results");

  // Branching queries: a broad structural branch plus the selective age
  // predicate — ordering freedom is what the weight exploits (a pure path
  // query has none).
  const char* kQueries[] = {
      "/site//person[profile/age='32']/address/city",
      "/site//person[profile/age='47']/emailaddress",
      "/site//person[profile/age='21']/name",
  };

  for (double w : {1.0, 64.0}) {
    CollectionIndex idx = BuildWeighted(n, seed, w);
    uint64_t candidates = 0, us = 0, results = 0;
    for (const char* q : kQueries) {
      Timer t;
      auto r = idx.Query(q);
      if (!r.ok()) return 1;
      us += static_cast<uint64_t>(t.ElapsedMicros());
      candidates += r->stats.match.candidates;
      results += r->docs.size();
    }
    std::printf("%-10.0f %14llu %14llu %14.1f %10llu\n", w,
                static_cast<unsigned long long>(idx.Stats().trie_nodes),
                static_cast<unsigned long long>(candidates),
                static_cast<double>(us) / 3.0,
                static_cast<unsigned long long>(results));
  }
  bench::Note("expected: boosting the selective age path cuts candidates "
              "(it is checked before the broad structural prefix) at a "
              "modest index-size cost");
  return 0;
}
