// Value-index harness: range-predicate latency against the ordered value
// index vs a brute-force document scan, across three selectivities, plus
// mutation throughput on the dynamic backend.
//
//   micro_vindex [--n=N] [--scale=f] [--reps=R] [--seed=S]
//                [--min_speedup=X] [--out=bench/BENCH_vindex.json]
//
// The corpus is N `item(price, label)` records with integer prices uniform
// in [0, 100000), so `/item[price < 100]` selects ~0.1% of the documents,
// `< 1000` ~1%, and `< 10000` ~10%. The brute scan answers the same full
// query per document — structural oracle plus comparison check, the
// DynamicIndex::ScanDocs shape — which is the engine's only option without
// the ordered postings. Pattern instantiation is hoisted out of the timed
// region, so the scan numbers are a floor on the real brute cost.
//
// Gate: at the 1% selectivity the value-index path must be at least
// --min_speedup times faster than the brute scan (default 10x); a
// violation exits 1. Emits bench/BENCH_vindex.json:
// {..., "vindex_us_low", "scan_us_low", "speedup_low", "vindex_us_mid",
// "scan_us_mid", "speedup_mid", "vindex_us_high", "scan_us_high",
// "speedup_high", "mutations_per_sec"} — schema-checked by
// scripts/bench_smoke.sh.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/collection_index.h"
#include "src/core/dynamic_index.h"
#include "src/query/instantiate.h"
#include "src/query/oracle.h"
#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/vindex/compare.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {
namespace {

Document MakeItem(DocId id, uint32_t price, NameTable* names,
                  ValueEncoder* values, std::mt19937* rng) {
  Document doc(id);
  Node* root = doc.CreateElement(names->Intern("item"));
  Node* p = doc.CreateElement(names->Intern("price"));
  const std::string text = std::to_string(price);
  doc.AppendChild(p, doc.CreateValue(values->Encode(text), text));
  doc.AppendChild(root, p);
  Node* l = doc.CreateElement(names->Intern("label"));
  const std::string label = "label" + std::to_string((*rng)() % 997);
  doc.AppendChild(l, doc.CreateValue(values->Encode(label), label));
  doc.AppendChild(root, l);
  doc.SetRoot(root);
  return doc;
}

struct Selectivity {
  const char* key;    ///< JSON suffix
  const char* xpath;  ///< the range query
  double expected;    ///< fraction of docs selected, for the report
};

int Run(const FlagSet& flags) {
  const DocId n = static_cast<DocId>(flags.GetInt(
      "n", static_cast<int64_t>(bench::Scaled(flags, 20000, 100000))));
  const int reps = static_cast<int>(flags.GetInt("reps", 25));
  const double min_speedup = flags.GetDouble("min_speedup", 10.0);
  const std::string out_path =
      flags.GetString("out", "bench/BENCH_vindex.json");
  std::mt19937 rng(static_cast<uint32_t>(flags.GetInt("seed", 99)));

  bench::Header("value index: " + std::to_string(n) +
                " item records, 3 selectivities, " + std::to_string(reps) +
                " reps");

  IndexOptions opts;
  opts.keep_documents = true;  // the brute scan needs the originals
  CollectionBuilder builder(opts);
  for (DocId d = 0; d < n; ++d) {
    Document doc = MakeItem(d, rng() % 100000u, builder.names(),
                            builder.values(), &rng);
    if (!builder.Add(std::move(doc)).ok()) {
      std::fprintf(stderr, "add failed\n");
      return 1;
    }
  }
  auto built = std::move(builder).Finish();
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  CollectionIndex index = std::move(*built);

  const Selectivity kSelectivities[3] = {
      {"low", "/item[price < 100]", 0.001},
      {"mid", "/item[price < 1000]", 0.01},
      {"high", "/item[price < 10000]", 0.1},
  };

  double vindex_us[3] = {0, 0, 0};
  double scan_us[3] = {0, 0, 0};
  double speedup[3] = {0, 0, 0};
  for (int s = 0; s < 3; ++s) {
    const Selectivity& sel = kSelectivities[s];
    auto pattern = ParseXPath(sel.xpath);
    if (!pattern.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", sel.xpath,
                   pattern.status().ToString().c_str());
      return 1;
    }
    std::vector<ValueComparison> cmps;
    QueryPattern skeleton = StripComparisons(*pattern, &cmps);

    // Value-index path: the full query through the executor. Score is the
    // minimum over reps (robust against host noise).
    std::vector<DocId> vindex_answer;
    double best_vindex = 0.0;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      auto result = index.Query(sel.xpath);
      const double us = timer.ElapsedSeconds() * 1e6;
      if (!result.ok()) {
        std::fprintf(stderr, "query %s: %s\n", sel.xpath,
                     result.status().ToString().c_str());
        return 1;
      }
      if (r == 0 || us < best_vindex) best_vindex = us;
      vindex_answer = std::move(result->docs);
    }

    // Brute scan: the full query answered per document — structural oracle
    // then comparison check, as DynamicIndex::ScanDocs does for unsealed
    // buffers. The instantiated skeleton is reused across reps, so only
    // the per-document work is on the clock.
    PathDict dict;
    for (const Document& doc : index.documents()) BindPaths(doc, &dict);
    auto inst =
        InstantiatePattern(skeleton, dict, index.names(), index.values());
    if (!inst.ok()) {
      std::fprintf(stderr, "instantiate %s: %s\n", sel.xpath,
                   inst.status().ToString().c_str());
      return 1;
    }
    std::vector<DocId> scan_answer;
    double best_scan = 0.0;
    for (int r = 0; r < reps; ++r) {
      Timer timer;
      std::vector<DocId> part;
      for (const ConcreteQuery& cq : inst->queries) {
        std::vector<DocId> one = OracleScan(index.documents(), cq);
        part.insert(part.end(), one.begin(), one.end());
      }
      std::sort(part.begin(), part.end());
      part.erase(std::unique(part.begin(), part.end()), part.end());
      std::vector<DocId> kept;
      for (DocId d : part) {
        if (DocMatchesComparisons(index.documents()[d], index.names(),
                                  cmps)) {
          kept.push_back(d);
        }
      }
      const double us = timer.ElapsedSeconds() * 1e6;
      if (r == 0 || us < best_scan) best_scan = us;
      scan_answer = std::move(kept);
    }

    if (vindex_answer != scan_answer) {
      std::fprintf(stderr,
                   "FAIL: %s — value index answered %zu docs, brute scan "
                   "%zu\n",
                   sel.xpath, vindex_answer.size(), scan_answer.size());
      return 1;
    }
    vindex_us[s] = best_vindex;
    scan_us[s] = best_scan;
    speedup[s] = best_vindex > 0 ? best_scan / best_vindex : 0.0;
    std::printf("%-28s %9.1f us vindex  %9.1f us scan  %7.1fx  (%zu docs,"
                " ~%.1f%%)\n",
                sel.xpath, best_vindex, best_scan, speedup[s],
                vindex_answer.size(), 100.0 * sel.expected);
  }

  // Mutation throughput on the dynamic backend: 60% adds, 20% deletes,
  // 20% updates against a pre-seeded corpus, serial pool so every seal is
  // counted in the wall clock.
  DynamicOptions dopts;
  dopts.index.threads = 1;
  dopts.flush_threshold = 512;
  DynamicIndex dyn(dopts);
  const DocId seeded = n / 10 + 1;
  for (DocId d = 0; d < seeded; ++d) {
    Document doc =
        MakeItem(d, rng() % 100000u, dyn.names(), dyn.values(), &rng);
    if (!dyn.Add(std::move(doc)).ok()) {
      std::fprintf(stderr, "seed add failed\n");
      return 1;
    }
  }
  const uint64_t ops = seeded * 2;
  DocId next_id = seeded;
  Timer mutation_wall;
  for (uint64_t i = 0; i < ops; ++i) {
    const uint32_t roll = rng() % 10;
    Status st;
    if (roll < 6) {
      const DocId id = next_id++;
      st = dyn.Add(
          MakeItem(id, rng() % 100000u, dyn.names(), dyn.values(), &rng));
    } else if (roll < 8) {
      st = dyn.Delete(rng() % next_id);
    } else {
      const DocId id = rng() % next_id;
      st = dyn.Update(
          MakeItem(id, rng() % 100000u, dyn.names(), dyn.values(), &rng),
          id);
    }
    if (!st.ok()) {
      std::fprintf(stderr, "mutation %llu: %s\n",
                   static_cast<unsigned long long>(i),
                   st.ToString().c_str());
      return 1;
    }
  }
  const double mutation_secs = mutation_wall.ElapsedSeconds();
  const double mutations_per_sec =
      mutation_secs > 0 ? static_cast<double>(ops) / mutation_secs : 0.0;
  std::printf("%-28s %10.0f ops/sec (%llu mutations)\n",
              "dynamic mutations:", mutations_per_sec,
              static_cast<unsigned long long>(ops));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(
      out,
      "{\"bench\":\"vindex\",\"n\":%llu,\"reps\":%d,"
      "\"vindex_us_low\":%.1f,\"scan_us_low\":%.1f,\"speedup_low\":%.1f,"
      "\"vindex_us_mid\":%.1f,\"scan_us_mid\":%.1f,\"speedup_mid\":%.1f,"
      "\"vindex_us_high\":%.1f,\"scan_us_high\":%.1f,"
      "\"speedup_high\":%.1f,\"mutations_per_sec\":%.0f}\n",
      static_cast<unsigned long long>(n), reps, vindex_us[0], scan_us[0],
      speedup[0], vindex_us[1], scan_us[1], speedup[1], vindex_us[2],
      scan_us[2], speedup[2], mutations_per_sec);
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (speedup[1] < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: value index %.1fx over brute scan at 1%% "
                 "selectivity, below the %.1fx gate\n",
                 speedup[1], min_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  xseq::FlagSet flags(argc, argv);
  return xseq::Run(flags);
}
