// Microbenchmarks: paged-index matching and buffer-pool mechanics.

#include <benchmark/benchmark.h>

#include "src/core/collection_index.h"
#include "src/gen/querygen.h"
#include "src/gen/xmark.h"
#include "src/storage/paged_index.h"

namespace xseq {
namespace {

struct PagedCorpus {
  std::unique_ptr<CollectionIndex> idx;
  std::unique_ptr<PagedIndex> paged;
  std::vector<QuerySeq> queries;

  PagedCorpus() {
    XMarkParams params;
    IndexOptions opts;
    CollectionBuilder builder(opts);
    XMarkGenerator gen(params, builder.names(), builder.values());
    for (DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(builder.Observe(gen.Generate(d)).ok());
    }
    benchmark::DoNotOptimize(builder.BeginIndexing().ok());
    for (DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(builder.Index(gen.Generate(d)).ok());
    }
    auto built = std::move(builder).Finish();
    idx = std::make_unique<CollectionIndex>(std::move(*built));
    paged = std::make_unique<PagedIndex>(PagedIndex::Build(idx->index()));

    Rng rng(3, 41);
    for (int i = 0; i < 32; ++i) {
      Document sample = gen.Generate(rng.Uniform(10000));
      QueryPattern pattern =
          SampleQueryPattern(sample, idx->names(), 6, &rng, 0.5);
      auto compiled = idx->executor().Compile(pattern);
      if (compiled.ok()) {
        for (QuerySeq& qs : *compiled) queries.push_back(std::move(qs));
      }
    }
  }
};

PagedCorpus& GetCorpus() {
  static PagedCorpus* corpus = new PagedCorpus();
  return *corpus;
}

void BM_PagedMatchColdPool(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    BufferPool pool(&c.paged->file(), 1024);  // cold each iteration
    out.clear();
    Status st = c.paged->Match(c.queries[i % c.queries.size()],
                               MatchMode::kConstraint, &pool, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_PagedMatchColdPool);

void BM_PagedMatchWarmPool(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  BufferPool pool(&c.paged->file(), 1 << 16);  // effectively everything
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = c.paged->Match(c.queries[i % c.queries.size()],
                               MatchMode::kConstraint, &pool, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_PagedMatchWarmPool);

void BM_InMemoryMatchReference(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = MatchSequence(c.idx->index(),
                              c.queries[i % c.queries.size()],
                              MatchMode::kConstraint, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_InMemoryMatchReference);

void BM_BufferPoolFetch(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  BufferPool pool(&c.paged->file(), 64);
  Rng rng(5, 3);
  uint32_t n = c.paged->total_pages();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Fetch(rng.Uniform(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferPoolFetch);

void BM_PagedBuild(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  for (auto _ : state) {
    PagedIndex p = PagedIndex::Build(c.idx->index());
    benchmark::DoNotOptimize(p.total_pages());
  }
}
BENCHMARK(BM_PagedBuild);

}  // namespace
}  // namespace xseq

BENCHMARK_MAIN();
