// Microbenchmarks: paged-index matching and buffer-pool mechanics.
//
//   micro_paged [gbench flags]        # the usual benchmark run
//   micro_paged --json=PATH           # layout/pool report + density gate
//
// The --json mode skips the timed benchmarks and instead emits the paged
// layout's link density (entries per link-region page) and the warm
// buffer-pool hit rate of the query mix, then exits nonzero on gate
// violation. The density gate compares against the pre-compression
// layout, which spent 12 bytes per entry across its flat (serial, end)
// pair region and its separate cover region — both subsumed by the
// compressed blocks — i.e. 341.3 entries per page; the compressed layout
// must strictly beat that on the same corpus.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/collection_index.h"
#include "src/gen/querygen.h"
#include "src/gen/xmark.h"
#include "src/storage/paged_index.h"

namespace xseq {
namespace {

struct PagedCorpus {
  std::unique_ptr<CollectionIndex> idx;
  std::unique_ptr<PagedIndex> paged;
  std::vector<QuerySeq> queries;

  PagedCorpus() {
    XMarkParams params;
    IndexOptions opts;
    CollectionBuilder builder(opts);
    XMarkGenerator gen(params, builder.names(), builder.values());
    for (DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(builder.Observe(gen.Generate(d)).ok());
    }
    benchmark::DoNotOptimize(builder.BeginIndexing().ok());
    for (DocId d = 0; d < 10000; ++d) {
      benchmark::DoNotOptimize(builder.Index(gen.Generate(d)).ok());
    }
    auto built = std::move(builder).Finish();
    idx = std::make_unique<CollectionIndex>(std::move(*built));
    paged = std::make_unique<PagedIndex>(PagedIndex::Build(idx->index()));

    Rng rng(3, 41);
    for (int i = 0; i < 32; ++i) {
      Document sample = gen.Generate(rng.Uniform(10000));
      QueryPattern pattern =
          SampleQueryPattern(sample, idx->names(), 6, &rng, 0.5);
      auto compiled = idx->executor().Compile(pattern);
      if (compiled.ok()) {
        for (QuerySeq& qs : *compiled) queries.push_back(std::move(qs));
      }
    }
  }
};

PagedCorpus& GetCorpus() {
  static PagedCorpus* corpus = new PagedCorpus();
  return *corpus;
}

void BM_PagedMatchColdPool(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    BufferPool pool(&c.paged->file(), 1024);  // cold each iteration
    out.clear();
    Status st = c.paged->Match(c.queries[i % c.queries.size()],
                               MatchMode::kConstraint, &pool, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_PagedMatchColdPool);

void BM_PagedMatchWarmPool(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  BufferPool pool(&c.paged->file(), 1 << 16);  // effectively everything
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = c.paged->Match(c.queries[i % c.queries.size()],
                               MatchMode::kConstraint, &pool, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_PagedMatchWarmPool);

void BM_InMemoryMatchReference(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  size_t i = 0;
  std::vector<DocId> out;
  for (auto _ : state) {
    out.clear();
    Status st = MatchSequence(c.idx->index(),
                              c.queries[i % c.queries.size()],
                              MatchMode::kConstraint, &out);
    benchmark::DoNotOptimize(st.ok());
    ++i;
  }
}
BENCHMARK(BM_InMemoryMatchReference);

void BM_BufferPoolFetch(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  BufferPool pool(&c.paged->file(), 64);
  Rng rng(5, 3);
  uint32_t n = c.paged->total_pages();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Fetch(rng.Uniform(n)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferPoolFetch);

void BM_PagedBuild(benchmark::State& state) {
  PagedCorpus& c = GetCorpus();
  for (auto _ : state) {
    PagedIndex p = PagedIndex::Build(c.idx->index());
    benchmark::DoNotOptimize(p.total_pages());
  }
}
BENCHMARK(BM_PagedBuild);

/// --json mode: layout density + warm pool behaviour, with the
/// entries-per-page gate. Returns the process exit code.
int JsonReport(const std::string& path) {
  PagedCorpus& c = GetCorpus();
  const PagedIndex& paged = *c.paged;
  const double entries_per_page =
      paged.link_pages() > 0
          ? static_cast<double>(paged.link_entries()) /
                static_cast<double>(paged.link_pages())
          : 0.0;

  // Warm pool hit rate: one untimed pass populates the pool, then the
  // counters are reset and the mix replayed.
  BufferPool pool(&paged.file(), 1 << 16);
  MatchContext ctx;
  std::vector<DocId> out;
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) pool.ResetCounters();
    for (const QuerySeq& qs : c.queries) {
      out.clear();
      Status st =
          paged.Match(qs, MatchMode::kConstraint, &pool, &out, nullptr, &ctx);
      if (!st.ok()) {
        std::fprintf(stderr, "paged match: %s\n", st.ToString().c_str());
        return 1;
      }
    }
  }
  const double hit_rate =
      pool.fetches() > 0
          ? static_cast<double>(pool.hits()) /
                static_cast<double>(pool.fetches())
          : 0.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\"bench\":\"paged\",\"link_entries\":%llu,\"link_pages\":%u,"
      "\"header_pages\":%u,\"word_pages\":%u,\"total_pages\":%u,"
      "\"entries_per_page\":%.1f,\"warm_pool_fetches\":%llu,"
      "\"warm_pool_hits\":%llu,\"warm_pool_hit_rate\":%.4f}\n",
      static_cast<unsigned long long>(paged.link_entries()),
      paged.link_pages(), paged.header_pages(), paged.word_pages(),
      paged.total_pages(), entries_per_page,
      static_cast<unsigned long long>(pool.fetches()),
      static_cast<unsigned long long>(pool.hits()), hit_rate);
  std::fclose(f);
  std::printf(
      "paged layout: %.1f entries/page over %u link pages, warm pool hit "
      "rate %.4f\nwrote %s\n",
      entries_per_page, paged.link_pages(), hit_rate, path.c_str());

  // The pre-compression layout stored 12 bytes per entry across its link
  // pair and cover regions (4096/12 = 341.3 entries per page of the data
  // the compressed blocks now carry); compression must beat it strictly
  // or the paged format regressed.
  constexpr double kFlatEntriesPerPage = 4096.0 / 12.0;
  if (entries_per_page <= kFlatEntriesPerPage) {
    std::fprintf(stderr,
                 "FAIL: %.1f link entries/page does not beat the flat "
                 "layout's %.1f\n",
                 entries_per_page, kFlatEntriesPerPage);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return xseq::JsonReport(argv[i] + 7);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
