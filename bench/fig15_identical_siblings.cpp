// Figure 15: impact of identical sibling nodes on index size.
//
// Dataset L3 F5 A25 I? P40 with I swept 0..100%. As I grows, the f2
// grouping constraint overrides more and more of the probability ordering,
// so constraint sequencing degrades towards depth-first — but stays below
// it, because attribute values are still ordered by occurrence probability.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/synthetic.h"

namespace {

void Sweep(const xseq::FlagSet& flags, xseq::DocId n, int value_percent) {
  using namespace xseq;
  bench::Header("Figure 15  index size vs identical siblings (L3F5A" +
                std::to_string(value_percent) + "I?P40, " +
                std::to_string(n) + " docs)");
  std::printf("%6s %16s %16s %12s\n", "I (%)", "DF index nodes",
              "CS index nodes", "CS/DF");

  for (int identical : {0, 20, 40, 60, 80, 100}) {
    SyntheticParams params;
    params.identical_percent = identical;
    params.value_percent = value_percent;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

    uint64_t nodes[2] = {0, 0};
    SequencerKind kinds[2] = {SequencerKind::kDepthFirst,
                              SequencerKind::kProbability};
    for (int k = 0; k < 2; ++k) {
      IndexOptions opts;
      opts.sequencer = kinds[k];
      CollectionBuilder builder(opts);
      SyntheticDataset gen(params, builder.names(), builder.values());
      CollectionIndex idx = bench::BuildStreaming(
          &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
      nodes[k] = idx.Stats().trie_nodes;
    }
    std::printf("%6d %16llu %16llu %12.3f\n", identical,
                static_cast<unsigned long long>(nodes[0]),
                static_cast<unsigned long long>(nodes[1]),
                static_cast<double>(nodes[1]) /
                    static_cast<double>(nodes[0]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 20000, 500000);

  Sweep(flags, n, 25);  // the paper's dataset
  Sweep(flags, n, 0);   // structure-only repeated subtrees
  bench::Note(
      "paper shape: CS grows towards DF as I rises; the paper reports CS "
      "still smaller at I=100% because values remain probability-ordered.");
  bench::Note(
      "our A=25 generator crosses slightly above DF at I=100% (values sit "
      "inside high-variety repeated subtrees, so deferring them loses "
      "shared prefix); with A=0 the paper's ordering holds at every I — "
      "see EXPERIMENTS.md for the discussion.");
  return 0;
}
