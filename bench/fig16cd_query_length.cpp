// Figures 16(c) and 16(d): I/O cost (# pages) and query time vs query
// length on 100K-record synthetic datasets, (c) without and (d) with
// identical sibling nodes. Queries run cold against the paged index; the
// buffer pool's miss count is the "# pages" series.
//
// Expected shape: both I/O and time grow with query length (less node
// sharing deep in the tree => longer path links); the identical-sibling
// dataset costs several times more at every length.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/gen/querygen.h"
#include "src/gen/synthetic.h"
#include "src/storage/paged_index.h"

namespace xseq {
namespace {

void RunVariant(const char* title, int identical, DocId n, int queries,
                uint64_t seed) {
  SyntheticParams params;
  params.identical_percent = identical;
  params.seed = seed;
  IndexOptions opts;
  CollectionBuilder builder(opts);
  SyntheticDataset gen(params, builder.names(), builder.values());
  CollectionIndex idx = bench::BuildStreaming(
      &builder, [&gen](DocId d) { return gen.Generate(d); }, n);
  PagedIndex paged = PagedIndex::Build(idx.index());

  bench::Header(std::string(title) + " (" + std::to_string(n) +
                " records, " + std::to_string(paged.total_pages()) +
                " pages)");
  std::printf("%8s %12s %12s %12s %14s %12s\n", "length", "# pages",
              "link pages", "doc pages", "time (us)", "results");

  for (size_t len : {2u, 4u, 6u, 8u, 10u, 12u}) {
    Rng rng(19, 23);
    uint64_t pages = 0, link_pages = 0, data_pages = 0, us = 0,
             results = 0;
    for (int q = 0; q < queries; ++q) {
      Document sample = gen.Generate(rng.Uniform(n));
      QueryPattern pattern =
          SampleQueryPattern(sample, idx.names(), len, &rng, 0.3);
      auto compiled = idx.executor().Compile(pattern);
      if (!compiled.ok()) std::abort();
      BufferPool pool(&paged.file(), 1024);  // cold per query
      pool.SetRegionBoundary(paged.first_data_page());
      std::vector<DocId> docs;
      Timer timer;
      for (const QuerySeq& qs : *compiled) {
        Status st = paged.Match(qs, MatchMode::kConstraint, &pool, &docs);
        if (!st.ok()) std::abort();
      }
      us += static_cast<uint64_t>(timer.ElapsedMicros());
      pages += pool.misses();
      link_pages += pool.link_misses();
      data_pages += pool.data_misses();
      std::sort(docs.begin(), docs.end());
      docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
      results += docs.size();
    }
    std::printf("%8zu %12.1f %12.1f %12.1f %14.1f %12.1f\n", len,
                static_cast<double>(pages) / queries,
                static_cast<double>(link_pages) / queries,
                static_cast<double>(data_pages) / queries,
                static_cast<double>(us) / queries,
                static_cast<double>(results) / queries);
  }
}

}  // namespace
}  // namespace xseq

int main(int argc, char** argv) {
  using namespace xseq;
  FlagSet flags(argc, argv);
  DocId n = bench::Scaled(flags, 50000, 100000);
  int queries = static_cast<int>(flags.GetInt("queries", 50));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  RunVariant("Figure 16(c)  I/O + time vs query length, no identical "
             "siblings", 0, n, queries, seed);
  RunVariant("Figure 16(d)  I/O + time vs query length, with identical "
             "siblings", 40, n, queries, seed);
  bench::Note("paper shape: cost rises with query length; the identical-"
              "sibling dataset is several times more expensive");
  return 0;
}
