#!/usr/bin/env bash
# Benchmark smoke gate: runs the micro_match counter workloads (fig15
# identical-siblings, fig16 query lengths, table7 XMark) and fails if the
# query engine regressed against the checked-in baseline —
# `link_entries_read` more than --guard (default 10) percent above
# bench/BENCH_match.baseline.json, or any drift at all in
# `result_docs`/`terminals` (those must stay bit-identical).
#
#   scripts/bench_smoke.sh                  # build + run + guard
#   scripts/bench_smoke.sh --build-dir=build-opt
#   scripts/bench_smoke.sh --guard=5        # tighter regression budget
#
# Refreshing the baseline after an intentional engine change:
#   ./build/bench/micro_match --json=bench/BENCH_match.baseline.json
# (bench/BENCH_match.seed.json is the pre-optimization snapshot and is
# never regenerated — it documents the starting point.)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
GUARD_PCT=10
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --guard=*) GUARD_PCT="${arg#*=}" ;;
    *)
      echo "usage: $0 [--build-dir=DIR] [--guard=PCT]" >&2
      exit 2
      ;;
  esac
done

BASELINE="bench/BENCH_match.baseline.json"
if [[ ! -f "$BASELINE" ]]; then
  echo "bench_smoke.sh: missing $BASELINE" >&2
  exit 2
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_match

OUT="$(mktemp /tmp/BENCH_match.XXXXXX.json)"
OBS_OUT="$(mktemp /tmp/BENCH_obs.XXXXXX.json)"
SERVE_OUT="$(mktemp /tmp/BENCH_serve.XXXXXX.json)"
PLAN_OUT="$(mktemp /tmp/BENCH_plan.XXXXXX.json)"
SWAP_OUT="$(mktemp /tmp/BENCH_swap.XXXXXX.json)"
COMPRESS_OUT="$(mktemp /tmp/BENCH_compress.XXXXXX.json)"
PAGED_OUT="$(mktemp /tmp/BENCH_paged.XXXXXX.json)"
VINDEX_OUT="$(mktemp /tmp/BENCH_vindex.XXXXXX.json)"
trap 'rm -f "$OUT" "$OBS_OUT" "$SERVE_OUT" "$PLAN_OUT" "$SWAP_OUT" \
  "$COMPRESS_OUT" "$PAGED_OUT" "$VINDEX_OUT"' EXIT
"./$BUILD_DIR/bench/micro_match" \
  --json="$OUT" --baseline="$BASELINE" --guard_pct="$GUARD_PCT"

# Observability overhead gate: metrics enabled (tracing off) must stay
# within OBS_GUARD_PCT (default 2) percent of the metrics-off wall clock on
# the fig15 workload — the same run that produced bench/BENCH_obs.json.
# Full-size corpus: with fewer docs each pass is a few ms and host noise
# swamps the budget. 15 reps (vs the binary's default 9): the score is the
# minimum over reps, and the extra reps are what keep a busy CI host from
# tripping the 2% budget on scheduler jitter alone.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_obs
"./$BUILD_DIR/bench/micro_obs" \
  --json="$OBS_OUT" --reps="${OBS_REPS:-15}" \
  --max_overhead_pct="${OBS_GUARD_PCT:-2}"

# Serving-layer harness: a small closed-loop run over loopback TCP must
# produce a BENCH_serve.json with every schema field the dashboards read.
# Latency numbers are host-dependent, so only the schema (and a non-zero
# throughput) is gated here.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_serve
"./$BUILD_DIR/bench/micro_serve" \
  --n=1500 --clients=2 --ops=15 --out="$SERVE_OUT"
for key in throughput_qps p50_us p99_us shed shed_rate; do
  grep -q "\"$key\":" "$SERVE_OUT" || {
    echo "bench_smoke.sh: BENCH_serve.json is missing \"$key\"" >&2
    cat "$SERVE_OUT" >&2
    exit 1
  }
done
grep -q '"throughput_qps":0\.0' "$SERVE_OUT" && {
  echo "bench_smoke.sh: serve harness reported zero throughput" >&2
  exit 1
}

# Planner harness: the warm (plan-cache hit) compile path must be at least
# 5x faster than a cold compile, and the warm phase must actually hit the
# cache (>= 50% of lookups). micro_plan itself enforces both gates (exits
# nonzero on violation); the schema of every dashboard field is checked
# here.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_plan
"./$BUILD_DIR/bench/micro_plan" \
  --n=800 --rounds=10 --min_warm_speedup=5 --min_hit_rate=0.5 \
  --out="$PLAN_OUT"
for key in cold_compile_us warm_compile_us warm_speedup plan_hit_rate \
           result_hit_us qps_nocache qps_cache qps_speedup; do
  grep -q "\"$key\":" "$PLAN_OUT" || {
    echo "bench_smoke.sh: BENCH_plan.json is missing \"$key\"" >&2
    cat "$PLAN_OUT" >&2
    exit 1
  }
done

# Hot-swap harness: queries racing continuous generation reloads. The
# binary itself asserts dropped == 0 and that every reload of a valid
# image landed; here the schema is checked and the p99-across-swaps gate
# applied — within SWAP_GUARD_X (default 2) x steady-state p99. Latency
# ratios on a noisy shared host can wobble, so the factor is
# env-overridable, but the dropped-requests gate is absolute.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_swap
"./$BUILD_DIR/bench/micro_swap" \
  --n=1000 --readers=3 --ops=300 --out="$SWAP_OUT"
for key in steady_p99_us swap_p99_us p99_ratio swaps requests dropped qps; do
  grep -q "\"$key\":" "$SWAP_OUT" || {
    echo "bench_smoke.sh: BENCH_swap.json is missing \"$key\"" >&2
    cat "$SWAP_OUT" >&2
    exit 1
  }
done
grep -q '"dropped":0[,}]' "$SWAP_OUT" || {
  echo "bench_smoke.sh: hot swap dropped requests" >&2
  cat "$SWAP_OUT" >&2
  exit 1
}
RATIO="$(sed -n 's/.*"p99_ratio":\([0-9.]*\).*/\1/p' "$SWAP_OUT")"
SWAP_GUARD_X="${SWAP_GUARD_X:-2}"
awk -v r="$RATIO" -v g="$SWAP_GUARD_X" 'BEGIN { exit !(r <= g) }' || {
  echo "bench_smoke.sh: p99 across swaps is ${RATIO}x steady state" \
    "(budget ${SWAP_GUARD_X}x)" >&2
  cat "$SWAP_OUT" >&2
  exit 1
}

# Link-compression gates: the packed link region summed over the
# fig14/table5 corpora must be at least COMPRESS_SIZE_PCT (default 30)
# percent smaller than the flat 12-byte-entry layout, and the compressed
# engine's wall clock (median of per-rep compressed/flat ratio pairs)
# must stay within COMPRESS_WALL_PCT (default 10) percent of the flat
# baseline on the fig15/table7 query mixes. micro_compress enforces both
# and exits nonzero on violation.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_compress
"./$BUILD_DIR/bench/micro_compress" \
  --reps=5 \
  --min_size_reduction_pct="${COMPRESS_SIZE_PCT:-30}" \
  --max_wall_regression_pct="${COMPRESS_WALL_PCT:-10}" \
  --out="$COMPRESS_OUT"

# Paged-layout density gate: the compressed link region must hold strictly
# more entries per page than the old flat pair+cover layout (341.3/page);
# micro_paged --json enforces the gate and reports the warm pool hit rate.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_paged
"./$BUILD_DIR/bench/micro_paged" --json="$PAGED_OUT"
for key in entries_per_page warm_pool_hit_rate; do
  grep -q "\"$key\":" "$PAGED_OUT" || {
    echo "bench_smoke.sh: BENCH_paged.json is missing \"$key\"" >&2
    cat "$PAGED_OUT" >&2
    exit 1
  }
done

# Value-index gate: a range predicate at ~1% selectivity answered through
# the ordered value index must beat the brute per-document scan (structural
# oracle + comparison check) by at least VINDEX_GUARD_X (default 10);
# micro_vindex enforces the gate, cross-checks both answers doc for doc,
# and exits nonzero on violation.
cmake --build "$BUILD_DIR" -j "$JOBS" --target micro_vindex
"./$BUILD_DIR/bench/micro_vindex" \
  --min_speedup="${VINDEX_GUARD_X:-10}" \
  --out="$VINDEX_OUT"
for key in speedup_low speedup_mid speedup_high mutations_per_sec; do
  grep -q "\"$key\":" "$VINDEX_OUT" || {
    echo "bench_smoke.sh: BENCH_vindex.json is missing \"$key\"" >&2
    cat "$VINDEX_OUT" >&2
    exit 1
  }
done

echo "bench_smoke.sh: ok (counters within ${GUARD_PCT}% of $BASELINE," \
  "serve schema complete, plan cache gates passed," \
  "swap p99 ${RATIO}x steady / 0 dropped," \
  "compression size/wall gates passed, paged density gate passed," \
  "value-index speedup gate passed)"
