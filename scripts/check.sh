#!/usr/bin/env bash
# Sanitizer CI gate: builds the tier-1 suite under each sanitizer mode and
# runs ctest, plus an explicit pass of the persistence corruption/fault
# sweeps under ASan (the adversarial decode paths are exactly where memory
# bugs would hide).
#
#   scripts/check.sh                 # address + undefined
#   scripts/check.sh --thread        # also run the TSan build
#   MODES="undefined" scripts/check.sh
#
# Each mode builds into build-<mode>/ so incremental reruns are cheap.

set -euo pipefail
cd "$(dirname "$0")/.."

MODES="${MODES:-address undefined}"
if [[ "${1:-}" == "--thread" ]]; then
  MODES="$MODES thread"
fi

JOBS="$(nproc 2>/dev/null || echo 2)"

for mode in $MODES; do
  dir="build-$mode"
  echo "=== [$mode] configure + build ($dir) ==="
  cmake -B "$dir" -S . -DXSEQ_SANITIZE="$mode" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  echo "=== [$mode] ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$JOBS")
done

if [[ " $MODES " == *" address "* ]]; then
  echo "=== [address] corruption + fault sweeps (explicit) ==="
  ./build-address/tests/xseq_tests \
    --gtest_filter='CorruptionSweep.*:FaultSweep.*:Format.*'

  echo "=== [address] v2 fixture image loads via decode-and-recompress ==="
  # A checked-in pre-compression (format v2) image must keep loading
  # through the compatibility path; verify re-reads every section and
  # reports packed vs logical link bytes, all under ASan.
  ./build-address/examples/example_xseq_tool verify \
    tests/testdata/fixture_v2.idx
fi

echo "=== serve smoke (daemon + client over loopback TCP) ==="
scripts/serve_smoke.sh

echo "=== bench smoke (counter guards, plain build) ==="
scripts/bench_smoke.sh

echo "check.sh: all modes passed"
