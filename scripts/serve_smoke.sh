#!/usr/bin/env bash
# Serving-layer smoke gate: start the xseq_serve daemon on a loopback
# ephemeral port, drive it with the real client binary (ping, a query
# whose answer size is known, the metrics dump), then SIGTERM it and
# assert the graceful-drain message appeared and the exit status is 0.
# This is the end-to-end path CI exercises outside of ctest: real
# processes, real TCP, real signals.
#
#   scripts/serve_smoke.sh [--build-dir=DIR]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    *)
      echo "usage: $0 [--build-dir=DIR]" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target example_xseq_serve example_xseq_client

SERVE="./$BUILD_DIR/examples/example_xseq_serve"
CLIENT="./$BUILD_DIR/examples/example_xseq_client"

PORT_FILE="$(mktemp -u /tmp/xseq_serve_port.XXXXXX)"
LOG="$(mktemp /tmp/xseq_serve_log.XXXXXX)"
SERVE_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  rm -f "$PORT_FILE" "$LOG"
}
trap cleanup EXIT

"$SERVE" --gen=xmark --n=2000 --shards=3 --workers=2 \
  --port_file="$PORT_FILE" >"$LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 150); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke.sh: daemon died during startup" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "serve_smoke.sh: no port file" >&2; exit 1; }
PORT="$(cat "$PORT_FILE")"
echo "serve_smoke.sh: daemon up on port $PORT"

"$CLIENT" ping --port="$PORT"
QUERY_OUT="$("$CLIENT" query --port="$PORT" --q='/site//person/name')"
echo "$QUERY_OUT"
echo "$QUERY_OUT" | grep -q 'document(s)' \
  || { echo "serve_smoke.sh: unexpected query output" >&2; exit 1; }
# The answer must be non-empty: every XMark record has /site/people/person/name.
echo "$QUERY_OUT" | grep -q '^0 document' \
  && { echo "serve_smoke.sh: query returned no documents" >&2; exit 1; }

# The stats op returns the server's metrics registry: the serve counters
# must be present and the request counter non-zero by now.
STATS="$("$CLIENT" stats --port="$PORT")"
echo "$STATS" | grep -q 'xseq.serve.requests' \
  || { echo "serve_smoke.sh: stats dump missing serve counters" >&2; exit 1; }
echo "$STATS" | grep -q '"xseq.serve.requests":0' \
  && { echo "serve_smoke.sh: serve request counter stuck at zero" >&2; exit 1; }

# An over-the-wire parse error must not kill the daemon.
"$CLIENT" query --port="$PORT" --q='][' && {
  echo "serve_smoke.sh: malformed query unexpectedly succeeded" >&2
  exit 1
}
"$CLIENT" ping --port="$PORT"

kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
SERVE_PID=""
if [[ "$RC" -ne 0 ]]; then
  echo "serve_smoke.sh: daemon exited $RC after SIGTERM" >&2
  cat "$LOG" >&2
  exit 1
fi
grep -q 'drained' "$LOG" || {
  echo "serve_smoke.sh: no graceful-drain message in daemon log" >&2
  cat "$LOG" >&2
  exit 1
}

echo "serve_smoke.sh: ok (ping/query/stats round-trip + graceful SIGTERM drain)"
