#!/usr/bin/env bash
# Serving-layer smoke gate: start the xseq_serve daemon on a loopback
# ephemeral port with the observability plane on (Prometheus scrape port,
# structured access log), drive it with the real client binary (ping, a
# query whose answer size is known, a query with --explain, the metrics
# dump, a raw HTTP scrape of /metrics), hot-swap the serving generation
# under live query load (xseq_client reload + SIGHUP), check that a second
# daemon refuses to start over the live port file and that a reload of a
# bogus image leaves the old generation serving, then SIGTERM it and
# assert the graceful-drain message appeared, the access log captured the
# traffic, and the exit status is 0. This is the end-to-end path CI
# exercises outside of ctest: real processes, real TCP, real HTTP, real
# signals, real on-disk images.
#
#   scripts/serve_smoke.sh [--build-dir=DIR]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="build"
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    *)
      echo "usage: $0 [--build-dir=DIR]" >&2
      exit 2
      ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . >/dev/null
fi
cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target example_xseq_serve example_xseq_client

SERVE="./$BUILD_DIR/examples/example_xseq_serve"
CLIENT="./$BUILD_DIR/examples/example_xseq_client"

PORT_FILE="$(mktemp -u /tmp/xseq_serve_port.XXXXXX)"
PROM_PORT_FILE="$(mktemp -u /tmp/xseq_prom_port.XXXXXX)"
ACCESS_LOG="$(mktemp -u /tmp/xseq_access_log.XXXXXX)"
LOG="$(mktemp /tmp/xseq_serve_log.XXXXXX)"
IMG_DIR="$(mktemp -d /tmp/xseq_serve_img.XXXXXX)"
MUT_PORT_FILE="$(mktemp -u /tmp/xseq_mut_port.XXXXXX)"
MUT_LOG="$(mktemp /tmp/xseq_mut_log.XXXXXX)"
SERVE_PID=""
MUT_PID=""
cleanup() {
  [[ -n "$SERVE_PID" ]] && kill -9 "$SERVE_PID" 2>/dev/null || true
  [[ -n "$MUT_PID" ]] && kill -9 "$MUT_PID" 2>/dev/null || true
  rm -f "$PORT_FILE" "$PROM_PORT_FILE" "$ACCESS_LOG" "$ACCESS_LOG.1" "$LOG"
  rm -f "$MUT_PORT_FILE" "$MUT_LOG"
  rm -rf "$IMG_DIR"
}
trap cleanup EXIT

# Two on-disk generation images for the hot-swap leg: same schema,
# different sizes, so a swap is observable but both answer the workload.
"$SERVE" --gen=xmark --n=2000 --shards=3 --save="$IMG_DIR/gen_a" >/dev/null
"$SERVE" --gen=xmark --n=1500 --seed=7 --shards=3 --save="$IMG_DIR/gen_b" \
  >/dev/null

"$SERVE" --sharded="$IMG_DIR/gen_a" --workers=2 \
  --canary='/site//person/name' \
  --prom_port=0 --prom_port_file="$PROM_PORT_FILE" \
  --access_log="$ACCESS_LOG" --log_sample=1 \
  --port_file="$PORT_FILE" >"$LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 150); do
  [[ -s "$PORT_FILE" ]] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "serve_smoke.sh: daemon died during startup" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$PORT_FILE" ]] || { echo "serve_smoke.sh: no port file" >&2; exit 1; }
# Line 1 is the port; line 2 is the daemon's pid (for liveness checks).
PORT="$(head -n1 "$PORT_FILE")"
FILE_PID="$(sed -n 2p "$PORT_FILE")"
[[ "$FILE_PID" == "$SERVE_PID" ]] || {
  echo "serve_smoke.sh: port file pid $FILE_PID != daemon pid $SERVE_PID" >&2
  exit 1
}
echo "serve_smoke.sh: daemon up on port $PORT (pid $FILE_PID)"

# A second daemon pointed at the same port file must refuse to start while
# the first is alive — double-start protection.
if "$SERVE" --sharded="$IMG_DIR/gen_b" --port_file="$PORT_FILE" \
    >/tmp/xseq_second_daemon.log 2>&1; then
  echo "serve_smoke.sh: second daemon started over a live port file" >&2
  exit 1
fi
grep -q 'refusing to start' /tmp/xseq_second_daemon.log || {
  echo "serve_smoke.sh: double-start refusal message missing" >&2
  cat /tmp/xseq_second_daemon.log >&2
  exit 1
}
rm -f /tmp/xseq_second_daemon.log
echo "serve_smoke.sh: double-start over live port file refused"

"$CLIENT" ping --port="$PORT"
QUERY_OUT="$("$CLIENT" query --port="$PORT" --q='/site//person/name')"
echo "$QUERY_OUT"
echo "$QUERY_OUT" | grep -q 'document(s)' \
  || { echo "serve_smoke.sh: unexpected query output" >&2; exit 1; }
# The answer must be non-empty: every XMark record has /site/people/person/name.
echo "$QUERY_OUT" | grep -q '^0 document' \
  && { echo "serve_smoke.sh: query returned no documents" >&2; exit 1; }

# The stats op returns the server's metrics registry: the serve counters
# must be present and the request counter non-zero by now.
STATS="$("$CLIENT" stats --port="$PORT")"
echo "$STATS" | grep -q 'xseq.serve.requests' \
  || { echo "serve_smoke.sh: stats dump missing serve counters" >&2; exit 1; }
echo "$STATS" | grep -q '"xseq.serve.requests":0' \
  && { echo "serve_smoke.sh: serve request counter stuck at zero" >&2; exit 1; }

# --- Observability plane -----------------------------------------------------
# query --explain returns the planner's account, including the per-shard
# fan-out of the 3-shard image. Use a query nothing else in this script
# issues: a repeat would hit the result cache, legitimately skipping
# execution — and the shard breakdown with it.
EXPLAIN_OUT="$("$CLIENT" query --port="$PORT" --q='/site//person' \
  --explain)"
echo "$EXPLAIN_OUT" | grep -q 'sequence(s)' \
  || { echo "serve_smoke.sh: --explain missing plan summary" >&2; exit 1; }
echo "$EXPLAIN_OUT" | grep -q 'shard 2:' \
  || { echo "serve_smoke.sh: --explain missing shard breakdown" >&2; exit 1; }
echo "serve_smoke.sh: query --explain ok"

# The metrics op returns the Prometheus text exposition over the wire.
METRICS_OUT="$("$CLIENT" metrics --port="$PORT")"
echo "$METRICS_OUT" | grep -q '^xseq_serve_requests ' \
  || { echo "serve_smoke.sh: metrics op missing serve series" >&2; exit 1; }

# The scrape endpoint serves the same exposition over plain HTTP; assert
# the serve series are present with non-zero requests. bash's /dev/tcp
# keeps the script curl-free.
[[ -s "$PROM_PORT_FILE" ]] \
  || { echo "serve_smoke.sh: no scrape port file" >&2; exit 1; }
PROM_PORT="$(head -n1 "$PROM_PORT_FILE")"
SCRAPE="$(exec 3<>"/dev/tcp/127.0.0.1/$PROM_PORT" \
  && printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3 && cat <&3)"
echo "$SCRAPE" | grep -q '200 OK' \
  || { echo "serve_smoke.sh: scrape did not return 200" >&2; exit 1; }
echo "$SCRAPE" | grep -q '# TYPE xseq_serve_requests counter' \
  || { echo "serve_smoke.sh: scrape missing xseq_serve_* series" >&2; exit 1; }
echo "$SCRAPE" | grep -Eq '^xseq_serve_requests [1-9]' \
  || { echo "serve_smoke.sh: scraped request counter stuck at zero" >&2; exit 1; }
echo "serve_smoke.sh: prometheus scrape on port $PROM_PORT ok"

# An over-the-wire parse error must not kill the daemon.
"$CLIENT" query --port="$PORT" --q='][' && {
  echo "serve_smoke.sh: malformed query unexpectedly succeeded" >&2
  exit 1
}
"$CLIENT" ping --port="$PORT"

# --- Hot swap under live load -----------------------------------------------
# Queries hammer the daemon while the serving generation is swapped to
# image B and back; every one of them must succeed — the RCU swap promises
# zero dropped or failed requests.
LOAD_LOG="$(mktemp /tmp/xseq_swap_load.XXXXXX)"
(
  for _ in $(seq 1 40); do
    "$CLIENT" query --port="$PORT" --q='/site//person/name' \
      >>"$LOAD_LOG" 2>&1 || { echo "LOAD_FAILED" >>"$LOAD_LOG"; exit 1; }
  done
) &
LOAD_PID=$!
"$CLIENT" reload --port="$PORT" --path="$IMG_DIR/gen_b" \
  | grep -q 'reloaded, generation' \
  || { echo "serve_smoke.sh: reload to gen_b failed" >&2; exit 1; }
# Empty path re-reads the image the daemon currently serves (gen_b).
"$CLIENT" reload --port="$PORT" | grep -q 'reloaded, generation' \
  || { echo "serve_smoke.sh: re-read reload failed" >&2; exit 1; }
wait "$LOAD_PID" || {
  echo "serve_smoke.sh: a query failed during the hot swap" >&2
  tail -5 "$LOAD_LOG" >&2
  exit 1
}
grep -q 'LOAD_FAILED' "$LOAD_LOG" && {
  echo "serve_smoke.sh: a query failed during the hot swap" >&2
  exit 1
}
rm -f "$LOAD_LOG"
echo "serve_smoke.sh: hot swap under load ok (gen_a -> gen_b -> re-read)"

# A reload of a nonexistent image must fail the RPC, leave the daemon
# serving the old generation, and keep the connection usable.
"$CLIENT" reload --port="$PORT" --path="$IMG_DIR/nonexistent" && {
  echo "serve_smoke.sh: reload of a bogus image unexpectedly succeeded" >&2
  exit 1
}
"$CLIENT" ping --port="$PORT"
"$CLIENT" query --port="$PORT" --q='/site//person/name' \
  | grep -q 'document(s)' \
  || { echo "serve_smoke.sh: daemon unhealthy after failed reload" >&2; exit 1; }
echo "serve_smoke.sh: failed reload rolled back cleanly"

# SIGHUP re-reads the current image — the operator's no-client path.
kill -HUP "$SERVE_PID"
for _ in $(seq 1 50); do
  grep -q 'reloaded' "$LOG" && break
  sleep 0.1
done
grep -q 'reloaded' "$LOG" || {
  echo "serve_smoke.sh: no reload message after SIGHUP" >&2
  cat "$LOG" >&2
  exit 1
}
"$CLIENT" ping --port="$PORT"
echo "serve_smoke.sh: SIGHUP reload ok"

kill -TERM "$SERVE_PID"
RC=0
wait "$SERVE_PID" || RC=$?
SERVE_PID=""
if [[ "$RC" -ne 0 ]]; then
  echo "serve_smoke.sh: daemon exited $RC after SIGTERM" >&2
  cat "$LOG" >&2
  exit 1
fi
grep -q 'drained' "$LOG" || {
  echo "serve_smoke.sh: no graceful-drain message in daemon log" >&2
  cat "$LOG" >&2
  exit 1
}

# The access log captured the served traffic: JSON lines with latencies
# for the OK queries and an "error" record for the malformed one.
[[ -s "$ACCESS_LOG" ]] \
  || { echo "serve_smoke.sh: access log is empty" >&2; exit 1; }
grep -q '"op":"query"' "$ACCESS_LOG" \
  || { echo "serve_smoke.sh: access log has no query records" >&2; exit 1; }
grep -q '"latency_us":' "$ACCESS_LOG" \
  || { echo "serve_smoke.sh: access log records lack latencies" >&2; exit 1; }
grep -q '"reason":"error"' "$ACCESS_LOG" \
  || { echo "serve_smoke.sh: parse-error request missing from log" >&2; exit 1; }
echo "serve_smoke.sh: access log captured $(wc -l <"$ACCESS_LOG") records"

# --- Mutations over the wire (dynamic backend) -------------------------------
# A second daemon with a mutable xmark collection: delete a doc out of a
# range-predicate answer, update another doc into an answer that was empty,
# compact, and check every answer tracks the mutations — over real TCP,
# through the live result cache.
"$SERVE" --gen=xmark --n=400 --shards=2 --dynamic \
  --port_file="$MUT_PORT_FILE" >"$MUT_LOG" 2>&1 &
MUT_PID=$!
for _ in $(seq 1 150); do
  [[ -s "$MUT_PORT_FILE" ]] && break
  if ! kill -0 "$MUT_PID" 2>/dev/null; then
    echo "serve_smoke.sh: mutation daemon died during startup" >&2
    cat "$MUT_LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[[ -s "$MUT_PORT_FILE" ]] \
  || { echo "serve_smoke.sh: no mutation daemon port file" >&2; exit 1; }
MUT_PORT="$(head -n1 "$MUT_PORT_FILE")"

RANGE_Q='//age[. >= 40]'
BEFORE_OUT="$("$CLIENT" query --port="$MUT_PORT" --q="$RANGE_Q" --verbose)"
BEFORE_N="$(echo "$BEFORE_OUT" | awk 'NR==1{print $1}')"
[[ "$BEFORE_N" -gt 0 ]] || {
  echo "serve_smoke.sh: range query found no documents" >&2
  exit 1
}
VICTIM="$(echo "$BEFORE_OUT" | awk '/^  doc /{print $2; exit}')"
"$CLIENT" delete --port="$MUT_PORT" --id="$VICTIM" \
  | grep -q 'deleted, generation' \
  || { echo "serve_smoke.sh: delete RPC failed" >&2; exit 1; }
AFTER_OUT="$("$CLIENT" query --port="$MUT_PORT" --q="$RANGE_Q" --verbose)"
AFTER_N="$(echo "$AFTER_OUT" | awk 'NR==1{print $1}')"
[[ "$AFTER_N" -eq $((BEFORE_N - 1)) ]] || {
  echo "serve_smoke.sh: range answer was $BEFORE_N docs, still $AFTER_N" \
    "after deleting one of them" >&2
  exit 1
}
echo "$AFTER_OUT" | grep -qx "  doc $VICTIM" && {
  echo "serve_smoke.sh: deleted doc $VICTIM still served" >&2
  exit 1
}
echo "serve_smoke.sh: wire delete removed doc $VICTIM from the range answer"

# No generated age reaches 90; the updated doc must become the sole answer.
"$CLIENT" query --port="$MUT_PORT" --q='//age[. >= 90]' \
  | grep -q '^0 document' \
  || { echo "serve_smoke.sh: expected no docs with age >= 90" >&2; exit 1; }
TARGET="$(echo "$AFTER_OUT" | awk '/^  doc /{print $2; exit}')"
"$CLIENT" update --port="$MUT_PORT" --id="$TARGET" \
  --xml='<person><profile><age>99</age></profile></person>' \
  | grep -q 'updated, generation' \
  || { echo "serve_smoke.sh: update RPC failed" >&2; exit 1; }
UPDATED_OUT="$("$CLIENT" query --port="$MUT_PORT" --q='//age[. >= 90]' \
  --verbose)"
echo "$UPDATED_OUT" | grep -qx "  doc $TARGET" || {
  echo "serve_smoke.sh: updated doc $TARGET missing from range answer" >&2
  echo "$UPDATED_OUT" >&2
  exit 1
}
echo "serve_smoke.sh: wire update moved doc $TARGET into the range answer"

# Compaction purges the tombstones; every answer must be unchanged by it.
"$CLIENT" compact --port="$MUT_PORT" | grep -q 'compacted, generation' \
  || { echo "serve_smoke.sh: compact RPC failed" >&2; exit 1; }
POST_OUT="$("$CLIENT" query --port="$MUT_PORT" --q="$RANGE_Q" --verbose)"
POST_N="$(echo "$POST_OUT" | awk 'NR==1{print $1}')"
[[ "$POST_N" -eq "$AFTER_N" ]] || {
  echo "serve_smoke.sh: compaction changed the range answer" \
    "($AFTER_N -> $POST_N docs)" >&2
  exit 1
}
echo "$POST_OUT" | grep -qx "  doc $VICTIM" && {
  echo "serve_smoke.sh: deleted doc $VICTIM resurfaced after compaction" >&2
  exit 1
}
"$CLIENT" query --port="$MUT_PORT" --q='//age[. >= 90]' \
  | grep -q '^1 document' \
  || { echo "serve_smoke.sh: updated doc lost after compaction" >&2; exit 1; }
echo "serve_smoke.sh: compaction preserved every answer"

kill -TERM "$MUT_PID"
RC=0
wait "$MUT_PID" || RC=$?
MUT_PID=""
if [[ "$RC" -ne 0 ]]; then
  echo "serve_smoke.sh: mutation daemon exited $RC after SIGTERM" >&2
  cat "$MUT_LOG" >&2
  exit 1
fi

echo "serve_smoke.sh: ok (ping/query/--explain/stats + metrics op +" \
  "prometheus scrape + access log + double-start refusal + hot swap" \
  "under load + failed-reload rollback + SIGHUP + SIGTERM drain +" \
  "wire delete/update/compact against the dynamic backend)"
