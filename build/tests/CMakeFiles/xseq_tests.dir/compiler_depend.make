# Empty compiler generated dependencies file for xseq_tests.
# This may be replaced when dependencies are built.
