
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/xseq_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/xseq_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/xseq_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/dynamic_index_test.cc" "tests/CMakeFiles/xseq_tests.dir/dynamic_index_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/dynamic_index_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/xseq_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/xseq_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/generator_oracle_test.cc" "tests/CMakeFiles/xseq_tests.dir/generator_oracle_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/generator_oracle_test.cc.o.d"
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/xseq_tests.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/invariants_test.cc.o.d"
  "/root/repo/tests/matcher_test.cc" "tests/CMakeFiles/xseq_tests.dir/matcher_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/matcher_test.cc.o.d"
  "/root/repo/tests/more_coverage_test.cc" "tests/CMakeFiles/xseq_tests.dir/more_coverage_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/more_coverage_test.cc.o.d"
  "/root/repo/tests/paper_claims_test.cc" "tests/CMakeFiles/xseq_tests.dir/paper_claims_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/paper_claims_test.cc.o.d"
  "/root/repo/tests/persist_test.cc" "tests/CMakeFiles/xseq_tests.dir/persist_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/persist_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/xseq_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/xseq_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/record_split_test.cc" "tests/CMakeFiles/xseq_tests.dir/record_split_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/record_split_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/xseq_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/seq_test.cc" "tests/CMakeFiles/xseq_tests.dir/seq_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/seq_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/xseq_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/xseq_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/value_chain_test.cc" "tests/CMakeFiles/xseq_tests.dir/value_chain_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/value_chain_test.cc.o.d"
  "/root/repo/tests/weights_test.cc" "tests/CMakeFiles/xseq_tests.dir/weights_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/weights_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/xseq_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/xseq_tests.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xseq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
