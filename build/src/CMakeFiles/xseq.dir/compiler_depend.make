# Empty compiler generated dependencies file for xseq.
# This may be replaced when dependencies are built.
