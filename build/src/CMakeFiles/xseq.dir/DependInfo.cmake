
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/node_index.cc" "src/CMakeFiles/xseq.dir/baseline/node_index.cc.o" "gcc" "src/CMakeFiles/xseq.dir/baseline/node_index.cc.o.d"
  "/root/repo/src/baseline/path_index.cc" "src/CMakeFiles/xseq.dir/baseline/path_index.cc.o" "gcc" "src/CMakeFiles/xseq.dir/baseline/path_index.cc.o.d"
  "/root/repo/src/baseline/region_join.cc" "src/CMakeFiles/xseq.dir/baseline/region_join.cc.o" "gcc" "src/CMakeFiles/xseq.dir/baseline/region_join.cc.o.d"
  "/root/repo/src/baseline/vist.cc" "src/CMakeFiles/xseq.dir/baseline/vist.cc.o" "gcc" "src/CMakeFiles/xseq.dir/baseline/vist.cc.o.d"
  "/root/repo/src/core/collection_index.cc" "src/CMakeFiles/xseq.dir/core/collection_index.cc.o" "gcc" "src/CMakeFiles/xseq.dir/core/collection_index.cc.o.d"
  "/root/repo/src/core/dynamic_index.cc" "src/CMakeFiles/xseq.dir/core/dynamic_index.cc.o" "gcc" "src/CMakeFiles/xseq.dir/core/dynamic_index.cc.o.d"
  "/root/repo/src/core/persist.cc" "src/CMakeFiles/xseq.dir/core/persist.cc.o" "gcc" "src/CMakeFiles/xseq.dir/core/persist.cc.o.d"
  "/root/repo/src/gen/dblp.cc" "src/CMakeFiles/xseq.dir/gen/dblp.cc.o" "gcc" "src/CMakeFiles/xseq.dir/gen/dblp.cc.o.d"
  "/root/repo/src/gen/querygen.cc" "src/CMakeFiles/xseq.dir/gen/querygen.cc.o" "gcc" "src/CMakeFiles/xseq.dir/gen/querygen.cc.o.d"
  "/root/repo/src/gen/synthetic.cc" "src/CMakeFiles/xseq.dir/gen/synthetic.cc.o" "gcc" "src/CMakeFiles/xseq.dir/gen/synthetic.cc.o.d"
  "/root/repo/src/gen/xmark.cc" "src/CMakeFiles/xseq.dir/gen/xmark.cc.o" "gcc" "src/CMakeFiles/xseq.dir/gen/xmark.cc.o.d"
  "/root/repo/src/index/matcher.cc" "src/CMakeFiles/xseq.dir/index/matcher.cc.o" "gcc" "src/CMakeFiles/xseq.dir/index/matcher.cc.o.d"
  "/root/repo/src/index/trie.cc" "src/CMakeFiles/xseq.dir/index/trie.cc.o" "gcc" "src/CMakeFiles/xseq.dir/index/trie.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/xseq.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/executor.cc.o.d"
  "/root/repo/src/query/explain.cc" "src/CMakeFiles/xseq.dir/query/explain.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/explain.cc.o.d"
  "/root/repo/src/query/instantiate.cc" "src/CMakeFiles/xseq.dir/query/instantiate.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/instantiate.cc.o.d"
  "/root/repo/src/query/isomorph.cc" "src/CMakeFiles/xseq.dir/query/isomorph.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/isomorph.cc.o.d"
  "/root/repo/src/query/oracle.cc" "src/CMakeFiles/xseq.dir/query/oracle.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/oracle.cc.o.d"
  "/root/repo/src/query/query_pattern.cc" "src/CMakeFiles/xseq.dir/query/query_pattern.cc.o" "gcc" "src/CMakeFiles/xseq.dir/query/query_pattern.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/xseq.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/xseq.dir/schema/schema.cc.o.d"
  "/root/repo/src/seq/constraint.cc" "src/CMakeFiles/xseq.dir/seq/constraint.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/constraint.cc.o.d"
  "/root/repo/src/seq/path_dict.cc" "src/CMakeFiles/xseq.dir/seq/path_dict.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/path_dict.cc.o.d"
  "/root/repo/src/seq/prufer.cc" "src/CMakeFiles/xseq.dir/seq/prufer.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/prufer.cc.o.d"
  "/root/repo/src/seq/reconstruct.cc" "src/CMakeFiles/xseq.dir/seq/reconstruct.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/reconstruct.cc.o.d"
  "/root/repo/src/seq/sequence.cc" "src/CMakeFiles/xseq.dir/seq/sequence.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/sequence.cc.o.d"
  "/root/repo/src/seq/sequencer.cc" "src/CMakeFiles/xseq.dir/seq/sequencer.cc.o" "gcc" "src/CMakeFiles/xseq.dir/seq/sequencer.cc.o.d"
  "/root/repo/src/storage/paged_index.cc" "src/CMakeFiles/xseq.dir/storage/paged_index.cc.o" "gcc" "src/CMakeFiles/xseq.dir/storage/paged_index.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/xseq.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/xseq.dir/util/flags.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/xseq.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/xseq.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/xseq.dir/util/status.cc.o" "gcc" "src/CMakeFiles/xseq.dir/util/status.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/xseq.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/xseq.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/record_split.cc" "src/CMakeFiles/xseq.dir/xml/record_split.cc.o" "gcc" "src/CMakeFiles/xseq.dir/xml/record_split.cc.o.d"
  "/root/repo/src/xml/tree.cc" "src/CMakeFiles/xseq.dir/xml/tree.cc.o" "gcc" "src/CMakeFiles/xseq.dir/xml/tree.cc.o.d"
  "/root/repo/src/xml/value_chain.cc" "src/CMakeFiles/xseq.dir/xml/value_chain.cc.o" "gcc" "src/CMakeFiles/xseq.dir/xml/value_chain.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/xseq.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/xseq.dir/xml/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
