file(REMOVE_RECURSE
  "libxseq.a"
)
