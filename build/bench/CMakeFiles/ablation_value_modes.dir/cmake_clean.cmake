file(REMOVE_RECURSE
  "CMakeFiles/ablation_value_modes.dir/ablation_value_modes.cpp.o"
  "CMakeFiles/ablation_value_modes.dir/ablation_value_modes.cpp.o.d"
  "ablation_value_modes"
  "ablation_value_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_value_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
