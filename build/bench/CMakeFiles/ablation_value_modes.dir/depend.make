# Empty dependencies file for ablation_value_modes.
# This may be replaced when dependencies are built.
