file(REMOVE_RECURSE
  "CMakeFiles/ablation_build.dir/ablation_build.cpp.o"
  "CMakeFiles/ablation_build.dir/ablation_build.cpp.o.d"
  "ablation_build"
  "ablation_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
