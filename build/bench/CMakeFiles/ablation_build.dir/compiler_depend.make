# Empty compiler generated dependencies file for ablation_build.
# This may be replaced when dependencies are built.
