# Empty compiler generated dependencies file for table8_dblp.
# This may be replaced when dependencies are built.
