file(REMOVE_RECURSE
  "CMakeFiles/table8_dblp.dir/table8_dblp.cpp.o"
  "CMakeFiles/table8_dblp.dir/table8_dblp.cpp.o.d"
  "table8_dblp"
  "table8_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
