file(REMOVE_RECURSE
  "CMakeFiles/ablation_sibling_cover.dir/ablation_sibling_cover.cpp.o"
  "CMakeFiles/ablation_sibling_cover.dir/ablation_sibling_cover.cpp.o.d"
  "ablation_sibling_cover"
  "ablation_sibling_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sibling_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
