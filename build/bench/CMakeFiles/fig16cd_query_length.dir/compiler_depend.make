# Empty compiler generated dependencies file for fig16cd_query_length.
# This may be replaced when dependencies are built.
