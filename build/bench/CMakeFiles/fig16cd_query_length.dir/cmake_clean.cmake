file(REMOVE_RECURSE
  "CMakeFiles/fig16cd_query_length.dir/fig16cd_query_length.cpp.o"
  "CMakeFiles/fig16cd_query_length.dir/fig16cd_query_length.cpp.o.d"
  "fig16cd_query_length"
  "fig16cd_query_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16cd_query_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
