file(REMOVE_RECURSE
  "CMakeFiles/fig16a_scalability.dir/fig16a_scalability.cpp.o"
  "CMakeFiles/fig16a_scalability.dir/fig16a_scalability.cpp.o.d"
  "fig16a_scalability"
  "fig16a_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
