file(REMOVE_RECURSE
  "CMakeFiles/micro_paged.dir/micro_paged.cc.o"
  "CMakeFiles/micro_paged.dir/micro_paged.cc.o.d"
  "micro_paged"
  "micro_paged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_paged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
