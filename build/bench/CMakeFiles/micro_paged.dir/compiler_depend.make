# Empty compiler generated dependencies file for micro_paged.
# This may be replaced when dependencies are built.
