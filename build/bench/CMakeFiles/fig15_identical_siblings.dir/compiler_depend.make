# Empty compiler generated dependencies file for fig15_identical_siblings.
# This may be replaced when dependencies are built.
