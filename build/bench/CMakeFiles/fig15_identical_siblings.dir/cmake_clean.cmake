file(REMOVE_RECURSE
  "CMakeFiles/fig15_identical_siblings.dir/fig15_identical_siblings.cpp.o"
  "CMakeFiles/fig15_identical_siblings.dir/fig15_identical_siblings.cpp.o.d"
  "fig15_identical_siblings"
  "fig15_identical_siblings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_identical_siblings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
