file(REMOVE_RECURSE
  "CMakeFiles/workload_breakdown.dir/workload_breakdown.cpp.o"
  "CMakeFiles/workload_breakdown.dir/workload_breakdown.cpp.o.d"
  "workload_breakdown"
  "workload_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
