# Empty dependencies file for workload_breakdown.
# This may be replaced when dependencies are built.
