file(REMOVE_RECURSE
  "CMakeFiles/fig14_index_size.dir/fig14_index_size.cpp.o"
  "CMakeFiles/fig14_index_size.dir/fig14_index_size.cpp.o.d"
  "fig14_index_size"
  "fig14_index_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_index_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
