# Empty compiler generated dependencies file for fig14_index_size.
# This may be replaced when dependencies are built.
