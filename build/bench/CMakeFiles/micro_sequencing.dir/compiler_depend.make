# Empty compiler generated dependencies file for micro_sequencing.
# This may be replaced when dependencies are built.
