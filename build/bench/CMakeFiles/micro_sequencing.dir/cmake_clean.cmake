file(REMOVE_RECURSE
  "CMakeFiles/micro_sequencing.dir/micro_sequencing.cc.o"
  "CMakeFiles/micro_sequencing.dir/micro_sequencing.cc.o.d"
  "micro_sequencing"
  "micro_sequencing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sequencing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
