# Empty compiler generated dependencies file for micro_concurrency.
# This may be replaced when dependencies are built.
