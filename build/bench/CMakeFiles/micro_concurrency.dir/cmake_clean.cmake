file(REMOVE_RECURSE
  "CMakeFiles/micro_concurrency.dir/micro_concurrency.cc.o"
  "CMakeFiles/micro_concurrency.dir/micro_concurrency.cc.o.d"
  "micro_concurrency"
  "micro_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
