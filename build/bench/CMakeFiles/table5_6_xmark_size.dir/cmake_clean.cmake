file(REMOVE_RECURSE
  "CMakeFiles/table5_6_xmark_size.dir/table5_6_xmark_size.cpp.o"
  "CMakeFiles/table5_6_xmark_size.dir/table5_6_xmark_size.cpp.o.d"
  "table5_6_xmark_size"
  "table5_6_xmark_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_6_xmark_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
