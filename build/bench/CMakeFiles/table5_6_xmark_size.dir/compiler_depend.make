# Empty compiler generated dependencies file for table5_6_xmark_size.
# This may be replaced when dependencies are built.
