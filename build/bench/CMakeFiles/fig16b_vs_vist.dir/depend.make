# Empty dependencies file for fig16b_vs_vist.
# This may be replaced when dependencies are built.
