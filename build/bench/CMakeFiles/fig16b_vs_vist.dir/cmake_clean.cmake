file(REMOVE_RECURSE
  "CMakeFiles/fig16b_vs_vist.dir/fig16b_vs_vist.cpp.o"
  "CMakeFiles/fig16b_vs_vist.dir/fig16b_vs_vist.cpp.o.d"
  "fig16b_vs_vist"
  "fig16b_vs_vist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_vs_vist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
