# Empty compiler generated dependencies file for table7_xmark_queries.
# This may be replaced when dependencies are built.
