# Empty compiler generated dependencies file for example_xseq_tool.
# This may be replaced when dependencies are built.
