file(REMOVE_RECURSE
  "CMakeFiles/example_xseq_tool.dir/xseq_tool.cpp.o"
  "CMakeFiles/example_xseq_tool.dir/xseq_tool.cpp.o.d"
  "example_xseq_tool"
  "example_xseq_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_xseq_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
