file(REMOVE_RECURSE
  "CMakeFiles/example_project_catalog.dir/project_catalog.cpp.o"
  "CMakeFiles/example_project_catalog.dir/project_catalog.cpp.o.d"
  "example_project_catalog"
  "example_project_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_project_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
