# Empty dependencies file for example_project_catalog.
# This may be replaced when dependencies are built.
