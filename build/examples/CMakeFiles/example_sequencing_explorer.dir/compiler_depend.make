# Empty compiler generated dependencies file for example_sequencing_explorer.
# This may be replaced when dependencies are built.
