file(REMOVE_RECURSE
  "CMakeFiles/example_sequencing_explorer.dir/sequencing_explorer.cpp.o"
  "CMakeFiles/example_sequencing_explorer.dir/sequencing_explorer.cpp.o.d"
  "example_sequencing_explorer"
  "example_sequencing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sequencing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
