file(REMOVE_RECURSE
  "CMakeFiles/example_bibliography.dir/bibliography.cpp.o"
  "CMakeFiles/example_bibliography.dir/bibliography.cpp.o.d"
  "example_bibliography"
  "example_bibliography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
