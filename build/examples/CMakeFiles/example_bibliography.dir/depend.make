# Empty dependencies file for example_bibliography.
# This may be replaced when dependencies are built.
