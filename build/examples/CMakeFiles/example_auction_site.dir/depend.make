# Empty dependencies file for example_auction_site.
# This may be replaced when dependencies are built.
