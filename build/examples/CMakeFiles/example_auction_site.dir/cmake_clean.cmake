file(REMOVE_RECURSE
  "CMakeFiles/example_auction_site.dir/auction_site.cpp.o"
  "CMakeFiles/example_auction_site.dir/auction_site.cpp.o.d"
  "example_auction_site"
  "example_auction_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_auction_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
