// LRU buffer pool over a PageFile, with fetch accounting.
//
// `misses` is the paper's "# disk accesses": the number of page fetches
// that had to go to the (simulated) disk. Clear() empties the pool so each
// query can be measured cold, as the paper's per-query numbers are.

#ifndef XSEQ_SRC_STORAGE_BUFFER_POOL_H_
#define XSEQ_SRC_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "src/storage/page.h"

namespace xseq {

/// LRU page cache.
class BufferPool {
 public:
  /// `capacity` in pages. The paper's machine had 256 MB of RAM; the
  /// default (1024 pages = 4 MiB) models a small dedicated pool.
  explicit BufferPool(const PageFile* file, uint32_t capacity = 1024)
      : file_(file), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Region split for reporting: misses on pages below the boundary are
  /// counted as index (link) reads, at/above as data (doc) reads.
  void SetRegionBoundary(uint32_t first_data_page) {
    boundary_ = first_data_page;
  }

  /// Fetches a page through the cache.
  const Page& Fetch(uint32_t page_id) {
    ++fetches_;
    auto it = map_.find(page_id);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return file_->page(page_id);
    }
    ++misses_;
    if (page_id < boundary_) {
      ++link_misses_;
    } else {
      ++data_misses_;
    }
    lru_.push_front(page_id);
    map_[page_id] = lru_.begin();
    if (lru_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    return file_->page(page_id);
  }

  /// Drops all cached pages (keeps counters).
  void Clear() {
    lru_.clear();
    map_.clear();
  }

  /// Zeroes the counters (keeps cache contents).
  void ResetCounters() {
    fetches_ = hits_ = misses_ = link_misses_ = data_misses_ = 0;
  }

  uint64_t fetches() const { return fetches_; }
  uint64_t hits() const { return hits_; }
  /// Simulated disk reads.
  uint64_t misses() const { return misses_; }
  /// Disk reads below / at-or-above the region boundary.
  uint64_t link_misses() const { return link_misses_; }
  uint64_t data_misses() const { return data_misses_; }
  uint32_t capacity() const { return capacity_; }

 private:
  const PageFile* file_;
  uint32_t capacity_;
  std::list<uint32_t> lru_;
  std::unordered_map<uint32_t, std::list<uint32_t>::iterator> map_;
  uint32_t boundary_ = 0xFFFFFFFFu;
  uint64_t fetches_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t link_misses_ = 0;
  uint64_t data_misses_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_STORAGE_BUFFER_POOL_H_
