// Simulated disk pages.
//
// The paper reports query cost in "# disk accesses" / "# pages" on a 2005
// PC. We reproduce the *shape* of those I/O curves with a simulated paged
// store: index structures are serialized into fixed 4 KiB pages and every
// query goes through an LRU buffer pool that counts page fetches. No real
// disk is involved (and none is needed — the metric is page touches).

#ifndef XSEQ_SRC_STORAGE_PAGE_H_
#define XSEQ_SRC_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/util/env.h"

namespace xseq {

/// Fixed page size (bytes).
inline constexpr uint32_t kPageSize = 4096;

/// One disk page.
struct Page {
  uint8_t data[kPageSize];
};

/// An in-memory "disk": a growable array of pages.
class PageFile {
 public:
  /// Appends a zeroed page; returns its id.
  uint32_t Allocate() {
    pages_.push_back(std::make_unique<Page>());
    std::memset(pages_.back()->data, 0, kPageSize);
    return static_cast<uint32_t>(pages_.size() - 1);
  }

  /// Grows the file to at least `n` pages.
  void EnsurePages(uint32_t n) {
    while (pages_.size() < n) Allocate();
  }

  Page* mutable_page(uint32_t id) { return pages_[id].get(); }
  const Page& page(uint32_t id) const { return *pages_[id]; }

  uint32_t page_count() const {
    return static_cast<uint32_t>(pages_.size());
  }
  uint64_t bytes() const {
    return static_cast<uint64_t>(pages_.size()) * kPageSize;
  }

  /// Spills the page file to a real file at `path` through `env`, with a
  /// per-page checksum table, using the same atomic temp-write + fsync +
  /// rename protocol as the index image (src/util/env.h).
  Status SaveTo(Env* env, const std::string& path) const;

  /// Reads back a SaveTo image. Verifies the magic, version, and every
  /// page checksum (errors name the damaged page); bounds the claimed
  /// page count against the actual file size before allocating.
  static StatusOr<PageFile> LoadFrom(Env* env, const std::string& path);

  /// Writes `len` bytes at absolute byte offset `off`, growing as needed.
  void WriteAt(uint64_t off, const void* src, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(src);
    while (len > 0) {
      uint32_t page_id = static_cast<uint32_t>(off / kPageSize);
      uint32_t in_page = static_cast<uint32_t>(off % kPageSize);
      EnsurePages(page_id + 1);
      size_t chunk = std::min<size_t>(len, kPageSize - in_page);
      std::memcpy(mutable_page(page_id)->data + in_page, p, chunk);
      p += chunk;
      off += chunk;
      len -= chunk;
    }
  }

 private:
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_STORAGE_PAGE_H_
