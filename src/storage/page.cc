#include "src/storage/page.h"

#include "src/util/coding.h"
#include "src/util/hash.h"

namespace xseq {

// Spill format (little-endian):
//   magic "XSEQPAGE" (8 bytes)
//   version (fixed32, currently 1)
//   page count (fixed32)
//   per-page FNV-1a64 checksums (count * fixed64)
//   raw pages (count * kPageSize)

namespace {

constexpr char kPageMagic[8] = {'X', 'S', 'E', 'Q', 'P', 'A', 'G', 'E'};
constexpr uint32_t kPageFormatVersion = 1;

}  // namespace

Status PageFile::SaveTo(Env* env, const std::string& path) const {
  std::string out(kPageMagic, sizeof(kPageMagic));
  PutFixed32(&out, kPageFormatVersion);
  PutFixed32(&out, page_count());
  out.reserve(out.size() + pages_.size() * (8 + kPageSize));
  for (const auto& p : pages_) {
    PutFixed64(&out, Fnv1a64(std::string_view(
                         reinterpret_cast<const char*>(p->data), kPageSize)));
  }
  for (const auto& p : pages_) {
    out.append(reinterpret_cast<const char*>(p->data), kPageSize);
  }
  return AtomicWriteFile(env, path, out);
}

StatusOr<PageFile> PageFile::LoadFrom(Env* env, const std::string& path) {
  std::string data;
  XSEQ_RETURN_IF_ERROR(env->ReadFileToString(path, &data));
  if (data.size() < sizeof(kPageMagic) ||
      std::memcmp(data.data(), kPageMagic, sizeof(kPageMagic)) != 0) {
    return Status::Corruption("not an xseq page file (bad magic)");
  }
  Decoder in(std::string_view(data).substr(sizeof(kPageMagic)));
  uint32_t version = 0, count = 0;
  XSEQ_RETURN_IF_ERROR(in.GetFixed32(&version));
  if (version > kPageFormatVersion) {
    return Status::Unimplemented("page file format version " +
                                 std::to_string(version) +
                                 " is newer than this build supports");
  }
  if (version != kPageFormatVersion) {
    return Status::Corruption("unsupported page file format version " +
                              std::to_string(version));
  }
  XSEQ_RETURN_IF_ERROR(in.GetFixed32(&count));
  // Bound the claimed count against the actual bytes present before any
  // allocation (each page costs 8 checksum bytes + kPageSize payload).
  if (count > in.remaining() / (8 + kPageSize)) {
    return Status::Corruption("page file claims " + std::to_string(count) +
                              " pages but only " +
                              std::to_string(in.remaining()) +
                              " bytes follow");
  }
  std::vector<uint64_t> checksums(count);
  for (uint32_t i = 0; i < count; ++i) {
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&checksums[i]));
  }
  PageFile file;
  file.pages_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view raw;
    XSEQ_RETURN_IF_ERROR(in.GetRaw(kPageSize, &raw));
    if (Fnv1a64(raw) != checksums[i]) {
      return Status::Corruption("checksum mismatch in page " +
                                std::to_string(i));
    }
    file.pages_.push_back(std::make_unique<Page>());
    std::memcpy(file.pages_.back()->data, raw.data(), kPageSize);
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes in page file");
  }
  return file;
}

}  // namespace xseq
