// Disk-resident form of the sequence index.
//
// Serializes a FrozenIndex into simulated pages. Links are stored in the
// same block-compressed form the in-memory index holds (link_codec.h):
//   * header region — per link block, its 16-byte LinkBlockHeader (base
//     serial, max end, word offset, bit widths). 16 divides the page size,
//     so headers never straddle a page; the cursor's block-skip tier costs
//     at most one page fetch per probe.
//   * word region   — the packed 64-bit payload words of all blocks, in
//     global block order. Words never straddle a page; a block's words are
//     contiguous, so decoding a block touches the minimal run of pages and
//     the decoded entries (serials, ends, covers) land in the match
//     context's LinkBlockCache — one decode serves an entire scan window.
//   * doc-offset region — per serial, the start offset of its doc list;
//   * doc region    — document ids grouped by node in serial order.
//
// Small metadata (per-path entry/block offsets, nested flags, region bases)
// stays in memory, like the link headers on the left of Fig. 8. Queries run
// the identical Algorithm 1 through a BufferPool, so the pool's miss
// counter is the paper's "# disk accesses" — and block compression packs
// several times more entries into each of those accesses than the old flat
// 8-byte-pair layout did.

#ifndef XSEQ_SRC_STORAGE_PAGED_INDEX_H_
#define XSEQ_SRC_STORAGE_PAGED_INDEX_H_

#include <vector>

#include "src/index/matcher.h"
#include "src/index/trie.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace xseq {

/// The paged index plus its simulated disk file.
class PagedIndex {
 public:
  /// Serializes `index` into pages, shipping its packed link blocks
  /// verbatim.
  static PagedIndex Build(const FrozenIndex& index);

  /// Runs Algorithm 1 against the paged representation, fetching pages
  /// through `pool`. Results and match statistics are identical to the
  /// in-memory matcher; I/O cost is observable via the pool's counters.
  /// `ctx`, when given, supplies reusable scratch (see MatchContext).
  Status Match(const QuerySeq& query, MatchMode mode, BufferPool* pool,
               std::vector<DocId>* out, MatchStats* stats = nullptr,
               MatchContext* ctx = nullptr) const;

  const PageFile& file() const { return file_; }
  uint32_t node_count() const { return node_count_; }

  /// Link entries stored (== node count: links partition the nodes).
  uint64_t link_entries() const {
    return link_off_.empty() ? 0 : link_off_.back();
  }

  /// Pages in each region and in total. The "link" region spans the block
  /// headers and the packed words.
  uint32_t link_pages() const { return doc_off_base_ - link_base_; }
  uint32_t header_pages() const { return word_base_ - link_base_; }
  uint32_t word_pages() const { return doc_off_base_ - word_base_; }
  uint32_t total_pages() const { return file_.page_count(); }
  /// First page of the doc-offset region (pass to
  /// BufferPool::SetRegionBoundary to split I/O accounting; the header and
  /// word regions both count as index-side).
  uint32_t first_data_page() const { return doc_off_base_; }

 private:
  PageFile file_;
  uint32_t node_count_ = 0;
  // Process-unique identity (FrozenIndex::NextIndexCacheId space) so a
  // MatchContext reused across queries retains decoded blocks for this
  // index and drops them when rebound to any other.
  uint64_t cache_id_ = 0;
  // Per-path link directory (entry / block index into the link region) +
  // flags.
  std::vector<uint32_t> link_off_;        // size max_path+2
  std::vector<uint32_t> link_block_off_;  // size max_path+2
  std::vector<uint8_t> nested_;
  // Region base page ids.
  uint32_t link_base_ = 0;
  uint32_t word_base_ = 0;
  uint32_t doc_off_base_ = 0;
  uint32_t doc_base_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_STORAGE_PAGED_INDEX_H_
