// Disk-resident form of the sequence index.
//
// Serializes a FrozenIndex into simulated pages:
//   * link region  — per path, the (serial, end) label pairs of its
//     horizontal link, contiguous (Fig. 8's linked lists, laid out flat for
//     binary search);
//   * cover region — per link entry, the link-local index of its tightest
//     enclosing occurrence (the nesting forest; kNoLinkCover when none),
//     giving the paged sibling-cover test the same O(1) resolution as the
//     in-memory index;
//   * doc-offset region — per serial, the start offset of its doc list;
//   * doc region   — document ids grouped by node in serial order.
//
// Small metadata (per-path entry offsets, nested flags, region bases) stays
// in memory, like the link headers on the left of Fig. 8. Queries run the
// identical Algorithm 1 through a BufferPool, so the pool's miss counter is
// the paper's "# disk accesses".

#ifndef XSEQ_SRC_STORAGE_PAGED_INDEX_H_
#define XSEQ_SRC_STORAGE_PAGED_INDEX_H_

#include <vector>

#include "src/index/matcher.h"
#include "src/index/trie.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/page.h"

namespace xseq {

/// The paged index plus its simulated disk file.
class PagedIndex {
 public:
  /// Serializes `index` into pages.
  static PagedIndex Build(const FrozenIndex& index);

  /// Runs Algorithm 1 against the paged representation, fetching pages
  /// through `pool`. Results and match statistics are identical to the
  /// in-memory matcher; I/O cost is observable via the pool's counters.
  /// `ctx`, when given, supplies reusable scratch (see MatchContext).
  Status Match(const QuerySeq& query, MatchMode mode, BufferPool* pool,
               std::vector<DocId>* out, MatchStats* stats = nullptr,
               MatchContext* ctx = nullptr) const;

  const PageFile& file() const { return file_; }
  uint32_t node_count() const { return node_count_; }

  /// Pages in each region (link / cover / doc-offset / doc) and in total.
  uint32_t link_pages() const { return cover_base_ - link_base_; }
  uint32_t cover_pages() const { return doc_off_base_ - cover_base_; }
  uint32_t total_pages() const { return file_.page_count(); }
  /// First page of the doc-offset region (pass to
  /// BufferPool::SetRegionBoundary to split I/O accounting; the link and
  /// cover regions both count as index-side).
  uint32_t first_data_page() const { return doc_off_base_; }

 private:
  friend class PagedAccessor;

  PageFile file_;
  uint32_t node_count_ = 0;
  // Per-path link directory (entry index into the link region) + flags.
  std::vector<uint32_t> link_off_;  // size max_path+2
  std::vector<uint8_t> nested_;
  // Region base page ids.
  uint32_t link_base_ = 0;
  uint32_t cover_base_ = 0;
  uint32_t doc_off_base_ = 0;
  uint32_t doc_base_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_STORAGE_PAGED_INDEX_H_
