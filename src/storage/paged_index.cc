#include "src/storage/paged_index.h"

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Bytes per link entry: (serial, end).
constexpr uint64_t kLinkEntryBytes = 8;
/// Bytes per doc-offset entry and per doc id.
constexpr uint64_t kWordBytes = 4;

}  // namespace

PagedIndex PagedIndex::Build(const FrozenIndex& index) {
  PagedIndex out;
  out.node_count_ = static_cast<uint32_t>(index.node_count());

  size_t paths = index.distinct_paths();
  out.link_off_.assign(paths + 1, 0);
  out.nested_.assign(paths, 0);

  // Link region: per path, fused (serial, end) pairs in link order.
  out.link_base_ = 0;
  uint64_t entry_cursor = 0;
  for (PathId p = 0; p < paths; ++p) {
    out.link_off_[p] = static_cast<uint32_t>(entry_cursor);
    out.nested_[p] = index.HasNested(p) ? 1 : 0;
    for (const FrozenIndex::LinkEntry& e : index.Link(p)) {
      uint32_t pair[2] = {e.serial, e.end};
      out.file_.WriteAt(entry_cursor * kLinkEntryBytes, pair, sizeof(pair));
      ++entry_cursor;
    }
  }
  out.link_off_[paths] = static_cast<uint32_t>(entry_cursor);

  uint64_t link_bytes = entry_cursor * kLinkEntryBytes;
  out.cover_base_ =
      static_cast<uint32_t>((link_bytes + kPageSize - 1) / kPageSize);

  // Cover region: the nesting forest, one word per link entry, in the same
  // entry order as the link region.
  uint64_t cover_cursor = 0;
  for (PathId p = 0; p < paths; ++p) {
    for (uint32_t cover : index.LinkCover(p)) {
      out.file_.WriteAt(static_cast<uint64_t>(out.cover_base_) * kPageSize +
                            cover_cursor * kWordBytes,
                        &cover, sizeof(cover));
      ++cover_cursor;
    }
  }
  uint64_t cover_bytes = cover_cursor * kWordBytes;
  out.doc_off_base_ =
      out.cover_base_ +
      static_cast<uint32_t>((cover_bytes + kPageSize - 1) / kPageSize);

  // Doc-offset region: node_docs_off[serial], plus the final sentinel.
  uint64_t doc_off_bytes =
      (static_cast<uint64_t>(out.node_count_) + 1) * kWordBytes;
  for (uint32_t s = 0; s <= out.node_count_; ++s) {
    uint32_t off = s < out.node_count_
                       ? index.DocOffsetsInSubtree(s).first
                       : index.total_docs();
    out.file_.WriteAt(
        static_cast<uint64_t>(out.doc_off_base_) * kPageSize +
            static_cast<uint64_t>(s) * kWordBytes,
        &off, sizeof(off));
  }

  out.doc_base_ = out.doc_off_base_ +
                  static_cast<uint32_t>(
                      (doc_off_bytes + kPageSize - 1) / kPageSize);

  // Doc region.
  for (uint32_t i = 0; i < index.total_docs(); ++i) {
    DocId d = index.doc_at(i);
    out.file_.WriteAt(static_cast<uint64_t>(out.doc_base_) * kPageSize +
                          static_cast<uint64_t>(i) * kWordBytes,
                      &d, sizeof(d));
  }
  // Materialize at least the metadata pages even for an empty index.
  out.file_.EnsurePages(out.doc_base_ + 1);
  return out;
}

namespace {

/// Accessor running Algorithm 1 against pages through a BufferPool.
class PagedAccessor {
 public:
  PagedAccessor(const PagedIndex& idx, const PageFile& file,
                const std::vector<uint32_t>& link_off,
                const std::vector<uint8_t>& nested, uint32_t nodes,
                uint32_t cover_base, uint32_t doc_off_base,
                uint32_t doc_base, BufferPool* pool)
      : idx_(idx),
        file_(file),
        link_off_(link_off),
        nested_(nested),
        nodes_(nodes),
        cover_base_(cover_base),
        doc_off_base_(doc_off_base),
        doc_base_(doc_base),
        pool_(pool) {}

  uint32_t node_count() const { return nodes_; }

  uint32_t LinkSize(PathId p) const {
    if (p + 1 >= link_off_.size()) return 0;
    return link_off_[p + 1] - link_off_[p];
  }

  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return ReadWord(EntryByte(p, i));
  }

  uint32_t LinkEnd(PathId p, uint32_t i) const {
    return ReadWord(EntryByte(p, i) + 4);
  }

  uint32_t LinkCover(PathId p, uint32_t i) const {
    return ReadWord(static_cast<uint64_t>(cover_base_) * kPageSize +
                    (static_cast<uint64_t>(link_off_[p]) + i) * kWordBytes);
  }

  bool HasNested(PathId p) const {
    return p < nested_.size() && nested_[p] != 0;
  }

  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    uint64_t base = static_cast<uint64_t>(doc_off_base_) * kPageSize;
    uint32_t lo = ReadWord(base + static_cast<uint64_t>(serial) * 4);
    uint32_t hi = ReadWord(base + static_cast<uint64_t>(end + 1) * 4);
    return {lo, hi};
  }

  DocId DocAt(uint32_t offset) const {
    return ReadWord(static_cast<uint64_t>(doc_base_) * kPageSize +
                    static_cast<uint64_t>(offset) * 4);
  }

 private:
  uint64_t EntryByte(PathId p, uint32_t i) const {
    return (static_cast<uint64_t>(link_off_[p]) + i) * 8;
  }

  uint32_t ReadWord(uint64_t byte_off) const {
    uint32_t page_id = static_cast<uint32_t>(byte_off / kPageSize);
    uint32_t in_page = static_cast<uint32_t>(byte_off % kPageSize);
    const Page& page = pool_->Fetch(page_id);
    uint32_t v;
    std::memcpy(&v, page.data + in_page, sizeof(v));
    return v;
  }

  const PagedIndex& idx_;
  const PageFile& file_;
  const std::vector<uint32_t>& link_off_;
  const std::vector<uint8_t>& nested_;
  uint32_t nodes_;
  uint32_t cover_base_;
  uint32_t doc_off_base_;
  uint32_t doc_base_;
  BufferPool* pool_;
};

}  // namespace

namespace {

/// Registry handles for the buffer-pool metrics, resolved once. Fed as
/// per-Match deltas of the BufferPool's own counters, so callers that
/// ResetCounters() between queries do not disturb the registry totals.
struct PagedMetricSet {
  obs::Counter* matches;
  obs::Counter* fetches;
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* link_misses;
  obs::Counter* data_misses;
};

const PagedMetricSet& PagedMetrics() {
  static const PagedMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return PagedMetricSet{r->GetCounter("xseq.paged.matches"),
                          r->GetCounter("xseq.paged.fetches"),
                          r->GetCounter("xseq.paged.hits"),
                          r->GetCounter("xseq.paged.misses"),
                          r->GetCounter("xseq.paged.link_misses"),
                          r->GetCounter("xseq.paged.data_misses")};
  }();
  return s;
}

}  // namespace

Status PagedIndex::Match(const QuerySeq& query, MatchMode mode,
                         BufferPool* pool, std::vector<DocId>* out,
                         MatchStats* stats, MatchContext* ctx) const {
  const bool metrics = obs::MetricsEnabled();
  uint64_t fetches = 0, hits = 0, misses = 0, link_misses = 0,
           data_misses = 0;
  if (metrics) {
    fetches = pool->fetches();
    hits = pool->hits();
    misses = pool->misses();
    link_misses = pool->link_misses();
    data_misses = pool->data_misses();
  }
  PagedAccessor acc(*this, file_, link_off_, nested_, node_count_,
                    cover_base_, doc_off_base_, doc_base_, pool);
  Status st = internal::MatchCore(acc, query, mode, out, stats, ctx);
  if (metrics) {
    const PagedMetricSet& m = PagedMetrics();
    m.matches->Increment();
    m.fetches->Add(pool->fetches() - fetches);
    m.hits->Add(pool->hits() - hits);
    m.misses->Add(pool->misses() - misses);
    m.link_misses->Add(pool->link_misses() - link_misses);
    m.data_misses->Add(pool->data_misses() - data_misses);
  }
  return st;
}

}  // namespace xseq
