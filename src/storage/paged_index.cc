#include "src/storage/paged_index.h"

#include <cstring>

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Bytes per block header in the header region.
constexpr uint64_t kHeaderBytes = sizeof(LinkBlockHeader);
/// Bytes per packed word in the word region.
constexpr uint64_t kPackedWordBytes = sizeof(uint64_t);
/// Bytes per doc-offset entry and per doc id.
constexpr uint64_t kWordBytes = 4;

static_assert(kPageSize % kHeaderBytes == 0,
              "block headers must not straddle pages");
static_assert(kPageSize % kPackedWordBytes == 0,
              "packed words must not straddle pages");

}  // namespace

PagedIndex PagedIndex::Build(const FrozenIndex& index) {
  PagedIndex out;
  out.node_count_ = static_cast<uint32_t>(index.node_count());
  out.cache_id_ = FrozenIndex::NextIndexCacheId();

  size_t paths = index.distinct_paths();
  out.link_off_.assign(paths + 1, 0);
  out.link_block_off_.assign(paths + 1, 0);
  out.nested_.assign(paths, 0);
  uint64_t entry_cursor = 0, block_cursor = 0;
  for (PathId p = 0; p < paths; ++p) {
    out.link_off_[p] = static_cast<uint32_t>(entry_cursor);
    out.link_block_off_[p] = static_cast<uint32_t>(block_cursor);
    out.nested_[p] = index.HasNested(p) ? 1 : 0;
    entry_cursor += index.LinkSize(p);
    block_cursor += index.LinkBlocks(p);
  }
  out.link_off_[paths] = static_cast<uint32_t>(entry_cursor);
  out.link_block_off_[paths] = static_cast<uint32_t>(block_cursor);

  // Header region: the packed block headers verbatim, in global block
  // order (concatenated per-path runs).
  out.link_base_ = 0;
  std::span<const LinkBlockHeader> blocks = index.link_blocks();
  for (size_t b = 0; b < blocks.size(); ++b) {
    out.file_.WriteAt(b * kHeaderBytes, &blocks[b], sizeof(blocks[b]));
  }
  uint64_t header_bytes = blocks.size() * kHeaderBytes;
  out.word_base_ =
      static_cast<uint32_t>((header_bytes + kPageSize - 1) / kPageSize);

  // Word region: the packed payload words verbatim; headers address them
  // by their global word_off.
  std::span<const uint64_t> words = index.link_words();
  for (size_t w = 0; w < words.size(); ++w) {
    out.file_.WriteAt(static_cast<uint64_t>(out.word_base_) * kPageSize +
                          w * kPackedWordBytes,
                      &words[w], sizeof(words[w]));
  }
  uint64_t word_bytes = words.size() * kPackedWordBytes;
  out.doc_off_base_ =
      out.word_base_ +
      static_cast<uint32_t>((word_bytes + kPageSize - 1) / kPageSize);

  // Doc-offset region: node_docs_off[serial], plus the final sentinel.
  uint64_t doc_off_bytes =
      (static_cast<uint64_t>(out.node_count_) + 1) * kWordBytes;
  for (uint32_t s = 0; s <= out.node_count_; ++s) {
    uint32_t off = s < out.node_count_
                       ? index.DocOffsetsInSubtree(s).first
                       : index.total_docs();
    out.file_.WriteAt(
        static_cast<uint64_t>(out.doc_off_base_) * kPageSize +
            static_cast<uint64_t>(s) * kWordBytes,
        &off, sizeof(off));
  }

  out.doc_base_ = out.doc_off_base_ +
                  static_cast<uint32_t>(
                      (doc_off_bytes + kPageSize - 1) / kPageSize);

  // Doc region.
  for (uint32_t i = 0; i < index.total_docs(); ++i) {
    DocId d = index.doc_at(i);
    out.file_.WriteAt(static_cast<uint64_t>(out.doc_base_) * kPageSize +
                          static_cast<uint64_t>(i) * kWordBytes,
                      &d, sizeof(d));
  }
  // Materialize at least the metadata pages even for an empty index.
  out.file_.EnsurePages(out.doc_base_ + 1);
  return out;
}

namespace {

/// Accessor running Algorithm 1 against pages through a BufferPool. Block
/// header reads fetch one page; entry reads decode the owning block —
/// header plus its packed-word run — into the bound LinkBlockCache, so the
/// pool sees one short page burst per block instead of one fetch per entry.
class PagedAccessor {
 public:
  PagedAccessor(const std::vector<uint32_t>& link_off,
                const std::vector<uint32_t>& link_block_off,
                const std::vector<uint8_t>& nested, uint32_t nodes,
                uint32_t word_base, uint32_t doc_off_base,
                uint32_t doc_base, uint64_t cache_id, BufferPool* pool)
      : link_off_(link_off),
        link_block_off_(link_block_off),
        nested_(nested),
        nodes_(nodes),
        word_base_(word_base),
        doc_off_base_(doc_off_base),
        doc_base_(doc_base),
        cache_id_(cache_id),
        pool_(pool) {}

  void BindCache(LinkBlockCache* cache) { cache_ = cache; }

  uint32_t node_count() const { return nodes_; }

  uint32_t LinkSize(PathId p) const {
    if (p + 1 >= link_off_.size()) return 0;
    return link_off_[p + 1] - link_off_[p];
  }

  uint32_t LinkBlockBaseSerial(PathId p, uint32_t b) const {
    // base_serial is the header's first field.
    return ReadWord(HeaderByte(p, b));
  }

  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return Block(p, i, kStreamSerials).serials[i & (kLinkBlockSize - 1)];
  }

  uint32_t LinkEnd(PathId p, uint32_t i) const {
    return Block(p, i, kStreamEnds).ends[i & (kLinkBlockSize - 1)];
  }

  uint32_t LinkCover(PathId p, uint32_t i) const {
    return Block(p, i, kStreamCovers).covers[i & (kLinkBlockSize - 1)];
  }

  bool HasNested(PathId p) const {
    return p < nested_.size() && nested_[p] != 0;
  }

  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    uint64_t base = static_cast<uint64_t>(doc_off_base_) * kPageSize;
    uint32_t lo = ReadWord(base + static_cast<uint64_t>(serial) * 4);
    uint32_t hi = ReadWord(base + static_cast<uint64_t>(end + 1) * 4);
    return {lo, hi};
  }

  DocId DocAt(uint32_t offset) const {
    return ReadWord(static_cast<uint64_t>(doc_base_) * kPageSize +
                    static_cast<uint64_t>(offset) * 4);
  }

  LinkColumns LinkBlockColumns(PathId p, uint32_t b,
                               uint32_t streams) const {
    const LinkBlockScratch& s = BlockAt(p, b, streams);
    return {s.serials, s.ends, s.covers};
  }

  uint64_t DecodeStamp() const { return cache_->decode_stamp(); }

  uint64_t CacheIdentity() const { return cache_id_; }

 private:
  uint64_t HeaderByte(PathId p, uint32_t b) const {
    return (static_cast<uint64_t>(link_block_off_[p]) + b) *
           sizeof(LinkBlockHeader);
  }

  const LinkBlockScratch& Block(PathId p, uint32_t i,
                                uint32_t streams) const {
    return BlockAt(p, i / kLinkBlockSize, streams);
  }

  const LinkBlockScratch& BlockAt(PathId p, uint32_t b,
                                  uint32_t streams) const {
    // Page fetches dominate a paged decode, and the words are already
    // staged once fetched — decode all three streams unconditionally.
    return cache_->Get(p, b, streams,
                       [this](PathId path, uint32_t blk, uint32_t missing,
                              LinkBlockScratch* out) {
                         (void)missing;
                         DecodeBlock(path, blk, out);
                         return kStreamAll;
                       });
  }

  void DecodeBlock(PathId p, uint32_t b, LinkBlockScratch* out) const {
    // Headers never straddle pages: one fetch lifts the whole header.
    uint64_t hbyte = HeaderByte(p, b);
    const Page& hpage =
        pool_->Fetch(static_cast<uint32_t>(hbyte / kPageSize));
    LinkBlockHeader h;
    std::memcpy(&h, hpage.data + hbyte % kPageSize, sizeof(h));
    // Stage the block's packed words on the stack (a block's words are
    // contiguous but may cross a page boundary), then decode once.
    uint64_t words[kMaxLinkBlockWords];
    const uint32_t nwords = LinkBlockWords(h);
    uint64_t wbyte = static_cast<uint64_t>(word_base_) * kPageSize +
                     static_cast<uint64_t>(h.word_off) * kPackedWordBytes;
    for (uint32_t w = 0; w < nwords; ++w, wbyte += kPackedWordBytes) {
      const Page& page =
          pool_->Fetch(static_cast<uint32_t>(wbyte / kPageSize));
      std::memcpy(&words[w], page.data + wbyte % kPageSize,
                  sizeof(words[w]));
    }
    UnpackLinkBlock(h, words, b * kLinkBlockSize, out);
  }

  uint32_t ReadWord(uint64_t byte_off) const {
    uint32_t page_id = static_cast<uint32_t>(byte_off / kPageSize);
    uint32_t in_page = static_cast<uint32_t>(byte_off % kPageSize);
    const Page& page = pool_->Fetch(page_id);
    uint32_t v;
    std::memcpy(&v, page.data + in_page, sizeof(v));
    return v;
  }

  const std::vector<uint32_t>& link_off_;
  const std::vector<uint32_t>& link_block_off_;
  const std::vector<uint8_t>& nested_;
  uint32_t nodes_;
  uint32_t word_base_;
  uint32_t doc_off_base_;
  uint32_t doc_base_;
  uint64_t cache_id_;
  BufferPool* pool_;
  LinkBlockCache* cache_ = nullptr;
};

}  // namespace

namespace {

/// Registry handles for the buffer-pool metrics, resolved once. Fed as
/// per-Match deltas of the BufferPool's own counters, so callers that
/// ResetCounters() between queries do not disturb the registry totals.
struct PagedMetricSet {
  obs::Counter* matches;
  obs::Counter* fetches;
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* link_misses;
  obs::Counter* data_misses;
};

const PagedMetricSet& PagedMetrics() {
  static const PagedMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return PagedMetricSet{r->GetCounter("xseq.paged.matches"),
                          r->GetCounter("xseq.paged.fetches"),
                          r->GetCounter("xseq.paged.hits"),
                          r->GetCounter("xseq.paged.misses"),
                          r->GetCounter("xseq.paged.link_misses"),
                          r->GetCounter("xseq.paged.data_misses")};
  }();
  return s;
}

}  // namespace

Status PagedIndex::Match(const QuerySeq& query, MatchMode mode,
                         BufferPool* pool, std::vector<DocId>* out,
                         MatchStats* stats, MatchContext* ctx) const {
  const bool metrics = obs::MetricsEnabled();
  uint64_t fetches = 0, hits = 0, misses = 0, link_misses = 0,
           data_misses = 0;
  if (metrics) {
    fetches = pool->fetches();
    hits = pool->hits();
    misses = pool->misses();
    link_misses = pool->link_misses();
    data_misses = pool->data_misses();
  }
  PagedAccessor acc(link_off_, link_block_off_, nested_, node_count_,
                    word_base_, doc_off_base_, doc_base_, cache_id_, pool);
  Status st = internal::MatchCore(acc, query, mode, out, stats, ctx);
  if (metrics) {
    const PagedMetricSet& m = PagedMetrics();
    m.matches->Increment();
    m.fetches->Add(pool->fetches() - fetches);
    m.hits->Add(pool->hits() - hits);
    m.misses->Add(pool->misses() - misses);
    m.link_misses->Add(pool->link_misses() - link_misses);
    m.data_misses->Add(pool->data_misses() - data_misses);
  }
  return st;
}

}  // namespace xseq
