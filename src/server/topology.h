// TopologyManager: zero-downtime generation hot-swap for a serving process.
//
// A serving process holds exactly one *live* ShardedCollection image — the
// generation. Reload(prefix) brings up a successor without dropping a
// request:
//
//  1. Validate the on-disk image offline: manifest magic/checksum/version,
//     then (optionally) every shard file's per-section checksums via the
//     single-index inspector — a corrupt byte anywhere names the shard and
//     aborts before any memory is committed.
//  2. Load the candidate collection into memory, next to the live one.
//  3. Canary it: a configurable query set runs against the *candidate*
//     only. A canary that errors — or returns a doc count different from
//     its pinned expectation — rejects the image.
//  4. Swap: a shared_ptr assignment under a mutex. Queries that already
//     hold the old generation finish on it (RCU-style — the shared_ptr
//     keeps the old image alive until the last in-flight query drops it);
//     queries that start after the swap see the new one.
//
// Any failure in steps 1-3 is an automatic rollback: the live pointer is
// never touched, serving continues on the old generation, and the error
// (naming the failing shard / canary) travels back to the reload caller.
//
// generation() folds a swap *epoch* into the collection's own mutation
// counter: (epoch << 32) | collection-generation. The result-cache layer
// keys entries by this value, so a swap retires every cached answer even
// when the new image reports the same internal counter as the old.
//
// Thread-safety: Current()/Query()/generation() may race freely with each
// other and with Reload(). Reloads serialize among themselves.

#ifndef XSEQ_SRC_SERVER_TOPOLOGY_H_
#define XSEQ_SRC_SERVER_TOPOLOGY_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/server/sharded_collection.h"

namespace xseq {

/// One validation query run against a candidate image before it goes live.
struct CanaryQuery {
  std::string xpath;
  /// Expected answer size; -1 = any size is fine (the query just has to
  /// execute without error).
  int64_t expect_docs = -1;
};

/// Hot-swap knobs.
struct TopologyOptions {
  /// Scatter-gather width handed to ShardedCollection::Load.
  int threads = 0;
  PersistOptions persist;
  /// Re-verify every shard file's section checksums before loading. Costs
  /// one extra read pass per shard; catches torn/corrupt replicas with a
  /// shard-naming error instead of a mid-load failure.
  bool verify_images = true;
  std::vector<CanaryQuery> canaries;
};

class TopologyManager {
 public:
  explicit TopologyManager(TopologyOptions options = {});

  /// Installs an already-built collection as the live generation (initial
  /// startup, or tests). `prefix` is remembered as the default reload
  /// source; empty means the generation has no on-disk home.
  void Install(std::shared_ptr<const ShardedCollection> collection,
               std::string prefix = "");

  /// Validate → load → canary → swap; see the file comment. Returns the
  /// new generation() on success. On any failure the live generation is
  /// untouched (automatic rollback) and the error names the culprit.
  /// Reloads serialize; queries never block on a reload.
  StatusOr<uint64_t> Reload(const std::string& prefix);

  /// The live generation (null before the first Install/Reload). Holding
  /// the returned pointer pins the image: a concurrent swap retires it
  /// only after the last holder lets go.
  std::shared_ptr<const ShardedCollection> Current() const;

  /// Queries the live generation; kFailedPrecondition when none is
  /// installed yet.
  StatusOr<QueryResult> Query(std::string_view xpath,
                              const ExecOptions& options = {}) const;

  /// Cache-invalidation token: (swap epoch << 32) | (live collection's own
  /// generation & 0xffffffff); 0 while no generation is installed.
  uint64_t generation() const;

  /// Number of successful Install/Reload swaps so far.
  uint64_t epoch() const;

  /// On-disk prefix of the live generation ("" when none/unknown). The
  /// default source for an argument-less reload (SIGHUP).
  std::string prefix() const;

  const TopologyOptions& options() const { return options_; }

 private:
  /// Offline validation of every shard image named by the manifest.
  Status VerifyImages(const std::string& prefix, uint32_t shard_count) const;
  /// Runs the canary set against `candidate`.
  Status RunCanaries(const ShardedCollection& candidate) const;

  TopologyOptions options_;

  mutable std::mutex mu_;  ///< guards current_/epoch_/prefix_
  std::shared_ptr<const ShardedCollection> current_;
  uint64_t epoch_ = 0;
  std::string prefix_;

  std::mutex reload_mu_;  ///< serializes Reload() pipelines
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_TOPOLOGY_H_
