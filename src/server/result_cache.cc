#include "src/server/result_cache.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/hash.h"

namespace xseq {

namespace {

struct ResultMetricSet {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Gauge* entries;
  obs::Gauge* bytes;
};

const ResultMetricSet& ResultMetrics() {
  static const ResultMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return ResultMetricSet{r->GetCounter("xseq.result_cache.hits"),
                           r->GetCounter("xseq.result_cache.misses"),
                           r->GetCounter("xseq.result_cache.insertions"),
                           r->GetCounter("xseq.result_cache.evictions"),
                           r->GetGauge("xseq.result_cache.entries"),
                           r->GetGauge("xseq.result_cache.bytes")};
  }();
  return s;
}

std::string FullKey(uint64_t generation, std::string_view query) {
  std::string full;
  full.reserve(sizeof(generation) + query.size());
  full.append(reinterpret_cast<const char*>(&generation), sizeof(generation));
  full.append(query);
  return full;
}

size_t ResultBytes(const QueryResult& r) {
  return sizeof(QueryResult) + r.docs.size() * sizeof(DocId);
}

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options) {
  size_t n = std::max<size_t>(1, options_.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_entry_budget_ = std::max<size_t>(1, options_.max_entries / n);
  shard_byte_budget_ = std::max<size_t>(1, options_.max_bytes / n);
}

ResultCache::Shard& ResultCache::ShardFor(std::string_view full_key) {
  return *shards_[Fnv1a64(full_key) % shards_.size()];
}

std::shared_ptr<const QueryResult> ResultCache::Lookup(uint64_t generation,
                                                       std::string_view query) {
  std::string full = FullKey(generation, query);
  Shard& s = ShardFor(full);
  std::shared_ptr<const QueryResult> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(full);
    if (it == s.index.end()) {
      ++s.misses;
    } else {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      out = it->second->result;
    }
  }
  if (obs::MetricsEnabled()) {
    (out != nullptr ? ResultMetrics().hits : ResultMetrics().misses)
        ->Increment();
  }
  return out;
}

void ResultCache::Insert(uint64_t generation, std::string_view query,
                         QueryResult result) {
  size_t bytes = ResultBytes(result);
  if (bytes > options_.max_entry_bytes) return;
  std::string full = FullKey(generation, query);
  Shard& s = ShardFor(full);
  int64_t entry_delta = 0;
  int64_t byte_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    size_t entries_before = s.lru.size();
    size_t bytes_before = s.bytes;
    auto it = s.index.find(full);
    if (it != s.index.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
    }
    s.lru.push_front(Entry{
        std::move(full),
        std::make_shared<const QueryResult>(std::move(result)), bytes});
    s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
    s.bytes += bytes;
    ++s.insertions;
    uint64_t evictions_before = s.evictions;
    EvictLocked(&s);
    evicted = s.evictions - evictions_before;
    entry_delta = static_cast<int64_t>(s.lru.size()) -
                  static_cast<int64_t>(entries_before);
    byte_delta =
        static_cast<int64_t>(s.bytes) - static_cast<int64_t>(bytes_before);
  }
  if (obs::MetricsEnabled()) {
    const ResultMetricSet& m = ResultMetrics();
    m.insertions->Increment();
    if (evicted > 0) m.evictions->Add(evicted);
    m.entries->Add(entry_delta);
    m.bytes->Add(byte_delta);
  }
}

void ResultCache::EvictLocked(Shard* s) {
  while (!s->lru.empty() && (s->lru.size() > shard_entry_budget_ ||
                             s->bytes > shard_byte_budget_)) {
    if (s->lru.size() == 1) break;  // keep the entry just inserted
    Entry& victim = s->lru.back();
    s->bytes -= victim.bytes;
    s->index.erase(std::string_view(victim.key));
    s->lru.pop_back();
    ++s->evictions;
  }
}

void ResultCache::Clear() {
  int64_t entry_delta = 0;
  int64_t byte_delta = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    entry_delta -= static_cast<int64_t>(s.lru.size());
    byte_delta -= static_cast<int64_t>(s.bytes);
    s.index.clear();
    s.lru.clear();
    s.bytes = 0;
  }
  if (obs::MetricsEnabled() && (entry_delta != 0 || byte_delta != 0)) {
    ResultMetrics().entries->Add(entry_delta);
    ResultMetrics().bytes->Add(byte_delta);
  }
}

ResultCache::Stats ResultCache::GetStats() const {
  Stats out;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.entries += s.lru.size();
    out.bytes += s.bytes;
  }
  return out;
}

}  // namespace xseq
