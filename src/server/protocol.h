// The xseq wire protocol: a length-prefixed, checksummed binary framing
// with nine operations (query, stats, ping, shutdown, reload, metrics,
// delete, update, compact), spoken over any Connection
// (src/server/socket.h).
//
// Frame layout (all integers little-endian; byte offsets from frame start):
//
//   offset 0   u32  body length N (bytes of `body` only; capped at
//                   kMaxFrameBody so an adversarial length can never force
//                   a large allocation)
//   offset 4   u64  FNV-1a64 checksum of the N body bytes
//   offset 12  body (N bytes)
//
// Body layout, shared prefix (offsets within the body):
//
//   offset 0   u8   protocol version (kMinWireVersion..kWireVersion both
//                   accepted; responses are encoded at the *request's*
//                   version, so a v3 peer keeps talking v3). A version
//                   outside the range — older or newer — gets a clean
//                   kUnimplemented naming both versions, never a
//                   corruption error or a hang
//   offset 1   u8   op (WireOp)
//   offset 2   u64  request id, echoed verbatim in the response
//   offset 10  op-specific payload
//
// Request payloads:
//   query:    string xpath (u64 length + bytes), u64 deadline budget in
//             microseconds (relative to receipt; 0 = none). v4 appends a
//             u8 flag set (bit 0 = trace context follows, bit 1 = the
//             caller wants an explain in the response) and, under bit 0,
//             the trace context: u64 trace id, u64 parent span id, u8
//             sampled.
//   reload:   string image prefix (empty = reload the prefix the server is
//             currently serving)
//   delete:   u64 document id (v5+)
//   update:   u64 document id, string replacement XML (v5+)
//   stats / ping / shutdown / metrics / compact: empty
//
// Response payloads (after a u8 status code + string error message; the
// payload is present only when the status is OK):
//   query:    u64 doc count, u64 per doc id, then WireQueryStats (14
//             fixed64 fields, see EncodeTo). v4 appends a u8 flag set
//             (bit 0 = an embedded server-side trace follows, bit 1 = a
//             QueryExplain follows) and the flagged sections, so a
//             sampled caller can stitch the server's spans under its own
//             trace.
//   stats:    string (MetricsRegistry::JsonDump of the serving process)
//   reload:   u64 generation now being served
//   metrics:  string (Prometheus text exposition; v4+)
//   delete / update / compact: u64 generation after the mutation (v5+),
//             so callers can tie cache invalidation to the ack
//   ping / shutdown: empty
//
// Checksums make torn frames (a peer dying mid-write) indistinguishable
// from corruption — both are rejected without crashing; the framing layer
// never trusts a length or a byte that has not been validated.

#ifndef XSEQ_SRC_SERVER_PROTOCOL_H_
#define XSEQ_SRC_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/query/executor.h"
#include "src/server/socket.h"
#include "src/util/status.h"
#include "src/xml/symbols.h"

namespace xseq {

// Version history:
//   1 — initial protocol (11-field WireQueryStats)
//   2 — WireQueryStats gained plan_cache_hits / result_cache_hits /
//       pruned_instantiations (14 fixed64 fields)
//   3 — reload op (generation hot-swap); version mismatches in either
//       direction now decode to kUnimplemented naming both versions
//       (older builds reported an old client as kCorruption)
//   4 — distributed tracing (query requests may carry a trace context,
//       query responses may embed the server-side span tree), query
//       explain (request flag + response section), and the metrics op
//       (Prometheus text exposition). First version to accept a *range*:
//       v3 bodies still decode and are answered with v3 bodies, so old
//       peers interoperate without the new sections.
//   5 — mutation ops for dynamic backends: delete (tombstone every live
//       document with an id), update (atomic delete + re-add), compact
//       (purge tombstones, merge segments). Each acks with the backend
//       generation after the mutation. The ops are gated on the body
//       version: a v3/v4 body carrying op >= 7 is corrupt (those versions
//       never defined it), while a v5 body to an older build gets the
//       usual kUnimplemented version bounce and the client downgrades —
//       mutation calls then fail client-side with a clean kUnimplemented.
inline constexpr uint8_t kWireVersion = 5;
inline constexpr uint8_t kMinWireVersion = 3;

/// Frame header size (length + checksum) and the body-size cap.
inline constexpr size_t kFrameHeaderBytes = 12;
inline constexpr uint32_t kMaxFrameBody = 16u << 20;

enum class WireOp : uint8_t {
  kQuery = 1,
  kStats = 2,
  kPing = 3,
  kShutdown = 4,
  kReload = 5,
  kMetrics = 6,  ///< Prometheus text exposition (v4+)
  kDelete = 7,   ///< tombstone a document id (v5+, dynamic backends)
  kUpdate = 8,   ///< atomic replace of a document id (v5+, dynamic backends)
  kCompact = 9,  ///< purge tombstones / merge segments (v5+)
};

/// True for a value DecodeRequest/DecodeResponse accepts.
bool IsValidWireOp(uint8_t op);

/// StatusCode <-> wire byte. Every StatusCode round-trips (the encoding is
/// the enum's underlying value); unknown bytes from a foreign peer decode
/// to kInternal rather than being trusted.
uint8_t StatusCodeToWire(StatusCode code);
StatusCode StatusCodeFromWire(uint8_t wire);

/// A decoded request. `version` is the version the peer spoke (recorded by
/// the decoder, consumed by the encoder — set it to kMinWireVersion to
/// emit a body an old peer can parse).
struct WireRequest {
  uint8_t version = kWireVersion;
  WireOp op = WireOp::kPing;
  uint64_t id = 0;
  std::string xpath;            ///< kQuery only
  uint64_t deadline_micros = 0; ///< kQuery only; relative budget, 0 = none
  std::string reload_path;      ///< kReload only; empty = current prefix
  uint64_t doc_id = 0;          ///< kDelete / kUpdate (v5+)
  std::string update_xml;       ///< kUpdate only (v5+); replacement document
  /// kQuery, v4+: distributed trace context (invalid = untraced) and the
  /// explain request flag.
  obs::TraceContext trace;
  bool want_explain = false;
};

/// The ExecStats subset a query response carries.
struct WireQueryStats {
  uint64_t result_docs = 0;
  uint64_t instantiations = 0;
  uint64_t orderings = 0;
  uint64_t matched_sequences = 0;
  uint64_t link_entries_read = 0;
  uint64_t link_binary_searches = 0;
  uint64_t link_gallop_probes = 0;
  uint64_t candidates = 0;
  uint64_t terminals = 0;
  uint64_t compile_micros = 0;
  uint64_t match_micros = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t result_cache_hits = 0;
  uint64_t pruned_instantiations = 0;

  static WireQueryStats FromExecStats(const ExecStats& st);
};

/// A decoded response.
struct WireResponse {
  uint8_t version = kWireVersion;  ///< mirror of the request's version
  WireOp op = WireOp::kPing;
  uint64_t id = 0;
  Status status;                ///< the remote call's outcome
  std::vector<DocId> docs;      ///< kQuery only
  WireQueryStats stats;         ///< kQuery only
  std::string payload;          ///< kStats (metrics JSON) / kMetrics (text)
  uint64_t generation = 0;      ///< kReload / kDelete / kUpdate / kCompact:
                                ///< generation after the swap or mutation
  /// kQuery, v4+: the server-side span tree of this request (present when
  /// the request carried a sampled trace context) and the explain record
  /// (present when the request asked for one).
  bool has_trace = false;
  obs::Trace trace;
  bool has_explain = false;
  QueryExplain explain;
};

/// Serializes a body (no frame header) for the given message.
void EncodeRequestBody(const WireRequest& req, std::string* out);
void EncodeResponseBody(const WireResponse& resp, std::string* out);

/// Parses a body produced by the encoders above. Anything malformed —
/// bad version, unknown op, truncated payload, trailing bytes — is
/// kCorruption (or kUnimplemented for a well-formed future version).
Status DecodeRequestBody(std::string_view body, WireRequest* out);
Status DecodeResponseBody(std::string_view body, WireResponse* out);

/// Wraps `body` in a frame header and writes the whole frame.
Status WriteFrame(Connection* conn, std::string_view body);

/// Reads one frame and yields its validated body. Rejects oversized
/// lengths before allocating and checksum mismatches after reading;
/// kNotFound means the peer closed cleanly between frames (`eof_ok`).
Status ReadFrame(Connection* conn, std::string* body, bool eof_ok = false);

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_PROTOCOL_H_
