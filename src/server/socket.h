// SocketEnv: the serving layer's window onto the network, in the same
// spirit as util/env.h for the filesystem.
//
// All wire-protocol code reads and writes through Connection, an abstract
// byte stream, instead of calling recv/send directly. This buys:
//
//  * one place where every socket syscall failure becomes a
//    Status::IOError carrying strerror(errno), with EINTR retried,
//  * substitutable implementations — PosixSocketEnv (real TCP) for
//    production and loopback tests, MemorySocketEnv for in-process
//    protocol tests with no kernel in the loop, and
//  * FaultInjectionSocketEnv, which deterministically shortens reads,
//    truncates writes, and fails calls at scheduled operation counts so
//    the framing layer's torn-frame / short-read handling is provable.
//
// Connections are *not* internally synchronized: one thread per direction
// at most (the blocking client uses a single thread for both).

#ifndef XSEQ_SRC_SERVER_SOCKET_H_
#define XSEQ_SRC_SERVER_SOCKET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace xseq {

/// A connected, bidirectional byte stream.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Reads up to `n` bytes into `buf`. Returns the count actually read —
  /// possibly fewer than `n` (short read) — or 0 at orderly peer close.
  virtual StatusOr<size_t> Read(char* buf, size_t n) = 0;

  /// Writes all of `data`, looping over short writes.
  virtual Status WriteAll(std::string_view data) = 0;

  /// Closes the stream. Idempotent; also performed by the destructor.
  virtual void Close() = 0;
};

/// Reads exactly `n` bytes into `out` (replacing its contents), looping
/// over short reads. EOF before `n` bytes is kIOError ("short read") —
/// with `eof_ok`, EOF at the very first byte is kNotFound instead, which
/// is how a server distinguishes "client hung up between requests" from a
/// torn frame.
Status ReadFull(Connection* conn, size_t n, std::string* out,
                bool eof_ok = false);

/// A passive server socket.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks until a client connects. After Close() (from any thread),
  /// returns kFailedPrecondition instead of blocking forever.
  virtual StatusOr<std::unique_ptr<Connection>> Accept() = 0;

  /// The bound port (useful when Listen was given port 0).
  virtual int port() const = 0;

  /// Unblocks pending and future Accept calls. Safe to call from another
  /// thread and from a signal handler's delegate thread.
  virtual void Close() = 0;
};

/// Network services used by the serving layer.
class SocketEnv {
 public:
  virtual ~SocketEnv() = default;

  /// The process-wide TCP implementation (never null, never deleted).
  static SocketEnv* Default();

  /// Binds and listens on `host:port` (port 0 = ephemeral).
  virtual StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                                     int port) = 0;

  /// Connects to `host:port`.
  virtual StatusOr<std::unique_ptr<Connection>> Connect(
      const std::string& host, int port) = 0;
};

/// A SocketEnv that forwards to a base env but misbehaves at scheduled
/// operation counts, mirroring FaultInjectionEnv for files. Every Read and
/// WriteAll on a wrapped connection claims one operation index; a
/// scheduled index fires exactly once:
///
///   kShortRead   -> the read returns at most 1 byte (the framing layer
///                   must loop; a non-looping reader sees a torn frame)
///   kReadError   -> kIOError without consuming input
///   kShortWrite  -> only the first half of the bytes reach the peer,
///                   then kIOError (the peer sees a torn frame)
///   kWriteError  -> kIOError, nothing written
///
/// Deterministic: the same schedule against the same call sequence fails
/// the same operation. The op counter is shared across all connections
/// made through this env.
class FaultInjectionSocketEnv : public SocketEnv {
 public:
  enum class FaultKind { kShortRead, kReadError, kShortWrite, kWriteError };

  explicit FaultInjectionSocketEnv(SocketEnv* base) : base_(base) {}

  /// Schedules the socket operation with index `op_index` to misbehave.
  void FailOperation(uint64_t op_index, FaultKind kind);
  void ClearFaults();
  uint64_t ops_seen() const;

  StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                             int port) override;
  StatusOr<std::unique_ptr<Connection>> Connect(const std::string& host,
                                                int port) override;

  /// Claims the next op index; true (with the kind) if it must fail.
  /// Internal — called by the wrapped connections.
  bool NextOpShouldFail(FaultKind* kind);

 private:
  SocketEnv* const base_;
  mutable std::mutex mu_;
  uint64_t ops_seen_ = 0;
  std::map<uint64_t, FaultKind> fail_ops_;
};

/// An in-process SocketEnv: Listen/Connect rendezvous through a named
/// in-memory "port" space and every Connection is a pair of byte queues.
/// No kernel, no file descriptors — protocol tests run anywhere, and
/// reads naturally arrive in the chunks the peer wrote (so framing code
/// is exercised against short reads even without fault injection).
class MemorySocketEnv : public SocketEnv {
 public:
  MemorySocketEnv();
  ~MemorySocketEnv() override;

  StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                             int port) override;
  StatusOr<std::unique_ptr<Connection>> Connect(const std::string& host,
                                                int port) override;

 private:
  struct Rep;
  std::shared_ptr<Rep> rep_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_SOCKET_H_
