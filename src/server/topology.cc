#include "src/server/topology.h"

#include <utility>

#include "src/core/persist.h"
#include "src/obs/metrics.h"
#include "src/util/env.h"

namespace xseq {

namespace {

/// Registry handles for the hot-swap metrics, resolved once.
struct TopologyMetricSet {
  obs::Counter* reloads;
  obs::Counter* reload_failures;
  obs::Gauge* epoch;
};

const TopologyMetricSet& TopologyMetrics() {
  static const TopologyMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return TopologyMetricSet{r->GetCounter("xseq.topology.reloads"),
                             r->GetCounter("xseq.topology.reload_failures"),
                             r->GetGauge("xseq.topology.epoch")};
  }();
  return s;
}

}  // namespace

TopologyManager::TopologyManager(TopologyOptions options)
    : options_(std::move(options)) {}

void TopologyManager::Install(
    std::shared_ptr<const ShardedCollection> collection, std::string prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(collection);
  prefix_ = std::move(prefix);
  ++epoch_;
  if (obs::MetricsEnabled()) {
    TopologyMetrics().epoch->Set(static_cast<int64_t>(epoch_));
  }
}

Status TopologyManager::VerifyImages(const std::string& prefix,
                                     uint32_t shard_count) const {
  Env* env = options_.persist.env != nullptr ? options_.persist.env
                                             : Env::Default();
  for (uint32_t s = 0; s < shard_count; ++s) {
    const std::string path = ShardImagePath(prefix, s);
    std::string data;
    Status read = env->ReadFileToString(path, &data);
    if (!read.ok()) return AnnotateStatus(read, "shard " + std::to_string(s));
    IndexFileReport report = InspectEncodedIndex(data);
    if (!report.status.ok()) {
      return AnnotateStatus(report.status,
                            "shard " + std::to_string(s) + " (" + path + ")");
    }
  }
  return Status::OK();
}

Status TopologyManager::RunCanaries(const ShardedCollection& candidate) const {
  for (const CanaryQuery& canary : options_.canaries) {
    auto result = candidate.Query(canary.xpath);
    if (!result.ok()) {
      return AnnotateStatus(result.status(), "canary '" + canary.xpath + "'");
    }
    if (canary.expect_docs >= 0 &&
        static_cast<int64_t>(result->docs.size()) != canary.expect_docs) {
      return Status::FailedPrecondition(
          "canary '" + canary.xpath + "' answered " +
          std::to_string(result->docs.size()) + " docs, expected " +
          std::to_string(canary.expect_docs));
    }
  }
  return Status::OK();
}

StatusOr<uint64_t> TopologyManager::Reload(const std::string& prefix) {
  // One pipeline at a time: concurrent reloads would race each other's
  // swaps and double memory. Queries never take this lock.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);

  auto fail = [](Status st) -> StatusOr<uint64_t> {
    if (obs::MetricsEnabled()) TopologyMetrics().reload_failures->Increment();
    return st;
  };

  if (prefix.empty()) {
    return fail(Status::InvalidArgument(
        "reload needs an image prefix (the live generation has no on-disk "
        "home to re-read)"));
  }

  // Step 1: offline validation, cheapest check first. Nothing is loaded
  // into serving memory yet.
  auto manifest = ReadShardedManifest(prefix, options_.persist);
  if (!manifest.ok()) return fail(manifest.status());
  if (options_.verify_images) {
    Status verified = VerifyImages(prefix, manifest->shard_count);
    if (!verified.ok()) return fail(verified);
  }

  // Step 2: load the candidate next to the live generation.
  auto loaded =
      ShardedCollection::Load(prefix, options_.threads, options_.persist);
  if (!loaded.ok()) return fail(loaded.status());
  auto candidate =
      std::make_shared<const ShardedCollection>(std::move(*loaded));

  // Step 3: canaries run against the candidate only; the live generation
  // keeps serving untouched.
  Status canaried = RunCanaries(*candidate);
  if (!canaried.ok()) return fail(canaried);

  // Step 4: the swap — a pointer assignment. In-flight queries hold their
  // own shared_ptr and finish on the old image; it is freed when the last
  // holder drops it.
  uint64_t next;
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(candidate);
    prefix_ = prefix;
    ++epoch_;
    next = (epoch_ << 32) | (current_->generation() & 0xffffffffu);
    if (obs::MetricsEnabled()) {
      TopologyMetrics().epoch->Set(static_cast<int64_t>(epoch_));
    }
  }
  if (obs::MetricsEnabled()) TopologyMetrics().reloads->Increment();
  return next;
}

std::shared_ptr<const ShardedCollection> TopologyManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

StatusOr<QueryResult> TopologyManager::Query(std::string_view xpath,
                                             const ExecOptions& options) const {
  std::shared_ptr<const ShardedCollection> live = Current();
  if (live == nullptr) {
    return Status::FailedPrecondition("no generation installed");
  }
  return live->Query(xpath, options);
}

uint64_t TopologyManager::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_ == nullptr) return 0;
  return (epoch_ << 32) | (current_->generation() & 0xffffffffu);
}

uint64_t TopologyManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::string TopologyManager::prefix() const {
  std::lock_guard<std::mutex> lock(mu_);
  return prefix_;
}

}  // namespace xseq
