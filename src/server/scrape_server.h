// ScrapeServer: a deliberately tiny HTTP/1.0 endpoint that serves the
// process's Prometheus text exposition, so a scraper (Prometheus, curl,
// `exec 3<>/dev/tcp/...`) can pull metrics without speaking the xseq wire
// protocol.
//
// Scope is one route and nothing else: `GET /metrics` answers 200 with
// `text/plain; version=0.0.4` (the Prometheus exposition content type),
// any other path answers 404, any other method 405, and a malformed or
// oversized request line 400. Every response carries
// `Connection: close` and the connection is dropped after one exchange —
// no keep-alive, no chunking, no TLS. Scrapes are served one at a time on
// the accept thread; a scrape every few seconds against a dump that
// renders in microseconds makes queuing a non-issue, and it keeps the
// daemon's thread inventory flat.
//
// The content callback is invoked per scrape, so the numbers are always
// current. Runs over SocketEnv like everything else in the serving layer,
// so tests drive it through MemorySocketEnv with no kernel in the loop.

#ifndef XSEQ_SRC_SERVER_SCRAPE_SERVER_H_
#define XSEQ_SRC_SERVER_SCRAPE_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/server/socket.h"

namespace xseq {

/// Scrape endpoint knobs.
struct ScrapeOptions {
  std::string host = "127.0.0.1";
  int port = 0;                     ///< 0 = ephemeral
  SocketEnv* socket_env = nullptr;  ///< nullptr = real TCP
};

class ScrapeServer {
 public:
  /// `content` renders the exposition body; called once per scrape.
  /// Defaults to obs::PrometheusDefaultDump when empty.
  explicit ScrapeServer(ScrapeOptions options,
                        std::function<std::string()> content = {});
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// The bound port (for ephemeral binds); -1 before Start().
  int port() const;

  /// Closes the listener and joins the accept thread. Idempotent.
  void Stop();

  /// Scrapes answered so far (any status), for tests.
  uint64_t requests_served() const { return served_.load(); }

 private:
  void AcceptLoop();
  void ServeOne(Connection* conn);

  ScrapeOptions options_;
  std::function<std::string()> content_;
  SocketEnv* socket_env_;
  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> served_{0};
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_SCRAPE_SERVER_H_
