#include "src/server/protocol.h"

#include <limits>

#include "src/util/coding.h"
#include "src/util/hash.h"

namespace xseq {

namespace {

void PutByte(std::string* dst, uint8_t b) {
  dst->push_back(static_cast<char>(b));
}

Status GetByte(Decoder* in, uint8_t* b) {
  std::string_view raw;
  XSEQ_RETURN_IF_ERROR(in->GetRaw(1, &raw));
  *b = static_cast<uint8_t>(raw[0]);
  return Status::OK();
}

/// Common prefix of every body: version, op, request id. Any version in
/// [kMinWireVersion, kWireVersion] is accepted and reported via `version`
/// so the op payload can be decoded (and the response encoded) at the
/// peer's level.
Status DecodePrefix(Decoder* in, uint8_t* version, uint8_t* op,
                    uint64_t* id) {
  XSEQ_RETURN_IF_ERROR(GetByte(in, version));
  if (*version < kMinWireVersion || *version > kWireVersion) {
    // Version negotiation: a mismatch in either direction is a clean,
    // attributable kUnimplemented naming both versions — never kCorruption
    // (the frame checksum already validated the bytes; an old client did
    // nothing corrupt) and never a hang.
    return Status::Unimplemented(
        "wire protocol version " + std::to_string(*version) +
        " is not supported; this build speaks version " +
        std::to_string(kWireVersion));
  }
  XSEQ_RETURN_IF_ERROR(GetByte(in, op));
  if (!IsValidWireOp(*op)) {
    return Status::Corruption("unknown wire op " + std::to_string(*op));
  }
  if (*op >= static_cast<uint8_t>(WireOp::kDelete) && *version < 5) {
    // Pre-v5 versions never defined the mutation ops, so a pre-v5 body
    // carrying one is malformed — the same kCorruption an actual v4 build
    // would produce (its op validator has never heard of op 7), keeping
    // old and new builds indistinguishable to a buggy peer.
    return Status::Corruption("wire op " + std::to_string(*op) +
                              " requires protocol version 5; body spoke "
                              "version " +
                              std::to_string(*version));
  }
  return in->GetFixed64(id);
}

Status CheckDrained(const Decoder& in) {
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after wire message");
  }
  return Status::OK();
}

}  // namespace

bool IsValidWireOp(uint8_t op) {
  switch (static_cast<WireOp>(op)) {
    case WireOp::kQuery:
    case WireOp::kStats:
    case WireOp::kPing:
    case WireOp::kShutdown:
    case WireOp::kReload:
    case WireOp::kMetrics:
    case WireOp::kDelete:
    case WireOp::kUpdate:
    case WireOp::kCompact:
      return true;
  }
  return false;
}

uint8_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusCode StatusCodeFromWire(uint8_t wire) {
  // Explicit round-trip table: adding a StatusCode without teaching the
  // wire about it trips the -Werror=switch build, not a silent kInternal.
  StatusCode code = static_cast<StatusCode>(wire);
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kCorruption:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kUnimplemented:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kOverloaded:
      return code;
  }
  return StatusCode::kInternal;
}

WireQueryStats WireQueryStats::FromExecStats(const ExecStats& st) {
  WireQueryStats out;
  out.result_docs = st.result_docs;
  out.instantiations = st.instantiations;
  out.orderings = st.orderings;
  out.matched_sequences = st.matched_sequences;
  out.link_entries_read = st.match.link_entries_read;
  out.link_binary_searches = st.match.link_binary_searches;
  out.link_gallop_probes = st.match.link_gallop_probes;
  out.candidates = st.match.candidates;
  out.terminals = st.match.terminals;
  out.compile_micros = static_cast<uint64_t>(st.compile_micros);
  out.match_micros = static_cast<uint64_t>(st.match_micros);
  out.plan_cache_hits = st.plan_cache_hits;
  out.result_cache_hits = st.result_cache_hits;
  out.pruned_instantiations = st.pruned_instantiations;
  return out;
}

namespace {

void EncodeStats(const WireQueryStats& s, std::string* out) {
  PutFixed64(out, s.result_docs);
  PutFixed64(out, s.instantiations);
  PutFixed64(out, s.orderings);
  PutFixed64(out, s.matched_sequences);
  PutFixed64(out, s.link_entries_read);
  PutFixed64(out, s.link_binary_searches);
  PutFixed64(out, s.link_gallop_probes);
  PutFixed64(out, s.candidates);
  PutFixed64(out, s.terminals);
  PutFixed64(out, s.compile_micros);
  PutFixed64(out, s.match_micros);
  PutFixed64(out, s.plan_cache_hits);
  PutFixed64(out, s.result_cache_hits);
  PutFixed64(out, s.pruned_instantiations);
}

Status DecodeStats(Decoder* in, WireQueryStats* s) {
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->result_docs));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->instantiations));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->orderings));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->matched_sequences));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->link_entries_read));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->link_binary_searches));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->link_gallop_probes));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->candidates));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->terminals));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->compile_micros));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->match_micros));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->plan_cache_hits));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s->result_cache_hits));
  return in->GetFixed64(&s->pruned_instantiations);
}

// v4 query-request flag bits.
constexpr uint8_t kReqFlagTrace = 1u << 0;
constexpr uint8_t kReqFlagExplain = 1u << 1;
// v4 query-response flag bits.
constexpr uint8_t kRespFlagTrace = 1u << 0;
constexpr uint8_t kRespFlagExplain = 1u << 1;

void EncodeTrace(const obs::Trace& t, std::string* out) {
  PutFixed64(out, t.trace_id);
  PutFixed64(out, t.parent_span);
  PutFixed64(out, t.wall_start_us);
  PutFixed32(out, static_cast<uint32_t>(t.spans.size()));
  for (const obs::TraceSpan& s : t.spans) {
    PutString(out, s.name);
    PutFixed32(out, s.parent);
    PutFixed32(out, s.tid);
    PutFixed64(out, s.start_us);
    PutFixed64(out, s.dur_us);
    PutFixed32(out, static_cast<uint32_t>(s.args.size()));
    for (const auto& [key, value] : s.args) {
      PutString(out, key);
      PutFixed64(out, value);
    }
  }
}

Status DecodeTrace(Decoder* in, obs::Trace* t) {
  *t = obs::Trace();
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&t->trace_id));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&t->parent_span));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&t->wall_start_us));
  uint32_t count = 0;
  XSEQ_RETURN_IF_ERROR(in->GetFixed32(&count));
  // A span occupies at least 36 body bytes (empty name, no args); bound
  // the count against what is actually left before allocating.
  if (count > in->remaining() / 36) {
    return Status::Corruption("trace span count exceeds frame size");
  }
  t->spans.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    obs::TraceSpan s;
    XSEQ_RETURN_IF_ERROR(in->GetString(&s.name));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&s.parent));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&s.tid));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s.start_us));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s.dur_us));
    s.closed = true;
    uint32_t args = 0;
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&args));
    // An arg is at least 16 bytes (empty key + value).
    if (args > in->remaining() / 16) {
      return Status::Corruption("trace arg count exceeds frame size");
    }
    s.args.reserve(args);
    for (uint32_t a = 0; a < args; ++a) {
      std::string key;
      uint64_t value = 0;
      XSEQ_RETURN_IF_ERROR(in->GetString(&key));
      XSEQ_RETURN_IF_ERROR(in->GetFixed64(&value));
      s.args.emplace_back(std::move(key), value);
    }
    t->spans.push_back(std::move(s));
  }
  return Status::OK();
}

void EncodeExplain(const QueryExplain& ex, std::string* out) {
  PutFixed64(out, ex.instantiations);
  PutFixed64(out, ex.orderings);
  PutFixed64(out, ex.pruned);
  PutFixed64(out, ex.sequences);
  PutFixed64(out, ex.predicted_cost);
  PutFixed64(out, ex.actual_cost);
  PutFixed64(out, static_cast<uint64_t>(ex.compile_micros));
  PutFixed64(out, static_cast<uint64_t>(ex.match_micros));
  PutFixed64(out, ex.result_docs);
  uint8_t flags = 0;
  if (ex.plan_cache_hit) flags |= 1u << 0;
  if (ex.result_cache_hit) flags |= 1u << 1;
  if (ex.truncated) flags |= 1u << 2;
  PutByte(out, flags);
  PutFixed32(out, static_cast<uint32_t>(ex.seq.size()));
  for (const QueryExplain::SeqEntry& e : ex.seq) {
    PutFixed32(out, e.positions);
    PutFixed32(out, e.anchor);
    PutFixed64(out, e.anchor_cardinality);
    PutFixed32(out, static_cast<uint32_t>(e.shard));
  }
  PutFixed32(out, static_cast<uint32_t>(ex.shards.size()));
  for (const QueryExplain::ShardBreakdown& s : ex.shards) {
    PutFixed32(out, static_cast<uint32_t>(s.shard));
    PutFixed64(out, s.docs);
    PutFixed64(out, s.entries_read);
    PutFixed64(out, static_cast<uint64_t>(s.micros));
  }
}

Status DecodeExplain(Decoder* in, QueryExplain* ex) {
  *ex = QueryExplain();
  uint64_t v = 0;
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->instantiations = static_cast<size_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->orderings = static_cast<size_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->pruned = static_cast<size_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->sequences = static_cast<size_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&ex->predicted_cost));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&ex->actual_cost));
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->compile_micros = static_cast<int64_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->match_micros = static_cast<int64_t>(v);
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&v));
  ex->result_docs = static_cast<size_t>(v);
  uint8_t flags = 0;
  XSEQ_RETURN_IF_ERROR(GetByte(in, &flags));
  ex->plan_cache_hit = (flags & (1u << 0)) != 0;
  ex->result_cache_hit = (flags & (1u << 1)) != 0;
  ex->truncated = (flags & (1u << 2)) != 0;
  uint32_t count = 0;
  XSEQ_RETURN_IF_ERROR(in->GetFixed32(&count));
  if (count > in->remaining() / 20) {  // 4 + 4 + 8 + 4 bytes per entry
    return Status::Corruption("explain seq count exceeds frame size");
  }
  ex->seq.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryExplain::SeqEntry e;
    uint32_t shard = 0;
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&e.positions));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&e.anchor));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&e.anchor_cardinality));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&shard));
    e.shard = static_cast<int32_t>(shard);
    ex->seq.push_back(e);
  }
  XSEQ_RETURN_IF_ERROR(in->GetFixed32(&count));
  if (count > in->remaining() / 28) {  // 4 + 8 + 8 + 8 bytes per row
    return Status::Corruption("explain shard count exceeds frame size");
  }
  ex->shards.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    QueryExplain::ShardBreakdown s;
    uint32_t shard = 0;
    uint64_t micros = 0;
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&shard));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s.docs));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&s.entries_read));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&micros));
    s.shard = static_cast<int32_t>(shard);
    s.micros = static_cast<int64_t>(micros);
    ex->shards.push_back(s);
  }
  return Status::OK();
}

}  // namespace

void EncodeRequestBody(const WireRequest& req, std::string* out) {
  PutByte(out, req.version);
  PutByte(out, static_cast<uint8_t>(req.op));
  PutFixed64(out, req.id);
  if (req.op == WireOp::kQuery) {
    PutString(out, req.xpath);
    PutFixed64(out, req.deadline_micros);
    if (req.version >= 4) {
      uint8_t flags = 0;
      if (req.trace.valid()) flags |= kReqFlagTrace;
      if (req.want_explain) flags |= kReqFlagExplain;
      PutByte(out, flags);
      if (req.trace.valid()) {
        PutFixed64(out, req.trace.trace_id);
        PutFixed64(out, req.trace.parent_span);
        PutByte(out, req.trace.sampled ? 1 : 0);
      }
    }
  } else if (req.op == WireOp::kReload) {
    PutString(out, req.reload_path);
  } else if (req.op == WireOp::kDelete) {
    PutFixed64(out, req.doc_id);
  } else if (req.op == WireOp::kUpdate) {
    PutFixed64(out, req.doc_id);
    PutString(out, req.update_xml);
  }
}

Status DecodeRequestBody(std::string_view body, WireRequest* out) {
  Decoder in(body);
  uint8_t op = 0;
  XSEQ_RETURN_IF_ERROR(DecodePrefix(&in, &out->version, &op, &out->id));
  out->op = static_cast<WireOp>(op);
  out->xpath.clear();
  out->deadline_micros = 0;
  out->reload_path.clear();
  out->doc_id = 0;
  out->update_xml.clear();
  out->trace = obs::TraceContext();
  out->want_explain = false;
  if (out->op == WireOp::kQuery) {
    XSEQ_RETURN_IF_ERROR(in.GetString(&out->xpath));
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->deadline_micros));
    if (out->version >= 4) {
      uint8_t flags = 0;
      XSEQ_RETURN_IF_ERROR(GetByte(&in, &flags));
      out->want_explain = (flags & kReqFlagExplain) != 0;
      if ((flags & kReqFlagTrace) != 0) {
        uint8_t sampled = 0;
        XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->trace.trace_id));
        XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->trace.parent_span));
        XSEQ_RETURN_IF_ERROR(GetByte(&in, &sampled));
        out->trace.sampled = sampled != 0;
        if (!out->trace.valid()) {
          return Status::Corruption("trace context with zero trace id");
        }
      }
    }
  } else if (out->op == WireOp::kReload) {
    XSEQ_RETURN_IF_ERROR(in.GetString(&out->reload_path));
  } else if (out->op == WireOp::kDelete) {
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->doc_id));
  } else if (out->op == WireOp::kUpdate) {
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->doc_id));
    XSEQ_RETURN_IF_ERROR(in.GetString(&out->update_xml));
  }
  return CheckDrained(in);
}

void EncodeResponseBody(const WireResponse& resp, std::string* out) {
  PutByte(out, resp.version);
  PutByte(out, static_cast<uint8_t>(resp.op));
  PutFixed64(out, resp.id);
  PutByte(out, StatusCodeToWire(resp.status.code()));
  PutString(out, resp.status.message());
  if (!resp.status.ok()) return;
  if (resp.op == WireOp::kQuery) {
    PutFixed64(out, resp.docs.size());
    for (DocId d : resp.docs) PutFixed64(out, d);
    EncodeStats(resp.stats, out);
    if (resp.version >= 4) {
      uint8_t flags = 0;
      if (resp.has_trace) flags |= kRespFlagTrace;
      if (resp.has_explain) flags |= kRespFlagExplain;
      PutByte(out, flags);
      if (resp.has_trace) EncodeTrace(resp.trace, out);
      if (resp.has_explain) EncodeExplain(resp.explain, out);
    }
  } else if (resp.op == WireOp::kStats || resp.op == WireOp::kMetrics) {
    PutString(out, resp.payload);
  } else if (resp.op == WireOp::kReload || resp.op == WireOp::kDelete ||
             resp.op == WireOp::kUpdate || resp.op == WireOp::kCompact) {
    PutFixed64(out, resp.generation);
  }
}

Status DecodeResponseBody(std::string_view body, WireResponse* out) {
  Decoder in(body);
  uint8_t op = 0;
  XSEQ_RETURN_IF_ERROR(DecodePrefix(&in, &out->version, &op, &out->id));
  out->op = static_cast<WireOp>(op);
  uint8_t code = 0;
  std::string message;
  XSEQ_RETURN_IF_ERROR(GetByte(&in, &code));
  XSEQ_RETURN_IF_ERROR(in.GetString(&message));
  StatusCode status_code = StatusCodeFromWire(code);
  out->docs.clear();
  out->stats = WireQueryStats();
  out->payload.clear();
  out->generation = 0;
  out->has_trace = false;
  out->trace = obs::Trace();
  out->has_explain = false;
  out->explain = QueryExplain();
  if (status_code != StatusCode::kOk) {
    // Rebuild the remote error through the public factories so the code
    // predicate helpers (IsOverloaded, ...) work on this side too.
    switch (status_code) {
      case StatusCode::kOk:
        break;
      case StatusCode::kInvalidArgument:
        out->status = Status::InvalidArgument(std::move(message));
        break;
      case StatusCode::kNotFound:
        out->status = Status::NotFound(std::move(message));
        break;
      case StatusCode::kCorruption:
        out->status = Status::Corruption(std::move(message));
        break;
      case StatusCode::kOutOfRange:
        out->status = Status::OutOfRange(std::move(message));
        break;
      case StatusCode::kFailedPrecondition:
        out->status = Status::FailedPrecondition(std::move(message));
        break;
      case StatusCode::kUnimplemented:
        out->status = Status::Unimplemented(std::move(message));
        break;
      case StatusCode::kResourceExhausted:
        out->status = Status::ResourceExhausted(std::move(message));
        break;
      case StatusCode::kInternal:
        out->status = Status::Internal(std::move(message));
        break;
      case StatusCode::kIOError:
        out->status = Status::IOError(std::move(message));
        break;
      case StatusCode::kDeadlineExceeded:
        out->status = Status::DeadlineExceeded(std::move(message));
        break;
      case StatusCode::kOverloaded:
        out->status = Status::Overloaded(std::move(message));
        break;
    }
    return CheckDrained(in);
  }
  out->status = Status::OK();
  if (out->op == WireOp::kQuery) {
    uint64_t count = 0;
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&count));
    // Each doc id occupies 8 body bytes; bound before allocating.
    if (count > in.remaining() / 8) {
      return Status::Corruption("doc count exceeds frame size");
    }
    out->docs.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t d = 0;
      XSEQ_RETURN_IF_ERROR(in.GetFixed64(&d));
      if (d > std::numeric_limits<DocId>::max()) {
        return Status::Corruption("doc id out of range");
      }
      out->docs.push_back(static_cast<DocId>(d));
    }
    XSEQ_RETURN_IF_ERROR(DecodeStats(&in, &out->stats));
    if (out->version >= 4) {
      uint8_t flags = 0;
      XSEQ_RETURN_IF_ERROR(GetByte(&in, &flags));
      if ((flags & kRespFlagTrace) != 0) {
        XSEQ_RETURN_IF_ERROR(DecodeTrace(&in, &out->trace));
        out->has_trace = true;
      }
      if ((flags & kRespFlagExplain) != 0) {
        XSEQ_RETURN_IF_ERROR(DecodeExplain(&in, &out->explain));
        out->has_explain = true;
      }
    }
  } else if (out->op == WireOp::kStats || out->op == WireOp::kMetrics) {
    XSEQ_RETURN_IF_ERROR(in.GetString(&out->payload));
  } else if (out->op == WireOp::kReload || out->op == WireOp::kDelete ||
             out->op == WireOp::kUpdate || out->op == WireOp::kCompact) {
    XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out->generation));
  }
  return CheckDrained(in);
}

Status WriteFrame(Connection* conn, std::string_view body) {
  if (body.size() > kMaxFrameBody) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBody");
  }
  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutFixed32(&frame, static_cast<uint32_t>(body.size()));
  PutFixed64(&frame, Fnv1a64(body));
  frame.append(body);
  return conn->WriteAll(frame);
}

Status ReadFrame(Connection* conn, std::string* body, bool eof_ok) {
  std::string header;
  XSEQ_RETURN_IF_ERROR(ReadFull(conn, kFrameHeaderBytes, &header, eof_ok));
  Decoder in(header);
  uint32_t length = 0;
  uint64_t checksum = 0;
  XSEQ_RETURN_IF_ERROR(in.GetFixed32(&length));
  XSEQ_RETURN_IF_ERROR(in.GetFixed64(&checksum));
  if (length > kMaxFrameBody) {
    return Status::Corruption("frame length " + std::to_string(length) +
                              " exceeds cap");
  }
  XSEQ_RETURN_IF_ERROR(ReadFull(conn, length, body));
  if (Fnv1a64(*body) != checksum) {
    return Status::Corruption("frame checksum mismatch");
  }
  return Status::OK();
}

}  // namespace xseq
