// XseqServer: the TCP daemon — accepts connections, speaks the wire
// protocol (src/server/protocol.h), and funnels every query through a
// QueryService so admission control and deadlines apply to remote callers
// exactly as to in-process ones.
//
// Threading model: one accept thread, one handler thread per connection
// (each handles one request at a time — the protocol is strictly
// request/response per connection), and the QueryService worker pool
// behind them. A malformed frame (bad checksum, oversized length, torn
// body) earns a best-effort kCorruption response and closes that
// connection; the server itself never goes down from client bytes.
//
// Lifecycle:
//   XseqServer server(backend, options);
//   server.Start();                 // bind + accept thread
//   server.WaitForStopRequest();    // blocks: SIGTERM watcher or remote
//                                   // shutdown op calls RequestStop()
//   server.Stop();                  // graceful drain (see below)
//
// Stop() drains: the listener closes (no new connections), handlers
// finish the request they are serving and write its response, idle
// connections are closed, then the QueryService shuts down. In-flight
// queries are never abandoned.

#ifndef XSEQ_SRC_SERVER_SERVER_H_
#define XSEQ_SRC_SERVER_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/query_service.h"
#include "src/server/socket.h"

namespace xseq {

/// Daemon knobs.
struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;                      ///< 0 = ephemeral; see XseqServer::port()
  ServiceOptions service;            ///< admission control + exec options
  SocketEnv* socket_env = nullptr;   ///< nullptr = SocketEnv::Default()
  /// Source of the `stats` op payload; defaults to the process
  /// MetricsRegistry JSON dump.
  std::function<std::string()> stats_source;
  /// Handles the `reload` op: swap to the image at the given prefix (empty
  /// = reload the current one) and return the generation now serving.
  /// Usually TopologyManager::Reload. Null (the default) answers the op
  /// with kUnimplemented — a server over a fixed backend stays honest
  /// about it instead of pretending to have swapped.
  std::function<StatusOr<uint64_t>(const std::string&)> reload_handler;
  /// v5 mutation ops, each returning the backend generation after the
  /// mutation. Null (the default) answers kUnimplemented — only a daemon
  /// serving a dynamic backend wires these (see xseq_serve --dynamic);
  /// static images stay honestly immutable over the wire.
  std::function<StatusOr<uint64_t>(uint64_t)> delete_handler;
  /// (doc id, replacement XML) -> generation; parses the document against
  /// the owning shard's vocabulary before swapping it in.
  std::function<StatusOr<uint64_t>(uint64_t, const std::string&)>
      update_handler;
  std::function<StatusOr<uint64_t>()> compact_handler;
};

class XseqServer {
 public:
  XseqServer(QueryService::Backend backend, ServerOptions options);
  ~XseqServer();

  XseqServer(const XseqServer&) = delete;
  XseqServer& operator=(const XseqServer&) = delete;

  /// Binds the listener and starts accepting. Fails fast on bind errors.
  Status Start();

  /// The bound port (after Start; useful with port 0).
  int port() const;

  /// Asks the server to stop: wakes WaitForStopRequest and stops
  /// accepting. Returns immediately; safe from any thread, including a
  /// connection handler (the remote shutdown op) and a signal watcher.
  void RequestStop();

  /// Blocks until RequestStop() is called.
  void WaitForStopRequest();

  /// Graceful drain; see the file comment. Idempotent; also run by the
  /// destructor. Returns the number of requests that were still in flight
  /// when draining began (for "drained N" operator output).
  size_t Stop();

  /// Connections accepted so far.
  uint64_t connections_accepted() const;

 private:
  struct Handler {
    std::unique_ptr<Connection> conn;
    std::thread thread;
    bool done = false;  ///< set by the handler as it exits
  };

  void AcceptLoop();
  void HandleConnection(Handler* handler);
  /// Serves one decoded request; fills `resp`. Returns false when the
  /// connection should close after the response (shutdown op).
  bool Dispatch(const WireRequest& req, WireResponse* resp);
  void ReapFinishedLocked();

  QueryService service_;
  ServerOptions options_;
  SocketEnv* socket_env_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  std::condition_variable stop_cv_;    ///< RequestStop -> WaitForStopRequest
  std::condition_variable drain_cv_;   ///< busy_ == 0 during Stop()
  bool started_ = false;
  bool stop_requested_ = false;
  bool stopping_ = false;              ///< drain began: reject new frames
  bool stopped_ = false;
  size_t busy_ = 0;                    ///< handlers inside one request
  uint64_t connections_ = 0;
  std::vector<std::unique_ptr<Handler>> handlers_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_SERVER_H_
