// ResultCache: a generation-keyed LRU cache of whole query answers.
//
// A cached answer is correct only for the exact collection state it was
// computed against, so entries are keyed on (collection generation, query
// text). Mutating backends expose a monotone generation counter
// (DynamicIndex::generation, ShardedCollection::generation) bumped with
// every result-affecting mutation; lookups use the *current* generation,
// so the moment a mutation commits, every older entry is unreachable and
// simply ages out of the LRU — there is no explicit invalidation broadcast
// to race with.
//
// The insert protocol (see QueryService) closes the execute/mutate race:
// the service records the generation g0 *before* executing and stores the
// answer only if the generation still equals g0 afterwards. Generations
// are monotone, so equality means no mutation committed while the query
// ran and the answer is exactly the g0 answer; if a mutation interleaved,
// the answer is discarded rather than cached under a generation it might
// not represent.
//
// Structure mirrors PlanCache: hash-sharded, independently locked LRU
// lists with per-shard entry/byte budgets; oversized answers are not
// cached. Metrics: xseq.result_cache.{hits,misses,insertions,evictions}
// counters and xseq.result_cache.{entries,bytes} gauges.

#ifndef XSEQ_SRC_SERVER_RESULT_CACHE_H_
#define XSEQ_SRC_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/collection_index.h"

namespace xseq {

struct ResultCacheOptions {
  size_t shards = 8;
  size_t max_entries = 4096;          ///< across all shards
  size_t max_bytes = 32u << 20;       ///< approximate, across all shards
  size_t max_entry_bytes = 4u << 20;  ///< larger answers are not cached
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = ResultCacheOptions());

  /// Returns the cached answer for (generation, query), refreshing its LRU
  /// position, or null.
  std::shared_ptr<const QueryResult> Lookup(uint64_t generation,
                                            std::string_view query);

  /// Stores `result` under (generation, query), evicting past the shard
  /// budget. Replaces an existing entry for the same key.
  void Insert(uint64_t generation, std::string_view query,
              QueryResult result);

  /// Drops every entry.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;  // 8-byte generation prefix + query text
    std::shared_ptr<const QueryResult> result;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // Views point into Entry::key, which is stable (list nodes never move).
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(std::string_view full_key);
  void EvictLocked(Shard* s);

  ResultCacheOptions options_;
  size_t shard_entry_budget_;
  size_t shard_byte_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_RESULT_CACHE_H_
