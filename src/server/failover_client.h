// FailoverClient: a replica-aware client that rides out endpoint failures.
//
// Wraps one XseqClient per endpoint and layers three mechanisms on top:
//
//  * Per-endpoint circuit breaker. An endpoint starts Closed (healthy).
//    `breaker_threshold` consecutive transport failures Open it: it is
//    skipped entirely until `breaker_cooldown_micros` elapses, then one
//    request is let through Half-Open as a probe — success re-Closes the
//    breaker, failure re-Opens it for another cooldown. A recovered
//    primary is re-admitted automatically this way.
//
//  * Deadline-aware retry with jittered exponential backoff. Transport
//    failures (dead socket, torn frame, connect refusal) retry on the
//    next healthy endpoint — primary first, replicas in declared order.
//    Backoff doubles per attempt, jitters uniformly in [base/2, base] to
//    avoid thundering herds, and is skipped when it would overshoot the
//    request deadline.
//
//  * A retry *budget* (token bucket): each request earns
//    `retry_budget_ratio` tokens, each retry spends one, the bucket caps
//    at `retry_budget_burst`. When every endpoint is down, the budget
//    bounds the retry storm to a fixed fraction of offered load instead of
//    multiplying it.
//
// Error classification is the heart of it — the wire keeps two outcomes
// apart (XseqClient::Call):
//
//  * transport error (the StatusOr itself) — the endpoint is suspect:
//    count it toward the breaker, reconnect, fail over, retry.
//  * remote kOverloaded — the *server* shed the request; the box is
//    healthy, so fail over WITHOUT a breaker penalty.
//  * any other remote error (parse error, bad query, deadline, version
//    mismatch) — the request itself is at fault; return it to the caller
//    immediately and count the endpoint healthy.
//
// Time and sleep are injectable, so tests drive breaker cooldowns and
// backoff deterministically. Not thread-safe (same contract as
// XseqClient): one FailoverClient per thread.

#ifndef XSEQ_SRC_SERVER_FAILOVER_CLIENT_H_
#define XSEQ_SRC_SERVER_FAILOVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/server/client.h"

namespace xseq {

/// One server address.
struct Endpoint {
  std::string host;
  int port = 0;
};

/// Failover knobs. Defaults suit tests and small deployments; production
/// tunes cooldown/backoff to its network.
struct FailoverOptions {
  SocketEnv* socket_env = nullptr;  ///< nullptr = real TCP

  /// Total tries per request across all endpoints (first attempt included).
  int max_attempts = 6;

  /// Consecutive transport failures that Open an endpoint's breaker.
  int breaker_threshold = 3;
  /// How long an Open endpoint is skipped before a Half-Open probe.
  uint64_t breaker_cooldown_micros = 200'000;

  /// First retry backoff; doubles per attempt up to the max.
  uint64_t backoff_initial_micros = 1'000;
  uint64_t backoff_max_micros = 100'000;

  /// Tokens earned per request / bucket cap; each retry costs 1.0.
  double retry_budget_ratio = 0.1;
  double retry_budget_burst = 10.0;

  /// Jitter RNG seed (deterministic for tests).
  uint64_t seed = 42;

  /// Sink for per-request traces (nullptr = tracing off). With a tracer,
  /// every Query records a "client_query" root with one "attempt" span per
  /// wire round trip (annotated with the endpoint index, shed / transport
  /// failures, and breaker trips), propagates the attempt span's context
  /// to the server, and grafts the server's returned span tree beneath it:
  /// one stitched trace across the failover chain. Not owned.
  obs::Tracer* tracer = nullptr;

  /// Injectable time source / sleeper (tests). Defaults: Env::Default().
  std::function<uint64_t()> clock_micros;
  std::function<void(uint64_t)> sleeper;
};

/// Circuit-breaker state of one endpoint.
enum class BreakerState : uint8_t { kClosed, kOpen, kHalfOpen };

class FailoverClient {
 public:
  /// Endpoint order is preference order: endpoints[0] is the primary; a
  /// request only moves down the list when everything before is unhealthy.
  FailoverClient(std::vector<Endpoint> endpoints, FailoverOptions options = {});

  /// Remote query with failover; see the file comment for the retry rules.
  /// `deadline_budget_micros` (0 = none) bounds the *whole* attempt chain,
  /// client-side, and is forwarded per-attempt to the server.
  /// `want_explain` asks a v4 server for the planner's account.
  StatusOr<RemoteQueryResult> Query(std::string_view xpath,
                                    uint64_t deadline_budget_micros = 0,
                                    bool want_explain = false);

  /// Liveness check with failover.
  Status Ping();

  /// Stats dump from the first healthy endpoint.
  StatusOr<std::string> Stats();

  /// Point-in-time view of one endpoint's health, for tests and operators.
  struct EndpointSnapshot {
    Endpoint endpoint;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t failures = 0;   ///< lifetime transport failures
    uint64_t successes = 0;  ///< lifetime successful calls
    uint64_t opens = 0;      ///< times the breaker tripped Open
  };
  std::vector<EndpointSnapshot> Endpoints() const;

  /// Lifetime counters across all requests.
  struct Stats_ {
    uint64_t attempts = 0;       ///< wire round trips tried
    uint64_t retries = 0;        ///< attempts beyond each request's first
    uint64_t failovers = 0;      ///< attempts served by a non-primary
    uint64_t budget_denied = 0;  ///< retries suppressed by the budget
  };
  const Stats_& stats() const { return stats_; }

 private:
  struct EndpointState {
    Endpoint endpoint;
    std::unique_ptr<XseqClient> client;  ///< null until first use / reconnect
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t open_until_micros = 0;  ///< when Half-Open probing may start
    uint64_t failures = 0;
    uint64_t successes = 0;
    uint64_t opens = 0;
  };

  uint64_t Now() const;
  void Sleep(uint64_t micros);

  /// Index of the endpoint the next attempt should use, honoring breaker
  /// states (Closed first in preference order, then cooled-down Open ones
  /// as Half-Open probes). -1 = everything is Open and still cooling.
  int PickEndpoint();

  /// The one retry/breaker/budget loop all public calls share. Runs `req`
  /// (re-encoding per attempt) until a definitive outcome. With a non-null
  /// `tb` (an active builder whose root is `root_span`), each attempt gets
  /// its own span, carries that span's context to the server, and grafts
  /// the returned server trace beneath it.
  StatusOr<WireResponse> CallWithFailover(WireRequest req,
                                          uint64_t deadline_budget_micros,
                                          obs::TraceBuilder* tb = nullptr,
                                          uint32_t root_span = obs::kNoSpan);

  void OnTransportFailure(EndpointState* ep);
  void OnSuccess(EndpointState* ep);

  /// Backoff before attempt number `attempt` (1-based retries), jittered.
  uint64_t BackoffMicros(int attempt);

  std::vector<EndpointState> endpoints_;
  FailoverOptions options_;
  std::mt19937_64 rng_;
  double budget_tokens_;
  Stats_ stats_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_FAILOVER_CLIENT_H_
