// QueryService: the in-process front door of the serving layer.
//
// Wraps any queryable backend behind managed concurrency:
//
//  * a fixed set of worker threads executes queries,
//  * a *bounded* admission queue sits in front of them — when it is full
//    the request is rejected immediately with kOverloaded (load shedding)
//    instead of queuing unboundedly; a shed request costs the caller one
//    mutex acquisition, never a wait,
//  * every request carries a deadline (its own, or the service default).
//    A request whose deadline passes while it still sits in the queue is
//    failed with kDeadlineExceeded without touching the backend; once
//    running, the deadline rides into ExecOptions::deadline_micros so the
//    executor abandons the query mid-flight,
//  * Shutdown() drains: admission stops (kFailedPrecondition), queued and
//    in-flight requests complete normally, then the workers exit. The
//    destructor performs the same drain.
//
// Instrumentation: xseq.serve.requests/ok/errors/shed/deadline_exceeded
// counters, xseq.serve.queue_depth and .inflight gauges (with maxima), and
// xseq.serve.latency_us / queue_us histograms.
//
// Per-request observability: a request is *traced* when the service has a
// tracer (ServiceOptions::exec.tracer) or the request carries a sampled
// TraceContext (RequestOptions::trace, propagated from wire protocol v4).
// A traced request records a "serve" root adopting the context's trace id,
// a real "queue" span covering the admission wait, and an "execute" span
// the backend's own spans attach beneath; the finished tree is committed
// to the tracer's ring (when present) and returned via RequestOutcome so
// the server can embed it in the response for client-side stitching. A
// request is *explained* when the caller asks (want_explain) or an access
// log is configured; the QueryExplain lands in RequestOutcome and in the
// log record. The access log (ServiceOptions::request_log) gets one record
// per request on every exit path — shed, deadline, error, cache hit, ok —
// subject to its own tail-sampling policy.

#ifndef XSEQ_SRC_SERVER_QUERY_SERVICE_H_
#define XSEQ_SRC_SERVER_QUERY_SERVICE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/core/collection_index.h"
#include "src/obs/request_log.h"
#include "src/obs/trace.h"
#include "src/query/executor.h"
#include "src/server/result_cache.h"

namespace xseq {

/// Admission-control and execution knobs.
struct ServiceOptions {
  int workers = 2;           ///< executor threads (>= 1)
  size_t max_queue = 64;     ///< admitted-but-not-running cap; 0 = workers
  /// Deadline budget applied to requests that do not carry one, in
  /// microseconds from admission; 0 = none.
  uint64_t default_deadline_micros = 0;
  ExecOptions exec;          ///< base options every request starts from
  /// Whole-answer cache, consulted *before* admission: a hit skips the
  /// queue and the workers entirely. Requires `generation` (entries are
  /// keyed on it; see src/server/result_cache.h for the invalidation
  /// protocol). Null disables result caching. Not owned.
  ResultCache* result_cache = nullptr;
  /// Current collection generation (DynamicIndex::generation,
  /// ShardedCollection::generation, or a constant for frozen backends).
  /// Must be monotone and bump with every result-affecting mutation.
  std::function<uint64_t()> generation;
  /// Structured access log (see src/obs/request_log.h); null = no logging.
  /// Not owned; must outlive the service. Appends never fail a request.
  obs::RequestLog* request_log = nullptr;
};

/// Per-request options beyond the query text and deadline.
struct RequestOptions {
  /// Deadline budget in microseconds from admission; 0 = service default.
  uint64_t deadline_budget_micros = 0;
  /// Distributed trace context propagated from the wire (invalid = none).
  /// A *sampled* context forces tracing even without a service tracer.
  obs::TraceContext trace;
  /// Fill RequestOutcome::explain with the planner/executor account.
  bool want_explain = false;
  /// Wire request id, recorded in trace annotations and the access log.
  uint64_t request_id = 0;
};

/// Observability results of one request, for callers that asked.
struct RequestOutcome {
  bool traced = false;   ///< `trace` holds this request's span tree
  obs::Trace trace;
  bool explained = false;  ///< `explain` was filled
  QueryExplain explain;
};

/// An in-process query server over an arbitrary backend.
class QueryService {
 public:
  /// The backend contract: run one XPath query under the given options.
  /// Must be safe for concurrent calls (CollectionIndex, DynamicIndex and
  /// ShardedCollection all are).
  using Backend =
      std::function<StatusOr<QueryResult>(std::string_view, const ExecOptions&)>;

  QueryService(Backend backend, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits, queues, and executes `xpath`, blocking the caller until the
  /// result is ready. `deadline_budget_micros` (0 = service default)
  /// bounds the total time from admission, queueing included. Returns
  /// kOverloaded when the queue is full and kFailedPrecondition after
  /// Shutdown() began.
  StatusOr<QueryResult> Execute(std::string_view xpath,
                                uint64_t deadline_budget_micros = 0) {
    RequestOptions ropts;
    ropts.deadline_budget_micros = deadline_budget_micros;
    return Execute(xpath, ropts, nullptr);
  }

  /// Full-control variant: carries the distributed trace context and the
  /// explain flag in, and (when `outcome` is non-null) the captured trace
  /// and explain record out.
  StatusOr<QueryResult> Execute(std::string_view xpath,
                                const RequestOptions& ropts,
                                RequestOutcome* outcome);

  /// Stops admission and waits until every already-admitted request has
  /// completed and all workers exited. Idempotent.
  void Shutdown();

  /// Queue + in-flight right now (approximate; for tests and ops).
  size_t pending() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Request;

  void WorkerLoop();

  Backend backend_;
  ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for queue items
  std::deque<std::shared_ptr<Request>> queue_;
  size_t inflight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_QUERY_SERVICE_H_
