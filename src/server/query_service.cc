#include "src/server/query_service.h"

#include <chrono>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

/// Wall-clock unix micros for access-log timestamps (the rest of the
/// service keeps using the steady clock for measurement).
uint64_t WallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Registry handles for the serving metrics, resolved once.
struct ServeMetricSet {
  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* shed;
  obs::Counter* deadline_exceeded;
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  obs::Histogram* latency_us;
  obs::Histogram* queue_us;
};

const ServeMetricSet& ServeMetrics() {
  static const ServeMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return ServeMetricSet{r->GetCounter("xseq.serve.requests"),
                          r->GetCounter("xseq.serve.ok"),
                          r->GetCounter("xseq.serve.errors"),
                          r->GetCounter("xseq.serve.shed"),
                          r->GetCounter("xseq.serve.deadline_exceeded"),
                          r->GetGauge("xseq.serve.queue_depth"),
                          r->GetGauge("xseq.serve.inflight"),
                          r->GetHistogram("xseq.serve.latency_us"),
                          r->GetHistogram("xseq.serve.queue_us")};
  }();
  return s;
}

}  // namespace

/// One admitted request, shared between the submitting thread (which waits
/// on `cv`) and the worker that executes it.
struct QueryService::Request {
  std::string xpath;
  int64_t deadline_micros = 0;  ///< absolute, 0 = none
  Timer admitted;               ///< queue-latency clock
  bool cache_eligible = false;  ///< store the answer if generation held
  uint64_t cache_generation = 0;///< generation observed at admission

  /// Tracing state, created at admission so the queue wait is a real span.
  /// The builder is written by the admitting thread (StartTrace) and then
  /// only by the worker; the Request handoff orders the accesses.
  bool tracing = false;
  obs::TraceBuilder trace;
  uint32_t root_span = obs::kNoSpan;
  uint32_t queue_span = obs::kNoSpan;
  bool has_trace = false;   ///< `captured` holds the finished tree
  obs::Trace captured;

  bool explaining = false;
  QueryExplain explain;

  uint64_t queued_us = 0;   ///< measured at dequeue, read after Wait()

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  StatusOr<QueryResult> result{Status::Internal("request not executed")};

  void Complete(StatusOr<QueryResult> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }

  StatusOr<QueryResult> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

QueryService::QueryService(Backend backend, ServiceOptions options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue == 0) {
    options_.max_queue = static_cast<size_t>(options_.workers);
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

namespace {

/// Builds the access-log record every exit path shares; `explain_json` is
/// rendered only when an explain was computed.
obs::RequestLogRecord MakeLogRecord(std::string_view xpath,
                                    const RequestOptions& ropts,
                                    const Status& status, uint64_t trace_id,
                                    uint64_t latency_us, uint64_t queue_us,
                                    uint64_t docs,
                                    const QueryExplain* explain) {
  obs::RequestLogRecord rec;
  rec.ts_us = WallNowUs();
  rec.request_id = ropts.request_id;
  rec.trace_id = trace_id;
  rec.query.assign(xpath.data(), xpath.size());
  rec.status = status.ok() ? "OK" : StatusCodeToString(status.code());
  rec.ok = status.ok();
  rec.shed = status.IsOverloaded();
  rec.deadline_miss = status.IsDeadlineExceeded();
  rec.latency_us = latency_us;
  rec.queue_us = queue_us;
  rec.docs = docs;
  if (explain != nullptr) {
    rec.result_cache_hit = explain->result_cache_hit;
    rec.plan_cache_hit = explain->plan_cache_hit;
    rec.explain_json = explain->ToJson();
  }
  return rec;
}

}  // namespace

StatusOr<QueryResult> QueryService::Execute(std::string_view xpath,
                                            const RequestOptions& ropts,
                                            RequestOutcome* outcome) {
  const bool metrics = obs::MetricsEnabled();
  if (metrics) ServeMetrics().requests->Increment();

  obs::RequestLog* log = options_.request_log;
  // Tracing engages for a sampled propagated context even without a local
  // ring; explain is computed whenever the caller asks or the access log
  // will want its summary.
  const bool tracing = options_.exec.tracer != nullptr || ropts.trace.sampled;
  const bool explaining = ropts.want_explain || log != nullptr;

  // Result cache: a hit is served on the caller's thread — no admission,
  // no queueing, no worker. Lookups use the generation of *this moment*,
  // so a mutation that committed before this request can never be masked
  // by a stale entry.
  const bool result_caching =
      options_.result_cache != nullptr && options_.generation != nullptr;
  uint64_t admission_generation = 0;
  if (result_caching) {
    Timer hit_timer;
    admission_generation = options_.generation();
    if (auto hit = options_.result_cache->Lookup(admission_generation, xpath)) {
      QueryResult out = *hit;
      out.stats.result_cache_hits += 1;
      if (metrics) {
        const ServeMetricSet& m = ServeMetrics();
        m.ok->Increment();
        m.latency_us->Record(static_cast<uint64_t>(hit_timer.ElapsedMicros()));
      }
      QueryExplain explain;
      if (explaining) {
        explain.result_cache_hit = true;
        explain.result_docs = out.docs.size();
        explain.sequences = out.stats.matched_sequences;
      }
      uint64_t trace_id = 0;
      if (tracing) {
        obs::TraceBuilder tb;
        uint32_t root = tb.StartTrace("serve", ropts.trace);
        if (ropts.request_id != 0) {
          tb.Annotate(root, "request_id", ropts.request_id);
        }
        obs::SpanScope hit_span(&tb, "result_cache_hit", root);
        hit_span.Annotate("docs", out.docs.size());
        hit_span.End();
        tb.EndSpan(root);
        obs::Trace t = tb.Finish();
        trace_id = t.trace_id;
        if (options_.exec.tracer != nullptr) {
          obs::Trace copy = t;
          options_.exec.tracer->Record(std::move(copy));
        }
        if (outcome != nullptr) {
          outcome->traced = true;
          outcome->trace = std::move(t);
        }
      }
      if (outcome != nullptr && explaining) {
        outcome->explained = true;
        outcome->explain = explain;
      }
      if (log != nullptr) {
        (void)log->Append(MakeLogRecord(
            xpath, ropts, Status::OK(), trace_id,
            static_cast<uint64_t>(hit_timer.ElapsedMicros()), 0,
            out.docs.size(), explaining ? &explain : nullptr));
      }
      return out;
    }
  }

  uint64_t budget = ropts.deadline_budget_micros != 0
                        ? ropts.deadline_budget_micros
                        : options_.default_deadline_micros;
  auto request = std::make_shared<Request>();
  request->xpath.assign(xpath.data(), xpath.size());
  request->cache_eligible = result_caching;
  request->cache_generation = admission_generation;
  request->explaining = explaining;
  if (budget != 0) {
    request->deadline_micros =
        DeadlineNowMicros() + static_cast<int64_t>(budget);
  } else {
    request->deadline_micros = options_.exec.deadline_micros;
  }
  if (tracing) {
    // The trace (and its "queue" span) starts *before* enqueue so the
    // admission wait is covered by a real span, not just an annotation.
    request->tracing = true;
    request->root_span = request->trace.StartTrace("serve", ropts.trace);
    if (ropts.request_id != 0) {
      request->trace.Annotate(request->root_span, "request_id",
                              ropts.request_id);
    }
    request->queue_span =
        request->trace.BeginSpan("queue", request->root_span);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      Status st = Status::FailedPrecondition("query service is shutting down");
      if (log != nullptr) {
        (void)log->Append(
            MakeLogRecord(xpath, ropts, st, 0, 0, 0, 0, nullptr));
      }
      return st;
    }
    if (queue_.size() >= options_.max_queue) {
      if (metrics) ServeMetrics().shed->Increment();
      Status st = Status::Overloaded(
          "request queue full (" + std::to_string(options_.max_queue) +
          " pending); retry with backoff");
      if (log != nullptr) {
        (void)log->Append(
            MakeLogRecord(xpath, ropts, st, 0, 0, 0, 0, nullptr));
      }
      return st;
    }
    queue_.push_back(request);
    if (metrics) {
      ServeMetrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();

  auto result = request->Wait();
  const uint64_t latency_us =
      static_cast<uint64_t>(request->admitted.ElapsedMicros());
  if (metrics) {
    const ServeMetricSet& m = ServeMetrics();
    m.latency_us->Record(latency_us);
    if (result.ok()) {
      m.ok->Increment();
    } else if (result.status().IsDeadlineExceeded()) {
      m.deadline_exceeded->Increment();
    } else {
      m.errors->Increment();
    }
  }
  const uint64_t trace_id =
      request->has_trace ? request->captured.trace_id : 0;
  if (outcome != nullptr) {
    if (request->has_trace) {
      outcome->traced = true;
      outcome->trace = std::move(request->captured);
    }
    if (request->explaining) {
      outcome->explained = true;
      outcome->explain = request->explain;
    }
  }
  if (log != nullptr) {
    (void)log->Append(MakeLogRecord(
        xpath, ropts, result.status(), trace_id, latency_us,
        request->queued_us, result.ok() ? result->docs.size() : 0,
        request->explaining ? &request->explain : nullptr));
  }
  return result;
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ set and fully drained
      request = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      if (obs::MetricsEnabled()) {
        ServeMetrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
        ServeMetrics().inflight->Set(static_cast<int64_t>(inflight_));
      }
    }

    const uint64_t queued_us =
        static_cast<uint64_t>(request->admitted.ElapsedMicros());
    request->queued_us = queued_us;
    if (obs::MetricsEnabled()) {
      ServeMetrics().queue_us->Record(queued_us);
    }
    if (request->tracing) {
      // The admission wait ends here; close its span where the worker
      // picked the request up.
      request->trace.Annotate(request->queue_span, "queue_us", queued_us);
      request->trace.EndSpan(request->queue_span);
    }

    ExecOptions opts = options_.exec;
    opts.deadline_micros = request->deadline_micros;
    opts.tracer = nullptr;  // the request's builder owns this trace
    if (request->explaining) opts.explain = &request->explain;
    StatusOr<QueryResult> result = Status::Internal("request not executed");
    if (opts.DeadlineExpired()) {
      // The time budget burned away in the queue: don't start work the
      // caller has already given up on.
      result = Status::DeadlineExceeded("deadline expired while queued (" +
                                        std::to_string(queued_us) + "us)");
    } else if (request->tracing) {
      obs::SpanScope exec_span(&request->trace, "execute",
                               request->root_span);
      opts.trace = &request->trace;
      opts.trace_parent = exec_span.id();
      result = backend_(request->xpath, opts);
      if (result.ok()) exec_span.Annotate("docs", result->docs.size());
    } else {
      result = backend_(request->xpath, opts);
    }
    if (request->tracing) {
      request->trace.EndSpan(request->root_span);
      request->captured = request->trace.Finish();
      request->has_trace = true;
      if (options_.exec.tracer != nullptr) {
        obs::Trace copy = request->captured;
        options_.exec.tracer->Record(std::move(copy));
      }
    }

    if (request->cache_eligible && result.ok() &&
        options_.generation() == request->cache_generation) {
      // No mutation committed since admission (generations are monotone),
      // so this answer is exactly the answer at cache_generation. If one
      // did, discard rather than cache a possibly mixed-state answer.
      options_.result_cache->Insert(request->cache_generation,
                                    request->xpath, *result);
    }

    // Settle the accounting before waking the caller, so `pending()` never
    // counts a request whose Execute() has already returned.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (obs::MetricsEnabled()) {
        ServeMetrics().inflight->Set(static_cast<int64_t>(inflight_));
      }
    }
    request->Complete(std::move(result));
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t QueryService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + inflight_;
}

}  // namespace xseq
