#include "src/server/query_service.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

/// Registry handles for the serving metrics, resolved once.
struct ServeMetricSet {
  obs::Counter* requests;
  obs::Counter* ok;
  obs::Counter* errors;
  obs::Counter* shed;
  obs::Counter* deadline_exceeded;
  obs::Gauge* queue_depth;
  obs::Gauge* inflight;
  obs::Histogram* latency_us;
  obs::Histogram* queue_us;
};

const ServeMetricSet& ServeMetrics() {
  static const ServeMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return ServeMetricSet{r->GetCounter("xseq.serve.requests"),
                          r->GetCounter("xseq.serve.ok"),
                          r->GetCounter("xseq.serve.errors"),
                          r->GetCounter("xseq.serve.shed"),
                          r->GetCounter("xseq.serve.deadline_exceeded"),
                          r->GetGauge("xseq.serve.queue_depth"),
                          r->GetGauge("xseq.serve.inflight"),
                          r->GetHistogram("xseq.serve.latency_us"),
                          r->GetHistogram("xseq.serve.queue_us")};
  }();
  return s;
}

}  // namespace

/// One admitted request, shared between the submitting thread (which waits
/// on `cv`) and the worker that executes it.
struct QueryService::Request {
  std::string xpath;
  int64_t deadline_micros = 0;  ///< absolute, 0 = none
  Timer admitted;               ///< queue-latency clock
  bool cache_eligible = false;  ///< store the answer if generation held
  uint64_t cache_generation = 0;///< generation observed at admission

  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  StatusOr<QueryResult> result{Status::Internal("request not executed")};

  void Complete(StatusOr<QueryResult> r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      result = std::move(r);
      done = true;
    }
    cv.notify_all();
  }

  StatusOr<QueryResult> Wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return std::move(result);
  }
};

QueryService::QueryService(Backend backend, ServiceOptions options)
    : backend_(std::move(backend)), options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.max_queue == 0) {
    options_.max_queue = static_cast<size_t>(options_.workers);
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

StatusOr<QueryResult> QueryService::Execute(std::string_view xpath,
                                            uint64_t deadline_budget_micros) {
  const bool metrics = obs::MetricsEnabled();
  if (metrics) ServeMetrics().requests->Increment();

  // Result cache: a hit is served on the caller's thread — no admission,
  // no queueing, no worker. Lookups use the generation of *this moment*,
  // so a mutation that committed before this request can never be masked
  // by a stale entry.
  const bool result_caching =
      options_.result_cache != nullptr && options_.generation != nullptr;
  uint64_t admission_generation = 0;
  if (result_caching) {
    Timer hit_timer;
    admission_generation = options_.generation();
    if (auto hit = options_.result_cache->Lookup(admission_generation, xpath)) {
      QueryResult out = *hit;
      out.stats.result_cache_hits += 1;
      if (metrics) {
        const ServeMetricSet& m = ServeMetrics();
        m.ok->Increment();
        m.latency_us->Record(static_cast<uint64_t>(hit_timer.ElapsedMicros()));
      }
      return out;
    }
  }

  uint64_t budget = deadline_budget_micros != 0
                        ? deadline_budget_micros
                        : options_.default_deadline_micros;
  auto request = std::make_shared<Request>();
  request->xpath.assign(xpath.data(), xpath.size());
  request->cache_eligible = result_caching;
  request->cache_generation = admission_generation;
  if (budget != 0) {
    request->deadline_micros =
        DeadlineNowMicros() + static_cast<int64_t>(budget);
  } else {
    request->deadline_micros = options_.exec.deadline_micros;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("query service is shutting down");
    }
    if (queue_.size() >= options_.max_queue) {
      if (metrics) ServeMetrics().shed->Increment();
      return Status::Overloaded(
          "request queue full (" + std::to_string(options_.max_queue) +
          " pending); retry with backoff");
    }
    queue_.push_back(request);
    if (metrics) {
      ServeMetrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();

  auto result = request->Wait();
  if (metrics) {
    const ServeMetricSet& m = ServeMetrics();
    m.latency_us->Record(
        static_cast<uint64_t>(request->admitted.ElapsedMicros()));
    if (result.ok()) {
      m.ok->Increment();
    } else if (result.status().IsDeadlineExceeded()) {
      m.deadline_exceeded->Increment();
    } else {
      m.errors->Increment();
    }
  }
  return result;
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Request> request;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ set and fully drained
      request = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
      if (obs::MetricsEnabled()) {
        ServeMetrics().queue_depth->Set(static_cast<int64_t>(queue_.size()));
        ServeMetrics().inflight->Set(static_cast<int64_t>(inflight_));
      }
    }

    const uint64_t queued_us =
        static_cast<uint64_t>(request->admitted.ElapsedMicros());
    if (obs::MetricsEnabled()) {
      ServeMetrics().queue_us->Record(queued_us);
    }

    ExecOptions opts = options_.exec;
    opts.deadline_micros = request->deadline_micros;
    StatusOr<QueryResult> result = Status::Internal("request not executed");
    if (opts.DeadlineExpired()) {
      // The time budget burned away in the queue: don't start work the
      // caller has already given up on.
      result = Status::DeadlineExceeded("deadline expired while queued (" +
                                        std::to_string(queued_us) + "us)");
    } else if (opts.tracer != nullptr) {
      // Service-level trace: a "serve" root with the queue wait
      // annotated; the query's own spans attach underneath.
      obs::TraceBuilder trace;
      uint32_t root = trace.StartTrace("serve");
      trace.Annotate(root, "queue_us", queued_us);
      obs::Tracer* tracer = opts.tracer;
      opts.trace = &trace;
      opts.trace_parent = root;
      opts.tracer = nullptr;
      result = backend_(request->xpath, opts);
      trace.EndSpan(root);
      trace.Commit(tracer);
    } else {
      result = backend_(request->xpath, opts);
    }

    if (request->cache_eligible && result.ok() &&
        options_.generation() == request->cache_generation) {
      // No mutation committed since admission (generations are monotone),
      // so this answer is exactly the answer at cache_generation. If one
      // did, discard rather than cache a possibly mixed-state answer.
      options_.result_cache->Insert(request->cache_generation,
                                    request->xpath, *result);
    }

    // Settle the accounting before waking the caller, so `pending()` never
    // counts a request whose Execute() has already returned.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
      if (obs::MetricsEnabled()) {
        ServeMetrics().inflight->Set(static_cast<int64_t>(inflight_));
      }
    }
    request->Complete(std::move(result));
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t QueryService::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + inflight_;
}

}  // namespace xseq
