// ShardedCollection: hash-partition a document collection across N
// independent index shards and scatter-gather queries over them.
//
// Partitioning is by document id: shard(d) = FNV-1a64(d) mod N. Each shard
// is a fully self-contained index — its own vocabulary tables, path
// dictionary, sequencing model and trie — built only from the documents
// routed to it. Result *sets* are nevertheless identical to a single
// unsharded index over the same corpus: constraint-sequence matching is
// exact per document (the paper's Theorems 2-3), and a document's membership
// in the answer depends only on its own tree, never on which other
// documents share its index. Cost counters (entries read, candidates)
// legitimately differ per shard — each shard sequences under its own
// statistics — and are surfaced as the ExecStats sum over shards.
//
// Two backends, chosen at construction:
//  * static  — documents buffer in per-shard CollectionBuilders; Seal()
//              builds every shard (in parallel across the scatter pool)
//              and the collection becomes immutable and persistable.
//  * dynamic — each shard is a DynamicIndex; Add() works forever, Seal()
//              just flushes buffers into segments.
//
// Because every shard owns its vocabulary, a document must be parsed or
// generated against the tables of the shard that will own it: call
// ShardOf(id) first, then names(shard)/values(shard), then Add().
//
// Persistence: Save(prefix) writes one index file per shard via the
// existing atomic save path (`<prefix>.shard<K>`), then a small
// checksummed manifest at `<prefix>` — written last, so a crash mid-save
// leaves either the complete old collection or the complete new one
// discoverable, never a half-set. The dynamic backend saves by compacting
// each shard into a single static segment first (DynamicIndex::
// SaveCompacted); what Load() reads back is always a static collection.
//
// Thread-safety: Add/Seal are exclusive to one preparing thread; after
// Seal (or at any time on the dynamic backend) Query/QueryBatch may race
// freely from many threads.

#ifndef XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_
#define XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/collection_index.h"
#include "src/core/dynamic_index.h"
#include "src/core/persist.h"
#include "src/util/thread_pool.h"

namespace xseq {

/// Sharded-collection knobs.
struct ShardedOptions {
  int shards = 1;                 ///< number of hash partitions (>= 1)
  bool dynamic = false;           ///< DynamicIndex shards instead of static
  IndexOptions index;             ///< per-shard build options
  size_t flush_threshold = 1024;  ///< dynamic backend: docs per segment
  /// Scatter-gather parallelism: shards of one query are probed
  /// concurrently on this pool. 0 = the process default pool, 1 = serial,
  /// n > 1 = a dedicated pool.
  int threads = 0;
};

/// The shard owning document `id` among `shards` partitions.
size_t ShardOfDoc(DocId id, size_t shards);

/// Per-shard image path of a saved sharded collection: "<prefix>.shard<K>".
/// Shared by Save/Load, the replica-shipping tool and topology validation.
std::string ShardImagePath(const std::string& prefix, size_t shard);

/// The decoded manifest of a saved sharded collection.
struct ShardedManifest {
  uint32_t shard_count = 0;
  uint64_t total_documents = 0;
};

/// Reads and validates the manifest at `prefix`: magic, whole-manifest
/// checksum, version, plausible shard count. This is the cheap first step
/// of both Load() and offline image validation (replication, hot-swap).
StatusOr<ShardedManifest> ReadShardedManifest(
    const std::string& prefix, const PersistOptions& persist = {});

class ShardedCollection {
 public:
  explicit ShardedCollection(ShardedOptions options);
  ~ShardedCollection();

  ShardedCollection(ShardedCollection&&) = default;
  ShardedCollection& operator=(ShardedCollection&&) = default;

  size_t shard_count() const { return static_cast<size_t>(options_.shards); }
  size_t ShardOf(DocId id) const { return ShardOfDoc(id, shard_count()); }

  /// Vocabulary tables of one shard; parse/generate a document against the
  /// tables of ShardOf(its id) before Add(). Null after a static Seal().
  NameTable* names(size_t shard);
  ValueEncoder* values(size_t shard);

  /// Routes `doc` to its shard by id. Static backend: only before Seal().
  Status Add(Document&& doc);

  /// Deletes every live document with `id` in its owning shard (dynamic
  /// backend only; see DynamicIndex::Delete for tombstone semantics).
  Status Delete(DocId id);

  /// Replaces the documents carrying `id` with `doc` atomically within the
  /// owning shard. `doc` must be parsed/generated against that shard's
  /// tables with the same id. Dynamic backend only.
  Status Update(Document&& doc, DocId id);

  /// Compacts every dynamic shard, purging tombstones and merging segments
  /// (no-op ordering guarantees per shard; see DynamicIndex::Compact).
  /// Dynamic backend only.
  Status Compact();

  /// Static: builds every shard index (parallel across the pool) and
  /// freezes the collection. Dynamic: flushes every shard's buffer.
  Status Seal();

  /// True once queries are allowed (always, for the dynamic backend).
  bool sealed() const;

  /// Scatter-gather query: every shard is probed (in parallel on the
  /// pool), per-shard answers are unioned (shards are disjoint by
  /// construction) and per-shard ExecStats are summed.
  StatusOr<QueryResult> Query(std::string_view xpath,
                              const ExecOptions& options = {}) const;

  /// Runs many queries concurrently across the pool; each query then
  /// probes its shards serially (the batch already saturates the pool).
  /// Results are positionally aligned with `xpaths` and identical to
  /// serial Query() calls.
  std::vector<StatusOr<QueryResult>> QueryBatch(
      const std::vector<std::string>& xpaths,
      const ExecOptions& options = {}) const;

  uint64_t total_documents() const;

  /// One built static shard (after Seal() or Load()); null for the dynamic
  /// backend or before sealing. The reshard path walks these directly.
  const CollectionIndex* shard(size_t s) const {
    return s < shards_.size() ? shards_[s].get() : nullptr;
  }

  /// Monotone mutation counter for result-cache invalidation. Dynamic
  /// backend: the sum of the shards' DynamicIndex generations (sums of
  /// per-shard monotone counters are monotone, and equality of two reads
  /// implies equality per shard). Static backend: 0 while accepting
  /// documents, 1 once sealed (queries only run sealed, so cached answers
  /// never outlive a state change).
  uint64_t generation() const;

  /// Sum of per-shard index sizes (static backend after Seal; zeros
  /// otherwise except `documents`).
  CollectionIndex::SizeStats MergedStats() const;

  const ShardedOptions& options() const { return options_; }

  /// Per-shard persistence; see the file comment for the on-disk layout.
  /// Static backend: requires Seal(). Dynamic backend: compacts every
  /// shard into one static segment and writes that (logically const — the
  /// answer set is unchanged — but the compaction bumps the generation,
  /// retiring cached results; DynamicIndex is internally synchronized, so
  /// queries may race with the save).
  Status Save(const std::string& prefix,
              const PersistOptions& persist = {}) const;
  static StatusOr<ShardedCollection> Load(const std::string& prefix,
                                          int threads = 0,
                                          const PersistOptions& persist = {});

 private:
  Status QueryShards(std::string_view xpath, const ExecOptions& options,
                     bool parallel, QueryResult* out) const;

  ShardedOptions options_;
  bool sealed_ = false;
  /// Static backend: builders before Seal, indexes after.
  std::vector<std::unique_ptr<CollectionBuilder>> builders_;
  std::vector<std::unique_ptr<CollectionIndex>> shards_;
  /// Dynamic backend.
  std::vector<std::unique_ptr<DynamicIndex>> dynamic_shards_;
  std::unique_ptr<ThreadPool> pool_;  ///< owned pool when threads > 1
  /// Reusable match scratch for static-shard probes (indirect so the
  /// collection stays movable; the pool itself holds a mutex).
  std::unique_ptr<MatchContextPool> match_contexts_;
  uint64_t added_docs_ = 0;
};

/// Offline N→M reshard of a static, sealed collection. Every indexed
/// document is recovered from its shard's trie (the root-to-node label
/// chain is the constraint sequence; Theorem 1 rebuilds the tree),
/// translated into the destination shard's vocabulary, and re-routed
/// through the same FNV-1a64 partitioner — so the result is what a fresh
/// M-shard build over the same corpus would answer, for every query
/// (Theorems 2–3: membership depends only on the document's own tree).
/// Value designators translate by string in exact mode and ride through
/// unchanged otherwise: hashed ids depend only on the text, and
/// char-sequence tries index the expanded document, so reconstructed
/// value nodes already carry vocabulary-independent character codes.
/// Works on loaded images: no retained documents are needed.
StatusOr<ShardedCollection> ReshardCollection(const ShardedCollection& source,
                                              int new_shards,
                                              int threads = 0);

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_
