// ShardedCollection: hash-partition a document collection across N
// independent index shards and scatter-gather queries over them.
//
// Partitioning is by document id: shard(d) = FNV-1a64(d) mod N. Each shard
// is a fully self-contained index — its own vocabulary tables, path
// dictionary, sequencing model and trie — built only from the documents
// routed to it. Result *sets* are nevertheless identical to a single
// unsharded index over the same corpus: constraint-sequence matching is
// exact per document (the paper's Theorems 2-3), and a document's membership
// in the answer depends only on its own tree, never on which other
// documents share its index. Cost counters (entries read, candidates)
// legitimately differ per shard — each shard sequences under its own
// statistics — and are surfaced as the ExecStats sum over shards.
//
// Two backends, chosen at construction:
//  * static  — documents buffer in per-shard CollectionBuilders; Seal()
//              builds every shard (in parallel across the scatter pool)
//              and the collection becomes immutable and persistable.
//  * dynamic — each shard is a DynamicIndex; Add() works forever, Seal()
//              just flushes buffers into segments.
//
// Because every shard owns its vocabulary, a document must be parsed or
// generated against the tables of the shard that will own it: call
// ShardOf(id) first, then names(shard)/values(shard), then Add().
//
// Persistence (static backend): Save(prefix) writes one index file per
// shard via the existing atomic save path (`<prefix>.shard<K>`), then a
// small checksummed manifest at `<prefix>` — written last, so a crash
// mid-save leaves either the complete old collection or the complete new
// one discoverable, never a half-set.
//
// Thread-safety: Add/Seal are exclusive to one preparing thread; after
// Seal (or at any time on the dynamic backend) Query/QueryBatch may race
// freely from many threads.

#ifndef XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_
#define XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/collection_index.h"
#include "src/core/dynamic_index.h"
#include "src/core/persist.h"
#include "src/util/thread_pool.h"

namespace xseq {

/// Sharded-collection knobs.
struct ShardedOptions {
  int shards = 1;                 ///< number of hash partitions (>= 1)
  bool dynamic = false;           ///< DynamicIndex shards instead of static
  IndexOptions index;             ///< per-shard build options
  size_t flush_threshold = 1024;  ///< dynamic backend: docs per segment
  /// Scatter-gather parallelism: shards of one query are probed
  /// concurrently on this pool. 0 = the process default pool, 1 = serial,
  /// n > 1 = a dedicated pool.
  int threads = 0;
};

/// The shard owning document `id` among `shards` partitions.
size_t ShardOfDoc(DocId id, size_t shards);

class ShardedCollection {
 public:
  explicit ShardedCollection(ShardedOptions options);
  ~ShardedCollection();

  ShardedCollection(ShardedCollection&&) = default;
  ShardedCollection& operator=(ShardedCollection&&) = default;

  size_t shard_count() const { return static_cast<size_t>(options_.shards); }
  size_t ShardOf(DocId id) const { return ShardOfDoc(id, shard_count()); }

  /// Vocabulary tables of one shard; parse/generate a document against the
  /// tables of ShardOf(its id) before Add(). Null after a static Seal().
  NameTable* names(size_t shard);
  ValueEncoder* values(size_t shard);

  /// Routes `doc` to its shard by id. Static backend: only before Seal().
  Status Add(Document&& doc);

  /// Static: builds every shard index (parallel across the pool) and
  /// freezes the collection. Dynamic: flushes every shard's buffer.
  Status Seal();

  /// True once queries are allowed (always, for the dynamic backend).
  bool sealed() const;

  /// Scatter-gather query: every shard is probed (in parallel on the
  /// pool), per-shard answers are unioned (shards are disjoint by
  /// construction) and per-shard ExecStats are summed.
  StatusOr<QueryResult> Query(std::string_view xpath,
                              const ExecOptions& options = {}) const;

  /// Runs many queries concurrently across the pool; each query then
  /// probes its shards serially (the batch already saturates the pool).
  /// Results are positionally aligned with `xpaths` and identical to
  /// serial Query() calls.
  std::vector<StatusOr<QueryResult>> QueryBatch(
      const std::vector<std::string>& xpaths,
      const ExecOptions& options = {}) const;

  uint64_t total_documents() const;

  /// Monotone mutation counter for result-cache invalidation. Dynamic
  /// backend: the sum of the shards' DynamicIndex generations (sums of
  /// per-shard monotone counters are monotone, and equality of two reads
  /// implies equality per shard). Static backend: 0 while accepting
  /// documents, 1 once sealed (queries only run sealed, so cached answers
  /// never outlive a state change).
  uint64_t generation() const;

  /// Sum of per-shard index sizes (static backend after Seal; zeros
  /// otherwise except `documents`).
  CollectionIndex::SizeStats MergedStats() const;

  const ShardedOptions& options() const { return options_; }

  /// Per-shard persistence, static backend only (the dynamic backend is
  /// kUnimplemented — compact-and-save is a roadmap item). See the file
  /// comment for the on-disk layout.
  Status Save(const std::string& prefix,
              const PersistOptions& persist = {}) const;
  static StatusOr<ShardedCollection> Load(const std::string& prefix,
                                          int threads = 0,
                                          const PersistOptions& persist = {});

 private:
  Status QueryShards(std::string_view xpath, const ExecOptions& options,
                     bool parallel, QueryResult* out) const;

  ShardedOptions options_;
  bool sealed_ = false;
  /// Static backend: builders before Seal, indexes after.
  std::vector<std::unique_ptr<CollectionBuilder>> builders_;
  std::vector<std::unique_ptr<CollectionIndex>> shards_;
  /// Dynamic backend.
  std::vector<std::unique_ptr<DynamicIndex>> dynamic_shards_;
  std::unique_ptr<ThreadPool> pool_;  ///< owned pool when threads > 1
  /// Reusable match scratch for static-shard probes (indirect so the
  /// collection stays movable; the pool itself holds a mutex).
  std::unique_ptr<MatchContextPool> match_contexts_;
  uint64_t added_docs_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_SHARDED_COLLECTION_H_
