// XseqClient: a small blocking client for the xseq wire protocol — one
// connection, one request in flight, strict request/response. Used by the
// xseq_client CLI, the serve benchmark's load generator, and tests.
//
// Version negotiation: the client opens every connection speaking
// kWireVersion. A server that answers kUnimplemented naming the wire
// protocol version is an older build — the client downgrades to
// kMinWireVersion, reconnects (the server closed the connection along
// with the error), and replays the request once. The downgrade sticks for
// the client's lifetime, so a session against an old daemon pays the
// round trip exactly once. v4-only features (trace propagation, explain,
// the metrics op) silently drop away on a downgraded connection; the v5
// mutation ops (delete/update/compact) fail locally with kUnimplemented
// instead — a mutation must never be silently dropped.
//
// Tracing: give the client a tracer (set_tracer) and every Query()
// records a client-side trace — a "client_query" root and an "rpc" span
// covering the wire round trip — propagates the rpc span's context to the
// server, and grafts the server's own span tree (returned in the v4
// response) under the rpc span: one stitched trace per query, committed
// to the tracer's ring.
//
// Not thread-safe: one thread per client (open several clients for
// concurrency; connections are cheap). Request ids are assigned
// monotonically and every response is validated against the id and op of
// the request it answers.

#ifndef XSEQ_SRC_SERVER_CLIENT_H_
#define XSEQ_SRC_SERVER_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/trace.h"
#include "src/server/protocol.h"
#include "src/server/socket.h"

namespace xseq {

/// One remote query answer.
struct RemoteQueryResult {
  std::vector<DocId> docs;   ///< sorted, deduplicated (server contract)
  WireQueryStats stats;
  /// Planner/executor account of the query (Query(..., want_explain=true)
  /// against a v4 server; absent on a v3 connection).
  bool has_explain = false;
  QueryExplain explain;
  /// Trace id of the stitched client+server trace recorded for this query
  /// (0 when the client has no tracer).
  uint64_t trace_id = 0;
};

class XseqClient {
 public:
  /// Connects to an xseq_serve daemon. `env` nullptr = real TCP.
  static StatusOr<XseqClient> Connect(const std::string& host, int port,
                                      SocketEnv* env = nullptr);

  XseqClient(XseqClient&&) = default;
  XseqClient& operator=(XseqClient&&) = default;

  /// Runs `xpath` remotely. `deadline_budget_micros` (0 = server default)
  /// bounds the server-side time from admission. A shed request surfaces
  /// as kOverloaded, an expired one as kDeadlineExceeded — exactly the
  /// status the server produced, rebuilt from the wire. `want_explain`
  /// asks a v4 server for the planner's account (RemoteQueryResult::
  /// explain); a v3 connection ignores it.
  StatusOr<RemoteQueryResult> Query(std::string_view xpath,
                                    uint64_t deadline_budget_micros = 0,
                                    bool want_explain = false);

  /// The serving process's MetricsRegistry JSON dump.
  StatusOr<std::string> Stats();

  /// The serving process's Prometheus text exposition (v4 servers only; a
  /// downgraded v3 connection returns kUnimplemented locally).
  StatusOr<std::string> Metrics();

  /// Round-trip liveness check.
  Status Ping();

  /// Asks the daemon to drain and exit. The ack is the last frame this
  /// connection will carry.
  Status Shutdown();

  /// Asks the daemon to hot-swap to the sharded image at `path` (empty =
  /// re-load whatever prefix it is currently serving). Returns the
  /// generation now being served. A rejected image (corruption, canary
  /// failure) surfaces as the server's error while the old generation
  /// keeps serving.
  StatusOr<uint64_t> Reload(std::string_view path = "");

  /// Tombstones every live document with `id` on the daemon's dynamic
  /// backend; returns the generation after the mutation. v5 servers only —
  /// a downgraded connection returns kUnimplemented locally, and a static
  /// backend answers kFailedPrecondition from the server.
  StatusOr<uint64_t> Delete(uint64_t id);

  /// Atomically replaces the documents carrying `id` with the document
  /// parsed from `xml` (server-side, against the owning shard's
  /// vocabulary); returns the generation after the mutation. v5 only.
  StatusOr<uint64_t> Update(uint64_t id, std::string_view xml);

  /// Compacts the daemon's dynamic backend: purges tombstones and merges
  /// segments; returns the generation after compaction. v5 only.
  StatusOr<uint64_t> Compact();

  /// Raw request/response round trip, validating the id/op echo. The
  /// transport/protocol outcome is the StatusOr; the remote call's own
  /// outcome is the response's `status` field. FailoverClient needs the
  /// two kept apart (a dead socket is retryable, a remote parse error is
  /// not); the typed wrappers above flatten them for everyone else.
  /// Stamps the connection's negotiated version into the request.
  StatusOr<WireResponse> Call(WireRequest req);

  /// Sink for client-side query traces (nullptr = tracing off). Not owned;
  /// must outlive the client.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The protocol version this connection speaks (kWireVersion until a
  /// downgrade, kMinWireVersion after).
  uint8_t wire_version() const { return wire_version_; }

  void Close();

 private:
  XseqClient(std::unique_ptr<Connection> conn, std::string host, int port,
             SocketEnv* env)
      : conn_(std::move(conn)),
        host_(std::move(host)),
        port_(port),
        env_(env) {}

  /// Sends `req` and reads its response, validating id/op echo. Handles
  /// the one-shot version downgrade (reconnect + replay).
  StatusOr<WireResponse> RoundTrip(WireRequest req);

  /// One wire round trip at the current negotiated version.
  StatusOr<WireResponse> RoundTripOnce(const WireRequest& req);

  std::unique_ptr<Connection> conn_;
  std::string host_;
  int port_ = 0;
  SocketEnv* env_ = nullptr;  ///< not owned; the env Connect() used
  uint64_t next_id_ = 1;
  uint8_t wire_version_ = kWireVersion;
  obs::Tracer* tracer_ = nullptr;  ///< not owned
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_CLIENT_H_
