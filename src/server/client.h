// XseqClient: a small blocking client for the xseq wire protocol — one
// connection, one request in flight, strict request/response. Used by the
// xseq_client CLI, the serve benchmark's load generator, and tests.
//
// Not thread-safe: one thread per client (open several clients for
// concurrency; connections are cheap). Request ids are assigned
// monotonically and every response is validated against the id and op of
// the request it answers.

#ifndef XSEQ_SRC_SERVER_CLIENT_H_
#define XSEQ_SRC_SERVER_CLIENT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/server/protocol.h"
#include "src/server/socket.h"

namespace xseq {

/// One remote query answer.
struct RemoteQueryResult {
  std::vector<DocId> docs;   ///< sorted, deduplicated (server contract)
  WireQueryStats stats;
};

class XseqClient {
 public:
  /// Connects to an xseq_serve daemon. `env` nullptr = real TCP.
  static StatusOr<XseqClient> Connect(const std::string& host, int port,
                                      SocketEnv* env = nullptr);

  XseqClient(XseqClient&&) = default;
  XseqClient& operator=(XseqClient&&) = default;

  /// Runs `xpath` remotely. `deadline_budget_micros` (0 = server default)
  /// bounds the server-side time from admission. A shed request surfaces
  /// as kOverloaded, an expired one as kDeadlineExceeded — exactly the
  /// status the server produced, rebuilt from the wire.
  StatusOr<RemoteQueryResult> Query(std::string_view xpath,
                                    uint64_t deadline_budget_micros = 0);

  /// The serving process's MetricsRegistry JSON dump.
  StatusOr<std::string> Stats();

  /// Round-trip liveness check.
  Status Ping();

  /// Asks the daemon to drain and exit. The ack is the last frame this
  /// connection will carry.
  Status Shutdown();

  /// Asks the daemon to hot-swap to the sharded image at `path` (empty =
  /// re-load whatever prefix it is currently serving). Returns the
  /// generation now being served. A rejected image (corruption, canary
  /// failure) surfaces as the server's error while the old generation
  /// keeps serving.
  StatusOr<uint64_t> Reload(std::string_view path = "");

  /// Raw request/response round trip, validating the id/op echo. The
  /// transport/protocol outcome is the StatusOr; the remote call's own
  /// outcome is the response's `status` field. FailoverClient needs the
  /// two kept apart (a dead socket is retryable, a remote parse error is
  /// not); the typed wrappers above flatten them for everyone else.
  StatusOr<WireResponse> Call(WireRequest req);

  void Close();

 private:
  explicit XseqClient(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Sends `req` and reads its response, validating id/op echo.
  StatusOr<WireResponse> RoundTrip(WireRequest req);

  std::unique_ptr<Connection> conn_;
  uint64_t next_id_ = 1;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SERVER_CLIENT_H_
