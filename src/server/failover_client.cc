#include "src/server/failover_client.h"

#include <algorithm>
#include <utility>

#include "src/util/env.h"

namespace xseq {

FailoverClient::FailoverClient(std::vector<Endpoint> endpoints,
                               FailoverOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      budget_tokens_(options_.retry_budget_burst) {
  endpoints_.reserve(endpoints.size());
  for (Endpoint& e : endpoints) {
    EndpointState state;
    state.endpoint = std::move(e);
    endpoints_.push_back(std::move(state));
  }
  if (!options_.clock_micros) {
    options_.clock_micros = [] { return Env::Default()->NowMicros(); };
  }
  if (!options_.sleeper) {
    options_.sleeper = [](uint64_t micros) {
      Env::Default()->SleepForMicroseconds(micros);
    };
  }
}

uint64_t FailoverClient::Now() const { return options_.clock_micros(); }

void FailoverClient::Sleep(uint64_t micros) {
  if (micros > 0) options_.sleeper(micros);
}

int FailoverClient::PickEndpoint() {
  const uint64_t now = Now();
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    EndpointState& ep = endpoints_[i];
    if (ep.state == BreakerState::kClosed) return static_cast<int>(i);
    if (now >= ep.open_until_micros) {
      // Cooldown over: let exactly this request through as the probe. An
      // earlier-preference endpoint probes before a healthy later one —
      // that is how a recovered primary gets re-admitted while replicas
      // are still serving fine.
      ep.state = BreakerState::kHalfOpen;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void FailoverClient::OnTransportFailure(EndpointState* ep) {
  ++ep->failures;
  ++ep->consecutive_failures;
  // The connection is suspect along with the endpoint; reconnect next time.
  ep->client.reset();
  const bool probe_failed = ep->state == BreakerState::kHalfOpen;
  if (probe_failed ||
      ep->consecutive_failures >= options_.breaker_threshold) {
    ep->state = BreakerState::kOpen;
    ep->open_until_micros = Now() + options_.breaker_cooldown_micros;
    ep->consecutive_failures = 0;
    ++ep->opens;
  }
}

void FailoverClient::OnSuccess(EndpointState* ep) {
  ++ep->successes;
  ep->consecutive_failures = 0;
  ep->state = BreakerState::kClosed;
}

uint64_t FailoverClient::BackoffMicros(int attempt) {
  uint64_t base = options_.backoff_initial_micros;
  for (int i = 1; i < attempt && base < options_.backoff_max_micros; ++i) {
    base *= 2;
  }
  base = std::min(base, options_.backoff_max_micros);
  if (base <= 1) return base;
  // Uniform in [base/2, base]: staggers a herd of clients retrying the
  // same outage without ever collapsing the wait to ~0.
  std::uniform_int_distribution<uint64_t> jitter(base / 2, base);
  return jitter(rng_);
}

StatusOr<WireResponse> FailoverClient::CallWithFailover(
    WireRequest req, uint64_t deadline_budget_micros, obs::TraceBuilder* tb,
    uint32_t root_span) {
  if (endpoints_.empty()) {
    return Status::InvalidArgument("no endpoints configured");
  }
  const uint64_t start = Now();
  const uint64_t deadline_abs =
      deadline_budget_micros > 0 ? start + deadline_budget_micros : 0;

  // Each request earns a fraction of a retry; the bucket caps the burst.
  budget_tokens_ = std::min(options_.retry_budget_burst,
                            budget_tokens_ + options_.retry_budget_ratio);

  Status last_error = Status::IOError("all endpoints unhealthy");
  int avoid = -1;  ///< endpoint that shed (kOverloaded) this request

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (deadline_abs != 0 && Now() >= deadline_abs) {
      return Status::DeadlineExceeded("request deadline elapsed (last error: " +
                                      last_error.message() + ")");
    }
    if (attempt > 1) {
      if (budget_tokens_ < 1.0) {
        ++stats_.budget_denied;
        return AnnotateStatus(last_error, "retry budget exhausted");
      }
      budget_tokens_ -= 1.0;
      ++stats_.retries;
      uint64_t backoff = BackoffMicros(attempt - 1);
      if (deadline_abs != 0) {
        const uint64_t now = Now();
        if (now >= deadline_abs) {
          return Status::DeadlineExceeded(
              "request deadline elapsed (last error: " + last_error.message() +
              ")");
        }
        backoff = std::min(backoff, deadline_abs - now);
      }
      Sleep(backoff);
    }

    int idx = PickEndpoint();
    if (idx < 0) {
      // Everything is Open and cooling. Wait for the soonest cooldown
      // (deadline permitting) and let the loop re-pick.
      uint64_t soonest = UINT64_MAX;
      for (const EndpointState& ep : endpoints_) {
        soonest = std::min(soonest, ep.open_until_micros);
      }
      const uint64_t now = Now();
      uint64_t wait = soonest > now ? soonest - now : 0;
      if (deadline_abs != 0 && now + wait >= deadline_abs) {
        return AnnotateStatus(last_error, "all endpoints unhealthy");
      }
      Sleep(wait);
      idx = PickEndpoint();
      if (idx < 0) continue;  // clock skew / races: costs one attempt
    }
    // Prefer an endpoint that did not just shed this very request, but a
    // lone healthy (overloaded) endpoint is still better than none.
    if (idx == avoid) {
      const int other = [&] {
        for (size_t i = 0; i < endpoints_.size(); ++i) {
          if (static_cast<int>(i) != avoid &&
              endpoints_[i].state == BreakerState::kClosed) {
            return static_cast<int>(i);
          }
        }
        return -1;
      }();
      if (other >= 0) idx = other;
    }

    EndpointState* ep = &endpoints_[static_cast<size_t>(idx)];
    ++stats_.attempts;
    if (idx != 0) ++stats_.failovers;

    // One span per wire round trip. Every outcome below closes it with
    // annotations that tell the failover story: which endpoint, whether it
    // was a Half-Open probe, how the attempt ended, and whether it tripped
    // the breaker.
    const uint32_t att =
        tb != nullptr ? tb->BeginSpan("attempt", root_span) : obs::kNoSpan;
    if (tb != nullptr) {
      tb->Annotate(att, "endpoint", static_cast<uint64_t>(idx));
      tb->Annotate(att, "attempt", static_cast<uint64_t>(attempt));
      if (ep->state == BreakerState::kHalfOpen) {
        tb->Annotate(att, "half_open_probe", 1);
      }
    }
    const auto finish_attempt = [&](const char* failure_key) {
      if (tb == nullptr) return;
      if (failure_key != nullptr) {
        tb->Annotate(att, failure_key, 1);
        if (ep->state == BreakerState::kOpen) {
          tb->Annotate(att, "breaker_opened", 1);
        }
      }
      tb->EndSpan(att);
    };

    if (ep->client == nullptr) {
      auto connected = XseqClient::Connect(ep->endpoint.host, ep->endpoint.port,
                                           options_.socket_env);
      if (!connected.ok()) {
        last_error = AnnotateStatus(connected.status(),
                                    ep->endpoint.host + ":" +
                                        std::to_string(ep->endpoint.port));
        OnTransportFailure(ep);
        finish_attempt("connect_error");
        continue;
      }
      ep->client = std::make_unique<XseqClient>(std::move(*connected));
    }

    WireRequest copy = req;
    if (deadline_abs != 0) {
      const uint64_t now = Now();
      copy.deadline_micros = deadline_abs > now ? deadline_abs - now : 1;
    }
    if (tb != nullptr) {
      copy.trace = tb->ContextFor(att);
      copy.trace.sampled = true;
    }
    auto resp = ep->client->Call(std::move(copy));
    if (!resp.ok()) {
      // Transport failure: the endpoint is suspect. Breaker + failover.
      last_error = AnnotateStatus(resp.status(),
                                  ep->endpoint.host + ":" +
                                      std::to_string(ep->endpoint.port));
      OnTransportFailure(ep);
      finish_attempt("transport_error");
      continue;
    }
    if (resp->status.IsOverloaded()) {
      // The server answered coherently — the box is healthy, its queue is
      // full. Fail over without a breaker penalty.
      OnSuccess(ep);
      last_error = resp->status;
      avoid = idx;
      finish_attempt("shed");
      continue;
    }
    // Every other remote outcome (success or a request-scoped error) is
    // definitive: the endpoint did its job.
    OnSuccess(ep);
    if (tb != nullptr && resp->has_trace) tb->Graft(resp->trace, att);
    finish_attempt(nullptr);
    return resp;
  }
  return AnnotateStatus(last_error,
                        "request failed after " +
                            std::to_string(options_.max_attempts) +
                            " attempts");
}

StatusOr<RemoteQueryResult> FailoverClient::Query(
    std::string_view xpath, uint64_t deadline_budget_micros,
    bool want_explain) {
  WireRequest req;
  req.op = WireOp::kQuery;
  req.xpath.assign(xpath.data(), xpath.size());
  req.deadline_micros = deadline_budget_micros;
  req.want_explain = want_explain;

  obs::TraceBuilder tb;
  uint32_t root = obs::kNoSpan;
  uint64_t trace_id = 0;
  if (options_.tracer != nullptr) {
    root = tb.StartTrace("client_query", obs::TraceContext{});
    trace_id = tb.ContextFor(root).trace_id;
  }
  auto resp = CallWithFailover(std::move(req), deadline_budget_micros,
                               options_.tracer != nullptr ? &tb : nullptr,
                               root);
  if (tb.active()) {
    if (resp.ok() && resp->status.ok()) {
      tb.Annotate(root, "docs", resp->docs.size());
    }
    tb.Commit(options_.tracer);
  }
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  RemoteQueryResult result;
  result.docs = std::move(resp->docs);
  result.stats = resp->stats;
  result.trace_id = trace_id;
  if (resp->has_explain) {
    result.has_explain = true;
    result.explain = std::move(resp->explain);
  }
  return result;
}

Status FailoverClient::Ping() {
  WireRequest req;
  req.op = WireOp::kPing;
  auto resp = CallWithFailover(std::move(req), 0);
  if (!resp.ok()) return resp.status();
  return resp->status;
}

StatusOr<std::string> FailoverClient::Stats() {
  WireRequest req;
  req.op = WireOp::kStats;
  auto resp = CallWithFailover(std::move(req), 0);
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return std::move(resp->payload);
}

std::vector<FailoverClient::EndpointSnapshot> FailoverClient::Endpoints()
    const {
  std::vector<EndpointSnapshot> out;
  out.reserve(endpoints_.size());
  for (const EndpointState& ep : endpoints_) {
    EndpointSnapshot snap;
    snap.endpoint = ep.endpoint;
    snap.state = ep.state;
    snap.consecutive_failures = ep.consecutive_failures;
    snap.failures = ep.failures;
    snap.successes = ep.successes;
    snap.opens = ep.opens;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace xseq
