#include "src/server/server.h"

#include <utility>

#include "src/obs/exposition.h"
#include "src/obs/metrics.h"

namespace xseq {

namespace {

/// Registry handles for the daemon metrics, resolved once.
struct ServerMetricSet {
  obs::Counter* connections;
  obs::Counter* frames;
  obs::Counter* frame_errors;
  obs::Gauge* active_connections;
};

const ServerMetricSet& ServerMetrics() {
  static const ServerMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return ServerMetricSet{r->GetCounter("xseq.server.connections"),
                           r->GetCounter("xseq.server.frames"),
                           r->GetCounter("xseq.server.frame_errors"),
                           r->GetGauge("xseq.server.active_connections")};
  }();
  return s;
}

}  // namespace

XseqServer::XseqServer(QueryService::Backend backend, ServerOptions options)
    : service_(std::move(backend), options.service),
      options_(std::move(options)),
      socket_env_(options_.socket_env != nullptr ? options_.socket_env
                                                 : SocketEnv::Default()) {
  if (!options_.stats_source) {
    options_.stats_source = [] {
      return obs::MetricsRegistry::Default()->JsonDump();
    };
  }
}

XseqServer::~XseqServer() { Stop(); }

Status XseqServer::Start() {
  auto listener = socket_env_->Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  {
    std::lock_guard<std::mutex> lock(mu_);
    listener_ = std::move(*listener);
    started_ = true;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int XseqServer::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return listener_ != nullptr ? listener_->port() : -1;
}

void XseqServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed (stop) or fatal accept error
    auto handler = std::make_unique<Handler>();
    handler->conn = std::move(*conn);
    Handler* raw = handler.get();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || stop_requested_) {
      // Raced with shutdown: drop the connection unserved.
      continue;
    }
    ++connections_;
    if (obs::MetricsEnabled()) {
      const ServerMetricSet& m = ServerMetrics();
      m.connections->Increment();
      m.active_connections->Add(1);
    }
    ReapFinishedLocked();
    handler->thread = std::thread([this, raw] { HandleConnection(raw); });
    handlers_.push_back(std::move(handler));
  }
}

void XseqServer::ReapFinishedLocked() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if ((*it)->done) {
      (*it)->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

bool XseqServer::Dispatch(const WireRequest& req, WireResponse* resp) {
  resp->version = req.version;  // answer at the peer's protocol level
  resp->op = req.op;
  resp->id = req.id;
  resp->status = Status::OK();
  switch (req.op) {
    case WireOp::kPing:
      return true;
    case WireOp::kQuery: {
      RequestOptions ropts;
      ropts.deadline_budget_micros = req.deadline_micros;
      ropts.trace = req.trace;
      ropts.want_explain = req.want_explain;
      ropts.request_id = req.id;
      // The outcome only matters when a v4 peer can receive it (the
      // access log and local trace ring are fed inside the service).
      const bool wants_outcome =
          req.version >= 4 && (req.trace.sampled || req.want_explain);
      RequestOutcome outcome;
      auto result = service_.Execute(
          req.xpath, ropts, wants_outcome ? &outcome : nullptr);
      if (!result.ok()) {
        resp->status = result.status();
        return true;
      }
      resp->docs = std::move(result->docs);
      resp->stats = WireQueryStats::FromExecStats(result->stats);
      if (req.version >= 4) {
        if (req.trace.sampled && outcome.traced) {
          resp->has_trace = true;
          resp->trace = std::move(outcome.trace);
        }
        if (req.want_explain && outcome.explained) {
          resp->has_explain = true;
          resp->explain = std::move(outcome.explain);
        }
      }
      return true;
    }
    case WireOp::kStats:
      resp->payload = options_.stats_source();
      return true;
    case WireOp::kMetrics:
      resp->payload = obs::PrometheusDefaultDump();
      return true;
    case WireOp::kShutdown:
      // Respond first (the caller deserves an ack), then stop: the
      // connection closes after this request.
      RequestStop();
      return false;
    case WireOp::kReload: {
      if (!options_.reload_handler) {
        resp->status =
            Status::Unimplemented("this server has no reload handler");
        return true;
      }
      // The swap (or its rejection) happens entirely inside the handler;
      // in-flight queries keep their generation either way. This handler
      // thread is pinned for the duration, which is the intended
      // backpressure: one reload at a time per connection.
      auto generation = options_.reload_handler(req.reload_path);
      if (!generation.ok()) {
        resp->status = generation.status();
      } else {
        resp->generation = *generation;
      }
      return true;
    }
    case WireOp::kDelete: {
      if (!options_.delete_handler) {
        resp->status = Status::Unimplemented(
            "this server's backend is immutable (no delete handler); serve "
            "a dynamic backend to mutate over the wire");
        return true;
      }
      auto generation = options_.delete_handler(req.doc_id);
      if (!generation.ok()) {
        resp->status = generation.status();
      } else {
        resp->generation = *generation;
      }
      return true;
    }
    case WireOp::kUpdate: {
      if (!options_.update_handler) {
        resp->status = Status::Unimplemented(
            "this server's backend is immutable (no update handler); serve "
            "a dynamic backend to mutate over the wire");
        return true;
      }
      auto generation = options_.update_handler(req.doc_id, req.update_xml);
      if (!generation.ok()) {
        resp->status = generation.status();
      } else {
        resp->generation = *generation;
      }
      return true;
    }
    case WireOp::kCompact: {
      if (!options_.compact_handler) {
        resp->status = Status::Unimplemented(
            "this server's backend is immutable (no compact handler); serve "
            "a dynamic backend to compact over the wire");
        return true;
      }
      // Like reload, the handler thread is pinned for the duration — one
      // compaction at a time per connection is the intended backpressure.
      auto generation = options_.compact_handler();
      if (!generation.ok()) {
        resp->status = generation.status();
      } else {
        resp->generation = *generation;
      }
      return true;
    }
  }
  resp->status = Status::Internal("unreachable: op validated by decoder");
  return true;
}

void XseqServer::HandleConnection(Handler* handler) {
  Connection* conn = handler->conn.get();
  bool keep_going = true;
  while (keep_going) {
    std::string body;
    Status st = ReadFrame(conn, &body, /*eof_ok=*/true);
    if (!st.ok()) {
      // kNotFound = orderly close between frames. Anything else is a torn
      // or corrupt frame: tell the peer best-effort (it may be gone) and
      // drop the connection — framing cannot resynchronize.
      if (!st.IsNotFound()) {
        if (obs::MetricsEnabled()) ServerMetrics().frame_errors->Increment();
        WireResponse resp;
        // The peer's version is unknown here; encode at the floor so the
        // widest range of peers can still read the error.
        resp.version = kMinWireVersion;
        resp.op = WireOp::kPing;
        resp.id = 0;
        resp.status = st;
        std::string out;
        EncodeResponseBody(resp, &out);
        (void)WriteFrame(conn, out);
      }
      break;
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;  // draining: the frame arrived too late
      ++busy_;
    }
    if (obs::MetricsEnabled()) ServerMetrics().frames->Increment();

    WireResponse resp;
    WireRequest req;
    Status decoded = DecodeRequestBody(body, &req);
    if (!decoded.ok()) {
      if (obs::MetricsEnabled()) ServerMetrics().frame_errors->Increment();
      resp.version = kMinWireVersion;  // the peer's version is unknown
      resp.op = WireOp::kPing;
      resp.id = 0;
      resp.status = decoded;
      keep_going = false;  // can't trust the stream any further
    } else {
      keep_going = Dispatch(req, &resp);
    }
    std::string out;
    EncodeResponseBody(resp, &out);
    Status wrote = WriteFrame(conn, out);

    {
      std::lock_guard<std::mutex> lock(mu_);
      --busy_;
      if (busy_ == 0) drain_cv_.notify_all();
    }
    if (!wrote.ok()) break;
  }
  conn->Close();
  std::lock_guard<std::mutex> lock(mu_);
  handler->done = true;
  if (obs::MetricsEnabled()) ServerMetrics().active_connections->Sub(1);
}

void XseqServer::RequestStop() {
  std::unique_ptr<Listener>* listener = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
    listener = &listener_;
  }
  stop_cv_.notify_all();
  // Closing the listener unblocks the accept thread; Close is safe to
  // call while Accept blocks.
  if (*listener != nullptr) (*listener)->Close();
}

void XseqServer::WaitForStopRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [&] { return stop_requested_; });
}

size_t XseqServer::Stop() {
  RequestStop();
  size_t inflight = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_ || !started_) {
      stopped_ = true;
      return 0;
    }
    stopping_ = true;
    inflight = busy_ + service_.pending();
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Phase 1: let handlers finish the request they are serving (response
  // written included).
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return busy_ == 0; });
  }

  // Phase 2: kick idle handlers off their blocking reads and join
  // everyone. QueryService workers are still alive here, so a handler
  // that slipped a request in right before `stopping_` flipped still
  // completes instead of deadlocking.
  std::vector<std::unique_ptr<Handler>> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (auto& handler : handlers) handler->conn->Close();
  for (auto& handler : handlers) {
    if (handler->thread.joinable()) handler->thread.join();
  }

  // Phase 3: drain the service queue and stop the workers.
  service_.Shutdown();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  return inflight;
}

uint64_t XseqServer::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connections_;
}

}  // namespace xseq
