#include "src/server/sharded_collection.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/query/query_pattern.h"
#include "src/seq/reconstruct.h"
#include "src/util/coding.h"
#include "src/util/hash.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

/// Registry handles for the shard-layer metrics, resolved once.
struct ShardMetricSet {
  obs::Counter* queries;
  obs::Counter* probes;
  obs::Counter* probe_errors;
  obs::Histogram* probe_us;
  obs::Histogram* probe_docs;
  obs::Gauge* shard_count;
};

const ShardMetricSet& ShardMetrics() {
  static const ShardMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return ShardMetricSet{r->GetCounter("xseq.shard.queries"),
                          r->GetCounter("xseq.shard.probes"),
                          r->GetCounter("xseq.shard.probe_errors"),
                          r->GetHistogram("xseq.shard.probe_us"),
                          r->GetHistogram("xseq.shard.probe_docs"),
                          r->GetGauge("xseq.shard.count")};
  }();
  return s;
}

constexpr char kManifestMagic[8] = {'X', 'S', 'E', 'Q', 'S', 'H', 'R', 'D'};
constexpr uint8_t kManifestVersion = 1;

/// Encodes and atomically writes the manifest. It goes last in every save:
/// its presence certifies that every shard file landed. Torn multi-file
/// saves leave the old manifest (or none).
Status WriteShardedManifest(const std::string& prefix, size_t shard_count,
                            uint64_t total_docs,
                            const PersistOptions& persist) {
  std::string manifest(kManifestMagic, sizeof(kManifestMagic));
  manifest.push_back(static_cast<char>(kManifestVersion));
  PutFixed32(&manifest, static_cast<uint32_t>(shard_count));
  PutFixed64(&manifest, total_docs);
  PutFixed64(&manifest, Fnv1a64(manifest));
  Env* env = persist.env != nullptr ? persist.env : Env::Default();
  return AtomicWriteFile(env, prefix, manifest);
}

}  // namespace

std::string ShardImagePath(const std::string& prefix, size_t shard) {
  return prefix + ".shard" + std::to_string(shard);
}

StatusOr<ShardedManifest> ReadShardedManifest(const std::string& prefix,
                                              const PersistOptions& persist) {
  Env* env = persist.env != nullptr ? persist.env : Env::Default();
  std::string manifest;
  XSEQ_RETURN_IF_ERROR(env->ReadFileToString(prefix, &manifest));
  if (manifest.size() < sizeof(kManifestMagic) + 1 + 4 + 8 + 8 ||
      std::memcmp(manifest.data(), kManifestMagic, sizeof(kManifestMagic)) !=
          0) {
    return Status::Corruption("not a sharded-collection manifest: " + prefix);
  }
  if (Fnv1a64(std::string_view(manifest.data(), manifest.size() - 8)) !=
      [&] {
        Decoder tail(std::string_view(manifest).substr(manifest.size() - 8));
        uint64_t sum = 0;
        (void)tail.GetFixed64(&sum);
        return sum;
      }()) {
    return Status::Corruption("sharded manifest checksum mismatch");
  }
  Decoder in(std::string_view(manifest).substr(sizeof(kManifestMagic)));
  std::string_view version_raw;
  XSEQ_RETURN_IF_ERROR(in.GetRaw(1, &version_raw));
  if (static_cast<uint8_t>(version_raw[0]) != kManifestVersion) {
    return Status::Unimplemented("unsupported sharded manifest version");
  }
  ShardedManifest out;
  XSEQ_RETURN_IF_ERROR(in.GetFixed32(&out.shard_count));
  if (out.shard_count == 0 || out.shard_count > 4096) {
    return Status::Corruption("implausible shard count in manifest");
  }
  XSEQ_RETURN_IF_ERROR(in.GetFixed64(&out.total_documents));
  return out;
}

size_t ShardOfDoc(DocId id, size_t shards) {
  if (shards <= 1) return 0;
  char bytes[sizeof(DocId)];
  std::memcpy(bytes, &id, sizeof(id));
  return Fnv1a64(std::string_view(bytes, sizeof(bytes))) % shards;
}

ShardedCollection::ShardedCollection(ShardedOptions options)
    : options_(std::move(options)),
      match_contexts_(std::make_unique<MatchContextPool>()) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  // Per-shard builds run serial inside their shard: the shard fan-out is
  // the parallelism, and a width-1 builder keeps shard builds bit-stable
  // no matter how the scatter pool schedules them.
  IndexOptions per_shard = options_.index;
  per_shard.threads = 1;
  if (options_.dynamic) {
    DynamicOptions dyn;
    dyn.index = per_shard;
    dyn.flush_threshold = options_.flush_threshold;
    dynamic_shards_.reserve(shard_count());
    for (size_t s = 0; s < shard_count(); ++s) {
      dynamic_shards_.push_back(std::make_unique<DynamicIndex>(dyn));
    }
  } else {
    builders_.reserve(shard_count());
    for (size_t s = 0; s < shard_count(); ++s) {
      builders_.push_back(std::make_unique<CollectionBuilder>(per_shard));
    }
  }
  if (obs::MetricsEnabled()) {
    ShardMetrics().shard_count->Set(static_cast<int64_t>(shard_count()));
  }
}

ShardedCollection::~ShardedCollection() = default;

NameTable* ShardedCollection::names(size_t shard) {
  if (options_.dynamic) return dynamic_shards_[shard]->names();
  return shard < builders_.size() && builders_[shard] != nullptr
             ? builders_[shard]->names()
             : nullptr;
}

ValueEncoder* ShardedCollection::values(size_t shard) {
  if (options_.dynamic) return dynamic_shards_[shard]->values();
  return shard < builders_.size() && builders_[shard] != nullptr
             ? builders_[shard]->values()
             : nullptr;
}

Status ShardedCollection::Add(Document&& doc) {
  size_t shard = ShardOf(doc.id());
  if (options_.dynamic) {
    Status st = dynamic_shards_[shard]->Add(std::move(doc));
    if (st.ok()) ++added_docs_;
    return st;
  }
  if (sealed_) {
    return Status::FailedPrecondition(
        "static ShardedCollection is sealed; use the dynamic backend for "
        "insertion-after-build");
  }
  Status st = builders_[shard]->Add(std::move(doc));
  if (st.ok()) ++added_docs_;
  return st;
}

Status ShardedCollection::Delete(DocId id) {
  if (!options_.dynamic) {
    return Status::FailedPrecondition(
        "static ShardedCollection is immutable; use the dynamic backend "
        "for delete/update");
  }
  return dynamic_shards_[ShardOf(id)]->Delete(id);
}

Status ShardedCollection::Update(Document&& doc, DocId id) {
  if (!options_.dynamic) {
    return Status::FailedPrecondition(
        "static ShardedCollection is immutable; use the dynamic backend "
        "for delete/update");
  }
  return dynamic_shards_[ShardOf(id)]->Update(std::move(doc), id);
}

Status ShardedCollection::Compact() {
  if (!options_.dynamic) {
    return Status::FailedPrecondition(
        "static ShardedCollection has nothing to compact");
  }
  for (auto& shard : dynamic_shards_) {
    XSEQ_RETURN_IF_ERROR(shard->Compact());
  }
  return Status::OK();
}

Status ShardedCollection::Seal() {
  if (options_.dynamic) {
    for (auto& shard : dynamic_shards_) {
      XSEQ_RETURN_IF_ERROR(shard->Flush());
    }
    return Status::OK();
  }
  if (sealed_) return Status::OK();
  const size_t n = builders_.size();
  shards_.resize(n);
  std::vector<Status> results(n);
  ThreadPool* pool = pool_ != nullptr ? pool_.get()
                     : options_.threads == 0 ? DefaultPool()
                                             : nullptr;
  auto build_one = [&](size_t s) {
    auto built = std::move(*builders_[s]).Finish();
    if (!built.ok()) {
      results[s] = built.status();
      return;
    }
    shards_[s] = std::make_unique<CollectionIndex>(std::move(*built));
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, build_one);
  } else {
    for (size_t s = 0; s < n; ++s) build_one(s);
  }
  builders_.clear();
  sealed_ = true;
  for (const Status& st : results) XSEQ_RETURN_IF_ERROR(st);
  return Status::OK();
}

bool ShardedCollection::sealed() const {
  return options_.dynamic || sealed_;
}

Status ShardedCollection::QueryShards(std::string_view xpath,
                                      const ExecOptions& options,
                                      bool parallel, QueryResult* out) const {
  if (!sealed()) {
    return Status::FailedPrecondition("ShardedCollection not sealed");
  }
  const bool metrics = obs::MetricsEnabled();
  if (metrics) ShardMetrics().queries->Increment();

  // Per-shard options: shard fan-out replaces intra-query match
  // parallelism; everything else (mode, deadline, tracing) rides along.
  // The query text keys the per-shard plan caches (static shards set it
  // inside Query(); dynamic probes skip the parse, so set it here).
  ExecOptions shard_opts = options;
  shard_opts.threads = 1;
  if (shard_opts.plan.cache_key.empty()) shard_opts.plan.cache_key = xpath;

  // The dynamic backend compiles from a pattern so the XPath parse happens
  // once, not once per shard.
  QueryPattern pattern;
  if (options_.dynamic) {
    auto parsed = ParseXPath(xpath);
    if (!parsed.ok()) return parsed.status();
    pattern = std::move(*parsed);
  }

  const size_t n = shard_count();
  std::vector<Status> statuses(n);
  std::vector<std::vector<DocId>> parts(n);
  std::vector<ExecStats> part_stats(n);
  std::vector<int64_t> probe_us(n, 0);
  // Each probe fills its own explain; the merge below stamps shard ids and
  // accumulates into the caller's sink — no cross-shard races on it.
  std::vector<QueryExplain> part_explains(
      options.explain != nullptr ? n : 0);
  obs::TraceBuilder* tb = options.trace;
  auto probe = [&](size_t s) {
    Timer timer;
    // Per-probe options: each shard gets its own trace span to attach
    // under and its own explain sink (the shared shard_opts would race).
    ExecOptions opts = shard_opts;
    obs::SpanScope probe_span(tb, "shard_probe", options.trace_parent);
    if (tb != nullptr) {
      probe_span.Annotate("shard", static_cast<uint64_t>(s));
      opts.trace = tb;
      opts.trace_parent = probe_span.id();
    }
    if (options.explain != nullptr) opts.explain = &part_explains[s];
    if (options_.dynamic) {
      auto r = dynamic_shards_[s]->ExecutePattern(pattern, opts,
                                                  &part_stats[s]);
      if (r.ok()) {
        parts[s] = std::move(*r);
        // Dynamic probes report docs via the union; mirror the static
        // shard accounting so merged totals mean the same thing.
        part_stats[s].result_docs = parts[s].size();
      } else {
        statuses[s] = r.status();
      }
    } else {
      MatchContextLease lease(match_contexts_.get());
      auto r = shards_[s]->Query(xpath, opts, lease.get());
      if (r.ok()) {
        parts[s] = std::move(r->docs);
        part_stats[s] = r->stats;
      } else {
        statuses[s] = r.status();
      }
    }
    probe_us[s] = timer.ElapsedMicros();
    if (tb != nullptr) {
      probe_span.Annotate("docs", parts[s].size());
      probe_span.Annotate("entries_read",
                          part_stats[s].match.link_entries_read);
      if (!statuses[s].ok()) probe_span.Annotate("error", 1);
    }
    if (metrics) {
      const ShardMetricSet& m = ShardMetrics();
      m.probes->Increment();
      if (!statuses[s].ok()) m.probe_errors->Increment();
      m.probe_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
      m.probe_docs->Record(parts[s].size());
    }
  };

  ThreadPool* pool = nullptr;
  if (parallel && n > 1) {
    pool = pool_ != nullptr ? pool_.get()
           : options_.threads == 0 ? DefaultPool()
                                   : nullptr;
  }
  if (pool != nullptr && pool->width() > 1) {
    pool->ParallelFor(n, probe);
  } else {
    for (size_t s = 0; s < n; ++s) probe(s);
  }

  for (size_t s = 0; s < n; ++s) {
    XSEQ_RETURN_IF_ERROR(statuses[s]);
    out->stats.Add(part_stats[s]);
    out->docs.insert(out->docs.end(), parts[s].begin(), parts[s].end());
    if (options.explain != nullptr) {
      // Attribute this shard's plan rows before merging, and add one
      // fan-out breakdown row so the explain shows where the work went.
      for (QueryExplain::SeqEntry& e : part_explains[s].seq) {
        if (e.shard < 0) e.shard = static_cast<int32_t>(s);
      }
      QueryExplain::ShardBreakdown row;
      row.shard = static_cast<int32_t>(s);
      row.docs = parts[s].size();
      row.entries_read = part_stats[s].match.link_entries_read;
      row.micros = probe_us[s];
      part_explains[s].shards.push_back(row);
      options.explain->Add(part_explains[s]);
    }
  }
  // Shards partition the id space, so this is a disjoint union: sort for
  // the public "sorted, deduplicated" contract; unique is a no-op guard.
  std::sort(out->docs.begin(), out->docs.end());
  out->docs.erase(std::unique(out->docs.begin(), out->docs.end()),
                  out->docs.end());
  return Status::OK();
}

StatusOr<QueryResult> ShardedCollection::Query(
    std::string_view xpath, const ExecOptions& options) const {
  QueryResult out;
  XSEQ_RETURN_IF_ERROR(QueryShards(xpath, options, /*parallel=*/true, &out));
  return out;
}

std::vector<StatusOr<QueryResult>> ShardedCollection::QueryBatch(
    const std::vector<std::string>& xpaths, const ExecOptions& options) const {
  std::vector<StatusOr<QueryResult>> results(
      xpaths.size(), StatusOr<QueryResult>(Status::Internal("unset")));
  ThreadPool* pool = pool_ != nullptr ? pool_.get()
                     : options_.threads == 0 ? DefaultPool()
                                             : nullptr;
  auto run_one = [&](size_t i) {
    QueryResult one;
    Status st = QueryShards(xpaths[i], options, /*parallel=*/false, &one);
    results[i] = st.ok() ? StatusOr<QueryResult>(std::move(one))
                         : StatusOr<QueryResult>(st);
  };
  if (pool != nullptr && pool->width() > 1 && xpaths.size() > 1) {
    pool->ParallelFor(xpaths.size(), run_one);
  } else {
    for (size_t i = 0; i < xpaths.size(); ++i) run_one(i);
  }
  return results;
}

uint64_t ShardedCollection::total_documents() const {
  if (options_.dynamic) {
    uint64_t total = 0;
    for (const auto& shard : dynamic_shards_) {
      total += shard->total_documents();
    }
    return total;
  }
  if (sealed_) {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->Stats().documents;
    return total;
  }
  return added_docs_;
}

uint64_t ShardedCollection::generation() const {
  if (options_.dynamic) {
    uint64_t total = 0;
    for (const auto& shard : dynamic_shards_) total += shard->generation();
    return total;
  }
  return sealed_ ? 1 : 0;
}

CollectionIndex::SizeStats ShardedCollection::MergedStats() const {
  CollectionIndex::SizeStats merged;
  if (options_.dynamic || !sealed_) {
    merged.documents = total_documents();
    return merged;
  }
  for (const auto& shard : shards_) {
    CollectionIndex::SizeStats s = shard->Stats();
    merged.documents += s.documents;
    merged.trie_nodes += s.trie_nodes;
    merged.distinct_paths += s.distinct_paths;
    merged.sequence_elements += s.sequence_elements;
    merged.memory_bytes += s.memory_bytes;
  }
  merged.avg_sequence_length =
      merged.documents == 0
          ? 0.0
          : static_cast<double>(merged.sequence_elements) /
                static_cast<double>(merged.documents);
  return merged;
}

Status ShardedCollection::Save(const std::string& prefix,
                               const PersistOptions& persist) const {
  if (options_.dynamic) {
    // Compact-and-save: each DynamicIndex flattens into one static segment
    // and writes it through the single-index crash-safe path. The method
    // stays const — the answer set is untouched — but the compaction is a
    // physical mutation (and a generation bump); DynamicIndex is
    // internally synchronized, so concurrent queries are fine.
    for (size_t s = 0; s < dynamic_shards_.size(); ++s) {
      XSEQ_RETURN_IF_ERROR(dynamic_shards_[s]->SaveCompacted(
          ShardImagePath(prefix, s), persist));
    }
    return WriteShardedManifest(prefix, dynamic_shards_.size(),
                                total_documents(), persist);
  }
  if (!sealed_) {
    return Status::FailedPrecondition("Seal() before Save()");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    XSEQ_RETURN_IF_ERROR(
        SaveCollectionIndex(*shards_[s], ShardImagePath(prefix, s), persist));
  }
  return WriteShardedManifest(prefix, shards_.size(), total_documents(),
                              persist);
}

StatusOr<ShardedCollection> ShardedCollection::Load(
    const std::string& prefix, int threads, const PersistOptions& persist) {
  auto manifest = ReadShardedManifest(prefix, persist);
  if (!manifest.ok()) return manifest.status();
  const uint32_t shard_count = manifest->shard_count;

  ShardedOptions options;
  options.shards = static_cast<int>(shard_count);
  options.threads = threads;
  ShardedCollection out(options);
  out.builders_.clear();
  out.shards_.resize(shard_count);
  std::vector<Status> statuses(shard_count);
  ThreadPool* pool = out.pool_ != nullptr ? out.pool_.get()
                     : threads == 0       ? DefaultPool()
                                          : nullptr;
  auto load_one = [&](size_t s) {
    auto loaded = LoadCollectionIndex(ShardImagePath(prefix, s), persist);
    if (!loaded.ok()) {
      statuses[s] = loaded.status();
      return;
    }
    out.shards_[s] = std::make_unique<CollectionIndex>(std::move(*loaded));
  };
  if (pool != nullptr && pool->width() > 1) {
    pool->ParallelFor(shard_count, load_one);
  } else {
    for (size_t s = 0; s < shard_count; ++s) load_one(s);
  }
  for (const Status& st : statuses) XSEQ_RETURN_IF_ERROR(st);
  out.sealed_ = true;
  // The loaded shards carry the options they were built with.
  out.options_.index = out.shards_[0]->options();
  return out;
}

namespace {

/// Deep-copies `doc` while re-interning every designator against the
/// destination shard's vocabulary. Names and exact-mode values translate
/// by string. Hashed value ids pass through unchanged (the hash is a pure
/// function of the text, identical across shards), and so do
/// char-sequence ids: the trie indexed the *expanded* document, so the
/// reconstructed value nodes already carry character codes (plus the
/// terminator), which are vocabulary-independent — and, carrying no
/// retained text, they ride through the destination's ExpandValueChains
/// untouched.
Document TranslateDocument(const Document& doc, const CollectionIndex& src,
                           NameTable* dst_names, ValueEncoder* dst_values) {
  const bool pass_through = src.values().mode() != ValueMode::kExact;
  Document out(doc.id());
  auto translate = [&](const Node* n) -> Node* {
    if (n->is_value()) {
      if (pass_through) return out.CreateValue(ValueId(n->sym.id()));
      const std::string& text = src.values().Lookup(ValueId(n->sym.id()));
      return out.CreateValue(dst_values->Encode(text), text);
    }
    NameId nid = dst_names->Intern(src.names().Lookup(NameId(n->sym.id())));
    return n->kind == NodeKind::kAttribute ? out.CreateAttribute(nid)
                                           : out.CreateElement(nid);
  };
  const Node* src_root = doc.root();
  Node* new_root = translate(src_root);
  out.SetRoot(new_root);
  std::vector<std::pair<const Node*, Node*>> stack = {{src_root, new_root}};
  while (!stack.empty()) {
    auto [src_node, dst_node] = stack.back();
    stack.pop_back();
    // Children append in document order as they are walked; the stack only
    // changes which subtree is expanded next, not sibling order.
    for (const Node* c = src_node->first_child; c != nullptr;
         c = c->next_sibling) {
      Node* translated = translate(c);
      out.AppendChild(dst_node, translated);
      stack.emplace_back(c, translated);
    }
  }
  return out;
}

}  // namespace

StatusOr<ShardedCollection> ReshardCollection(const ShardedCollection& source,
                                              int new_shards, int threads) {
  if (source.options().dynamic) {
    return Status::FailedPrecondition(
        "reshard requires a static collection (save a dynamic one first)");
  }
  if (!source.sealed()) {
    return Status::FailedPrecondition("Seal() before resharding");
  }
  if (new_shards < 1) {
    return Status::InvalidArgument("new_shards must be >= 1");
  }
  ShardedOptions opts;
  opts.shards = new_shards;
  opts.threads = threads;
  opts.index = source.options().index;
  ShardedCollection out(opts);
  for (size_t s = 0; s < source.shard_count(); ++s) {
    const CollectionIndex* shard = source.shard(s);
    if (shard == nullptr) {
      return Status::Internal("missing shard in sealed static collection");
    }
    const FrozenIndex& idx = shard->index();
    // Pre-order walk maintaining the root-to-here label chain: a node's
    // ancestors are exactly the open intervals [serial, end] containing it,
    // so the chain *is* the document's constraint sequence (Theorem 1
    // recovers the tree from it).
    std::vector<uint32_t> ends;
    std::vector<PathId> chain;
    for (uint32_t serial = 0; serial < idx.node_count(); ++serial) {
      while (!ends.empty() && ends.back() < serial) {
        ends.pop_back();
        chain.pop_back();
      }
      ends.push_back(idx.end(serial));
      chain.push_back(idx.path(serial));
      auto docs = idx.DocsAtNode(serial);
      if (docs.empty()) continue;
      Sequence seq(chain.begin(), chain.end());
      for (DocId d : docs) {
        auto tree = ReconstructTree(seq, shard->dict(), d);
        if (!tree.ok()) return tree.status();
        size_t dest = out.ShardOf(d);
        Document translated =
            TranslateDocument(*tree, *shard, out.names(dest), out.values(dest));
        XSEQ_RETURN_IF_ERROR(out.Add(std::move(translated)));
      }
    }
  }
  XSEQ_RETURN_IF_ERROR(out.Seal());
  return out;
}

}  // namespace xseq
