#include "src/server/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <utility>

namespace xseq {

namespace {

Status SockError(const char* op) {
  std::string msg = op;
  msg += ": ";
  msg += std::strerror(errno);
  return Status::IOError(std::move(msg));
}

/// A connected TCP stream over one file descriptor.
///
/// Close() may be called from a different thread than the one blocked in
/// Read() — the server's Stop() does exactly that to kick idle handlers
/// off their reads. So Close() only shutdown()s the socket (which wakes a
/// blocked recv with EOF) and the descriptor itself stays valid until the
/// destructor releases it. `fd_` is immutable, so the reader never races
/// against it changing — and the fd number can't be reused out from under
/// a concurrent recv().
class PosixConnection : public Connection {
 public:
  explicit PosixConnection(int fd) : fd_(fd) {}
  ~PosixConnection() override {
    Close();
    ::close(fd_);
  }

  StatusOr<size_t> Read(char* buf, size_t n) override {
    for (;;) {
      ssize_t r = ::recv(fd_, buf, n, 0);
      if (r >= 0) return static_cast<size_t>(r);
      if (errno == EINTR) continue;
      return SockError("recv");
    }
  }

  Status WriteAll(std::string_view data) override {
    size_t off = 0;
    while (off < data.size()) {
      // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
      // the process with SIGPIPE.
      ssize_t w = ::send(fd_, data.data() + off, data.size() - off,
                         MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return SockError("send");
      }
      off += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  void Close() override {
    if (!closed_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

 private:
  const int fd_;
  std::atomic<bool> closed_{false};
};

class PosixListener : public Listener {
 public:
  PosixListener(int fd, int port) : fd_(fd), port_(port) {}
  ~PosixListener() override { Close(); }

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    for (;;) {
      int fd = fd_.load(std::memory_order_acquire);
      if (fd < 0) {
        return Status::FailedPrecondition("listener closed");
      }
      int conn = ::accept(fd, nullptr, nullptr);
      if (conn >= 0) {
        return std::unique_ptr<Connection>(new PosixConnection(conn));
      }
      if (errno == EINTR) continue;
      // Close() from another thread both invalidates fd_ and makes the
      // blocked accept fail (EBADF/EINVAL); report the orderly shutdown.
      if (fd_.load(std::memory_order_acquire) < 0) {
        return Status::FailedPrecondition("listener closed");
      }
      return SockError("accept");
    }
  }

  int port() const override { return port_; }

  void Close() override {
    int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      // shutdown() wakes a thread blocked in accept(); close() releases
      // the descriptor. Both are async-signal-safe.
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
  const int port_;
};

class PosixSocketEnv : public SocketEnv {
 public:
  StatusOr<std::unique_ptr<Listener>> Listen(const std::string& host,
                                             int port) override {
    sockaddr_in addr{};
    XSEQ_RETURN_IF_ERROR(FillAddr(host, port, &addr));
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return SockError("socket");
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Status st = SockError("bind");
      ::close(fd);
      return st;
    }
    if (::listen(fd, 128) != 0) {
      Status st = SockError("listen");
      ::close(fd);
      return st;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      Status st = SockError("getsockname");
      ::close(fd);
      return st;
    }
    return std::unique_ptr<Listener>(
        new PosixListener(fd, ntohs(bound.sin_port)));
  }

  StatusOr<std::unique_ptr<Connection>> Connect(const std::string& host,
                                                int port) override {
    sockaddr_in addr{};
    XSEQ_RETURN_IF_ERROR(FillAddr(host, port, &addr));
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return SockError("socket");
    for (;;) {
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
          0) {
        break;
      }
      if (errno == EINTR) continue;
      Status st = SockError("connect");
      ::close(fd);
      return st;
    }
    int one = 1;
    // Request/response round trips: never Nagle-delay a frame.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<Connection>(new PosixConnection(fd));
  }

 private:
  static Status FillAddr(const std::string& host, int port,
                         sockaddr_in* addr) {
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("port out of range");
    }
    addr->sin_family = AF_INET;
    addr->sin_port = htons(static_cast<uint16_t>(port));
    // Numeric IPv4 only (the daemon serves loopback or an explicit
    // address; name resolution stays out of the dependency set).
    if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
      return Status::InvalidArgument("not a numeric IPv4 address: " + host);
    }
    return Status::OK();
  }
};

}  // namespace

SocketEnv* SocketEnv::Default() {
  static PosixSocketEnv* env = new PosixSocketEnv();
  return env;
}

Status ReadFull(Connection* conn, size_t n, std::string* out, bool eof_ok) {
  out->clear();
  out->resize(n);
  size_t off = 0;
  while (off < n) {
    auto r = conn->Read(out->data() + off, n - off);
    if (!r.ok()) return r.status();
    if (*r == 0) {
      if (off == 0 && eof_ok) {
        return Status::NotFound("connection closed");
      }
      return Status::IOError("short read: connection closed mid-frame");
    }
    off += *r;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Fault injection

namespace {

class FaultInjectionConnection : public Connection {
 public:
  FaultInjectionConnection(FaultInjectionSocketEnv* env,
                           std::unique_ptr<Connection> base)
      : env_(env), base_(std::move(base)) {}

  StatusOr<size_t> Read(char* buf, size_t n) override {
    FaultInjectionSocketEnv::FaultKind kind;
    if (env_->NextOpShouldFail(&kind)) {
      switch (kind) {
        case FaultInjectionSocketEnv::FaultKind::kReadError:
          return Status::IOError("injected read error");
        case FaultInjectionSocketEnv::FaultKind::kShortRead:
          n = n > 1 ? 1 : n;
          break;
        default:
          break;  // write faults scheduled on a read index: no effect
      }
    }
    return base_->Read(buf, n);
  }

  Status WriteAll(std::string_view data) override {
    FaultInjectionSocketEnv::FaultKind kind;
    if (env_->NextOpShouldFail(&kind)) {
      switch (kind) {
        case FaultInjectionSocketEnv::FaultKind::kWriteError:
          return Status::IOError("injected write error");
        case FaultInjectionSocketEnv::FaultKind::kShortWrite: {
          // Half the frame reaches the peer, then the "connection" dies:
          // exactly the torn frame a crashed client produces.
          Status st = base_->WriteAll(data.substr(0, data.size() / 2));
          if (!st.ok()) return st;
          base_->Close();
          return Status::IOError("injected short write");
        }
        default:
          break;
      }
    }
    return base_->WriteAll(data);
  }

  void Close() override { base_->Close(); }

 private:
  FaultInjectionSocketEnv* const env_;
  std::unique_ptr<Connection> base_;
};

class FaultInjectionListener : public Listener {
 public:
  FaultInjectionListener(FaultInjectionSocketEnv* env,
                         std::unique_ptr<Listener> base)
      : env_(env), base_(std::move(base)) {}

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    auto conn = base_->Accept();
    if (!conn.ok()) return conn.status();
    return std::unique_ptr<Connection>(
        new FaultInjectionConnection(env_, std::move(*conn)));
  }

  int port() const override { return base_->port(); }
  void Close() override { base_->Close(); }

 private:
  FaultInjectionSocketEnv* const env_;
  std::unique_ptr<Listener> base_;
};

}  // namespace

void FaultInjectionSocketEnv::FailOperation(uint64_t op_index,
                                            FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_ops_[op_index] = kind;
}

void FaultInjectionSocketEnv::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_ops_.clear();
}

uint64_t FaultInjectionSocketEnv::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_seen_;
}

bool FaultInjectionSocketEnv::NextOpShouldFail(FaultKind* kind) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t index = ops_seen_++;
  auto it = fail_ops_.find(index);
  if (it == fail_ops_.end()) return false;
  *kind = it->second;
  fail_ops_.erase(it);
  return true;
}

StatusOr<std::unique_ptr<Listener>> FaultInjectionSocketEnv::Listen(
    const std::string& host, int port) {
  auto base = base_->Listen(host, port);
  if (!base.ok()) return base.status();
  return std::unique_ptr<Listener>(
      new FaultInjectionListener(this, std::move(*base)));
}

StatusOr<std::unique_ptr<Connection>> FaultInjectionSocketEnv::Connect(
    const std::string& host, int port) {
  auto base = base_->Connect(host, port);
  if (!base.ok()) return base.status();
  return std::unique_ptr<Connection>(
      new FaultInjectionConnection(this, std::move(*base)));
}

// ---------------------------------------------------------------------------
// In-memory sockets

namespace {

/// One direction of a memory connection: a chunk queue. Chunks are
/// delivered one per Read (capped at the caller's n), so the receiver
/// observes the writer's boundaries — the same short reads TCP can
/// produce.
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> chunks;
  size_t front_off = 0;
  bool closed = false;

  void Push(std::string_view data) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(data);
    cv.notify_all();
  }

  void CloseEnd() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    cv.notify_all();
  }

  StatusOr<size_t> Pull(char* buf, size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return closed || !chunks.empty(); });
    if (chunks.empty()) return static_cast<size_t>(0);  // EOF
    std::string& front = chunks.front();
    size_t take = std::min(n, front.size() - front_off);
    std::memcpy(buf, front.data() + front_off, take);
    front_off += take;
    if (front_off == front.size()) {
      chunks.pop_front();
      front_off = 0;
    }
    return take;
  }
};

class MemoryConnection : public Connection {
 public:
  MemoryConnection(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~MemoryConnection() override { Close(); }

  StatusOr<size_t> Read(char* buf, size_t n) override {
    return in_->Pull(buf, n);
  }

  Status WriteAll(std::string_view data) override {
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) return Status::IOError("peer closed");
    }
    out_->Push(data);
    return Status::OK();
  }

  void Close() override {
    in_->CloseEnd();
    out_->CloseEnd();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
};

struct PendingConn {
  std::shared_ptr<Pipe> to_server;
  std::shared_ptr<Pipe> to_client;
};

struct MemoryPort {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<PendingConn> backlog;
  bool closed = false;
};

}  // namespace

struct MemorySocketEnv::Rep {
  std::mutex mu;
  int next_port = 1;
  std::map<int, std::shared_ptr<MemoryPort>> ports;
};

namespace {

class MemoryListener : public Listener {
 public:
  MemoryListener(std::shared_ptr<MemoryPort> port_state, int port)
      : state_(std::move(port_state)), port_(port) {}
  ~MemoryListener() override { Close(); }

  StatusOr<std::unique_ptr<Connection>> Accept() override {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock,
                    [&] { return state_->closed || !state_->backlog.empty(); });
    if (state_->backlog.empty()) {
      return Status::FailedPrecondition("listener closed");
    }
    PendingConn pending = std::move(state_->backlog.front());
    state_->backlog.pop_front();
    return std::unique_ptr<Connection>(new MemoryConnection(
        std::move(pending.to_server), std::move(pending.to_client)));
  }

  int port() const override { return port_; }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
    state_->cv.notify_all();
  }

 private:
  std::shared_ptr<MemoryPort> state_;
  const int port_;
};

}  // namespace

MemorySocketEnv::MemorySocketEnv() : rep_(std::make_shared<Rep>()) {}
MemorySocketEnv::~MemorySocketEnv() = default;

StatusOr<std::unique_ptr<Listener>> MemorySocketEnv::Listen(
    const std::string& host, int port) {
  (void)host;
  std::lock_guard<std::mutex> lock(rep_->mu);
  if (port == 0) port = rep_->next_port++;
  auto [it, inserted] =
      rep_->ports.emplace(port, std::make_shared<MemoryPort>());
  if (!inserted && !it->second->closed) {
    return Status::FailedPrecondition("memory port already bound");
  }
  it->second = std::make_shared<MemoryPort>();
  rep_->next_port = std::max(rep_->next_port, port + 1);
  return std::unique_ptr<Listener>(new MemoryListener(it->second, port));
}

StatusOr<std::unique_ptr<Connection>> MemorySocketEnv::Connect(
    const std::string& host, int port) {
  (void)host;
  std::shared_ptr<MemoryPort> state;
  {
    std::lock_guard<std::mutex> lock(rep_->mu);
    auto it = rep_->ports.find(port);
    if (it == rep_->ports.end()) {
      return Status::IOError("connection refused (no memory listener)");
    }
    state = it->second;
  }
  PendingConn pending{std::make_shared<Pipe>(), std::make_shared<Pipe>()};
  auto conn = std::unique_ptr<Connection>(
      new MemoryConnection(pending.to_client, pending.to_server));
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->closed) {
      return Status::IOError("connection refused (listener closed)");
    }
    state->backlog.push_back(std::move(pending));
    state->cv.notify_one();
  }
  return conn;
}

}  // namespace xseq
