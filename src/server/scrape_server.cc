#include "src/server/scrape_server.h"

#include <utility>

#include "src/obs/exposition.h"

namespace xseq {

namespace {

/// Request lines longer than this are rejected; a legitimate scrape is
/// "GET /metrics HTTP/1.x" and change.
constexpr size_t kMaxRequestBytes = 4096;

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n"
                    "\r\n";
  out += body;
  return out;
}

}  // namespace

ScrapeServer::ScrapeServer(ScrapeOptions options,
                           std::function<std::string()> content)
    : options_(std::move(options)),
      content_(std::move(content)),
      socket_env_(options_.socket_env != nullptr ? options_.socket_env
                                                 : SocketEnv::Default()) {
  if (!content_) {
    content_ = [] { return obs::PrometheusDefaultDump(); };
  }
}

ScrapeServer::~ScrapeServer() { Stop(); }

Status ScrapeServer::Start() {
  auto listener = socket_env_->Listen(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

int ScrapeServer::port() const {
  return listener_ != nullptr ? listener_->port() : -1;
}

void ScrapeServer::AcceptLoop() {
  for (;;) {
    auto conn = listener_->Accept();
    if (!conn.ok()) return;  // listener closed (Stop) or fatal error
    ServeOne(conn->get());
    (*conn)->Close();
  }
}

void ScrapeServer::ServeOne(Connection* conn) {
  // Read until the end of the headers (or the cap). Only the request line
  // matters; HTTP/1.0 + Connection: close means nothing after it does.
  std::string req;
  char buf[512];
  while (req.find("\r\n") == std::string::npos &&
         req.size() < kMaxRequestBytes) {
    auto n = conn->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    req.append(buf, *n);
  }
  ++served_;

  const size_t eol = req.find("\r\n");
  if (eol == std::string::npos) {
    (void)conn->WriteAll(HttpResponse(400, "Bad Request", "bad request\n"));
    return;
  }
  const std::string line = req.substr(0, eol);
  // "GET <path> HTTP/1.x"
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    (void)conn->WriteAll(HttpResponse(400, "Bad Request", "bad request\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    (void)conn->WriteAll(
        HttpResponse(405, "Method Not Allowed", "GET only\n"));
    return;
  }
  if (path != "/metrics" && path != "/metrics/") {
    (void)conn->WriteAll(HttpResponse(404, "Not Found", "try /metrics\n"));
    return;
  }
  (void)conn->WriteAll(HttpResponse(200, "OK", content_()));
}

void ScrapeServer::Stop() {
  if (stopped_.exchange(true)) return;
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
}

}  // namespace xseq
