#include "src/server/client.h"

#include <utility>

namespace xseq {

namespace {

/// True when a remote error is the server refusing our protocol version —
/// the one error that triggers the downgrade path. Matched on the message
/// because the wire carries no structured error detail; the text is part
/// of DecodePrefix's contract ("wire protocol version N is not
/// supported...").
bool IsVersionMismatch(const Status& st) {
  return st.IsUnimplemented() &&
         st.message().find("wire protocol version") != std::string::npos;
}

}  // namespace

StatusOr<XseqClient> XseqClient::Connect(const std::string& host, int port,
                                         SocketEnv* env) {
  if (env == nullptr) env = SocketEnv::Default();
  auto conn = env->Connect(host, port);
  if (!conn.ok()) return conn.status();
  return XseqClient(std::move(*conn), host, port, env);
}

StatusOr<WireResponse> XseqClient::RoundTripOnce(const WireRequest& req) {
  if (conn_ == nullptr) {
    return Status::FailedPrecondition("client is closed");
  }
  std::string body;
  EncodeRequestBody(req, &body);
  XSEQ_RETURN_IF_ERROR(WriteFrame(conn_.get(), body));
  std::string resp_body;
  XSEQ_RETURN_IF_ERROR(ReadFrame(conn_.get(), &resp_body));
  WireResponse resp;
  XSEQ_RETURN_IF_ERROR(DecodeResponseBody(resp_body, &resp));
  // A server that cannot attribute a failure to a request (corrupt frame)
  // answers with id 0; accept that error, reject mismatched successes.
  if (resp.id != req.id && !(resp.id == 0 && !resp.status.ok())) {
    return Status::Internal("response id " + std::to_string(resp.id) +
                            " does not match request " +
                            std::to_string(req.id));
  }
  if (resp.status.ok() && resp.op != req.op) {
    return Status::Internal("response op does not match request");
  }
  return resp;
}

StatusOr<WireResponse> XseqClient::RoundTrip(WireRequest req) {
  req.id = next_id_++;
  req.version = wire_version_;
  auto resp = RoundTripOnce(req);
  if (resp.ok() && IsVersionMismatch(resp->status) &&
      wire_version_ > kMinWireVersion) {
    // The peer is an older build. It closed the connection along with the
    // error (framing cannot resynchronize after a rejected body), so
    // reconnect, drop to the floor version, and replay the request once.
    // The downgrade sticks for this client's lifetime.
    wire_version_ = kMinWireVersion;
    conn_.reset();
    auto conn = env_->Connect(host_, port_);
    if (!conn.ok()) {
      return AnnotateStatus(conn.status(),
                            "reconnect after version downgrade");
    }
    conn_ = std::move(*conn);
    req.id = next_id_++;
    req.version = wire_version_;
    return RoundTripOnce(req);
  }
  return resp;
}

StatusOr<RemoteQueryResult> XseqClient::Query(std::string_view xpath,
                                              uint64_t deadline_budget_micros,
                                              bool want_explain) {
  WireRequest req;
  req.op = WireOp::kQuery;
  req.xpath.assign(xpath.data(), xpath.size());
  req.deadline_micros = deadline_budget_micros;
  req.want_explain = want_explain;

  // With a tracer, every query records a client-side trace and propagates
  // its context so the server's spans come back stitchable (v4 only — a
  // downgraded connection cannot carry the context).
  obs::TraceBuilder tb;
  uint32_t rpc = obs::kNoSpan;
  if (tracer_ != nullptr && wire_version_ >= 4) {
    const uint32_t root = tb.StartTrace("client_query", obs::TraceContext{});
    rpc = tb.BeginSpan("rpc", root);
    req.trace = tb.ContextFor(rpc);
    req.trace.sampled = true;
  }

  auto resp = RoundTrip(std::move(req));
  RemoteQueryResult out;
  if (tb.active()) {
    tb.EndSpan(rpc);
    if (resp.ok() && resp->has_trace) tb.Graft(resp->trace, rpc);
    if (resp.ok() && resp->status.ok()) {
      tb.Annotate(rpc, "docs", resp->docs.size());
    }
    out.trace_id = tb.ContextFor(rpc).trace_id;
    tb.Commit(tracer_);
  }
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  out.docs = std::move(resp->docs);
  out.stats = resp->stats;
  if (resp->has_explain) {
    out.has_explain = true;
    out.explain = std::move(resp->explain);
  }
  return out;
}

StatusOr<std::string> XseqClient::Stats() {
  WireRequest req;
  req.op = WireOp::kStats;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return std::move(resp->payload);
}

StatusOr<std::string> XseqClient::Metrics() {
  if (wire_version_ < 4) {
    return Status::Unimplemented(
        "the metrics op needs wire protocol version 4; this connection "
        "downgraded to version " +
        std::to_string(wire_version_));
  }
  WireRequest req;
  req.op = WireOp::kMetrics;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return std::move(resp->payload);
}

Status XseqClient::Ping() {
  WireRequest req;
  req.op = WireOp::kPing;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  return resp->status;
}

StatusOr<uint64_t> XseqClient::Reload(std::string_view path) {
  WireRequest req;
  req.op = WireOp::kReload;
  req.reload_path.assign(path.data(), path.size());
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return resp->generation;
}

namespace {

/// Local gate shared by the v5 mutation ops: after a downgrade the server
/// predates the op entirely, so fail here with the same clean story the
/// version bounce would tell instead of burning a round trip.
Status RequireMutationVersion(uint8_t wire_version) {
  if (wire_version < 5) {
    return Status::Unimplemented(
        "delete/update/compact need wire protocol version 5; this "
        "connection downgraded to version " +
        std::to_string(wire_version));
  }
  return Status::OK();
}

}  // namespace

StatusOr<uint64_t> XseqClient::Delete(uint64_t id) {
  XSEQ_RETURN_IF_ERROR(RequireMutationVersion(wire_version_));
  WireRequest req;
  req.op = WireOp::kDelete;
  req.doc_id = id;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return resp->generation;
}

StatusOr<uint64_t> XseqClient::Update(uint64_t id, std::string_view xml) {
  XSEQ_RETURN_IF_ERROR(RequireMutationVersion(wire_version_));
  WireRequest req;
  req.op = WireOp::kUpdate;
  req.doc_id = id;
  req.update_xml.assign(xml.data(), xml.size());
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return resp->generation;
}

StatusOr<uint64_t> XseqClient::Compact() {
  XSEQ_RETURN_IF_ERROR(RequireMutationVersion(wire_version_));
  WireRequest req;
  req.op = WireOp::kCompact;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return resp->generation;
}

StatusOr<WireResponse> XseqClient::Call(WireRequest req) {
  return RoundTrip(std::move(req));
}

Status XseqClient::Shutdown() {
  WireRequest req;
  req.op = WireOp::kShutdown;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  return resp->status;
}

void XseqClient::Close() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
}

}  // namespace xseq
