#include "src/server/client.h"

#include <utility>

namespace xseq {

StatusOr<XseqClient> XseqClient::Connect(const std::string& host, int port,
                                         SocketEnv* env) {
  if (env == nullptr) env = SocketEnv::Default();
  auto conn = env->Connect(host, port);
  if (!conn.ok()) return conn.status();
  return XseqClient(std::move(*conn));
}

StatusOr<WireResponse> XseqClient::RoundTrip(WireRequest req) {
  if (conn_ == nullptr) {
    return Status::FailedPrecondition("client is closed");
  }
  req.id = next_id_++;
  std::string body;
  EncodeRequestBody(req, &body);
  XSEQ_RETURN_IF_ERROR(WriteFrame(conn_.get(), body));
  std::string resp_body;
  XSEQ_RETURN_IF_ERROR(ReadFrame(conn_.get(), &resp_body));
  WireResponse resp;
  XSEQ_RETURN_IF_ERROR(DecodeResponseBody(resp_body, &resp));
  // A server that cannot attribute a failure to a request (corrupt frame)
  // answers with id 0; accept that error, reject mismatched successes.
  if (resp.id != req.id && !(resp.id == 0 && !resp.status.ok())) {
    return Status::Internal("response id " + std::to_string(resp.id) +
                            " does not match request " +
                            std::to_string(req.id));
  }
  if (resp.status.ok() && resp.op != req.op) {
    return Status::Internal("response op does not match request");
  }
  return resp;
}

StatusOr<RemoteQueryResult> XseqClient::Query(
    std::string_view xpath, uint64_t deadline_budget_micros) {
  WireRequest req;
  req.op = WireOp::kQuery;
  req.xpath.assign(xpath.data(), xpath.size());
  req.deadline_micros = deadline_budget_micros;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  RemoteQueryResult out;
  out.docs = std::move(resp->docs);
  out.stats = resp->stats;
  return out;
}

StatusOr<std::string> XseqClient::Stats() {
  WireRequest req;
  req.op = WireOp::kStats;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return std::move(resp->payload);
}

Status XseqClient::Ping() {
  WireRequest req;
  req.op = WireOp::kPing;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  return resp->status;
}

StatusOr<uint64_t> XseqClient::Reload(std::string_view path) {
  WireRequest req;
  req.op = WireOp::kReload;
  req.reload_path.assign(path.data(), path.size());
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  XSEQ_RETURN_IF_ERROR(resp->status);
  return resp->generation;
}

StatusOr<WireResponse> XseqClient::Call(WireRequest req) {
  return RoundTrip(std::move(req));
}

Status XseqClient::Shutdown() {
  WireRequest req;
  req.op = WireOp::kShutdown;
  auto resp = RoundTrip(std::move(req));
  if (!resp.ok()) return resp.status();
  return resp->status;
}

void XseqClient::Close() {
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
}

}  // namespace xseq
