// Query-by-node baseline (XISS style).
//
// Element occurrences are indexed by their *tag name* with (doc, begin,
// end, level) region labels; a structured query decomposes into one posting
// fetch per query node plus pairwise structural joins. Name-keyed postings
// are much less selective than path-keyed ones (every <author> in the
// collection shares a list regardless of context), which is why Table 8's
// "nodes" column is the slowest.

#ifndef XSEQ_SRC_BASELINE_NODE_INDEX_H_
#define XSEQ_SRC_BASELINE_NODE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "src/baseline/region_join.h"
#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/status.h"
#include "src/xml/name_table.h"

namespace xseq {

/// Name-keyed posting lists + a value occurrence table.
class NodeIndexBaseline {
 public:
  /// Indexes `docs`.
  static NodeIndexBaseline Build(const std::vector<Document>& docs);

  /// Answers a pattern query; same semantics/instantiation as the sequence
  /// index. Returns sorted doc ids.
  StatusOr<std::vector<DocId>> Query(const QueryPattern& pattern,
                                     const PathDict& dict,
                                     const NameTable& names,
                                     const ValueEncoder& values,
                                     BaselineStats* stats = nullptr) const;

  /// Answers one concrete query tree.
  std::vector<DocId> QueryConcrete(const ConcreteQuery& query,
                                   BaselineStats* stats) const;

  uint64_t MemoryBytes() const;

 private:
  std::unordered_map<NameId, std::vector<RegionEntry>> name_postings_;
  std::unordered_map<ValueId, std::vector<RegionEntry>> value_postings_;
  std::vector<RegionEntry> empty_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_BASELINE_NODE_INDEX_H_
