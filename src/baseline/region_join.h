// Shared structural-join machinery for the baseline indexes.
//
// Both traditional baselines (query-by-path / DataGuide-like and
// query-by-node / XISS-like) decompose a tree-pattern query into per-node
// posting lists of region-labeled occurrences and merge-join them document
// by document — the join work the paper's sequence index avoids. The join
// evaluates the same injective-per-sibling-group embedding semantics as the
// rest of xseq, so all methods return identical answers and only cost
// differs.

#ifndef XSEQ_SRC_BASELINE_REGION_JOIN_H_
#define XSEQ_SRC_BASELINE_REGION_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/query/instantiate.h"
#include "src/xml/symbols.h"

namespace xseq {

/// One posting: a node occurrence with its region label.
struct RegionEntry {
  DocId doc;
  uint32_t begin;
  uint32_t end;
  uint16_t level;
};

/// Join cost counters shared by the baselines.
struct BaselineStats {
  uint64_t postings_fetched = 0;  ///< posting lists touched
  uint64_t entries_scanned = 0;   ///< posting entries read
  uint64_t docs_joined = 0;       ///< documents entering the join
  uint64_t embed_checks = 0;      ///< candidate pairs tested
  int64_t micros = 0;

  void Add(const BaselineStats& o) {
    postings_fetched += o.postings_fetched;
    entries_scanned += o.entries_scanned;
    docs_joined += o.docs_joined;
    embed_checks += o.embed_checks;
    micros += o.micros;
  }
};

/// Evaluates a concrete query tree given per-query-node candidate posting
/// lists (each sorted by (doc, begin)). `lists[i]` corresponds to the i-th
/// node of `query.tree` in node-index order. Returns sorted doc ids with at
/// least one injective embedding. Documents must be candidates of the root
/// list to be considered.
std::vector<DocId> RegionJoin(
    const ConcreteQuery& query,
    const std::vector<const std::vector<RegionEntry>*>& lists,
    BaselineStats* stats);

}  // namespace xseq

#endif  // XSEQ_SRC_BASELINE_REGION_JOIN_H_
