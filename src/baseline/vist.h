// ViST-like baseline (Wang et al., SIGMOD 2003).
//
// ViST sequences documents by depth-first traversal and answers queries
// with naive subsequence matching, which produces false alarms in the
// presence of identical sibling nodes; the original system removed them
// with join operations. We model that cleanup as a per-candidate-document
// verification pass (fetch the document, run the ground-truth embedding
// check) — the same asymptotics: the cleanup cost scales with the number of
// naive candidates.
//
// The two cost drivers the paper attributes to ViST both emerge naturally:
//  * depth-first sequences share shorter prefixes => a larger index tree;
//  * naive matches must be post-verified => extra per-document work.

#ifndef XSEQ_SRC_BASELINE_VIST_H_
#define XSEQ_SRC_BASELINE_VIST_H_

#include <functional>

#include "src/core/collection_index.h"

namespace xseq {

/// Per-query ViST cost breakdown.
struct VistStats {
  ExecStats exec;              ///< naive subsequence matching cost
  uint64_t candidates = 0;     ///< docs reported by naive matching
  uint64_t verified = 0;       ///< docs surviving verification
  int64_t verify_micros = 0;   ///< cleanup time (the "join" cost)
};

/// ViST-like query engine over a depth-first-built CollectionIndex.
class VistBaseline {
 public:
  /// `index` must have been built with SequencerKind::kDepthFirst.
  /// `fetch_doc` re-materializes a document by id for verification (a
  /// generator callback or a lookup into retained documents).
  VistBaseline(const CollectionIndex* index,
               std::function<Document(DocId)> fetch_doc)
      : index_(index), fetch_doc_(std::move(fetch_doc)) {}

  /// Runs `pattern`: naive subsequence matching + verification pass.
  StatusOr<std::vector<DocId>> Query(const QueryPattern& pattern,
                                     VistStats* stats = nullptr) const;

 private:
  const CollectionIndex* index_;
  std::function<Document(DocId)> fetch_doc_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_BASELINE_VIST_H_
