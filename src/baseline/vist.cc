#include "src/baseline/vist.h"

#include "src/query/oracle.h"
#include "src/util/timer.h"

namespace xseq {

StatusOr<std::vector<DocId>> VistBaseline::Query(
    const QueryPattern& pattern, VistStats* stats) const {
  VistStats local;
  VistStats* st = stats != nullptr ? stats : &local;

  ExecOptions options;
  options.mode = MatchMode::kNaive;
  auto candidates =
      index_->executor().ExecutePattern(pattern, &st->exec, options);
  if (!candidates.ok()) return candidates.status();
  st->candidates += candidates->size();

  // Cleanup pass: re-check every candidate document against the pattern's
  // instantiations (stands in for ViST's join-based elimination).
  Timer timer;
  auto inst = InstantiatePattern(pattern, index_->dict(), index_->names(),
                                 index_->values());
  if (!inst.ok()) return inst.status();
  std::vector<DocId> out;
  for (DocId d : *candidates) {
    Document doc = fetch_doc_(d);
    for (const ConcreteQuery& cq : inst->queries) {
      if (OracleContains(doc, cq)) {
        out.push_back(d);
        break;
      }
    }
  }
  st->verified += out.size();
  st->verify_micros += timer.ElapsedMicros();
  return out;
}

}  // namespace xseq
