#include "src/baseline/region_join.h"

#include <algorithm>
#include <unordered_map>

namespace xseq {

namespace {

/// Per-document slices of every query node's posting list, plus the
/// backtracking embedding check.
class DocJoiner {
 public:
  DocJoiner(const std::vector<const Node*>& qnodes,
            const std::vector<std::vector<RegionEntry>>& slices,
            BaselineStats* stats)
      : qnodes_(qnodes), slices_(slices), stats_(stats) {}

  /// True when the query root embeds at some root-list entry.
  bool Matches() {
    for (const RegionEntry& e : slices_[0]) {
      if (Embeds(0, e)) return true;
    }
    return false;
  }

 private:
  bool Embeds(size_t qi, const RegionEntry& at) {
    ++stats_->embed_checks;
    uint64_t key = (static_cast<uint64_t>(qi) << 32) | at.begin;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    // Children of query node qi, by node index order.
    std::vector<size_t> qkids;
    for (const Node* c = qnodes_[qi]->first_child; c != nullptr;
         c = c->next_sibling) {
      qkids.push_back(c->index);
    }
    bool ok = AssignChildren(qkids, at, 0, {});
    memo_.emplace(key, ok);
    return ok;
  }

  bool AssignChildren(const std::vector<size_t>& qkids,
                      const RegionEntry& at, size_t i,
                      std::vector<uint32_t> used) {
    if (i == qkids.size()) return true;
    size_t qi = qkids[i];
    for (const RegionEntry& cand : slices_[qi]) {
      ++stats_->embed_checks;
      if (cand.begin <= at.begin || cand.begin > at.end) continue;
      if (cand.level != at.level + 1) continue;
      if (std::find(used.begin(), used.end(), cand.begin) != used.end()) {
        continue;
      }
      if (!Embeds(qi, cand)) continue;
      used.push_back(cand.begin);
      if (AssignChildren(qkids, at, i + 1, used)) return true;
      used.pop_back();
    }
    return false;
  }

  const std::vector<const Node*>& qnodes_;
  const std::vector<std::vector<RegionEntry>>& slices_;
  BaselineStats* stats_;
  std::unordered_map<uint64_t, bool> memo_;
};

}  // namespace

std::vector<DocId> RegionJoin(
    const ConcreteQuery& query,
    const std::vector<const std::vector<RegionEntry>*>& lists,
    BaselineStats* stats) {
  std::vector<DocId> out;
  const std::vector<Node*>& qnodes_raw = query.tree.nodes();
  std::vector<const Node*> qnodes(qnodes_raw.begin(), qnodes_raw.end());
  if (qnodes.empty()) return out;

  // Doc-at-a-time merge with *linear* cursors, the way 2005-era structural
  // joins consumed their posting lists sequentially: every entry of every
  // list is scanned exactly once over the whole query (skipped entries are
  // real work, and are counted). This is the join cost the sequence index
  // is designed to avoid.
  const std::vector<RegionEntry>& root = *lists[0];
  stats->postings_fetched += lists.size();
  std::vector<size_t> cursor(lists.size(), 0);

  size_t i = 0;
  while (i < root.size()) {
    DocId doc = root[i].doc;
    size_t j = i;
    while (j < root.size() && root[j].doc == doc) ++j;
    ++stats->docs_joined;

    // Advance every cursor to this doc and slice.
    std::vector<std::vector<RegionEntry>> slices(qnodes.size());
    bool viable = true;
    for (size_t q = 0; q < qnodes.size(); ++q) {
      const std::vector<RegionEntry>& list = *lists[q];
      size_t& c = cursor[q];
      while (c < list.size() && list[c].doc < doc) {
        ++c;
        ++stats->entries_scanned;
      }
      size_t lo = c;
      size_t hi = lo;
      while (hi < list.size() && list[hi].doc == doc) {
        ++hi;
        ++stats->entries_scanned;
      }
      c = hi;  // this doc's entries are consumed either way
      if (lo == hi) {
        viable = false;
        continue;  // keep advancing the other cursors
      }
      slices[q].assign(list.begin() + static_cast<ptrdiff_t>(lo),
                       list.begin() + static_cast<ptrdiff_t>(hi));
    }
    if (viable) {
      DocJoiner joiner(qnodes, slices, stats);
      if (joiner.Matches()) out.push_back(doc);
    }
    i = j;
  }
  // Account for the tails never consumed (a sequential scan still read
  // them in the on-disk model only if needed; we do not count tails).
  return out;
}

}  // namespace xseq
