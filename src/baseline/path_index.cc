#include "src/baseline/path_index.h"

#include <algorithm>

#include "src/util/timer.h"
#include "src/xml/tree.h"

namespace xseq {

PathIndexBaseline PathIndexBaseline::Build(
    const std::vector<Document>& docs,
    const std::vector<std::vector<PathId>>& paths) {
  PathIndexBaseline out;
  for (size_t d = 0; d < docs.size(); ++d) {
    const Document& doc = docs[d];
    std::vector<Region> regions = ComputeRegions(doc);
    for (const Node* n : doc.nodes()) {
      const Region& r = regions[n->index];
      RegionEntry e{doc.id(), r.begin, r.end, r.level};
      if (n->is_value()) {
        out.value_postings_[n->sym.id()].push_back(e);
      } else {
        out.path_postings_[paths[d][n->index]].push_back(e);
      }
    }
  }
  // Documents are indexed in id order, regions in begin order, so postings
  // are already sorted by (doc, begin) when ids ascend; sort defensively.
  for (auto& [k, v] : out.path_postings_) {
    (void)k;
    std::sort(v.begin(), v.end(), [](const RegionEntry& a,
                                     const RegionEntry& b) {
      return a.doc != b.doc ? a.doc < b.doc : a.begin < b.begin;
    });
  }
  for (auto& [k, v] : out.value_postings_) {
    (void)k;
    std::sort(v.begin(), v.end(), [](const RegionEntry& a,
                                     const RegionEntry& b) {
      return a.doc != b.doc ? a.doc < b.doc : a.begin < b.begin;
    });
  }
  return out;
}

std::vector<DocId> PathIndexBaseline::QueryConcrete(
    const ConcreteQuery& query, const PathDict& dict,
    BaselineStats* stats) const {
  std::vector<const std::vector<RegionEntry>*> lists;
  lists.reserve(query.tree.node_count());
  for (const Node* n : query.tree.nodes()) {
    if (n->is_value()) {
      auto it = value_postings_.find(n->sym.id());
      lists.push_back(it == value_postings_.end() ? &empty_ : &it->second);
    } else {
      auto it = path_postings_.find(query.paths[n->index]);
      lists.push_back(it == path_postings_.end() ? &empty_ : &it->second);
    }
  }
  (void)dict;
  for (const auto* l : lists) {
    if (l->empty()) return {};
  }
  return RegionJoin(query, lists, stats);
}

StatusOr<std::vector<DocId>> PathIndexBaseline::Query(
    const QueryPattern& pattern, const PathDict& dict,
    const NameTable& names, const ValueEncoder& values,
    BaselineStats* stats) const {
  BaselineStats local;
  BaselineStats* st = stats != nullptr ? stats : &local;
  Timer timer;
  auto inst = InstantiatePattern(pattern, dict, names, values);
  if (!inst.ok()) return inst.status();
  std::vector<DocId> out;
  for (const ConcreteQuery& cq : inst->queries) {
    std::vector<DocId> part = QueryConcrete(cq, dict, st);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  st->micros += timer.ElapsedMicros();
  return out;
}

uint64_t PathIndexBaseline::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& [k, v] : path_postings_) {
    (void)k;
    bytes += v.size() * sizeof(RegionEntry) + 16;
  }
  for (const auto& [k, v] : value_postings_) {
    (void)k;
    bytes += v.size() * sizeof(RegionEntry) + 16;
  }
  return bytes;
}

}  // namespace xseq
