// Query-by-path baseline (DataGuide / Index Fabric style).
//
// Element occurrences are indexed by their full root path; attribute/text
// values are indexed by value designator only (a classic path index has no
// composite path+value key — resolving a value predicate means joining the
// element path's postings with the value's postings, which is exactly the
// cost Table 8's "paths" column pays on value queries).

#ifndef XSEQ_SRC_BASELINE_PATH_INDEX_H_
#define XSEQ_SRC_BASELINE_PATH_INDEX_H_

#include <unordered_map>
#include <vector>

#include "src/baseline/region_join.h"
#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/status.h"
#include "src/xml/name_table.h"

namespace xseq {

/// Path-keyed posting lists + a value occurrence table.
class PathIndexBaseline {
 public:
  /// Indexes `docs`. `paths[i]` must be the path binding of docs[i] against
  /// `dict` (documents and bindings are not retained).
  static PathIndexBaseline Build(
      const std::vector<Document>& docs,
      const std::vector<std::vector<PathId>>& paths);

  /// Answers a pattern query (wildcards instantiated against `dict` like
  /// the sequence index does). Returns sorted doc ids.
  StatusOr<std::vector<DocId>> Query(const QueryPattern& pattern,
                                     const PathDict& dict,
                                     const NameTable& names,
                                     const ValueEncoder& values,
                                     BaselineStats* stats = nullptr) const;

  /// Answers one concrete query tree.
  std::vector<DocId> QueryConcrete(const ConcreteQuery& query,
                                   const PathDict& dict,
                                   BaselineStats* stats) const;

  uint64_t MemoryBytes() const;

 private:
  // Element postings keyed by element PathId; value postings keyed by
  // ValueId. Both sorted by (doc, begin).
  std::unordered_map<PathId, std::vector<RegionEntry>> path_postings_;
  std::unordered_map<ValueId, std::vector<RegionEntry>> value_postings_;
  std::vector<RegionEntry> empty_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_BASELINE_PATH_INDEX_H_
