#include "src/schema/schema.h"

#include <unordered_map>
#include <unordered_set>

namespace xseq {

void Schema::EnsureSize(size_t n) {
  if (counts_.size() < n) counts_.resize(n, 0);
  if (doc_counts_.size() < n) doc_counts_.resize(n, 0);
  if (may_repeat_.size() < n) may_repeat_.resize(n, 0);
  if (weights_.size() < n) weights_.resize(n, 1.0);
}

void Schema::Observe(const Document& doc, const std::vector<PathId>& paths) {
  ++documents_;
  // Count occurrences and detect identical siblings: two children of one
  // parent instance sharing a path.
  std::unordered_map<PathId, int> sibling_counts;
  std::unordered_set<PathId> seen_in_doc;
  for (const Node* n : doc.nodes()) {
    PathId p = paths[n->index];
    EnsureSize(p + 1);
    ++counts_[p];
    if (seen_in_doc.insert(p).second) ++doc_counts_[p];
    if (n->first_child == nullptr) continue;
    sibling_counts.clear();
    for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      if (++sibling_counts[paths[c->index]] == 2) {
        EnsureSize(paths[c->index] + 1);
        may_repeat_[paths[c->index]] = 1;
      }
    }
  }
}

void Schema::DeclareRepeatable(PathId path) {
  EnsureSize(path + 1);
  may_repeat_[path] = 1;
}

void Schema::SetWeight(PathId path, double weight) {
  EnsureSize(path + 1);
  weights_[path] = weight;
}

double Schema::CondProb(PathId path, const PathDict& dict) const {
  if (path == kEpsilonPath) return 1.0;
  PathId parent = dict.parent(path);
  uint64_t parent_count =
      parent == kEpsilonPath ? documents_ : DocCount(parent);
  if (parent_count == 0) return 0.0;
  return static_cast<double>(DocCount(path)) /
         static_cast<double>(parent_count);
}

void Schema::EncodeTo(std::string* dst) const {
  PutFixed64(dst, documents_);
  PutPodVector(dst, counts_);
  PutPodVector(dst, doc_counts_);
  PutPodVector(dst, may_repeat_);
  PutPodVector(dst, weights_);
}

StatusOr<Schema> Schema::DecodeFrom(Decoder* in) {
  Schema out;
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&out.documents_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.counts_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.doc_counts_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.may_repeat_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.weights_));
  return out;
}

std::shared_ptr<const SequencingModel> Schema::BuildModel(
    const PathDict& dict) const {
  auto model = std::make_shared<SequencingModel>();
  size_t n = dict.size();
  model->priority.assign(n, 0.0);
  model->may_repeat.assign(n, 0);
  for (PathId p = 0; p < n; ++p) {
    model->priority[p] = RootProb(p) * Weight(p);
    model->may_repeat[p] = p < may_repeat_.size() ? may_repeat_[p] : 0;
  }
  return model;
}

}  // namespace xseq
