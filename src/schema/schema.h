// Schema: occurrence probabilities of paths (Section 5.2).
//
// The performance-oriented strategy g_best orders nodes by the weighted
// root-occurrence probability p'(C|root) = p(C|root) * w(C). The schema
// tracks, per interned path:
//   * occurrence counts, giving p(C|parent) = count(C)/count(parent(C)) and
//     p(C|root) = count(C)/documents (the telescoped product of Fig. 13),
//   * whether identical siblings were ever observed (may_repeat) — or were
//     declared repeatable by a generator/DTD,
//   * a user weight w(C) reflecting query frequency and selectivity
//     (Eq. 6's tunable knob).
//
// Probabilities can be observed from the full dataset or estimated from a
// sample; both paths funnel through Observe().

#ifndef XSEQ_SRC_SCHEMA_SCHEMA_H_
#define XSEQ_SRC_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/seq/path_dict.h"
#include "src/util/coding.h"
#include "src/seq/sequencer.h"
#include "src/xml/tree.h"

namespace xseq {

/// Per-path statistics and the g_best inputs derived from them.
class Schema {
 public:
  /// Records the occurrences of `doc`'s paths. `paths` comes from
  /// BindPaths(doc, dict) against the shared dictionary.
  void Observe(const Document& doc, const std::vector<PathId>& paths);

  /// Marks `path` repeatable regardless of observations (for declared DTD
  /// cardinalities like '*' / '+').
  void DeclareRepeatable(PathId path);

  /// Sets the query weight w(C) of `path` (default 1.0). Weights > 1 pull a
  /// path earlier in the sequences; useful for frequently queried, highly
  /// selective paths (Impact 2 in the paper).
  void SetWeight(PathId path, double weight);

  /// Number of observed documents.
  uint64_t documents() const { return documents_; }

  /// Total occurrences of `path` across all observed documents.
  uint64_t Count(PathId path) const {
    return path < counts_.size() ? counts_[path] : 0;
  }

  /// Documents containing at least one occurrence of `path`.
  uint64_t DocCount(PathId path) const {
    return path < doc_counts_.size() ? doc_counts_[path] : 0;
  }

  /// p(C|root): the *existence* probability of `path` given the root — the
  /// fraction of documents containing it (Fig. 13's chain product
  /// telescopes to exactly this). Existence, not expected count: a
  /// repeatable slot that appears 1-3 times is not more "probable" than a
  /// mandatory singleton.
  double RootProb(PathId path) const {
    return documents_ == 0 ? 0.0
                           : static_cast<double>(DocCount(path)) /
                                 static_cast<double>(documents_);
  }

  /// p(C|parent): existence of `path` relative to its parent path.
  double CondProb(PathId path, const PathDict& dict) const;

  /// True when identical siblings were observed or declared for `path`.
  bool MayRepeat(PathId path) const {
    return path < may_repeat_.size() && may_repeat_[path] != 0;
  }

  double Weight(PathId path) const {
    return path < weights_.size() ? weights_[path] : 1.0;
  }

  /// Builds the immutable inputs of the probability/random sequencers:
  /// priority = RootProb * Weight, plus the repeat flags. The model is
  /// sized for every path interned so far.
  std::shared_ptr<const SequencingModel> BuildModel(
      const PathDict& dict) const;

  /// Appends a binary encoding of all statistics to `dst`.
  void EncodeTo(std::string* dst) const;
  /// Decodes a schema previously written by EncodeTo.
  static StatusOr<Schema> DecodeFrom(Decoder* in);

 private:
  void EnsureSize(size_t n);

  uint64_t documents_ = 0;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> doc_counts_;
  std::vector<uint8_t> may_repeat_;
  std::vector<double> weights_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_SCHEMA_SCHEMA_H_
