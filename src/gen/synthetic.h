// Synthetic tree-structure generator (Section 6.1).
//
// Reproduces the paper's generator: a random DTD-like schema is drawn from
// user parameters, every schema node gets an occurrence probability uniform
// in [P%, 1.0], and documents instantiate the schema by flipping those
// probabilities. Datasets are named by their parameters, e.g. L3F5A25I0P40:
//
//   L  maximum tree height
//   F  maximum fanout of a node
//   A  percentage of value child nodes
//   I  percentage of identical sibling nodes (repeatable schema slots)
//   P  floor (in percent) of the occurrence-probability range
//
// Generation is fully deterministic: the schema depends only on (params,
// seed); document d depends only on (params, seed, d), so the two-pass
// streaming build can regenerate identical documents.

#ifndef XSEQ_SRC_GEN_SYNTHETIC_H_
#define XSEQ_SRC_GEN_SYNTHETIC_H_

#include <string>
#include <vector>

#include "src/util/rng.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Generator parameters (paper defaults for Fig. 14(a)).
struct SyntheticParams {
  int max_height = 3;        ///< L
  int max_fanout = 5;        ///< F
  int value_percent = 25;    ///< A
  int identical_percent = 0; ///< I
  int prob_floor = 40;       ///< P
  int value_vocab = 100;     ///< distinct values per value slot
  int max_repeat = 3;        ///< occurrences of a repeatable slot
  uint64_t seed = 42;

  /// "L3F5A25I0P40"
  std::string Name() const;
};

/// Deterministic synthetic dataset.
class SyntheticDataset {
 public:
  /// Draws the schema; element names are interned into `names` and value
  /// strings are produced lazily per document against `values`.
  SyntheticDataset(const SyntheticParams& params, NameTable* names,
                   ValueEncoder* values);

  /// Generates document `id` (deterministic).
  Document Generate(DocId id) const;

  /// Number of element slots in the drawn schema.
  size_t SchemaSlots() const { return slots_.size(); }

 private:
  struct Slot {
    NameId name = 0;           ///< element name (unused for value slots)
    bool is_value = false;
    bool repeatable = false;   ///< identical siblings allowed
    double prob = 1.0;         ///< occurrence probability
    int vocab_base = 0;        ///< value slots: base of the value id space
    std::vector<int> children; ///< slot indices
  };

  void BuildSchema();
  int BuildSlot(Rng* rng, int depth, int* name_counter);
  void Instantiate(int slot_index, Node* parent, Document* doc,
                   Rng* rng) const;

  SyntheticParams params_;
  NameTable* names_;
  ValueEncoder* values_;
  std::vector<Slot> slots_;
  int root_slot_ = -1;
};

}  // namespace xseq

#endif  // XSEQ_SRC_GEN_SYNTHETIC_H_
