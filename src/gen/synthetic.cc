#include "src/gen/synthetic.h"

namespace xseq {

std::string SyntheticParams::Name() const {
  return "L" + std::to_string(max_height) + "F" + std::to_string(max_fanout) +
         "A" + std::to_string(value_percent) + "I" +
         std::to_string(identical_percent) + "P" + std::to_string(prob_floor);
}

SyntheticDataset::SyntheticDataset(const SyntheticParams& params,
                                   NameTable* names, ValueEncoder* values)
    : params_(params), names_(names), values_(values) {
  BuildSchema();
}

int SyntheticDataset::BuildSlot(Rng* rng, int depth, int* name_counter) {
  int index = static_cast<int>(slots_.size());
  slots_.push_back(Slot{});
  {
    Slot& s = slots_[static_cast<size_t>(index)];
    s.name = names_->Intern("e" + std::to_string((*name_counter)++));
    s.prob = params_.prob_floor / 100.0 +
             rng->NextDouble() * (1.0 - params_.prob_floor / 100.0);
    s.vocab_base = 0;
  }

  if (depth + 1 >= params_.max_height) return index;

  // "Maximum fanout": every non-leaf schema node gets F child slots; the
  // occurrence probabilities (and value slots, which are leaves) thin the
  // instantiated fanout below F.
  for (int f = 0; f < params_.max_fanout; ++f) {
    bool is_value = rng->Bernoulli(params_.value_percent / 100.0);
    if (is_value) {
      int child = static_cast<int>(slots_.size());
      slots_.push_back(Slot{});
      Slot& v = slots_[static_cast<size_t>(child)];
      v.is_value = true;
      v.prob = params_.prob_floor / 100.0 +
               rng->NextDouble() * (1.0 - params_.prob_floor / 100.0);
      v.vocab_base = static_cast<int>(rng->Uniform(1 << 20));
      slots_[static_cast<size_t>(index)].children.push_back(child);
      continue;
    }
    int child = BuildSlot(rng, depth + 1, name_counter);
    slots_[static_cast<size_t>(child)].repeatable =
        rng->Bernoulli(params_.identical_percent / 100.0);
    slots_[static_cast<size_t>(index)].children.push_back(child);
  }
  return index;
}

void SyntheticDataset::BuildSchema() {
  Rng rng(params_.seed, /*stream=*/0xD7D);
  int name_counter = 0;
  root_slot_ = BuildSlot(&rng, 0, &name_counter);
  // The root always exists.
  slots_[static_cast<size_t>(root_slot_)].prob = 1.0;
}

void SyntheticDataset::Instantiate(int slot_index, Node* parent,
                                   Document* doc, Rng* rng) const {
  const Slot& s = slots_[static_cast<size_t>(slot_index)];
  int copies = 1;
  if (s.repeatable) {
    // Identical siblings come in (mostly) pairs: a present repeatable slot
    // instantiates 2 copies, occasionally max_repeat. Keeping multiplicity
    // near-constant matches the paper's generator (variance in multiplicity
    // would dominate index sharing regardless of the sequencing strategy).
    copies = rng->Bernoulli(0.15) ? params_.max_repeat : 2;
  }
  for (int k = 0; k < copies; ++k) {
    if (s.is_value) {
      // Zipf-skewed values: a few common values dominate each slot, as in
      // real data — this is what probability-ordered sequencing exploits.
      int v = s.vocab_base +
              static_cast<int>(rng->Zipf(
                  static_cast<uint32_t>(params_.value_vocab), 1.0));
      std::string text = "v" + std::to_string(v);
      Node* n = doc->CreateValue(values_->Encode(text), text);
      doc->AppendChild(parent, n);
      continue;
    }
    Node* n = doc->CreateElement(s.name);
    if (parent == nullptr) {
      doc->SetRoot(n);
    } else {
      doc->AppendChild(parent, n);
    }
    for (int child : s.children) {
      const Slot& c = slots_[static_cast<size_t>(child)];
      if (rng->Bernoulli(c.prob)) Instantiate(child, n, doc, rng);
    }
  }
}

Document SyntheticDataset::Generate(DocId id) const {
  Document doc(id);
  Rng rng(params_.seed ^ 0x9E3779B97F4A7C15ULL, /*stream=*/id * 2 + 1);
  Instantiate(root_slot_, nullptr, &doc, &rng);
  return doc;
}

}  // namespace xseq
