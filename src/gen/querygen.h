// Random query workloads (Fig. 16 experiments).
//
// Queries are sampled as connected sub-patterns of actual documents, so a
// controlled fraction of them have answers. A sample of `length` nodes keeps
// the document's branching (tree patterns, not just paths) and includes
// attribute values when value nodes are drawn.

#ifndef XSEQ_SRC_GEN_QUERYGEN_H_
#define XSEQ_SRC_GEN_QUERYGEN_H_

#include "src/query/query_pattern.h"
#include "src/util/rng.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Samples a connected sub-pattern of `doc` with up to `length` nodes
/// (fewer when the document is smaller). All edges use the child axis.
/// `value_bias` is the probability of preferring a value leaf when one is
/// available in the frontier — higher bias produces more selective queries
/// (attribute-value predicates), like the paper's workloads.
QueryPattern SampleQueryPattern(const Document& doc, const NameTable& names,
                                size_t length, Rng* rng,
                                double value_bias = 0.0);

}  // namespace xseq

#endif  // XSEQ_SRC_GEN_QUERYGEN_H_
