// XMark-like auction-site records (substitution for the XMark xmlgen data).
//
// The paper converts each XMark substructure instance — item, person,
// open_auction, closed_auction — into one record/sequence. We generate such
// records directly: every record is rooted at <site> and carries the chain
// down to one substructure, with the tag vocabulary and value distributions
// needed by the paper's Table 4 queries:
//
//   Q1 /site//item[location='United States']/mail/date[text='07/05/2000']
//   Q2 /site//person/*/age[text='32']
//   Q3 //closed_auction[seller/person='person11304']/date[text='12/15/1999']
//
// Repeatable slots (incategory, mail, bidder, author sets...) produce
// identical sibling nodes; `allow_identical_siblings=false` caps them at one
// occurrence (the Table 6 variant).

#ifndef XSEQ_SRC_GEN_XMARK_H_
#define XSEQ_SRC_GEN_XMARK_H_

#include <string>

#include "src/util/rng.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Generator parameters.
struct XMarkParams {
  uint64_t seed = 42;
  bool allow_identical_siblings = true;
  int persons = 12000;     ///< size of the person-id value space
  int categories = 1000;   ///< size of the category-id value space
  int days = 730;          ///< distinct date values
};

/// Deterministic XMark-like record generator. Record kinds cycle
/// item, person, open_auction, closed_auction by id.
class XMarkGenerator {
 public:
  XMarkGenerator(const XMarkParams& params, NameTable* names,
                 ValueEncoder* values);

  /// Generates record `id` (deterministic in (params, seed, id)).
  Document Generate(DocId id) const;

 private:
  struct Tags;  // interned tag ids

  Document GenerateItem(DocId id, Rng* rng) const;
  Document GeneratePerson(DocId id, Rng* rng) const;
  Document GenerateOpenAuction(DocId id, Rng* rng) const;
  Document GenerateClosedAuction(DocId id, Rng* rng) const;

  Node* Elem(Document* doc, Node* parent, NameId tag) const;
  Node* Attr(Document* doc, Node* parent, NameId tag,
             const std::string& text) const;
  Node* Text(Document* doc, Node* parent, const std::string& text) const;

  std::string DateString(Rng* rng) const;
  std::string PersonString(Rng* rng) const;
  int RepeatCount(Rng* rng, int max_extra) const;

  XMarkParams params_;
  NameTable* names_;
  ValueEncoder* values_;

  // Interned tags (flat members to keep the header self-contained).
  NameId site_, regions_, people_, open_auctions_, closed_auctions_;
  NameId region_[6];
  NameId item_, location_, quantity_, name_, payment_, shipping_,
      incategory_, category_attr_, mailbox_, mail_, from_, to_, date_, id_;
  NameId person_, emailaddress_, phone_, address_, street_, city_, country_,
      zipcode_, homepage_, creditcard_, profile_, interest_, education_,
      gender_, business_, age_, income_;
  NameId open_auction_, initial_, reserve_, bidder_, time_, personref_,
      increase_, current_, privacy_, itemref_, seller_, annotation_,
      description_, interval_, type_;
  NameId closed_auction_, buyer_, price_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_GEN_XMARK_H_
