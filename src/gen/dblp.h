// DBLP-like bibliography records (substitution for the DBLP dump).
//
// The paper's DBLP snapshot: 407,417 records, 8.5M nodes, max depth 6,
// constraint sequences of average length ≈ 21. We generate publication
// records matching those shape statistics with the fields Table 8's queries
// touch:
//
//   Q1 /inproceedings/title
//   Q2 /book[key='Maier']/author
//   Q3 /*/author[text='David']
//   Q4 //author[text='David']
//
// Author lists are repeatable slots (identical sibling <author> nodes).

#ifndef XSEQ_SRC_GEN_DBLP_H_
#define XSEQ_SRC_GEN_DBLP_H_

#include <string>

#include "src/util/rng.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Generator parameters.
struct DblpParams {
  uint64_t seed = 42;
  int author_pool = 2000;  ///< distinct author names
  int year_lo = 1970;
  int year_hi = 2004;
};

/// Deterministic DBLP-like record generator. Record kinds by id:
/// 60% inproceedings, 30% article, 10% book.
class DblpGenerator {
 public:
  DblpGenerator(const DblpParams& params, NameTable* names,
                ValueEncoder* values);

  Document Generate(DocId id) const;

 private:
  Node* Elem(Document* doc, Node* parent, NameId tag) const;
  void Text(Document* doc, Node* parent, const std::string& text) const;
  std::string AuthorName(Rng* rng) const;

  DblpParams params_;
  NameTable* names_;
  ValueEncoder* values_;

  NameId inproceedings_, article_, book_, author_, title_, year_, pages_,
      booktitle_, journal_, publisher_, ee_, url_, key_, volume_, isbn_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_GEN_DBLP_H_
