#include "src/gen/querygen.h"

#include <unordered_map>
#include <vector>

namespace xseq {

QueryPattern SampleQueryPattern(const Document& doc, const NameTable& names,
                                size_t length, Rng* rng,
                                double value_bias) {
  QueryPattern q;
  q.root = std::make_unique<PatternNode>();
  q.root->test = PatternNode::Test::kWildcard;  // virtual node
  if (doc.root() == nullptr || length == 0) return q;

  // Grow a connected node set from the document root.
  std::vector<const Node*> selected{doc.root()};
  std::vector<const Node*> frontier;
  for (const Node* c = doc.root()->first_child; c != nullptr;
       c = c->next_sibling) {
    frontier.push_back(c);
  }
  while (selected.size() < length && !frontier.empty()) {
    size_t i = rng->Uniform(static_cast<uint32_t>(frontier.size()));
    if (value_bias > 0.0 && !frontier[i]->is_value() &&
        rng->Bernoulli(value_bias)) {
      // Prefer a value leaf when one is available.
      for (size_t k = 0; k < frontier.size(); ++k) {
        if (frontier[k]->is_value()) {
          i = k;
          break;
        }
      }
    }
    const Node* n = frontier[i];
    frontier[i] = frontier.back();
    frontier.pop_back();
    selected.push_back(n);
    for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
      // Value nodes without retained text cannot be rendered as literals.
      if (c->is_value() && c->text == nullptr) continue;
      frontier.push_back(c);
    }
  }

  // Mirror the selected nodes as pattern nodes.
  std::unordered_map<const Node*, PatternNode*> mirror;
  for (const Node* n : selected) {
    auto pn = std::make_unique<PatternNode>();
    pn->axis = PatternNode::Axis::kChild;
    if (n->is_value()) {
      pn->test = PatternNode::Test::kValue;
      pn->value = n->text != nullptr ? n->text : "";
    } else {
      pn->test = PatternNode::Test::kName;
      pn->name = names.Lookup(n->sym.id());
    }
    PatternNode* raw = pn.get();
    PatternNode* parent =
        n->parent == nullptr ? q.root.get() : mirror.at(n->parent);
    parent->children.push_back(std::move(pn));
    mirror.emplace(n, raw);
  }
  q.source = PatternToString(q);
  return q;
}

}  // namespace xseq
