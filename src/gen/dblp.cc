#include "src/gen/dblp.h"

namespace xseq {

namespace {

// A small pool of first names; 'David' and 'Maier' must exist for Table 8.
const char* kFirstNames[20] = {
    "David",  "Maier",  "Serge", "Peter",  "Victor", "Jennifer", "Michael",
    "Hector", "Jeff",   "Dan",   "Mary",   "Susan",  "Rakesh",   "Divesh",
    "Laura",  "Alon",   "Phil",  "Moshe",  "Yannis", "Timos"};

const char* kVenues[10] = {"SIGMOD", "VLDB",  "ICDE",  "PODS", "EDBT",
                           "KDD",    "WWW",   "CIKM",  "ICDT", "ER"};

const char* kJournals[6] = {"TODS",  "VLDBJ", "TKDE",
                            "SIGMOD Record", "Inf. Syst.", "JACM"};

}  // namespace

DblpGenerator::DblpGenerator(const DblpParams& params, NameTable* names,
                             ValueEncoder* values)
    : params_(params), names_(names), values_(values) {
  inproceedings_ = names->Intern("inproceedings");
  article_ = names->Intern("article");
  book_ = names->Intern("book");
  author_ = names->Intern("author");
  title_ = names->Intern("title");
  year_ = names->Intern("year");
  pages_ = names->Intern("pages");
  booktitle_ = names->Intern("booktitle");
  journal_ = names->Intern("journal");
  publisher_ = names->Intern("publisher");
  ee_ = names->Intern("ee");
  url_ = names->Intern("url");
  key_ = names->Intern("key");
  volume_ = names->Intern("volume");
  isbn_ = names->Intern("isbn");
}

Node* DblpGenerator::Elem(Document* doc, Node* parent, NameId tag) const {
  Node* n = doc->CreateElement(tag);
  if (parent == nullptr) {
    doc->SetRoot(n);
  } else {
    doc->AppendChild(parent, n);
  }
  return n;
}

void DblpGenerator::Text(Document* doc, Node* parent,
                         const std::string& text) const {
  Node* v = doc->CreateValue(values_->Encode(text), text);
  doc->AppendChild(parent, v);
}

std::string DblpGenerator::AuthorName(Rng* rng) const {
  // Zipf-ish: a handful of prolific names, then the long tail.
  uint32_t r = rng->Uniform(static_cast<uint32_t>(params_.author_pool));
  if (r < 20) return kFirstNames[r];
  return "author" + std::to_string(r);
}

Document DblpGenerator::Generate(DocId id) const {
  Rng rng(params_.seed ^ 0xD8157ULL, /*stream=*/id * 2 + 1);
  Document doc(id);

  int kind = static_cast<int>(id % 10);  // 0-5 inproc, 6-8 article, 9 book
  NameId root_tag =
      kind <= 5 ? inproceedings_ : (kind <= 8 ? article_ : book_);
  Node* rec = Elem(&doc, nullptr, root_tag);

  // key attribute, e.g. "conf/sigmod/Maier84".
  std::string first = AuthorName(&rng);
  int year = params_.year_lo +
             static_cast<int>(rng.Uniform(static_cast<uint32_t>(
                 params_.year_hi - params_.year_lo + 1)));
  Node* keyattr = doc.CreateAttribute(key_);
  doc.AppendChild(rec, keyattr);
  std::string keytext =
      (kind <= 5 ? "conf/" : (kind <= 8 ? "journals/" : "books/")) + first +
      std::to_string(year % 100);
  // A slice of book keys are a bare author name ("Maier"), as in the
  // paper's Q2 /book[key='Maier']/author.
  if (kind == 9 && rng.Bernoulli(0.2)) {
    keytext = kFirstNames[rng.Uniform(20)];
  }
  doc.AppendChild(keyattr, doc.CreateValue(values_->Encode(keytext),
                                           keytext));

  int nauthors = 1 + static_cast<int>(rng.Uniform(3));
  for (int a = 0; a < nauthors; ++a) {
    Node* author = Elem(&doc, rec, author_);
    Text(&doc, author, a == 0 ? first : AuthorName(&rng));
  }
  Node* title = Elem(&doc, rec, title_);
  Text(&doc, title, "On the Topic " + std::to_string(rng.Uniform(100000)));
  Node* yr = Elem(&doc, rec, year_);
  Text(&doc, yr, std::to_string(year));

  if (kind <= 5) {
    Node* bt = Elem(&doc, rec, booktitle_);
    Text(&doc, bt, kVenues[rng.Uniform(10)]);
    Node* pg = Elem(&doc, rec, pages_);
    int lo = static_cast<int>(rng.Uniform(500));
    Text(&doc, pg, std::to_string(lo) + "-" + std::to_string(lo + 12));
  } else if (kind <= 8) {
    Node* jn = Elem(&doc, rec, journal_);
    Text(&doc, jn, kJournals[rng.Uniform(6)]);
    Node* vol = Elem(&doc, rec, volume_);
    Text(&doc, vol, std::to_string(1 + rng.Uniform(40)));
  } else {
    Node* pub = Elem(&doc, rec, publisher_);
    Text(&doc, pub, rng.Bernoulli(0.5) ? "Morgan Kaufmann" : "Springer");
    Node* isbn = Elem(&doc, rec, isbn_);
    Text(&doc, isbn, std::to_string(1000000000 + rng.Uniform(900000000)));
  }
  if (rng.Bernoulli(0.7)) {
    Node* ee = Elem(&doc, rec, ee_);
    Text(&doc, ee, "db/" + std::to_string(id) + ".html");
  }
  if (rng.Bernoulli(0.4)) {
    Node* url = Elem(&doc, rec, url_);
    Text(&doc, url, "http://dblp.example/rec/" + std::to_string(id));
  }
  return doc;
}

}  // namespace xseq
