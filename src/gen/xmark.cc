#include "src/gen/xmark.h"

#include <cstdio>

namespace xseq {

namespace {

const char* kRegions[6] = {"africa",  "asia",    "australia",
                           "europe",  "namerica", "samerica"};

const char* kCountries[8] = {"United States", "Germany", "France",
                             "Japan",         "Brazil",  "Canada",
                             "Kenya",         "Australia"};

// Rough namerica-heavy weighting like real XMark data.
const int kCountryWeight[8] = {60, 8, 8, 8, 6, 6, 2, 2};

const char* kCities[6] = {"boston", "newyork",  "tokyo",
                          "berlin", "saopaulo", "sydney"};

}  // namespace

XMarkGenerator::XMarkGenerator(const XMarkParams& params, NameTable* names,
                               ValueEncoder* values)
    : params_(params), names_(names), values_(values) {
  site_ = names->Intern("site");
  regions_ = names->Intern("regions");
  people_ = names->Intern("people");
  open_auctions_ = names->Intern("open_auctions");
  closed_auctions_ = names->Intern("closed_auctions");
  for (int i = 0; i < 6; ++i) region_[i] = names->Intern(kRegions[i]);
  item_ = names->Intern("item");
  location_ = names->Intern("location");
  quantity_ = names->Intern("quantity");
  name_ = names->Intern("name");
  payment_ = names->Intern("payment");
  shipping_ = names->Intern("shipping");
  incategory_ = names->Intern("incategory");
  category_attr_ = names->Intern("category");
  mailbox_ = names->Intern("mailbox");
  mail_ = names->Intern("mail");
  from_ = names->Intern("from");
  to_ = names->Intern("to");
  date_ = names->Intern("date");
  id_ = names->Intern("id");
  person_ = names->Intern("person");
  emailaddress_ = names->Intern("emailaddress");
  phone_ = names->Intern("phone");
  address_ = names->Intern("address");
  street_ = names->Intern("street");
  city_ = names->Intern("city");
  country_ = names->Intern("country");
  zipcode_ = names->Intern("zipcode");
  homepage_ = names->Intern("homepage");
  creditcard_ = names->Intern("creditcard");
  profile_ = names->Intern("profile");
  interest_ = names->Intern("interest");
  education_ = names->Intern("education");
  gender_ = names->Intern("gender");
  business_ = names->Intern("business");
  age_ = names->Intern("age");
  income_ = names->Intern("income");
  open_auction_ = names->Intern("open_auction");
  initial_ = names->Intern("initial");
  reserve_ = names->Intern("reserve");
  bidder_ = names->Intern("bidder");
  time_ = names->Intern("time");
  personref_ = names->Intern("personref");
  increase_ = names->Intern("increase");
  current_ = names->Intern("current");
  privacy_ = names->Intern("privacy");
  itemref_ = names->Intern("itemref");
  seller_ = names->Intern("seller");
  annotation_ = names->Intern("annotation");
  description_ = names->Intern("description");
  interval_ = names->Intern("interval");
  type_ = names->Intern("type");
  closed_auction_ = names->Intern("closed_auction");
  buyer_ = names->Intern("buyer");
  price_ = names->Intern("price");
}

Node* XMarkGenerator::Elem(Document* doc, Node* parent, NameId tag) const {
  Node* n = doc->CreateElement(tag);
  if (parent == nullptr) {
    doc->SetRoot(n);
  } else {
    doc->AppendChild(parent, n);
  }
  return n;
}

Node* XMarkGenerator::Attr(Document* doc, Node* parent, NameId tag,
                           const std::string& text) const {
  Node* a = doc->CreateAttribute(tag);
  doc->AppendChild(parent, a);
  Node* v = doc->CreateValue(values_->Encode(text), text);
  doc->AppendChild(a, v);
  return a;
}

Node* XMarkGenerator::Text(Document* doc, Node* parent,
                           const std::string& text) const {
  Node* v = doc->CreateValue(values_->Encode(text), text);
  doc->AppendChild(parent, v);
  return v;
}

std::string XMarkGenerator::DateString(Rng* rng) const {
  // Mild skew: recent dates are more common (auction data clusters).
  int day = static_cast<int>(
      rng->Zipf(static_cast<uint32_t>(params_.days), 0.6));
  int year = 1999 + day / 365;
  int doy = day % 365;
  int month = doy / 31 + 1;
  int dom = doy % 31 + 1;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d", month, dom, year);
  return buf;
}

std::string XMarkGenerator::PersonString(Rng* rng) const {
  // Uniform references over the person-id space, like XMark's idrefs.
  return "person" + std::to_string(rng->Uniform(
                        static_cast<uint32_t>(params_.persons)));
}

int XMarkGenerator::RepeatCount(Rng* rng, int max_extra) const {
  if (!params_.allow_identical_siblings) {
    (void)rng->Next32();  // keep the stream aligned across both variants
    return 1;
  }
  return 1 + static_cast<int>(
                 rng->Uniform(static_cast<uint32_t>(max_extra + 1)));
}

Document XMarkGenerator::GenerateItem(DocId id, Rng* rng) const {
  Document doc(id);
  Node* site = Elem(&doc, nullptr, site_);
  Node* regions = Elem(&doc, site, regions_);
  Node* region = Elem(&doc, regions, region_[rng->Uniform(6)]);
  Node* item = Elem(&doc, region, item_);
  Attr(&doc, item, id_, "item" + std::to_string(id));

  // Weighted country draw.
  int total = 0;
  for (int w : kCountryWeight) total += w;
  int pick = static_cast<int>(rng->Uniform(static_cast<uint32_t>(total)));
  int country = 0;
  for (; country < 8; ++country) {
    pick -= kCountryWeight[country];
    if (pick < 0) break;
  }
  Node* loc = Elem(&doc, item, location_);
  Text(&doc, loc, kCountries[country]);

  Node* qty = Elem(&doc, item, quantity_);
  Text(&doc, qty, std::to_string(1 + rng->Uniform(5)));
  Node* nm = Elem(&doc, item, name_);
  Text(&doc, nm, "item name " + std::to_string(rng->Uniform(10000)));
  Node* pay = Elem(&doc, item, payment_);
  Text(&doc, pay, rng->Bernoulli(0.5) ? "Creditcard" : "Cash");
  if (rng->Bernoulli(0.6)) {
    Node* ship = Elem(&doc, item, shipping_);
    Text(&doc, ship, rng->Bernoulli(0.5) ? "Will ship internationally"
                                         : "Buyer pays fixed shipping");
  }
  int cats = RepeatCount(rng, 2);
  for (int c = 0; c < cats; ++c) {
    Node* cat = Elem(&doc, item, incategory_);
    Attr(&doc, cat, category_attr_,
         "category" + std::to_string(rng->Uniform(
                          static_cast<uint32_t>(params_.categories))));
  }
  // The paper's Q1 addresses /site//item/mail/date, so mails hang directly
  // off the item (real XMark nests them under <mailbox>).
  int mails = RepeatCount(rng, 2);
  for (int m = 0; m < mails; ++m) {
    Node* mail = Elem(&doc, item, mail_);
    Node* from = Elem(&doc, mail, from_);
    Text(&doc, from, PersonString(rng));
    Node* to = Elem(&doc, mail, to_);
    Text(&doc, to, PersonString(rng));
    Node* d = Elem(&doc, mail, date_);
    Text(&doc, d, DateString(rng));
  }
  return doc;
}

Document XMarkGenerator::GeneratePerson(DocId id, Rng* rng) const {
  Document doc(id);
  Node* site = Elem(&doc, nullptr, site_);
  Node* people = Elem(&doc, site, people_);
  Node* person = Elem(&doc, people, person_);
  Attr(&doc, person, id_, "person" + std::to_string(id));
  Node* nm = Elem(&doc, person, name_);
  Text(&doc, nm, "user" + std::to_string(rng->Uniform(100000)));
  Node* email = Elem(&doc, person, emailaddress_);
  Text(&doc, email, "mailto:user" + std::to_string(rng->Uniform(100000)));
  if (rng->Bernoulli(0.4)) {
    Node* phone = Elem(&doc, person, phone_);
    Text(&doc, phone, "+1 (" + std::to_string(100 + rng->Uniform(900)) +
                          ") " + std::to_string(1000000 + rng->Uniform(
                                                    9000000)));
  }
  if (rng->Bernoulli(0.6)) {
    Node* addr = Elem(&doc, person, address_);
    Node* street = Elem(&doc, addr, street_);
    Text(&doc, street, std::to_string(1 + rng->Uniform(99)) + " Main St");
    Node* city = Elem(&doc, addr, city_);
    Text(&doc, city, kCities[rng->Uniform(6)]);
    Node* country = Elem(&doc, addr, country_);
    Text(&doc, country, kCountries[rng->Uniform(8)]);
    Node* zip = Elem(&doc, addr, zipcode_);
    Text(&doc, zip, std::to_string(10000 + rng->Uniform(90000)));
  }
  if (rng->Bernoulli(0.3)) {
    Node* home = Elem(&doc, person, homepage_);
    Text(&doc, home, "http://www.example.com/~user" +
                         std::to_string(rng->Uniform(100000)));
  }
  if (rng->Bernoulli(0.8)) {
    Node* profile = Elem(&doc, person, profile_);
    Attr(&doc, profile, income_,
         std::to_string(20000 + rng->Uniform(80000)));
    int interests = RepeatCount(rng, 3) - 1;
    for (int i = 0; i < interests; ++i) {
      Node* interest = Elem(&doc, profile, interest_);
      Attr(&doc, interest, category_attr_,
           "category" + std::to_string(rng->Uniform(
                            static_cast<uint32_t>(params_.categories))));
    }
    if (rng->Bernoulli(0.7)) {
      Node* edu = Elem(&doc, profile, education_);
      Text(&doc, edu, rng->Bernoulli(0.5) ? "College" : "High School");
    }
    if (rng->Bernoulli(0.8)) {
      Node* gender = Elem(&doc, profile, gender_);
      Text(&doc, gender, rng->Bernoulli(0.5) ? "male" : "female");
    }
    Node* business = Elem(&doc, profile, business_);
    Text(&doc, business, rng->Bernoulli(0.3) ? "Yes" : "No");
    Node* age = Elem(&doc, profile, age_);
    Text(&doc, age, std::to_string(18 + rng->Uniform(50)));
  }
  if (rng->Bernoulli(0.4)) {
    Node* cc = Elem(&doc, person, creditcard_);
    Text(&doc, cc, std::to_string(1000 + rng->Uniform(9000)) + " " +
                       std::to_string(1000 + rng->Uniform(9000)));
  }
  return doc;
}

Document XMarkGenerator::GenerateOpenAuction(DocId id, Rng* rng) const {
  Document doc(id);
  Node* site = Elem(&doc, nullptr, site_);
  Node* oas = Elem(&doc, site, open_auctions_);
  Node* oa = Elem(&doc, oas, open_auction_);
  Attr(&doc, oa, id_, "open_auction" + std::to_string(id));
  Node* initial = Elem(&doc, oa, initial_);
  Text(&doc, initial, std::to_string(1 + rng->Uniform(300)));
  if (rng->Bernoulli(0.5)) {
    Node* reserve = Elem(&doc, oa, reserve_);
    Text(&doc, reserve, std::to_string(50 + rng->Uniform(500)));
  }
  int bidders = RepeatCount(rng, 3) - 1;
  for (int b = 0; b < bidders; ++b) {
    Node* bidder = Elem(&doc, oa, bidder_);
    Node* d = Elem(&doc, bidder, date_);
    Text(&doc, d, DateString(rng));
    Node* t = Elem(&doc, bidder, time_);
    Text(&doc, t, std::to_string(rng->Uniform(24)) + ":" +
                      std::to_string(10 + rng->Uniform(50)));
    Node* pref = Elem(&doc, bidder, personref_);
    Attr(&doc, pref, person_, PersonString(rng));
    Node* inc = Elem(&doc, bidder, increase_);
    Text(&doc, inc, std::to_string(1 + rng->Uniform(20)));
  }
  Node* current = Elem(&doc, oa, current_);
  Text(&doc, current, std::to_string(10 + rng->Uniform(1000)));
  if (rng->Bernoulli(0.3)) {
    Node* priv = Elem(&doc, oa, privacy_);
    Text(&doc, priv, "Yes");
  }
  Node* iref = Elem(&doc, oa, itemref_);
  Attr(&doc, iref, item_, "item" + std::to_string(rng->Uniform(100000)));
  Node* seller = Elem(&doc, oa, seller_);
  Attr(&doc, seller, person_, PersonString(rng));
  Node* interval = Elem(&doc, oa, interval_);
  Node* start = Elem(&doc, interval, from_);
  Text(&doc, start, DateString(rng));
  Node* end = Elem(&doc, interval, to_);
  Text(&doc, end, DateString(rng));
  Node* type = Elem(&doc, oa, type_);
  Text(&doc, type, rng->Bernoulli(0.5) ? "Regular" : "Featured");
  return doc;
}

Document XMarkGenerator::GenerateClosedAuction(DocId id, Rng* rng) const {
  Document doc(id);
  Node* site = Elem(&doc, nullptr, site_);
  Node* cas = Elem(&doc, site, closed_auctions_);
  Node* ca = Elem(&doc, cas, closed_auction_);
  Node* seller = Elem(&doc, ca, seller_);
  Attr(&doc, seller, person_, PersonString(rng));
  Node* buyer = Elem(&doc, ca, buyer_);
  Attr(&doc, buyer, person_, PersonString(rng));
  Node* iref = Elem(&doc, ca, itemref_);
  Attr(&doc, iref, item_, "item" + std::to_string(rng->Uniform(100000)));
  Node* price = Elem(&doc, ca, price_);
  Text(&doc, price, std::to_string(10 + rng->Uniform(1000)));
  Node* d = Elem(&doc, ca, date_);
  Text(&doc, d, DateString(rng));
  Node* qty = Elem(&doc, ca, quantity_);
  Text(&doc, qty, std::to_string(1 + rng->Uniform(5)));
  Node* type = Elem(&doc, ca, type_);
  Text(&doc, type, rng->Bernoulli(0.5) ? "Regular" : "Featured");
  if (rng->Bernoulli(0.6)) {
    Node* ann = Elem(&doc, ca, annotation_);
    Node* desc = Elem(&doc, ann, description_);
    Text(&doc, desc, "happy with the deal " +
                         std::to_string(rng->Uniform(1000)));
  }
  return doc;
}

Document XMarkGenerator::Generate(DocId id) const {
  Rng rng(params_.seed ^ 0xABCDEF1234567ULL, /*stream=*/id * 2 + 1);
  switch (id % 4) {
    case 0:
      return GenerateItem(id, &rng);
    case 1:
      return GeneratePerson(id, &rng);
    case 2:
      return GenerateOpenAuction(id, &rng);
    default:
      return GenerateClosedAuction(id, &rng);
  }
}

}  // namespace xseq
