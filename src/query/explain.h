// Human-readable query plans and schema dumps — debugging and tooling
// support (xseq_tool --explain, the sequencing-explorer example).

#ifndef XSEQ_SRC_QUERY_EXPLAIN_H_
#define XSEQ_SRC_QUERY_EXPLAIN_H_

#include <string>

#include "src/index/matcher.h"
#include "src/query/executor.h"
#include "src/schema/schema.h"

namespace xseq {

/// Renders a compiled query sequence with its parent relation, e.g.
///   [0] /site            (root)
///   [1] /site/people     (parent [0])
std::string QuerySeqToString(const QuerySeq& q, const PathDict& dict,
                             const NameTable& names);

/// Full plan for an XPath string: the pattern, every deduplicated compiled
/// sequence, and the enumeration statistics.
StatusOr<std::string> ExplainQuery(const QueryExecutor& executor,
                                   std::string_view xpath,
                                   const PathDict& dict,
                                   const NameTable& names);

/// Graphviz dot rendering of the schema's path tree with existence
/// probabilities (Fig. 13 as a picture). Repeatable paths are drawn with
/// doubled borders.
std::string SchemaToDot(const Schema& schema, const PathDict& dict,
                        const NameTable& names);

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_EXPLAIN_H_
