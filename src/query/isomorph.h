// Isomorphism expansion (the paper's false-dismissal fix, Section 3.3).
//
// Two isomorphic query trees can sequence differently when identical-path
// sibling branches are ordered differently, so a query with such branches is
// asked once per non-equivalent ordering and the results are unioned.
// Only identical-path sibling *groups* permute: the relative order of
// distinct paths is fixed by the sequencing strategy.

#ifndef XSEQ_SRC_QUERY_ISOMORPH_H_
#define XSEQ_SRC_QUERY_ISOMORPH_H_

#include <vector>

#include "src/query/instantiate.h"
#include "src/util/status.h"

namespace xseq {

/// Expansion limits.
struct IsomorphOptions {
  /// Cap on orderings per concrete query; hitting it sets `truncated`.
  size_t max_orderings = 120;
};

/// Result of expansion.
struct IsomorphResult {
  std::vector<ConcreteQuery> queries;
  bool truncated = false;
};

/// Emits one clone of `query` per ordering of its identical-path sibling
/// groups (at least the identity). Clones are plain rebuilds; duplicate
/// orderings of structurally equal branches are NOT deduplicated here —
/// the executor dedups compiled sequences, which is cheaper.
IsomorphResult ExpandIsomorphisms(
    const ConcreteQuery& query,
    const IsomorphOptions& options = IsomorphOptions());

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_ISOMORPH_H_
