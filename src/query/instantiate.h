// Wildcard instantiation: from patterns to concrete query trees.
//
// '//' and '*' steps are resolved against the path dictionary (the set of
// root paths that actually occur in the data), the way the paper
// "instantializes '*' to symbol D". Every combination of resolutions yields
// one *concrete query tree* whose nodes all carry dictionary PathIds; the
// executor matches each concrete tree and unions the results.
//
// Sibling branches are never merged: per the paper's injective tree-pattern
// semantics, two branches — even with equal steps — must embed onto
// distinct document nodes per sibling group.

#ifndef XSEQ_SRC_QUERY_INSTANTIATE_H_
#define XSEQ_SRC_QUERY_INSTANTIATE_H_

#include <vector>

#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/status.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// A fully concrete query tree: every node bound to a dictionary path.
struct ConcreteQuery {
  Document tree;
  std::vector<PathId> paths;  ///< indexed by node->index
};

/// Instantiation limits.
struct InstantiateOptions {
  /// Hard cap on emitted concrete trees; hitting it sets `truncated`.
  size_t max_instantiations = 4096;
};

/// Result of instantiation.
struct InstantiateResult {
  std::vector<ConcreteQuery> queries;
  bool truncated = false;  ///< cap reached; results may be incomplete
};

/// Enumerates the concrete query trees of `pattern` against `dict`.
/// A pattern naming an unknown element or value yields zero trees (it can
/// match nothing). Patterns with multiple top-level branches are rejected.
StatusOr<InstantiateResult> InstantiatePattern(
    const QueryPattern& pattern, const PathDict& dict, const NameTable& names,
    const ValueEncoder& values,
    const InstantiateOptions& options = InstantiateOptions());

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_INSTANTIATE_H_
