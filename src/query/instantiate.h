// Wildcard instantiation: from patterns to concrete query trees.
//
// '//' and '*' steps are resolved against the path dictionary (the set of
// root paths that actually occur in the data), the way the paper
// "instantializes '*' to symbol D". Every combination of resolutions yields
// one *concrete query tree* whose nodes all carry dictionary PathIds; the
// executor matches each concrete tree and unions the results.
//
// Sibling branches are never merged: per the paper's injective tree-pattern
// semantics, two branches — even with equal steps — must embed onto
// distinct document nodes per sibling group.

#ifndef XSEQ_SRC_QUERY_INSTANTIATE_H_
#define XSEQ_SRC_QUERY_INSTANTIATE_H_

#include <functional>
#include <vector>

#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/status.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// A fully concrete query tree: every node bound to a dictionary path.
struct ConcreteQuery {
  Document tree;
  std::vector<PathId> paths;  ///< indexed by node->index
};

/// Instantiation limits.
struct InstantiateOptions {
  /// Hard cap on emitted concrete trees; hitting it sets `truncated`.
  size_t max_instantiations = 4096;
  /// Selectivity pruning predicate (the planner wires this to "does the
  /// path occur in the target index at all"). A candidate assignment whose
  /// path fails the predicate is skipped — and the enumeration product
  /// under it never expands — counted in InstantiateResult::pruned. Must be
  /// sound: only return false for paths that cannot contribute a match.
  /// Ancestor paths of a viable path are viable by construction (every
  /// prefix of an occurring path occurs), so chains stay consistent.
  std::function<bool(PathId)> viable;
};

/// Result of instantiation.
struct InstantiateResult {
  std::vector<ConcreteQuery> queries;
  bool truncated = false;  ///< cap reached; results may be incomplete
  size_t pruned = 0;       ///< candidate assignments cut by `viable`
};

/// Enumerates the concrete query trees of `pattern` against `dict`.
/// A pattern naming an unknown element or value yields zero trees (it can
/// match nothing). Patterns with multiple top-level branches are rejected.
StatusOr<InstantiateResult> InstantiatePattern(
    const QueryPattern& pattern, const PathDict& dict, const NameTable& names,
    const ValueEncoder& values,
    const InstantiateOptions& options = InstantiateOptions());

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_INSTANTIATE_H_
