// Query patterns: tree-shaped structured queries and an XPath-subset parser.
//
// The paper makes the tree pattern the basic query unit. A QueryPattern is
// an unordered tree whose nodes carry a node test (name, wildcard '*', or a
// value literal) and the axis of the edge to their parent (child '/' or
// descendant '//'). The supported XPath subset covers everything in the
// paper's workloads (Tables 4 and 8):
//
//   /site//item[location='United States']/mail/date[text='07/05/2000']
//   /site//person/*/age[text='32']
//   //closed_auction[seller/person='person11304']/date[text='12/15/1999']
//   /inproceedings/title
//   /book[key='Maier']/author
//   //author[text='David']
//
// Semantics (made precise in DESIGN.md): a document matches when there is a
// per-sibling-group injective embedding of the pattern into the document
// tree that respects node tests and axes. '//' and '*' are later
// instantiated against the path dictionary, exactly as the paper
// "instantializes '*' to symbol D".

#ifndef XSEQ_SRC_QUERY_QUERY_PATTERN_H_
#define XSEQ_SRC_QUERY_QUERY_PATTERN_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace xseq {

/// Comparison operator of a value predicate (`[price < 30]`). Equality is
/// not listed: `=` stays a structural value test (Test::kValue) answered by
/// the sequence index itself; these five route through the ordered value
/// index.
enum class CompareOp { kLt, kLe, kGt, kGe, kNe };

/// "<", "<=", ">", ">=", "!=".
const char* CompareOpName(CompareOp op);

/// One node of a query pattern.
struct PatternNode {
  enum class Axis { kChild, kDescendant };
  enum class Test {
    kName,
    kWildcard,
    kValue,
    kValuePrefix,   ///< starts-with(.,'lit'); value must begin with `value`
    kValueCompare,  ///< value `op` literal, e.g. [price < 30]
  };

  Axis axis = Axis::kChild;  ///< edge from the parent
  Test test = Test::kName;
  std::string name;   ///< for kName
  std::string value;  ///< literal text for kValue/kValuePrefix/kValueCompare
  CompareOp op = CompareOp::kLt;  ///< for kValueCompare
  std::vector<std::unique_ptr<PatternNode>> children;

  size_t SubtreeSize() const {
    size_t n = 1;
    for (const auto& c : children) n += c->SubtreeSize();
    return n;
  }
};

/// A parsed structured query. `root` is a virtual node standing for the
/// position *above* the document root; its children are the first steps.
struct QueryPattern {
  std::unique_ptr<PatternNode> root;
  std::string source;

  /// Number of real pattern nodes (excluding the virtual root).
  size_t NodeCount() const {
    return root == nullptr ? 0 : root->SubtreeSize() - 1;
  }
};

/// Parses the XPath subset described above.
StatusOr<QueryPattern> ParseXPath(std::string_view xpath);

/// Debug rendering (canonical XPath-ish form).
std::string PatternToString(const QueryPattern& pattern);

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_QUERY_PATTERN_H_
