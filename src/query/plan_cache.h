// PlanCache: a sharded, size-bounded LRU cache of compiled queries.
//
// parse -> instantiate -> expand -> dedup is pure in (index contents,
// query text, compile knobs), so its output can be reused across requests.
// Entries are keyed on (index plan_cache_id, caller key); the id is a
// process-unique monotone value assigned when an index is frozen or
// decoded, so a plan can never be replayed against an index with different
// vocabulary or link state — rebuilding an index yields a fresh id and the
// old entries simply age out of the LRU. The caller key must encode the
// query text plus every compile-affecting knob (the executor does this; see
// BuildPlanCacheKey in executor.cc).
//
// Sharding: keys hash onto `shards` independently locked LRU lists, so
// concurrent queries on different keys rarely contend. Budgets (entries and
// approximate bytes) are split evenly per shard; one oversized plan
// (> max_entry_bytes) is never cached at all rather than evicting the
// world. Values are shared_ptr<const CompiledQuery>, so an entry evicted
// while a query is still matching against it stays alive for that query.
//
// Metrics (xseq.plan.{hits,misses,insertions,evictions} counters and
// xseq.plan.{entries,bytes} gauges) feed MetricsRegistry::Default() when
// metrics are enabled.

#ifndef XSEQ_SRC_QUERY_PLAN_CACHE_H_
#define XSEQ_SRC_QUERY_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/query/planner.h"

namespace xseq {

struct PlanCacheOptions {
  size_t shards = 8;
  size_t max_entries = 4096;       ///< across all shards
  size_t max_bytes = 64u << 20;    ///< approximate, across all shards
  size_t max_entry_bytes = 8u << 20;  ///< larger plans are not cached
};

class PlanCache {
 public:
  explicit PlanCache(const PlanCacheOptions& options = PlanCacheOptions());

  /// The process-wide cache used by default query execution. Never
  /// destroyed (like MetricsRegistry::Default), so worker threads may touch
  /// it during static teardown.
  static PlanCache* Default();

  /// Returns the cached plan for (index_id, key), refreshing its LRU
  /// position, or null. index_id 0 (an unfrozen index) never matches.
  std::shared_ptr<const CompiledQuery> Lookup(uint64_t index_id,
                                              std::string_view key);

  /// Stores `plan` under (index_id, key), evicting least-recently-used
  /// entries past the shard budget. Replaces an existing entry for the same
  /// key. No-op for index_id 0 or plans over max_entry_bytes.
  void Insert(uint64_t index_id, std::string_view key,
              std::shared_ptr<const CompiledQuery> plan);

  /// Drops every entry (tests and explicit invalidation).
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::string key;  // full key: 8-byte index id prefix + caller key
    std::shared_ptr<const CompiledQuery> plan;
    size_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    // Views point into Entry::key, which is stable (list nodes never move).
    std::unordered_map<std::string_view, std::list<Entry>::iterator> index;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(std::string_view full_key);
  void EvictLocked(Shard* s);

  PlanCacheOptions options_;
  size_t shard_entry_budget_;
  size_t shard_byte_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_PLAN_CACHE_H_
