#include "src/query/planner.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace xseq {

namespace {

/// a * b, saturating at `cap`.
uint64_t SatMul(uint64_t a, uint64_t b, uint64_t cap) {
  if (a == 0 || b == 0) return 0;
  if (a > cap / b) return cap;
  uint64_t p = a * b;
  return p > cap ? cap : p;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? UINT64_MAX : s;
}

/// Multiplies `acc` by the number of orderings of `n`'s identical-path
/// sibling groups and recurses, saturating at `cap` (mirrors the grouping
/// rule of ExpandIsomorphisms: only groups of >= 2 equal paths permute).
void OrderingsRec(const Node* n, const std::vector<PathId>& paths,
                  uint64_t cap, uint64_t* acc) {
  std::map<PathId, uint64_t> group_size;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    ++group_size[paths[c->index]];
  }
  for (const auto& [p, k] : group_size) {
    (void)p;
    for (uint64_t f = 2; f <= k; ++f) {
      *acc = SatMul(*acc, f, cap);
      if (*acc >= cap) return;
    }
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    OrderingsRec(c, paths, cap, acc);
    if (*acc >= cap) return;
  }
}

}  // namespace

size_t CompiledQuery::MemoryBytes() const {
  size_t bytes = sizeof(CompiledQuery);
  for (const QuerySeq& q : sequences) {
    bytes += sizeof(QuerySeq) + q.paths.size() * sizeof(PathId) +
             q.parent.size() * sizeof(int32_t);
  }
  return bytes;
}

void QueryExplain::Add(const QueryExplain& o) {
  instantiations += o.instantiations;
  orderings += o.orderings;
  pruned += o.pruned;
  sequences += o.sequences;
  plan_cache_hit = plan_cache_hit || o.plan_cache_hit;
  result_cache_hit = result_cache_hit || o.result_cache_hit;
  truncated = truncated || o.truncated;
  predicted_cost = SatAdd(predicted_cost, o.predicted_cost);
  actual_cost = SatAdd(actual_cost, o.actual_cost);
  compile_micros += o.compile_micros;
  match_micros += o.match_micros;
  result_docs += o.result_docs;
  seq.insert(seq.end(), o.seq.begin(), o.seq.end());
  shards.insert(shards.end(), o.shards.begin(), o.shards.end());
}

std::string QueryExplain::ToJson() const {
  char buf[192];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf),
                "\"instantiations\":%zu,\"orderings\":%zu,\"pruned\":%zu,"
                "\"sequences\":%zu,",
                instantiations, orderings, pruned, sequences);
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "\"plan_cache_hit\":%s,\"result_cache_hit\":%s,"
                "\"truncated\":%s,",
                plan_cache_hit ? "true" : "false",
                result_cache_hit ? "true" : "false",
                truncated ? "true" : "false");
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "\"predicted_cost\":%" PRIu64 ",\"actual_cost\":%" PRIu64
                ",\"compile_us\":%" PRId64 ",\"match_us\":%" PRId64
                ",\"result_docs\":%zu,",
                predicted_cost, actual_cost, compile_micros, match_micros,
                result_docs);
  out.append(buf);
  out.append("\"seq\":[");
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"positions\":%u,\"anchor\":%u,\"anchor_cardinality\":%"
                  PRIu64 ",\"shard\":%d}",
                  seq[i].positions, seq[i].anchor, seq[i].anchor_cardinality,
                  seq[i].shard);
    out.append(buf);
  }
  out.append("],\"shards\":[");
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) out.push_back(',');
    std::snprintf(buf, sizeof(buf),
                  "{\"shard\":%d,\"docs\":%" PRIu64 ",\"entries_read\":%"
                  PRIu64 ",\"micros\":%" PRId64 "}",
                  shards[i].shard, shards[i].docs, shards[i].entries_read,
                  shards[i].micros);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

std::string QueryExplain::ToString() const {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "plan: %zu instantiation(s), %zu ordering(s), %zu pruned, "
                "%zu sequence(s)%s%s%s\n",
                instantiations, orderings, pruned, sequences,
                plan_cache_hit ? " [plan cache hit]" : "",
                result_cache_hit ? " [result cache hit]" : "",
                truncated ? " [truncated]" : "");
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                "cost: predicted %" PRIu64 " entries, actual %" PRIu64
                " read; compile %" PRId64 " us, match %" PRId64
                " us, %zu doc(s)\n",
                predicted_cost, actual_cost, compile_micros, match_micros,
                result_docs);
  out.append(buf);
  for (size_t i = 0; i < seq.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "  seq %zu: %u position(s), anchor @%u (cardinality %"
                  PRIu64 ")",
                  i, seq[i].positions, seq[i].anchor,
                  seq[i].anchor_cardinality);
    out.append(buf);
    if (seq[i].shard >= 0) {
      std::snprintf(buf, sizeof(buf), ", shard %d", seq[i].shard);
      out.append(buf);
    }
    out.push_back('\n');
  }
  for (const ShardBreakdown& s : shards) {
    std::snprintf(buf, sizeof(buf),
                  "  shard %d: %" PRIu64 " doc(s), %" PRIu64
                  " entries read, %" PRId64 " us\n",
                  s.shard, s.docs, s.entries_read, s.micros);
    out.append(buf);
  }
  return out;
}

uint64_t QueryPlanner::PredictedOrderings(const ConcreteQuery& query,
                                          uint64_t cap) {
  if (query.tree.root() == nullptr || cap == 0) return 0;
  uint64_t acc = 1;
  OrderingsRec(query.tree.root(), query.paths, cap, &acc);
  return acc;
}

uint64_t QueryPlanner::EstimatedMatchCost(const ConcreteQuery& query) const {
  uint64_t cost = 0;
  for (PathId p : query.paths) {
    uint64_t c = Cardinality(p);
    if (schema_ != nullptr && schema_->MayRepeat(p)) {
      c = SatAdd(c, c);  // sibling-cover checks roughly double the work
    }
    cost = SatAdd(cost, c);
  }
  return cost;
}

QueryPlanner::SeqSelectivity QueryPlanner::Selectivity(
    const QuerySeq& seq) const {
  SeqSelectivity out;
  out.min_cardinality = UINT64_MAX;
  for (size_t i = 0; i < seq.paths.size(); ++i) {
    uint64_t c = Cardinality(seq.paths[i]);
    if (c < out.min_cardinality) {
      out.min_cardinality = c;
      out.anchor = i;
    }
  }
  if (out.min_cardinality == UINT64_MAX) out.min_cardinality = 0;  // empty seq
  return out;
}

size_t QueryPlanner::OrderBySelectivity(std::vector<QuerySeq>* seqs) const {
  std::vector<std::pair<uint64_t, size_t>> keyed;  // (min card, orig index)
  keyed.reserve(seqs->size());
  size_t dropped = 0;
  for (size_t i = 0; i < seqs->size(); ++i) {
    uint64_t c = Selectivity((*seqs)[i]).min_cardinality;
    if (c == 0 && !(*seqs)[i].paths.empty()) {
      ++dropped;
      continue;  // a zero-occurrence position can never be matched
    }
    keyed.emplace_back(c, i);
  }
  // Stable on the original index so equal-selectivity sequences keep their
  // compile order (determinism under replay).
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QuerySeq> out;
  out.reserve(keyed.size());
  for (const auto& [c, i] : keyed) {
    (void)c;
    out.push_back(std::move((*seqs)[i]));
  }
  *seqs = std::move(out);
  return dropped;
}

}  // namespace xseq
