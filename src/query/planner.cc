#include "src/query/planner.h"

#include <algorithm>
#include <map>

namespace xseq {

namespace {

/// a * b, saturating at `cap`.
uint64_t SatMul(uint64_t a, uint64_t b, uint64_t cap) {
  if (a == 0 || b == 0) return 0;
  if (a > cap / b) return cap;
  uint64_t p = a * b;
  return p > cap ? cap : p;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? UINT64_MAX : s;
}

/// Multiplies `acc` by the number of orderings of `n`'s identical-path
/// sibling groups and recurses, saturating at `cap` (mirrors the grouping
/// rule of ExpandIsomorphisms: only groups of >= 2 equal paths permute).
void OrderingsRec(const Node* n, const std::vector<PathId>& paths,
                  uint64_t cap, uint64_t* acc) {
  std::map<PathId, uint64_t> group_size;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    ++group_size[paths[c->index]];
  }
  for (const auto& [p, k] : group_size) {
    (void)p;
    for (uint64_t f = 2; f <= k; ++f) {
      *acc = SatMul(*acc, f, cap);
      if (*acc >= cap) return;
    }
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    OrderingsRec(c, paths, cap, acc);
    if (*acc >= cap) return;
  }
}

}  // namespace

size_t CompiledQuery::MemoryBytes() const {
  size_t bytes = sizeof(CompiledQuery);
  for (const QuerySeq& q : sequences) {
    bytes += sizeof(QuerySeq) + q.paths.size() * sizeof(PathId) +
             q.parent.size() * sizeof(int32_t);
  }
  return bytes;
}

uint64_t QueryPlanner::PredictedOrderings(const ConcreteQuery& query,
                                          uint64_t cap) {
  if (query.tree.root() == nullptr || cap == 0) return 0;
  uint64_t acc = 1;
  OrderingsRec(query.tree.root(), query.paths, cap, &acc);
  return acc;
}

uint64_t QueryPlanner::EstimatedMatchCost(const ConcreteQuery& query) const {
  uint64_t cost = 0;
  for (PathId p : query.paths) {
    uint64_t c = Cardinality(p);
    if (schema_ != nullptr && schema_->MayRepeat(p)) {
      c = SatAdd(c, c);  // sibling-cover checks roughly double the work
    }
    cost = SatAdd(cost, c);
  }
  return cost;
}

QueryPlanner::SeqSelectivity QueryPlanner::Selectivity(
    const QuerySeq& seq) const {
  SeqSelectivity out;
  out.min_cardinality = UINT64_MAX;
  for (size_t i = 0; i < seq.paths.size(); ++i) {
    uint64_t c = Cardinality(seq.paths[i]);
    if (c < out.min_cardinality) {
      out.min_cardinality = c;
      out.anchor = i;
    }
  }
  if (out.min_cardinality == UINT64_MAX) out.min_cardinality = 0;  // empty seq
  return out;
}

size_t QueryPlanner::OrderBySelectivity(std::vector<QuerySeq>* seqs) const {
  std::vector<std::pair<uint64_t, size_t>> keyed;  // (min card, orig index)
  keyed.reserve(seqs->size());
  size_t dropped = 0;
  for (size_t i = 0; i < seqs->size(); ++i) {
    uint64_t c = Selectivity((*seqs)[i]).min_cardinality;
    if (c == 0 && !(*seqs)[i].paths.empty()) {
      ++dropped;
      continue;  // a zero-occurrence position can never be matched
    }
    keyed.emplace_back(c, i);
  }
  // Stable on the original index so equal-selectivity sequences keep their
  // compile order (determinism under replay).
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<QuerySeq> out;
  out.reserve(keyed.size());
  for (const auto& [c, i] : keyed) {
    (void)c;
    out.push_back(std::move((*seqs)[i]));
  }
  *seqs = std::move(out);
  return dropped;
}

}  // namespace xseq
