#include "src/query/plan_cache.h"

#include <algorithm>

#include "src/obs/metrics.h"
#include "src/util/hash.h"

namespace xseq {

namespace {

struct PlanMetricSet {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Gauge* entries;
  obs::Gauge* bytes;
};

const PlanMetricSet& PlanMetrics() {
  static const PlanMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return PlanMetricSet{r->GetCounter("xseq.plan.hits"),
                         r->GetCounter("xseq.plan.misses"),
                         r->GetCounter("xseq.plan.insertions"),
                         r->GetCounter("xseq.plan.evictions"),
                         r->GetGauge("xseq.plan.entries"),
                         r->GetGauge("xseq.plan.bytes")};
  }();
  return s;
}

std::string FullKey(uint64_t index_id, std::string_view key) {
  std::string full;
  full.reserve(sizeof(index_id) + key.size());
  full.append(reinterpret_cast<const char*>(&index_id), sizeof(index_id));
  full.append(key);
  return full;
}

}  // namespace

PlanCache::PlanCache(const PlanCacheOptions& options) : options_(options) {
  size_t n = std::max<size_t>(1, options_.shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_entry_budget_ = std::max<size_t>(1, options_.max_entries / n);
  shard_byte_budget_ = std::max<size_t>(1, options_.max_bytes / n);
}

PlanCache* PlanCache::Default() {
  static PlanCache* cache = new PlanCache();  // never destroyed
  return cache;
}

PlanCache* DefaultPlanCache() { return PlanCache::Default(); }

PlanCache::Shard& PlanCache::ShardFor(std::string_view full_key) {
  return *shards_[Fnv1a64(full_key) % shards_.size()];
}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(uint64_t index_id,
                                                       std::string_view key) {
  if (index_id == 0) return nullptr;
  std::string full = FullKey(index_id, key);
  Shard& s = ShardFor(full);
  std::shared_ptr<const CompiledQuery> out;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.index.find(full);
    if (it == s.index.end()) {
      ++s.misses;
    } else {
      ++s.hits;
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      out = it->second->plan;
    }
  }
  if (obs::MetricsEnabled()) {
    (out != nullptr ? PlanMetrics().hits : PlanMetrics().misses)->Increment();
  }
  return out;
}

void PlanCache::Insert(uint64_t index_id, std::string_view key,
                       std::shared_ptr<const CompiledQuery> plan) {
  if (index_id == 0 || plan == nullptr) return;
  size_t bytes = plan->MemoryBytes();
  if (bytes > options_.max_entry_bytes) return;
  std::string full = FullKey(index_id, key);
  Shard& s = ShardFor(full);
  int64_t entry_delta = 0;
  int64_t byte_delta = 0;
  uint64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    size_t entries_before = s.lru.size();
    size_t bytes_before = s.bytes;
    auto it = s.index.find(full);
    if (it != s.index.end()) {
      s.bytes -= it->second->bytes;
      s.lru.erase(it->second);
      s.index.erase(it);
    }
    s.lru.push_front(Entry{std::move(full), std::move(plan), bytes});
    s.index.emplace(std::string_view(s.lru.front().key), s.lru.begin());
    s.bytes += bytes;
    ++s.insertions;
    uint64_t evictions_before = s.evictions;
    EvictLocked(&s);
    evicted = s.evictions - evictions_before;
    entry_delta = static_cast<int64_t>(s.lru.size()) -
                  static_cast<int64_t>(entries_before);
    byte_delta =
        static_cast<int64_t>(s.bytes) - static_cast<int64_t>(bytes_before);
  }
  if (obs::MetricsEnabled()) {
    const PlanMetricSet& m = PlanMetrics();
    m.insertions->Increment();
    if (evicted > 0) m.evictions->Add(evicted);
    m.entries->Add(entry_delta);
    m.bytes->Add(byte_delta);
  }
}

void PlanCache::EvictLocked(Shard* s) {
  while (!s->lru.empty() && (s->lru.size() > shard_entry_budget_ ||
                             s->bytes > shard_byte_budget_)) {
    // Never evict the entry just inserted (front) on byte pressure alone.
    if (s->lru.size() == 1) break;
    Entry& victim = s->lru.back();
    s->bytes -= victim.bytes;
    s->index.erase(std::string_view(victim.key));
    s->lru.pop_back();
    ++s->evictions;
  }
}

void PlanCache::Clear() {
  int64_t entry_delta = 0;
  int64_t byte_delta = 0;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    entry_delta -= static_cast<int64_t>(s.lru.size());
    byte_delta -= static_cast<int64_t>(s.bytes);
    s.index.clear();
    s.lru.clear();
    s.bytes = 0;
  }
  if (obs::MetricsEnabled() && (entry_delta != 0 || byte_delta != 0)) {
    PlanMetrics().entries->Add(entry_delta);
    PlanMetrics().bytes->Add(byte_delta);
  }
}

PlanCache::Stats PlanCache::GetStats() const {
  Stats out;
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    std::lock_guard<std::mutex> lock(s.mu);
    out.hits += s.hits;
    out.misses += s.misses;
    out.insertions += s.insertions;
    out.evictions += s.evictions;
    out.entries += s.lru.size();
    out.bytes += s.bytes;
  }
  return out;
}

}  // namespace xseq
