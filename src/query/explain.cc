#include "src/query/explain.h"

#include <cstdio>

namespace xseq {

std::string QuerySeqToString(const QuerySeq& q, const PathDict& dict,
                             const NameTable& names) {
  std::string out;
  for (size_t i = 0; i < q.paths.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "  [%zu] ", i);
    out += buf;
    out += dict.ToString(q.paths[i], names);
    if (q.parent[i] < 0) {
      out += "  (root)";
    } else {
      std::snprintf(buf, sizeof(buf), "  (parent [%d])", q.parent[i]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

StatusOr<std::string> ExplainQuery(const QueryExecutor& executor,
                                   std::string_view xpath,
                                   const PathDict& dict,
                                   const NameTable& names) {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  ExecStats stats;
  auto compiled = executor.Compile(*pattern, &stats);
  if (!compiled.ok()) return compiled.status();

  std::string out = "query: " + std::string(xpath) + "\n";
  out += "pattern: " + PatternToString(*pattern) + "\n";
  out += "instantiations: " + std::to_string(stats.instantiations) +
         ", orderings: " + std::to_string(stats.orderings) +
         ", deduplicated sequences: " +
         std::to_string(stats.matched_sequences);
  if (stats.truncated) out += "  (TRUNCATED by enumeration caps)";
  out += "\n";
  for (size_t s = 0; s < compiled->size(); ++s) {
    out += "sequence " + std::to_string(s) + ":\n";
    out += QuerySeqToString((*compiled)[s], dict, names);
  }
  return out;
}

std::string SchemaToDot(const Schema& schema, const PathDict& dict,
                        const NameTable& names) {
  std::string out = "digraph schema {\n  rankdir=TB;\n  node [shape=box];\n";
  for (PathId p = 1; p < dict.size(); ++p) {
    Sym s = dict.sym(p);
    std::string label =
        s.is_value() ? "=v" + std::to_string(s.id()) : names.Lookup(s.id());
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  n%u [label=\"%s\\np=%.3f\"%s];\n", p, label.c_str(),
                  schema.RootProb(p),
                  schema.MayRepeat(p) ? " peripheries=2" : "");
    out += buf;
    PathId parent = dict.parent(p);
    if (parent != kEpsilonPath) {
      std::snprintf(buf, sizeof(buf), "  n%u -> n%u;\n", parent, p);
      out += buf;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace xseq
