#include "src/query/isomorph.h"

#include <algorithm>
#include <map>

namespace xseq {

namespace {

/// A permutable group: ≥2 children of one parent sharing a path.
struct Group {
  const Node* parent;                  // nullptr = (single) root, never groups
  std::vector<const Node*> members;    // document order
  std::vector<uint32_t> order;         // current permutation (indices)
};

void CollectGroups(const Node* n, const std::vector<PathId>& paths,
                   std::vector<Group>* groups) {
  std::map<PathId, std::vector<const Node*>> by_path;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    by_path[paths[c->index]].push_back(c);
  }
  for (auto& [p, members] : by_path) {
    (void)p;
    if (members.size() >= 2) {
      Group g;
      g.parent = n;
      g.members = members;
      g.order.resize(members.size());
      for (uint32_t i = 0; i < members.size(); ++i) g.order[i] = i;
      groups->push_back(std::move(g));
    }
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    CollectGroups(c, paths, groups);
  }
}

/// Rebuilds the query with each group's members re-ordered per its current
/// permutation. Group members occupy the group's original positions in the
/// child list; all other children keep their places.
void CloneRec(const Node* src, Node* dst_parent,
              const std::vector<PathId>& src_paths,
              const std::vector<Group>& groups, ConcreteQuery* out) {
  Sym s = src->sym;
  Node* copy = s.is_value() ? out->tree.CreateValue(s.id())
                            : out->tree.CreateElement(s.id());
  out->paths.push_back(src_paths[src->index]);
  if (dst_parent == nullptr) {
    out->tree.SetRoot(copy);
  } else {
    out->tree.AppendChild(dst_parent, copy);
  }

  // Per-group member cursors for this parent.
  std::map<const Node*, uint32_t> replacement;  // original child -> member
  for (const Group& g : groups) {
    if (g.parent != src) continue;
    for (uint32_t pos = 0; pos < g.members.size(); ++pos) {
      // The child at the group's pos-th original slot is replaced by the
      // permuted member g.members[g.order[pos]].
      replacement[g.members[pos]] = g.order[pos];
    }
  }

  for (const Node* c = src->first_child; c != nullptr; c = c->next_sibling) {
    const Node* actual = c;
    auto it = replacement.find(c);
    if (it != replacement.end()) {
      // Find the group again to map the index to a node.
      for (const Group& g : groups) {
        if (g.parent == src &&
            std::find(g.members.begin(), g.members.end(), c) !=
                g.members.end()) {
          actual = g.members[it->second];
          break;
        }
      }
    }
    CloneRec(actual, copy, src_paths, groups, out);
  }
}

}  // namespace

IsomorphResult ExpandIsomorphisms(const ConcreteQuery& query,
                                  const IsomorphOptions& options) {
  IsomorphResult result;
  if (query.tree.root() == nullptr) return result;

  std::vector<Group> groups;
  CollectGroups(query.tree.root(), query.paths, &groups);

  // Odometer over per-group permutations.
  for (;;) {
    ConcreteQuery clone;
    CloneRec(query.tree.root(), nullptr, query.paths, groups, &clone);
    result.queries.push_back(std::move(clone));
    if (result.queries.size() >= options.max_orderings) {
      // Check whether more orderings would exist.
      size_t k = 0;
      std::vector<Group> probe = groups;
      while (k < probe.size() &&
             !std::next_permutation(probe[k].order.begin(),
                                    probe[k].order.end())) {
        ++k;
      }
      if (k < probe.size()) result.truncated = true;
      break;
    }
    size_t k = 0;
    while (k < groups.size() &&
           !std::next_permutation(groups[k].order.begin(),
                                  groups[k].order.end())) {
      ++k;  // this group wrapped to identity; carry to the next
    }
    if (k == groups.size()) break;  // all orderings emitted
  }
  return result;
}

}  // namespace xseq
