#include "src/query/oracle.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace xseq {

namespace {

/// Memoized embedding test: can query node q (subtree) embed at data node d?
class Embedder {
 public:
  bool Embeds(const Node* q, const Node* d) {
    if (q->sym != d->sym) return false;
    uint64_t key = (static_cast<uint64_t>(q->index) << 32) | d->index;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    bool ok = MatchChildren(q, d);
    memo_.emplace(key, ok);
    return ok;
  }

 private:
  /// Injectively assigns q's children to distinct children of d.
  bool MatchChildren(const Node* q, const Node* d) {
    std::vector<const Node*> qkids;
    for (const Node* c = q->first_child; c != nullptr; c = c->next_sibling) {
      qkids.push_back(c);
    }
    if (qkids.empty()) return true;
    std::vector<const Node*> dkids;
    for (const Node* c = d->first_child; c != nullptr; c = c->next_sibling) {
      dkids.push_back(c);
    }
    if (dkids.size() < qkids.size()) return false;
    std::vector<bool> used(dkids.size(), false);
    return Assign(qkids, dkids, 0, &used);
  }

  bool Assign(const std::vector<const Node*>& qkids,
              const std::vector<const Node*>& dkids, size_t i,
              std::vector<bool>* used) {
    if (i == qkids.size()) return true;
    for (size_t j = 0; j < dkids.size(); ++j) {
      if ((*used)[j]) continue;
      if (!Embeds(qkids[i], dkids[j])) continue;
      (*used)[j] = true;
      if (Assign(qkids, dkids, i + 1, used)) {
        (*used)[j] = false;
        return true;
      }
      (*used)[j] = false;
    }
    return false;
  }

  std::unordered_map<uint64_t, bool> memo_;
};

}  // namespace

bool OracleContains(const Document& data, const ConcreteQuery& query) {
  if (query.tree.root() == nullptr || data.root() == nullptr) return false;
  Embedder e;
  return e.Embeds(query.tree.root(), data.root());
}

std::vector<DocId> OracleScan(const std::vector<Document>& docs,
                              const ConcreteQuery& query) {
  std::vector<DocId> out;
  for (const Document& d : docs) {
    if (OracleContains(d, query)) out.push_back(d.id());
  }
  return out;
}

}  // namespace xseq
