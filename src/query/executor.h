// Query executor: XPath text -> document ids, via the sequence index.
//
// Pipeline (Sections 3-5):
//   parse -> instantiate '//'/'*' against the path dictionary ->
//   expand identical-sibling orderings (false-dismissal fix) ->
//   compile each concrete tree to a QuerySeq with the *data* sequencer ->
//   constraint subsequence matching (Algorithm 1) -> union of doc ids.
//
// Compiled sequences are deduplicated, so the isomorphism expansion of
// structurally equal branches costs nothing extra at match time.

#ifndef XSEQ_SRC_QUERY_EXECUTOR_H_
#define XSEQ_SRC_QUERY_EXECUTOR_H_

#include <chrono>
#include <string_view>
#include <vector>

#include "src/index/matcher.h"
#include "src/obs/trace.h"
#include "src/query/instantiate.h"
#include "src/query/isomorph.h"
#include "src/query/planner.h"
#include "src/query/query_pattern.h"
#include "src/schema/schema.h"

namespace xseq {

class ValueIndex;

/// Steady-clock "now" in microseconds, the time base for
/// ExecOptions::deadline_micros (absolute, not a duration).
inline int64_t DeadlineNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Executor knobs.
struct ExecOptions {
  MatchMode mode = MatchMode::kConstraint;
  InstantiateOptions instantiate;
  IsomorphOptions isomorph;
  /// Planner knobs (selectivity pruning, expansion cost cap, plan cache —
  /// see src/query/planner.h). The compiled-query cache engages only when
  /// `plan.cache_key` is set; Execute() keys by the query text, so callers
  /// going through it get caching for free, while direct ExecutePattern
  /// calls stay uncached unless they opt in.
  PlanOptions plan;
  /// Match-level parallelism: the deduplicated compiled sequences of one
  /// query are matched concurrently (each MatchSequence call is read-only
  /// over the FrozenIndex). 1 = serial (default: single queries are usually
  /// latency-bound on one sequence), 0 = the process default pool, n > 1 =
  /// a dedicated pool for this call. Results are identical to serial.
  int threads = 1;
  /// Tracing knob: when non-null, every query run with these options
  /// records a span tree (query -> compile -> instantiate -> per-sequence
  /// match; DynamicIndex adds per-segment probe spans) into the tracer's
  /// ring buffer. Null (the default) costs one pointer compare per stage.
  obs::Tracer* tracer = nullptr;
  /// Internal tracing plumbing: when a surrounding execution (a
  /// DynamicIndex query probing its segments) already owns a trace, it
  /// points `trace` at its builder and `trace_parent` at the span the
  /// nested call should attach under; `tracer` is then ignored. End users
  /// set `tracer` only.
  obs::TraceBuilder* trace = nullptr;
  uint32_t trace_parent = obs::kNoSpan;
  /// Explain sink: when non-null, ExecutePattern *accumulates* a structured
  /// account of the plan it ran (instantiations, chosen sequence order with
  /// anchors, predicted vs. actual cost, cache hits) into it. Accumulation
  /// (not assignment) lets one explain aggregate the nested executions of a
  /// DynamicIndex query or a scatter-gather fan-out. Costs a few planner
  /// probes per sequence when set; nothing when null.
  QueryExplain* explain = nullptr;
  /// Absolute deadline in DeadlineNowMicros() units; 0 = no deadline. The
  /// executor checks it between pipeline stages and between matched
  /// sequences (not inside one MatchSequence call) and fails the query
  /// with kDeadlineExceeded once passed. Propagates into nested executions
  /// (DynamicIndex segment probes) because it rides in the options.
  int64_t deadline_micros = 0;

  /// True once the deadline, if any, has passed.
  bool DeadlineExpired() const {
    return deadline_micros > 0 && DeadlineNowMicros() >= deadline_micros;
  }
};

/// Per-query cost breakdown.
struct ExecStats {
  size_t instantiations = 0;   ///< concrete trees after wildcard resolution
  size_t orderings = 0;        ///< trees after isomorphism expansion
  size_t matched_sequences = 0;///< deduplicated sequences actually matched
  bool truncated = false;      ///< an enumeration cap was hit
  MatchStats match;            ///< aggregated Algorithm 1 counters
  int64_t compile_micros = 0;
  int64_t match_micros = 0;
  size_t result_docs = 0;
  size_t plan_cache_hits = 0;  ///< compilations served from the plan cache
  size_t result_cache_hits = 0;///< whole answers served from the result cache
  /// Zero-cardinality wildcard/'//' candidates and compiled sequences the
  /// planner cut before (or instead of) matching. Exact pruning: none of
  /// them could have contributed a result.
  size_t pruned_instantiations = 0;
  /// Comparison-predicate counters (zero for queries without comparisons):
  /// dictionary paths probed in the value index, and postings collected
  /// before intersection.
  uint64_t vindex_probes = 0;
  uint64_t vindex_candidates = 0;
  /// Comparison queries answered from candidate postings alone (the
  /// skeleton was one linear chain a comparison already covers, see
  /// ComparisonImpliesSkeleton) — the structural scan was skipped.
  uint64_t vindex_short_circuits = 0;

  /// Accumulates `o` (mirrors MatchStats::Add); used wherever per-segment
  /// or per-batch stats are aggregated.
  void Add(const ExecStats& o) {
    instantiations += o.instantiations;
    orderings += o.orderings;
    matched_sequences += o.matched_sequences;
    truncated = truncated || o.truncated;
    match.Add(o.match);
    compile_micros += o.compile_micros;
    match_micros += o.match_micros;
    result_docs += o.result_docs;
    plan_cache_hits += o.plan_cache_hits;
    result_cache_hits += o.result_cache_hits;
    pruned_instantiations += o.pruned_instantiations;
    vindex_probes += o.vindex_probes;
    vindex_candidates += o.vindex_candidates;
    vindex_short_circuits += o.vindex_short_circuits;
  }
};

/// Stateless facade over the pieces a query needs. All referenced objects
/// must outlive the executor.
class QueryExecutor {
 public:
  /// `schema`, when given, supplies the planner's build-time statistics
  /// (repeatability, weights); planning still works without it using the
  /// index's exact link cardinalities alone. `vindex`, when given, answers
  /// comparison predicates ([price < 30]); without it such queries fail
  /// with kFailedPrecondition (pre-v4 images).
  QueryExecutor(const FrozenIndex* index, const PathDict* dict,
                const NameTable* names, const ValueEncoder* values,
                const Sequencer* sequencer, const Schema* schema = nullptr,
                const ValueIndex* vindex = nullptr)
      : index_(index),
        dict_(dict),
        names_(names),
        values_(values),
        sequencer_(sequencer),
        schema_(schema),
        vindex_(vindex) {}

  /// Parses and runs `xpath`; returns sorted, deduplicated document ids.
  /// `ctx`, when given, supplies reusable match scratch (see MatchContext);
  /// it is reused across the query's compiled sequences and across calls.
  StatusOr<std::vector<DocId>> Execute(std::string_view xpath,
                                       ExecStats* stats = nullptr,
                                       const ExecOptions& options = {},
                                       MatchContext* ctx = nullptr) const;

  /// Runs an already-parsed pattern.
  StatusOr<std::vector<DocId>> ExecutePattern(
      const QueryPattern& pattern, ExecStats* stats = nullptr,
      const ExecOptions& options = {}, MatchContext* ctx = nullptr) const;

  /// Compiles `pattern` into the deduplicated query sequences that would be
  /// matched (exposed for tests, baselines and benchmarks). Applies the
  /// planner (pruning, cost cap, selectivity ordering) but never the plan
  /// cache — callers wanting cached compilation go through ExecutePattern
  /// with `options.plan.cache_key` set.
  StatusOr<std::vector<QuerySeq>> Compile(const QueryPattern& pattern,
                                          ExecStats* stats = nullptr,
                                          const ExecOptions& options = {})
      const;

 private:
  /// The full compile pipeline: instantiate (with pruning) -> cost-capped
  /// ordering expansion -> sequence build -> dedup -> selectivity order.
  StatusOr<CompiledQuery> CompileInternal(const QueryPattern& pattern,
                                          const ExecOptions& options) const;

  const FrozenIndex* index_;
  const PathDict* dict_;
  const NameTable* names_;
  const ValueEncoder* values_;
  const Sequencer* sequencer_;
  const Schema* schema_;
  const ValueIndex* vindex_;
  /// Leased to calls that pass no MatchContext, so serial matching stays
  /// allocation-free across queries (the decoded-block cache in
  /// particular is too big to rebuild per call).
  mutable MatchContextPool ctx_pool_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_EXECUTOR_H_
