// Query planner: selectivity-aware compilation of query patterns.
//
// The schema layer computes occurrence statistics at build time — counts
// behind p(C|parent) / p(C|root), repeatability, weights w(C) — but until
// this layer they were consulted only when *sequencing data*. The planner
// reuses them (plus the index's own horizontal links, whose lengths are the
// exact per-path occurrence cardinalities: |Link(C)| = count(C), the
// empirical numerator of p(C|root)) at *query* time:
//
//   * instantiation pruning: a '//' or '*' resolution whose path has zero
//     occurrences in the target index cannot contribute a match, so the
//     candidate is dropped before the ordering expansion fans out. Exact —
//     an empty link means zero terminals, so results are bit-identical.
//   * expansion cost capping: the number of orderings a concrete tree
//     expands into is the product of factorials of its identical-sibling
//     group sizes; multiplied by the tree's estimated match cost (sum of
//     link cardinalities, doubled for paths the schema marks repeatable,
//     since those need sibling-cover checks) this predicts the work of
//     keeping the tree exact. Trees over budget either fall back to exact
//     expansion anyway (exact_fallback, the default) or get their ordering
//     cap clamped (approximate: sets `truncated`).
//   * selectivity ordering: each compiled sequence's most selective
//     position (minimum link cardinality — the anchor Algorithm 1 must
//     satisfy no matter where it starts) is computed; sequences whose
//     anchor has zero occurrences are skipped outright, the rest are
//     matched most-selective-first so short-circuiting work (deadlines,
//     shared match contexts) sees cheap sequences early. The result union
//     is sorted and deduplicated, so ordering is unobservable in output.
//
// CompiledQuery is the unit the plan cache (src/query/plan_cache.h) stores.

#ifndef XSEQ_SRC_QUERY_PLANNER_H_
#define XSEQ_SRC_QUERY_PLANNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/index/matcher.h"
#include "src/index/trie.h"
#include "src/query/instantiate.h"
#include "src/schema/schema.h"

namespace xseq {

class PlanCache;

/// The process-wide compiled-query cache (see src/query/plan_cache.h);
/// declared here so PlanOptions can default to it without the full type.
PlanCache* DefaultPlanCache();

/// Planner knobs, carried inside ExecOptions.
struct PlanOptions {
  /// Master switch for the exact selectivity optimizations (instantiation
  /// pruning + zero-anchor skipping + most-selective-first ordering).
  /// These never change results; off reproduces the pre-planner pipeline.
  bool selectivity = true;
  /// Predicted-cost budget for isomorphism expansion of one concrete tree:
  /// orderings × estimated match cost. 0 disables the cap.
  uint64_t max_predicted_cost = 1u << 20;
  /// When a tree exceeds max_predicted_cost: true (default) expands it
  /// fully anyway — the cap becomes advisory and results stay bit-identical;
  /// false clamps the tree's ordering cap to fit the budget and sets
  /// `truncated` (results may miss permuted-sibling matches).
  bool exact_fallback = true;
  /// Compiled-query cache; null disables plan caching. Only consulted when
  /// `cache_key` is set (Execute() keys by query text; pattern-level entry
  /// points opt in by supplying a key whose text identifies the query).
  PlanCache* cache = DefaultPlanCache();
  /// Cache identity of the query within one index/options context. Must
  /// outlive the Execute/ExecutePattern call that carries it.
  std::string_view cache_key{};
};

/// A planned, deduplicated, selectivity-ordered compilation of one query
/// against one index — everything match-time needs, plus the compile-side
/// counters so a cache hit replays identical ExecStats.
struct CompiledQuery {
  std::vector<QuerySeq> sequences;
  size_t instantiations = 0;  ///< concrete trees after wildcard resolution
  size_t orderings = 0;       ///< trees after isomorphism expansion
  size_t pruned = 0;          ///< zero-cardinality candidates/sequences cut
  bool truncated = false;     ///< an enumeration cap was hit
  /// Planner-predicted match work (sum over concrete trees of orderings ×
  /// estimated per-ordering entries, saturating) — the number the cost cap
  /// compared against its budget. Stored so a plan-cache hit replays the
  /// same explain output as a fresh compile.
  uint64_t predicted_cost = 0;

  /// Approximate heap footprint, used for cache byte accounting.
  size_t MemoryBytes() const;
};

/// A structured account of what the planner and executor did for one query
/// — the "explain" record surfaced by `xseq_client query --explain`,
/// `xseq_tool explain`, and the serving-plane access log. Counters
/// accumulate (Add), so one explain can aggregate shard probes or dynamic
/// segments; the per-sequence and per-shard vectors concatenate.
struct QueryExplain {
  size_t instantiations = 0;   ///< concrete trees after wildcard resolution
  size_t orderings = 0;        ///< trees after isomorphism expansion
  size_t pruned = 0;           ///< planner-cut candidates and sequences
  size_t sequences = 0;        ///< deduplicated sequences actually matched
  bool plan_cache_hit = false; ///< compilation served from the plan cache
  bool result_cache_hit = false;  ///< whole answer served from result cache
  bool truncated = false;
  uint64_t predicted_cost = 0; ///< planner estimate (link entries)
  uint64_t actual_cost = 0;    ///< link entries actually read matching
  int64_t compile_micros = 0;
  int64_t match_micros = 0;
  size_t result_docs = 0;

  /// One matched sequence, in the selectivity order the planner chose.
  struct SeqEntry {
    uint32_t positions = 0;           ///< sequence length
    uint64_t anchor_cardinality = 0;  ///< min link cardinality
    uint32_t anchor = 0;              ///< position attaining the minimum
    int32_t shard = -1;               ///< owning shard, -1 = unsharded
  };
  std::vector<SeqEntry> seq;

  /// Scatter-gather fan-out: one row per probed shard.
  struct ShardBreakdown {
    int32_t shard = 0;
    uint64_t docs = 0;
    uint64_t entries_read = 0;
    int64_t micros = 0;
  };
  std::vector<ShardBreakdown> shards;

  /// Merges `o` into this explain (counters add, flags OR, rows append).
  void Add(const QueryExplain& o);

  /// One-line-per-field JSON object (no trailing newline), embeddable in
  /// the access log and stable for tests.
  std::string ToJson() const;

  /// Human-readable rendering for the CLIs.
  std::string ToString() const;
};

/// Stateless planning helpers over one index (and optionally its schema).
/// Both referenced objects must outlive the planner.
class QueryPlanner {
 public:
  explicit QueryPlanner(const FrozenIndex* index,
                        const Schema* schema = nullptr)
      : index_(index), schema_(schema) {}

  /// Exact occurrence count of `path` in the index (its link length).
  uint64_t Cardinality(PathId path) const { return index_->LinkSize(path); }

  /// True when `path` occurs at all — the instantiation pruning predicate.
  bool Viable(PathId path) const { return index_->LinkSize(path) != 0; }

  /// Number of orderings ExpandIsomorphisms would emit for `query`:
  /// the product of factorials of its identical-path sibling group sizes,
  /// saturated at `cap` (so callers can compare against a budget without
  /// overflow).
  static uint64_t PredictedOrderings(const ConcreteQuery& query, uint64_t cap);

  /// Estimated link entries Algorithm 1 touches matching one ordering of
  /// `query`: the sum of its paths' cardinalities, doubled for paths the
  /// schema marks repeatable (nested occurrences trigger the sibling-cover
  /// machinery). Saturating.
  uint64_t EstimatedMatchCost(const ConcreteQuery& query) const;

  /// Per-sequence selectivity: the minimum link cardinality over its
  /// positions and the position attaining it (the anchor).
  struct SeqSelectivity {
    uint64_t min_cardinality = 0;
    size_t anchor = 0;
  };
  SeqSelectivity Selectivity(const QuerySeq& seq) const;

  /// Drops sequences whose anchor cardinality is zero (they cannot match)
  /// and stably orders the rest most-selective-first. Returns the number
  /// dropped.
  size_t OrderBySelectivity(std::vector<QuerySeq>* seqs) const;

 private:
  const FrozenIndex* index_;
  const Schema* schema_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_PLANNER_H_
