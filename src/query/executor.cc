#include "src/query/executor.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

std::string SeqKey(const QuerySeq& q) {
  std::string key;
  key.reserve(q.paths.size() * 8);
  for (size_t i = 0; i < q.paths.size(); ++i) {
    key.append(reinterpret_cast<const char*>(&q.paths[i]), sizeof(PathId));
    key.append(reinterpret_cast<const char*>(&q.parent[i]), sizeof(int32_t));
  }
  return key;
}

}  // namespace

StatusOr<std::vector<QuerySeq>> QueryExecutor::Compile(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  Timer timer;

  auto inst = InstantiatePattern(pattern, *dict_, *names_, *values_,
                                 options.instantiate);
  if (!inst.ok()) return inst.status();
  st->instantiations += inst->queries.size();
  st->truncated = st->truncated || inst->truncated;

  std::vector<QuerySeq> out;
  std::unordered_set<std::string> seen;
  for (const ConcreteQuery& cq : inst->queries) {
    IsomorphResult iso = ExpandIsomorphisms(cq, options.isomorph);
    st->orderings += iso.queries.size();
    st->truncated = st->truncated || iso.truncated;
    for (const ConcreteQuery& ordered : iso.queries) {
      auto qs = BuildQuerySeq(ordered.tree, ordered.paths, *sequencer_);
      if (!qs.ok()) return qs.status();
      if (seen.insert(SeqKey(*qs)).second) {
        out.push_back(std::move(*qs));
      }
    }
  }
  st->matched_sequences += out.size();
  st->compile_micros += timer.ElapsedMicros();
  return out;
}

StatusOr<std::vector<DocId>> QueryExecutor::ExecutePattern(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options, MatchContext* ctx) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;

  auto compiled = Compile(pattern, st, options);
  if (!compiled.ok()) return compiled.status();

  Timer timer;
  std::vector<DocId> out;

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (options.threads == 0) {
    pool = DefaultPool();
  } else if (options.threads > 1) {
    owned = std::make_unique<ThreadPool>(options.threads);
    pool = owned.get();
  }
  if (pool != nullptr && pool->width() > 1 && compiled->size() > 1) {
    // Each MatchSequence call is read-only over the FrozenIndex; per-slot
    // outputs merge in sequence order, so counters and ids are identical to
    // the serial loop below.
    const size_t k = compiled->size();
    std::vector<std::vector<DocId>> parts(k);
    std::vector<MatchStats> part_stats(k);
    std::vector<Status> results(k);
    pool->ParallelFor(k, [&](size_t i) {
      results[i] = MatchSequence(*index_, (*compiled)[i], options.mode,
                                 &parts[i], &part_stats[i]);
    });
    for (size_t i = 0; i < k; ++i) {
      XSEQ_RETURN_IF_ERROR(results[i]);
      st->match.Add(part_stats[i]);
      out.insert(out.end(), parts[i].begin(), parts[i].end());
    }
  } else {
    // The caller's context (or none) is reused across every compiled
    // sequence of this query.
    for (const QuerySeq& qs : *compiled) {
      XSEQ_RETURN_IF_ERROR(
          MatchSequence(*index_, qs, options.mode, &out, &st->match, ctx));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  st->match_micros += timer.ElapsedMicros();
  st->result_docs = out.size();
  return out;
}

StatusOr<std::vector<DocId>> QueryExecutor::Execute(
    std::string_view xpath, ExecStats* stats, const ExecOptions& options,
    MatchContext* ctx) const {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  return ExecutePattern(*pattern, stats, options, ctx);
}

}  // namespace xseq
