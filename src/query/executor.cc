#include "src/query/executor.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

Status DeadlineError() {
  return Status::DeadlineExceeded("query deadline exceeded");
}

std::string SeqKey(const QuerySeq& q) {
  std::string key;
  key.reserve(q.paths.size() * 8);
  for (size_t i = 0; i < q.paths.size(); ++i) {
    key.append(reinterpret_cast<const char*>(&q.paths[i]), sizeof(PathId));
    key.append(reinterpret_cast<const char*>(&q.parent[i]), sizeof(int32_t));
  }
  return key;
}

/// Registry handles for the executor-level query metrics, resolved once.
struct QueryMetricSet {
  obs::Counter* queries;
  obs::Counter* errors;
  obs::Counter* truncated;
  obs::Histogram* latency_us;
  obs::Histogram* compile_us;
  obs::Histogram* match_us;
  obs::Histogram* result_docs;
};

const QueryMetricSet& QueryMetrics() {
  static const QueryMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return QueryMetricSet{r->GetCounter("xseq.query.count"),
                          r->GetCounter("xseq.query.errors"),
                          r->GetCounter("xseq.query.truncated"),
                          r->GetHistogram("xseq.query.latency_us"),
                          r->GetHistogram("xseq.query.compile_us"),
                          r->GetHistogram("xseq.query.match_us"),
                          r->GetHistogram("xseq.query.result_docs")};
  }();
  return s;
}

/// Runs on every exit path of ExecutePattern: commits an owned trace to its
/// tracer and feeds the query metrics (latency measured here, compile /
/// match micros supplied as this call's deltas by the caller).
struct QueryReporter {
  Timer timer;
  obs::TraceBuilder* owned_trace = nullptr;
  obs::Tracer* commit_to = nullptr;
  bool ok = false;
  bool truncated = false;
  uint64_t compile_us = 0;
  uint64_t match_us = 0;
  uint64_t result_docs = 0;

  ~QueryReporter() {
    if (owned_trace != nullptr && commit_to != nullptr) {
      owned_trace->Commit(commit_to);
    }
    if (!obs::MetricsEnabled()) return;
    const QueryMetricSet& m = QueryMetrics();
    m.queries->Increment();
    if (!ok) m.errors->Increment();
    if (truncated) m.truncated->Increment();
    m.latency_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
    m.compile_us->Record(compile_us);
    m.match_us->Record(match_us);
    m.result_docs->Record(result_docs);
  }
};

}  // namespace

StatusOr<std::vector<QuerySeq>> QueryExecutor::Compile(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  Timer timer;

  obs::SpanScope compile_span(options.trace, "compile",
                              options.trace_parent);
  auto inst = [&] {
    obs::SpanScope inst_span(options.trace, "instantiate",
                             compile_span.id());
    auto result = InstantiatePattern(pattern, *dict_, *names_, *values_,
                                     options.instantiate);
    if (result.ok()) {
      inst_span.Annotate("concrete_trees", result->queries.size());
    }
    return result;
  }();
  if (!inst.ok()) return inst.status();
  st->instantiations += inst->queries.size();
  st->truncated = st->truncated || inst->truncated;

  std::vector<QuerySeq> out;
  std::unordered_set<std::string> seen;
  {
    obs::SpanScope expand_span(options.trace, "expand_orderings",
                               compile_span.id());
    size_t orderings = 0;
    for (const ConcreteQuery& cq : inst->queries) {
      IsomorphResult iso = ExpandIsomorphisms(cq, options.isomorph);
      orderings += iso.queries.size();
      st->orderings += iso.queries.size();
      st->truncated = st->truncated || iso.truncated;
      for (const ConcreteQuery& ordered : iso.queries) {
        auto qs = BuildQuerySeq(ordered.tree, ordered.paths, *sequencer_);
        if (!qs.ok()) return qs.status();
        if (seen.insert(SeqKey(*qs)).second) {
          out.push_back(std::move(*qs));
        }
      }
    }
    expand_span.Annotate("orderings", orderings);
    expand_span.Annotate("deduped_sequences", out.size());
  }
  st->matched_sequences += out.size();
  st->compile_micros += timer.ElapsedMicros();
  return out;
}

StatusOr<std::vector<DocId>> QueryExecutor::ExecutePattern(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options, MatchContext* ctx) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;

  // Tracing: attach to the caller's builder (nested execution, e.g. a
  // DynamicIndex segment probe) or open a fresh trace bound for
  // options.tracer's ring buffer.
  obs::TraceBuilder owned_trace;
  ExecOptions opts = options;
  QueryReporter report;
  if (opts.trace == nullptr && opts.tracer != nullptr) {
    opts.trace_parent = owned_trace.StartTrace("query");
    opts.trace = &owned_trace;
    report.owned_trace = &owned_trace;
    report.commit_to = opts.tracer;
    opts.tracer = nullptr;
  }
  const uint32_t root_span = opts.trace_parent;

  if (opts.DeadlineExpired()) return DeadlineError();

  const int64_t compile_before = st->compile_micros;
  auto compiled = Compile(pattern, st, opts);
  report.compile_us =
      static_cast<uint64_t>(st->compile_micros - compile_before);
  report.truncated = st->truncated;
  if (!compiled.ok()) return compiled.status();

  Timer timer;
  std::vector<DocId> out;

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (opts.threads == 0) {
    pool = DefaultPool();
  } else if (opts.threads > 1) {
    owned = std::make_unique<ThreadPool>(opts.threads);
    pool = owned.get();
  }
  obs::SpanScope match_span(opts.trace, "match", root_span);
  if (pool != nullptr && pool->width() > 1 && compiled->size() > 1) {
    // Each MatchSequence call is read-only over the FrozenIndex; per-slot
    // outputs merge in sequence order, so counters and ids are identical to
    // the serial loop below.
    const size_t k = compiled->size();
    std::vector<std::vector<DocId>> parts(k);
    std::vector<MatchStats> part_stats(k);
    std::vector<Status> results(k);
    pool->ParallelFor(k, [&](size_t i) {
      if (opts.DeadlineExpired()) {
        results[i] = DeadlineError();
        return;
      }
      obs::SpanScope seq_span(opts.trace, "match_seq", match_span.id());
      results[i] = MatchSequence(*index_, (*compiled)[i], opts.mode,
                                 &parts[i], &part_stats[i]);
      seq_span.Annotate("positions", (*compiled)[i].size());
      seq_span.Annotate("entries_read", part_stats[i].link_entries_read);
      seq_span.Annotate("docs", parts[i].size());
    });
    for (size_t i = 0; i < k; ++i) {
      XSEQ_RETURN_IF_ERROR(results[i]);
      st->match.Add(part_stats[i]);
      out.insert(out.end(), parts[i].begin(), parts[i].end());
    }
  } else if (opts.trace != nullptr) {
    // Traced serial path: per-sequence stats go through a local delta so
    // each span can carry its own counters. Aggregates are identical to
    // the untraced loop below.
    for (const QuerySeq& qs : *compiled) {
      if (opts.DeadlineExpired()) return DeadlineError();
      obs::SpanScope seq_span(opts.trace, "match_seq", match_span.id());
      MatchStats seq_stats;
      size_t docs_before = out.size();
      XSEQ_RETURN_IF_ERROR(
          MatchSequence(*index_, qs, opts.mode, &out, &seq_stats, ctx));
      seq_span.Annotate("positions", qs.size());
      seq_span.Annotate("entries_read", seq_stats.link_entries_read);
      seq_span.Annotate("docs", out.size() - docs_before);
      st->match.Add(seq_stats);
    }
  } else {
    // The caller's context (or none) is reused across every compiled
    // sequence of this query.
    for (const QuerySeq& qs : *compiled) {
      if (opts.DeadlineExpired()) return DeadlineError();
      XSEQ_RETURN_IF_ERROR(
          MatchSequence(*index_, qs, opts.mode, &out, &st->match, ctx));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  match_span.End();
  st->match_micros += timer.ElapsedMicros();
  st->result_docs = out.size();
  report.ok = true;
  report.truncated = st->truncated;
  report.match_us = static_cast<uint64_t>(timer.ElapsedMicros());
  report.result_docs = out.size();
  if (opts.trace != nullptr) {
    opts.trace->Annotate(root_span, "sequences", compiled->size());
    opts.trace->Annotate(root_span, "result_docs", out.size());
  }
  return out;
}

StatusOr<std::vector<DocId>> QueryExecutor::Execute(
    std::string_view xpath, ExecStats* stats, const ExecOptions& options,
    MatchContext* ctx) const {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  return ExecutePattern(*pattern, stats, options, ctx);
}

}  // namespace xseq
