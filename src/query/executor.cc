#include "src/query/executor.h"

#include <algorithm>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "src/obs/metrics.h"
#include "src/query/plan_cache.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"
#include "src/vindex/compare.h"

namespace xseq {

namespace {

Status DeadlineError() {
  return Status::DeadlineExceeded("query deadline exceeded");
}

std::string SeqKey(const QuerySeq& q) {
  std::string key;
  key.reserve(q.paths.size() * 8);
  for (size_t i = 0; i < q.paths.size(); ++i) {
    key.append(reinterpret_cast<const char*>(&q.paths[i]), sizeof(PathId));
    key.append(reinterpret_cast<const char*>(&q.parent[i]), sizeof(int32_t));
  }
  return key;
}

/// Full cache identity of a compiled query: the caller's key (the query
/// text) plus every knob that changes compile output. The index identity is
/// prepended by the cache itself.
std::string BuildPlanCacheKey(const ExecOptions& o) {
  std::string key(o.plan.cache_key);
  key.push_back('\0');
  auto put = [&key](uint64_t v) {
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put(o.instantiate.max_instantiations);
  put(o.isomorph.max_orderings);
  put(o.plan.selectivity ? 1 : 0);
  put(o.plan.max_predicted_cost);
  put(o.plan.exact_fallback ? 1 : 0);
  return key;
}

/// Registry handles for the executor-level query metrics, resolved once.
struct QueryMetricSet {
  obs::Counter* queries;
  obs::Counter* errors;
  obs::Counter* truncated;
  obs::Counter* pruned;
  obs::Histogram* latency_us;
  obs::Histogram* compile_us;
  obs::Histogram* match_us;
  obs::Histogram* result_docs;
};

const QueryMetricSet& QueryMetrics() {
  static const QueryMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return QueryMetricSet{r->GetCounter("xseq.query.count"),
                          r->GetCounter("xseq.query.errors"),
                          r->GetCounter("xseq.query.truncated"),
                          r->GetCounter("xseq.plan.pruned"),
                          r->GetHistogram("xseq.query.latency_us"),
                          r->GetHistogram("xseq.query.compile_us"),
                          r->GetHistogram("xseq.query.match_us"),
                          r->GetHistogram("xseq.query.result_docs")};
  }();
  return s;
}

/// Runs on every exit path of ExecutePattern: commits an owned trace to its
/// tracer and feeds the query metrics (latency measured here, compile /
/// match micros supplied as this call's deltas by the caller).
struct QueryReporter {
  Timer timer;
  obs::TraceBuilder* owned_trace = nullptr;
  obs::Tracer* commit_to = nullptr;
  bool ok = false;
  bool truncated = false;
  uint64_t compile_us = 0;
  uint64_t match_us = 0;
  uint64_t result_docs = 0;
  uint64_t pruned = 0;

  ~QueryReporter() {
    if (owned_trace != nullptr && commit_to != nullptr) {
      owned_trace->Commit(commit_to);
    }
    if (!obs::MetricsEnabled()) return;
    const QueryMetricSet& m = QueryMetrics();
    m.queries->Increment();
    if (!ok) m.errors->Increment();
    if (truncated) m.truncated->Increment();
    if (pruned > 0) m.pruned->Add(pruned);
    m.latency_us->Record(static_cast<uint64_t>(timer.ElapsedMicros()));
    m.compile_us->Record(compile_us);
    m.match_us->Record(match_us);
    m.result_docs->Record(result_docs);
  }
};

}  // namespace

StatusOr<CompiledQuery> QueryExecutor::CompileInternal(
    const QueryPattern& pattern, const ExecOptions& options) const {
  CompiledQuery out;
  QueryPlanner planner(index_, schema_);

  obs::SpanScope compile_span(options.trace, "compile",
                              options.trace_parent);
  InstantiateOptions inst_opts = options.instantiate;
  if (options.plan.selectivity) {
    // Compose the planner's exact zero-cardinality predicate with any
    // caller-supplied one.
    auto caller = inst_opts.viable;
    inst_opts.viable = [&planner, caller](PathId p) {
      return planner.Viable(p) && (!caller || caller(p));
    };
  }
  auto inst = [&] {
    obs::SpanScope inst_span(options.trace, "instantiate",
                             compile_span.id());
    auto result =
        InstantiatePattern(pattern, *dict_, *names_, *values_, inst_opts);
    if (result.ok()) {
      inst_span.Annotate("concrete_trees", result->queries.size());
      if (result->pruned > 0) inst_span.Annotate("pruned", result->pruned);
    }
    return result;
  }();
  if (!inst.ok()) return inst.status();
  out.instantiations = inst->queries.size();
  out.truncated = inst->truncated;
  out.pruned = inst->pruned;

  std::unordered_set<std::string> seen;
  {
    obs::SpanScope expand_span(options.trace, "expand_orderings",
                               compile_span.id());
    size_t cost_capped = 0;
    for (const ConcreteQuery& cq : inst->queries) {
      IsomorphOptions iso_opts = options.isomorph;
      if (options.plan.max_predicted_cost > 0) {
        // Predicted cost of keeping this tree exact: orderings times the
        // estimated per-ordering match work. With exact_fallback the budget
        // is advisory; without it the ordering cap is clamped to fit.
        const uint64_t budget = options.plan.max_predicted_cost;
        const uint64_t per =
            std::max<uint64_t>(1, planner.EstimatedMatchCost(cq));
        const uint64_t orderings =
            QueryPlanner::PredictedOrderings(cq, budget);
        if (orderings > budget / per && !options.plan.exact_fallback) {
          iso_opts.max_orderings =
              std::min<uint64_t>(iso_opts.max_orderings,
                                 std::max<uint64_t>(1, budget / per));
          ++cost_capped;
        }
      }
      {
        // Predicted match work for the explain record: orderings × estimated
        // per-ordering entries, unsaturated by the budget above.
        const uint64_t per = planner.EstimatedMatchCost(cq);
        const uint64_t n = QueryPlanner::PredictedOrderings(cq, UINT64_MAX);
        const uint64_t tree_cost =
            (per != 0 && n > UINT64_MAX / per) ? UINT64_MAX : n * per;
        out.predicted_cost = out.predicted_cost + tree_cost < out.predicted_cost
                                 ? UINT64_MAX
                                 : out.predicted_cost + tree_cost;
      }
      IsomorphResult iso = ExpandIsomorphisms(cq, iso_opts);
      out.orderings += iso.queries.size();
      out.truncated = out.truncated || iso.truncated;
      for (const ConcreteQuery& ordered : iso.queries) {
        auto qs = BuildQuerySeq(ordered.tree, ordered.paths, *sequencer_);
        if (!qs.ok()) return qs.status();
        if (seen.insert(SeqKey(*qs)).second) {
          out.sequences.push_back(std::move(*qs));
        }
      }
    }
    if (options.plan.selectivity) {
      out.pruned += planner.OrderBySelectivity(&out.sequences);
    }
    expand_span.Annotate("orderings", out.orderings);
    expand_span.Annotate("deduped_sequences", out.sequences.size());
    if (cost_capped > 0) expand_span.Annotate("cost_capped", cost_capped);
  }
  return out;
}

StatusOr<std::vector<QuerySeq>> QueryExecutor::Compile(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;
  Timer timer;
  auto cq = CompileInternal(pattern, options);
  if (!cq.ok()) return cq.status();
  st->instantiations += cq->instantiations;
  st->orderings += cq->orderings;
  st->pruned_instantiations += cq->pruned;
  st->truncated = st->truncated || cq->truncated;
  st->matched_sequences += cq->sequences.size();
  st->compile_micros += timer.ElapsedMicros();
  return std::move(cq->sequences);
}

StatusOr<std::vector<DocId>> QueryExecutor::ExecutePattern(
    const QueryPattern& pattern, ExecStats* stats,
    const ExecOptions& options, MatchContext* ctx) const {
  ExecStats local;
  ExecStats* st = stats != nullptr ? stats : &local;

  // Comparison predicates ([price < 30]) are a document-level filter over
  // the structural match: probe the value index for each comparison's
  // candidate docs, run the comparison-free skeleton through the unchanged
  // pipeline below, and intersect. Queries without comparisons never enter
  // this block and execute bit-identically to an executor with no vindex.
  if (HasComparisons(pattern)) {
    if (vindex_ == nullptr) {
      return Status::FailedPrecondition(
          "index has no value index (built before format v4); rebuild it "
          "to answer comparison predicates");
    }
    std::vector<ValueComparison> cmps;
    QueryPattern skeleton = StripComparisons(pattern, &cmps);
    std::vector<std::vector<DocId>> cands;
    cands.reserve(cmps.size());
    for (const ValueComparison& c : cmps) {
      cands.push_back(CandidateDocs(*vindex_, *dict_, *names_, c,
                                    &st->vindex_probes,
                                    &st->vindex_candidates));
    }
    // Intersect smallest-first so the running set only ever shrinks.
    std::sort(cands.begin(), cands.end(),
              [](const std::vector<DocId>& a, const std::vector<DocId>& b) {
                return a.size() < b.size();
              });
    std::vector<DocId> docs = std::move(cands.front());
    for (size_t i = 1; i < cands.size() && !docs.empty(); ++i) {
      std::vector<DocId> merged;
      std::set_intersection(docs.begin(), docs.end(), cands[i].begin(),
                            cands[i].end(), std::back_inserter(merged));
      docs = std::move(merged);
    }
    if (docs.empty()) {
      st->result_docs = 0;
      return std::vector<DocId>();
    }
    // A candidate posting exists only because its document realizes the
    // comparison's root-to-host chain. When the skeleton IS that single
    // chain, every candidate is already a structural match and the scan
    // below could only re-derive a superset — return the candidates.
    if (ComparisonImpliesSkeleton(skeleton, cmps)) {
      st->vindex_short_circuits += 1;
      st->result_docs = docs.size();
      return docs;
    }
    auto structural = ExecutePattern(skeleton, st, options, ctx);
    if (!structural.ok()) return structural.status();
    std::vector<DocId> out;
    std::set_intersection(structural->begin(), structural->end(),
                          docs.begin(), docs.end(),
                          std::back_inserter(out));
    st->result_docs = out.size();
    return out;
  }

  // Tracing: attach to the caller's builder (nested execution, e.g. a
  // DynamicIndex segment probe) or open a fresh trace bound for
  // options.tracer's ring buffer.
  obs::TraceBuilder owned_trace;
  ExecOptions opts = options;
  QueryReporter report;
  if (opts.trace == nullptr && opts.tracer != nullptr) {
    opts.trace_parent = owned_trace.StartTrace("query");
    opts.trace = &owned_trace;
    report.owned_trace = &owned_trace;
    report.commit_to = opts.tracer;
    opts.tracer = nullptr;
  }
  const uint32_t root_span = opts.trace_parent;

  if (opts.DeadlineExpired()) return DeadlineError();

  // Compiled-plan resolution: cache hit -> replay; miss -> full compile,
  // then publish. Either way `plan` points at an immutable CompiledQuery
  // kept alive for the whole match phase (plan_holder pins cached entries
  // even if they are evicted mid-query).
  Timer compile_timer;
  PlanCache* cache = opts.plan.cache;
  if (opts.plan.cache_key.empty() || index_->plan_cache_id() == 0 ||
      opts.instantiate.viable != nullptr) {
    // No identity to key on — or a caller predicate the key cannot encode.
    cache = nullptr;
  }
  std::shared_ptr<const CompiledQuery> plan_holder;
  CompiledQuery owned_plan;
  const CompiledQuery* plan = nullptr;
  bool plan_cache_hit = false;
  std::string cache_key;
  if (cache != nullptr) {
    cache_key = BuildPlanCacheKey(opts);
    plan_holder = cache->Lookup(index_->plan_cache_id(), cache_key);
    if (plan_holder != nullptr) {
      plan = plan_holder.get();
      st->plan_cache_hits += 1;
      plan_cache_hit = true;
      obs::SpanScope compile_span(opts.trace, "compile", root_span);
      compile_span.Annotate("plan_cache_hit", 1);
      compile_span.Annotate("sequences", plan->sequences.size());
    }
  }
  if (plan == nullptr) {
    auto cq = CompileInternal(pattern, opts);
    if (!cq.ok()) return cq.status();
    if (cache != nullptr) {
      auto sp = std::make_shared<CompiledQuery>(std::move(*cq));
      cache->Insert(index_->plan_cache_id(), cache_key, sp);
      plan_holder = std::move(sp);
      plan = plan_holder.get();
    } else {
      owned_plan = std::move(*cq);
      plan = &owned_plan;
    }
  }
  // Compile-side counters are a pure function of (index, query, knobs), so
  // replaying them from a cached plan matches a fresh compile exactly.
  const int64_t compile_before = st->compile_micros;
  st->instantiations += plan->instantiations;
  st->orderings += plan->orderings;
  st->pruned_instantiations += plan->pruned;
  st->truncated = st->truncated || plan->truncated;
  st->matched_sequences += plan->sequences.size();
  st->compile_micros += compile_timer.ElapsedMicros();
  report.compile_us =
      static_cast<uint64_t>(st->compile_micros - compile_before);
  report.truncated = st->truncated;
  report.pruned = plan->pruned;

  const uint64_t entries_before = st->match.link_entries_read;
  if (opts.explain != nullptr) {
    QueryExplain& ex = *opts.explain;
    ex.instantiations += plan->instantiations;
    ex.orderings += plan->orderings;
    ex.pruned += plan->pruned;
    ex.sequences += plan->sequences.size();
    ex.plan_cache_hit = ex.plan_cache_hit || plan_cache_hit;
    ex.truncated = ex.truncated || plan->truncated;
    ex.predicted_cost =
        ex.predicted_cost + plan->predicted_cost < ex.predicted_cost
            ? UINT64_MAX
            : ex.predicted_cost + plan->predicted_cost;
    ex.compile_micros += st->compile_micros - compile_before;
    QueryPlanner planner(index_, schema_);
    for (const QuerySeq& qs : plan->sequences) {
      QueryPlanner::SeqSelectivity sel = planner.Selectivity(qs);
      QueryExplain::SeqEntry entry;
      entry.positions = static_cast<uint32_t>(qs.size());
      entry.anchor_cardinality = sel.min_cardinality;
      entry.anchor = static_cast<uint32_t>(sel.anchor);
      ex.seq.push_back(entry);
    }
  }

  Timer timer;
  std::vector<DocId> out;

  // Callers that pass no context get a pooled one for the duration of the
  // call: the serial loops below then reuse one decoded-block cache across
  // every compiled sequence instead of rebuilding scratch per sequence.
  std::optional<MatchContextLease> ctx_lease;
  if (ctx == nullptr) {
    ctx_lease.emplace(&ctx_pool_);
    ctx = ctx_lease->get();
  }

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;
  if (opts.threads == 0) {
    pool = DefaultPool();
  } else if (opts.threads > 1) {
    owned = std::make_unique<ThreadPool>(opts.threads);
    pool = owned.get();
  }
  obs::SpanScope match_span(opts.trace, "match", root_span);
  if (pool != nullptr && pool->width() > 1 && plan->sequences.size() > 1) {
    // Each MatchSequence call is read-only over the FrozenIndex; per-slot
    // outputs merge in sequence order, so counters and ids are identical to
    // the serial loop below.
    const size_t k = plan->sequences.size();
    std::vector<std::vector<DocId>> parts(k);
    std::vector<MatchStats> part_stats(k);
    std::vector<Status> results(k);
    pool->ParallelFor(k, [&](size_t i) {
      if (opts.DeadlineExpired()) {
        results[i] = DeadlineError();
        return;
      }
      obs::SpanScope seq_span(opts.trace, "match_seq", match_span.id());
      results[i] = MatchSequence(*index_, plan->sequences[i], opts.mode,
                                 &parts[i], &part_stats[i]);
      seq_span.Annotate("positions", plan->sequences[i].size());
      seq_span.Annotate("entries_read", part_stats[i].link_entries_read);
      seq_span.Annotate("docs", parts[i].size());
    });
    for (size_t i = 0; i < k; ++i) {
      XSEQ_RETURN_IF_ERROR(results[i]);
      st->match.Add(part_stats[i]);
      out.insert(out.end(), parts[i].begin(), parts[i].end());
    }
  } else if (opts.trace != nullptr) {
    // Traced serial path: per-sequence stats go through a local delta so
    // each span can carry its own counters. Aggregates are identical to
    // the untraced loop below.
    for (const QuerySeq& qs : plan->sequences) {
      if (opts.DeadlineExpired()) return DeadlineError();
      obs::SpanScope seq_span(opts.trace, "match_seq", match_span.id());
      MatchStats seq_stats;
      size_t docs_before = out.size();
      XSEQ_RETURN_IF_ERROR(
          MatchSequence(*index_, qs, opts.mode, &out, &seq_stats, ctx));
      seq_span.Annotate("positions", qs.size());
      seq_span.Annotate("entries_read", seq_stats.link_entries_read);
      seq_span.Annotate("docs", out.size() - docs_before);
      st->match.Add(seq_stats);
    }
  } else {
    // The caller's context (or none) is reused across every compiled
    // sequence of this query.
    for (const QuerySeq& qs : plan->sequences) {
      if (opts.DeadlineExpired()) return DeadlineError();
      XSEQ_RETURN_IF_ERROR(
          MatchSequence(*index_, qs, opts.mode, &out, &st->match, ctx));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  match_span.End();
  st->match_micros += timer.ElapsedMicros();
  st->result_docs = out.size();
  report.ok = true;
  report.truncated = st->truncated;
  report.match_us = static_cast<uint64_t>(timer.ElapsedMicros());
  report.result_docs = out.size();
  if (opts.trace != nullptr) {
    opts.trace->Annotate(root_span, "sequences", plan->sequences.size());
    opts.trace->Annotate(root_span, "result_docs", out.size());
  }
  if (opts.explain != nullptr) {
    opts.explain->match_micros += static_cast<int64_t>(report.match_us);
    opts.explain->actual_cost += st->match.link_entries_read - entries_before;
    opts.explain->result_docs += out.size();
  }
  return out;
}

StatusOr<std::vector<DocId>> QueryExecutor::Execute(
    std::string_view xpath, ExecStats* stats, const ExecOptions& options,
    MatchContext* ctx) const {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  // The query text is the natural plan-cache identity; callers that key on
  // something else (or nothing) keep their own setting.
  ExecOptions opts = options;
  if (opts.plan.cache_key.empty()) opts.plan.cache_key = xpath;
  return ExecutePattern(*pattern, stats, opts, ctx);
}

}  // namespace xseq
