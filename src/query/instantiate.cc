#include "src/query/instantiate.h"

#include <functional>

#include "src/xml/value_chain.h"

namespace xseq {

namespace {

/// Pattern nodes flattened in pre-order with parent indices, so assignments
/// can be rolled through a simple DFS product enumeration.
struct FlatPattern {
  std::vector<const PatternNode*> nodes;
  std::vector<int32_t> parent;  // index into nodes, -1 for top nodes
};

void FlattenRec(const PatternNode* n, int32_t parent, FlatPattern* out) {
  int32_t me = static_cast<int32_t>(out->nodes.size());
  out->nodes.push_back(n);
  out->parent.push_back(parent);
  for (const auto& c : n->children) FlattenRec(c.get(), me, out);
}

/// True when `sym` satisfies the node test of `pn` (descendant-axis
/// filtering; value tests are resolved before this is consulted).
bool SymMatches(const PatternNode& pn, Sym sym, NameId want_name,
                ValueId want_value) {
  switch (pn.test) {
    case PatternNode::Test::kName:
      return sym.is_name() && sym.id() == want_name;
    case PatternNode::Test::kWildcard:
      return sym.is_name();
    case PatternNode::Test::kValue:
      return sym.is_value() && sym.id() == want_value;
    case PatternNode::Test::kValuePrefix:
      return false;  // prefix tests are child-axis only
    case PatternNode::Test::kValueCompare:
      return false;  // comparisons never reach instantiation
  }
  return false;
}

/// Walks `text`'s character chain below `parent` in the dictionary,
/// optionally closing with the terminator. Returns the final PathId or
/// kInvalidPath when any step is missing.
PathId WalkCharChain(const PathDict& dict, PathId parent,
                     std::string_view text, bool with_terminator) {
  PathId cur = parent;
  for (unsigned char c : text) {
    cur = dict.Find(cur, Sym::ForValue(static_cast<ValueId>(c)));
    if (cur == kInvalidPath) return kInvalidPath;
  }
  if (with_terminator) {
    cur = dict.Find(cur, Sym::ForValue(kChainTerminator));
  }
  return cur;
}

}  // namespace

StatusOr<InstantiateResult> InstantiatePattern(
    const QueryPattern& pattern, const PathDict& dict, const NameTable& names,
    const ValueEncoder& values, const InstantiateOptions& options) {
  InstantiateResult result;
  if (pattern.root == nullptr || pattern.root->children.empty()) {
    return Status::InvalidArgument("pattern has no steps");
  }
  if (pattern.root->children.size() > 1) {
    return Status::Unimplemented(
        "patterns with multiple top-level branches are not supported");
  }

  const bool chain_mode = values.mode() == ValueMode::kCharSequence;

  FlatPattern flat;
  FlattenRec(pattern.root->children[0].get(), -1, &flat);
  size_t n = flat.nodes.size();

  // Resolve the name / value of each pattern node once. Unknown names or
  // values make the whole pattern unsatisfiable. For prefix tests in exact
  // mode, precompute the matching value designators.
  std::vector<NameId> want_name(n, Interner::kInvalidId);
  std::vector<ValueId> want_value(n, Interner::kInvalidId);
  std::vector<std::vector<ValueId>> prefix_values(n);
  for (size_t i = 0; i < n; ++i) {
    const PatternNode& pn = *flat.nodes[i];
    switch (pn.test) {
      case PatternNode::Test::kName:
        want_name[i] = names.Find(pn.name);
        if (want_name[i] == Interner::kInvalidId) return result;  // empty
        break;
      case PatternNode::Test::kValue:
        if (chain_mode) break;  // resolved by chain walking
        want_value[i] = values.EncodeForLookup(pn.value);
        if (want_value[i] == Interner::kInvalidId) return result;  // empty
        break;
      case PatternNode::Test::kValuePrefix:
        if (chain_mode) break;
        if (values.mode() == ValueMode::kHashed) {
          return Status::Unimplemented(
              "starts-with() requires exact or char-sequence value mode "
              "(hashed designators lose the value text)");
        }
        for (ValueId v = 0; v < values.size(); ++v) {
          if (values.Lookup(v).starts_with(pn.value)) {
            prefix_values[i].push_back(v);
          }
        }
        if (prefix_values[i].empty()) return result;  // empty
        break;
      case PatternNode::Test::kValueCompare:
        // The executor rewrites comparison predicates into a skeleton
        // pattern plus value-index probes before instantiating; reaching
        // one here means a caller skipped that rewrite.
        return Status::InvalidArgument(
            "comparison predicates cannot be instantiated directly; strip "
            "them with StripComparisons() and intersect with the value "
            "index");
      case PatternNode::Test::kWildcard:
        break;
    }
  }

  std::vector<PathId> assignment(n, kInvalidPath);

  // Emits the concrete tree for the current assignment: every pattern node
  // contributes the chain of dictionary steps between its parent's path and
  // its own path (wildcard expansions and character chains materialize the
  // intermediate nodes). Chains are never shared between sibling branches.
  auto emit = [&]() {
    ConcreteQuery cq;
    std::vector<Node*> node_of(n, nullptr);
    auto attach_chain = [&](Node* from, PathId from_path,
                            PathId to_path) -> Node* {
      std::vector<PathId> chain;
      for (PathId p = to_path; p != from_path; p = dict.parent(p)) {
        chain.push_back(p);
      }
      Node* cur = from;
      for (size_t k = chain.size(); k-- > 0;) {
        Sym s = dict.sym(chain[k]);
        Node* nn = s.is_value() ? cq.tree.CreateValue(s.id())
                                : cq.tree.CreateElement(s.id());
        cq.paths.push_back(chain[k]);
        if (cur == nullptr) {
          cq.tree.SetRoot(nn);
        } else {
          cq.tree.AppendChild(cur, nn);
        }
        cur = nn;
      }
      return cur;
    };

    for (size_t i = 0; i < n; ++i) {
      Node* parent_node =
          flat.parent[i] == -1 ? nullptr
                               : node_of[static_cast<size_t>(flat.parent[i])];
      PathId parent_path =
          flat.parent[i] == -1
              ? kEpsilonPath
              : assignment[static_cast<size_t>(flat.parent[i])];
      node_of[i] = attach_chain(parent_node, parent_path, assignment[i]);
    }
    result.queries.push_back(std::move(cq));
  };

  // Pruning predicate wrapper: counts every candidate it rejects.
  auto viable = [&](PathId p) -> bool {
    if (!options.viable || options.viable(p)) return true;
    ++result.pruned;
    return false;
  };

  // Candidate enumeration per pattern node given the parent's path.
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (i == n) {
      if (result.queries.size() >= options.max_instantiations) {
        result.truncated = true;
        return false;  // stop enumeration
      }
      emit();
      return true;
    }
    const PatternNode& pn = *flat.nodes[i];
    PathId parent_path =
        flat.parent[i] == -1
            ? kEpsilonPath
            : assignment[static_cast<size_t>(flat.parent[i])];

    if (pn.axis == PatternNode::Axis::kChild) {
      switch (pn.test) {
        case PatternNode::Test::kWildcard: {
          for (PathId c = dict.FirstChild(parent_path); c != kInvalidPath;
               c = dict.NextSibling(c)) {
            if (!dict.sym(c).is_name()) continue;
            if (!viable(c)) continue;
            assignment[i] = c;
            if (!rec(i + 1)) return false;
          }
          return true;
        }
        case PatternNode::Test::kName: {
          PathId c = dict.Find(parent_path, Sym::ForName(want_name[i]));
          if (c == kInvalidPath || !viable(c)) return true;  // dead branch
          assignment[i] = c;
          return rec(i + 1);
        }
        case PatternNode::Test::kValue: {
          PathId c =
              chain_mode
                  ? WalkCharChain(dict, parent_path, pn.value,
                                  /*with_terminator=*/true)
                  : dict.Find(parent_path, Sym::ForValue(want_value[i]));
          if (c == kInvalidPath || !viable(c)) return true;  // dead branch
          assignment[i] = c;
          return rec(i + 1);
        }
        case PatternNode::Test::kValuePrefix: {
          if (chain_mode) {
            PathId c = WalkCharChain(dict, parent_path, pn.value,
                                     /*with_terminator=*/false);
            if (c == kInvalidPath || !viable(c)) return true;
            assignment[i] = c;
            return rec(i + 1);
          }
          for (ValueId v : prefix_values[i]) {
            PathId c = dict.Find(parent_path, Sym::ForValue(v));
            if (c == kInvalidPath || !viable(c)) continue;
            assignment[i] = c;
            if (!rec(i + 1)) return false;
          }
          return true;
        }
        case PatternNode::Test::kValueCompare:
          return true;  // rejected above; unreachable
      }
      return true;
    }

    // Descendant axis: every strict descendant of parent_path whose last
    // step satisfies the test. Iterative DFS over the dictionary trie.
    std::vector<PathId> stack;
    for (PathId c = dict.FirstChild(parent_path); c != kInvalidPath;
         c = dict.NextSibling(c)) {
      stack.push_back(c);
    }
    while (!stack.empty()) {
      PathId p = stack.back();
      stack.pop_back();
      for (PathId c = dict.FirstChild(p); c != kInvalidPath;
           c = dict.NextSibling(c)) {
        stack.push_back(c);
      }
      if (SymMatches(pn, dict.sym(p), want_name[i], want_value[i]) &&
          viable(p)) {
        assignment[i] = p;
        if (!rec(i + 1)) return false;
      }
    }
    return true;
  };

  rec(0);
  return result;
}

}  // namespace xseq
