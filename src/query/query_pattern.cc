#include "src/query/query_pattern.h"

#include <cctype>

namespace xseq {

namespace {

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

/// Recursive-descent parser over the XPath subset.
class Parser {
 public:
  explicit Parser(std::string_view s) : s_(s) {}

  StatusOr<QueryPattern> Parse() {
    QueryPattern q;
    q.source = std::string(s_);
    q.root = std::make_unique<PatternNode>();
    q.root->test = PatternNode::Test::kWildcard;  // virtual ε node

    SkipSpace();
    if (AtEnd()) return Error("empty query");
    XSEQ_RETURN_IF_ERROR(ParsePath(q.root.get()));
    SkipSpace();
    if (!AtEnd()) return Error("trailing characters");
    return q;
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  void SkipSpace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("XPath parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  /// Parses ('/' | '//') step (('/' | '//') step)* attached under `anchor`,
  /// following the chain: each step becomes a child of the previous one.
  /// Absolute and relative (predicate-internal) paths share this.
  Status ParsePath(PatternNode* anchor) {
    PatternNode* current = anchor;
    bool first = true;
    for (;;) {
      SkipSpace();
      PatternNode::Axis axis = PatternNode::Axis::kChild;
      if (Consume('/')) {
        if (Consume('/')) axis = PatternNode::Axis::kDescendant;
      } else if (!first) {
        break;  // end of path
      }
      // Tolerate "/[pred]" (e.g. the paper's "/book/[key='Maier']/author"):
      // a predicate right after a slash applies to the current node.
      SkipSpace();
      if (!AtEnd() && Peek() == '[') {
        if (current == anchor) return Error("predicate before any step");
        XSEQ_RETURN_IF_ERROR(ParsePredicates(current));
        first = false;
        continue;
      }
      auto step = ParseStep(axis);
      // A consumed '/' commits to a step: a failure here is the step's
      // error at its own offset, never a vague "trailing characters" later.
      if (!step.ok()) return step.status();
      PatternNode* raw = step->get();
      current->children.push_back(std::move(*step));
      current = raw;
      first = false;
      if (AtEnd() || Peek() != '/') {
        if (!AtEnd() && Peek() == '[') continue;  // already consumed in step
        break;
      }
    }
    return Status::OK();
  }

  /// Parses one step: nametest predicate*.
  StatusOr<std::unique_ptr<PatternNode>> ParseStep(PatternNode::Axis axis) {
    SkipSpace();
    auto node = std::make_unique<PatternNode>();
    node->axis = axis;
    if (Consume('*')) {
      node->test = PatternNode::Test::kWildcard;
    } else {
      Consume('@');  // attributes are ordinary children in our model
      if (AtEnd() || !IsNameChar(Peek())) return Error("expected a name");
      size_t start = pos_;
      while (!AtEnd() && IsNameChar(Peek())) ++pos_;
      node->test = PatternNode::Test::kName;
      node->name = std::string(s_.substr(start, pos_ - start));
    }
    XSEQ_RETURN_IF_ERROR(ParsePredicates(node.get()));
    return node;
  }

  /// Parses zero or more [...] predicates attached to `node`.
  Status ParsePredicates(PatternNode* node) {
    for (;;) {
      SkipSpace();
      if (AtEnd() || Peek() != '[') return Status::OK();
      const size_t open = pos_;
      ++pos_;  // '['
      XSEQ_RETURN_IF_ERROR(ParsePredicateBody(node));
      SkipSpace();
      if (!Consume(']')) {
        return Error("expected ']' closing the '[' at offset " +
                     std::to_string(open));
      }
    }
  }

  /// Predicate body: starts-with(path,'lit'), text()/text/. = literal, or
  /// a relative path with an optional = literal.
  Status ParsePredicateBody(PatternNode* node) {
    SkipSpace();
    if (s_.substr(pos_, 12) == "starts-with(") {
      pos_ += 12;
      return ParseStartsWith(node);
    }
    // text() = 'v'  |  text = 'v'  |  . = 'v'  | text() < 'v' | ...
    size_t save = pos_;
    if (TryConsumeTextSelector()) {
      SkipSpace();
      CompareOp op;
      if (Consume('=')) {
        XSEQ_RETURN_IF_ERROR(AttachValueTest(node, PatternNode::Test::kValue,
                                             CompareOp::kLt));
        return Status::OK();
      } else if (TryConsumeCompareOp(&op)) {
        XSEQ_RETURN_IF_ERROR(
            AttachValueTest(node, PatternNode::Test::kValueCompare, op));
        return Status::OK();
      } else {
        pos_ = save;  // "text" was an element name after all
      }
    }

    // Relative path: ('.' | step) (/step)* (= literal)?
    PatternNode* current = node;
    bool first = true;
    bool saw_dot = false;
    for (;;) {
      SkipSpace();
      PatternNode::Axis axis = PatternNode::Axis::kChild;
      if (Consume('/')) {
        if (Consume('/')) axis = PatternNode::Axis::kDescendant;
      } else if (first) {
        if (!AtEnd() && Peek() == '.') {
          ++pos_;  // "."; stay on the current node
          first = false;
          saw_dot = true;
          continue;
        }
        axis = PatternNode::Axis::kChild;
      } else {
        break;
      }
      auto step = ParseStep(axis);
      if (!step.ok()) return step.status();
      PatternNode* raw = step->get();
      current->children.push_back(std::move(*step));
      current = raw;
      first = false;
      if (AtEnd() || Peek() != '/') break;
    }

    SkipSpace();
    CompareOp op;
    if (Consume('=')) {
      if (current == node && !saw_dot) {
        return Error("'=' without a left-hand path");
      }
      XSEQ_RETURN_IF_ERROR(AttachValueTest(current, PatternNode::Test::kValue,
                                           CompareOp::kLt));
    } else if (TryConsumeCompareOp(&op)) {
      if (current == node && !saw_dot) {
        return Error("comparison without a left-hand path");
      }
      XSEQ_RETURN_IF_ERROR(
          AttachValueTest(current, PatternNode::Test::kValueCompare, op));
    }
    return Status::OK();
  }

  /// Parses a literal and attaches it to `host` as a value-test child
  /// (kValue or kValueCompare with `op`).
  Status AttachValueTest(PatternNode* host, PatternNode::Test test,
                         CompareOp op) {
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    auto v = std::make_unique<PatternNode>();
    v->axis = PatternNode::Axis::kChild;
    v->test = test;
    v->value = std::move(*lit);
    v->op = op;
    host->children.push_back(std::move(v));
    return Status::OK();
  }

  /// Consumes one of < <= > >= != when present. A lone '!' is an error (it
  /// cannot start anything else in this grammar).
  bool TryConsumeCompareOp(CompareOp* op) {
    if (AtEnd()) return false;
    switch (Peek()) {
      case '<':
        ++pos_;
        *op = Consume('=') ? CompareOp::kLe : CompareOp::kLt;
        return true;
      case '>':
        ++pos_;
        *op = Consume('=') ? CompareOp::kGe : CompareOp::kGt;
        return true;
      case '!':
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '=') {
          pos_ += 2;
          *op = CompareOp::kNe;
          return true;
        }
        return false;
      default:
        return false;
    }
  }

  /// Parses the remainder of starts-with(path, 'literal') — the opening
  /// keyword and parenthesis are already consumed. `path` may be '.' (the
  /// current node) or a child-axis relative path. The literal must be
  /// quoted.
  Status ParseStartsWith(PatternNode* node) {
    SkipSpace();
    PatternNode* current = node;
    if (!AtEnd() && Peek() == '.') {
      ++pos_;
    } else {
      for (;;) {
        auto step = ParseStep(PatternNode::Axis::kChild);
        if (!step.ok()) return step.status();
        PatternNode* raw = step->get();
        current->children.push_back(std::move(*step));
        current = raw;
        if (!Consume('/')) break;
      }
    }
    SkipSpace();
    if (!Consume(',')) return Error("expected ',' in starts-with()");
    SkipSpace();
    if (AtEnd() || (Peek() != '\'' && Peek() != '"')) {
      return Error("starts-with() requires a quoted literal");
    }
    auto lit = ParseLiteral();
    if (!lit.ok()) return lit.status();
    SkipSpace();
    if (!Consume(')')) return Error("expected ')' in starts-with()");
    auto v = std::make_unique<PatternNode>();
    v->axis = PatternNode::Axis::kChild;
    v->test = PatternNode::Test::kValuePrefix;
    v->value = std::move(*lit);
    current->children.push_back(std::move(v));
    return Status::OK();
  }

  /// Accepts "text()", "text" (only when followed by a comparison), or
  /// nothing.
  bool TryConsumeTextSelector() {
    size_t save = pos_;
    if (s_.substr(pos_, 6) == "text()") {
      pos_ += 6;
      return true;
    }
    if (s_.substr(pos_, 4) == "text") {
      pos_ += 4;
      size_t look = pos_;
      while (look < s_.size() &&
             std::isspace(static_cast<unsigned char>(s_[look]))) {
        ++look;
      }
      if (look < s_.size() &&
          (s_[look] == '=' || s_[look] == '<' || s_[look] == '>' ||
           (s_[look] == '!' && look + 1 < s_.size() &&
            s_[look + 1] == '='))) {
        return true;
      }
      pos_ = save;
    }
    return false;
  }

  /// 'literal', "literal", or a bare token up to ']'.
  StatusOr<std::string> ParseLiteral() {
    SkipSpace();
    if (AtEnd()) return Error("expected a literal");
    char q = Peek();
    if (q == '\'' || q == '"') {
      ++pos_;
      size_t start = pos_;
      while (!AtEnd() && Peek() != q) ++pos_;
      if (AtEnd()) return Error("unterminated literal");
      std::string out(s_.substr(start, pos_ - start));
      ++pos_;
      return out;
    }
    size_t start = pos_;
    while (!AtEnd() && Peek() != ']') ++pos_;
    size_t end = pos_;
    while (end > start &&
           std::isspace(static_cast<unsigned char>(s_[end - 1]))) {
      --end;
    }
    if (end == start) return Error("empty literal");
    return std::string(s_.substr(start, end - start));
  }

  std::string_view s_;
  size_t pos_ = 0;
};

void ToStringRec(const PatternNode* n, std::string* out) {
  *out += n->axis == PatternNode::Axis::kChild ? "/" : "//";
  switch (n->test) {
    case PatternNode::Test::kName:
      *out += n->name;
      break;
    case PatternNode::Test::kWildcard:
      *out += "*";
      break;
    case PatternNode::Test::kValue:
      *out += "text()='" + n->value + "'";
      break;
    case PatternNode::Test::kValuePrefix:
      *out += "starts-with(.,'" + n->value + "')";
      break;
    case PatternNode::Test::kValueCompare:
      *out += std::string("text()") + CompareOpName(n->op) + "'" + n->value +
              "'";
      break;
  }
  for (const auto& c : n->children) {
    *out += "[";
    // Render child paths as predicates for an unambiguous canonical form.
    std::string sub;
    ToStringRec(c.get(), &sub);
    *out += sub;
    *out += "]";
  }
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

StatusOr<QueryPattern> ParseXPath(std::string_view xpath) {
  return Parser(xpath).Parse();
}

std::string PatternToString(const QueryPattern& pattern) {
  std::string out;
  if (pattern.root == nullptr) return out;
  for (const auto& c : pattern.root->children) {
    ToStringRec(c.get(), &out);
  }
  return out;
}

}  // namespace xseq
