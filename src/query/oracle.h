// Ground-truth structure matcher.
//
// Decides, by direct backtracking on the document tree, whether a concrete
// query tree embeds into a document: an injective-per-sibling-group mapping
// that preserves labels and parent-child edges. This is the definition the
// index-based constraint matcher must agree with exactly (Theorem 2), and
// the reference the ViST-like baseline uses for its per-document
// verification pass. Exponential in the worst case — it is a test oracle
// and a verification fallback, not an index.

#ifndef XSEQ_SRC_QUERY_ORACLE_H_
#define XSEQ_SRC_QUERY_ORACLE_H_

#include <vector>

#include "src/query/instantiate.h"
#include "src/xml/tree.h"

namespace xseq {

/// True iff `query` embeds into `data` (labels + parent-child edges,
/// injective within each sibling group).
bool OracleContains(const Document& data, const ConcreteQuery& query);

/// Convenience: ids of all documents in `docs` containing `query`.
std::vector<DocId> OracleScan(const std::vector<Document>& docs,
                              const ConcreteQuery& query);

}  // namespace xseq

#endif  // XSEQ_SRC_QUERY_ORACLE_H_
