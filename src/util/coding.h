// Binary encoding helpers for index persistence (RocksDB-style).
//
// Fixed-width little-endian integers and length-prefixed strings, written
// into a std::string buffer and read back through a bounds-checked Slice
// reader that surfaces corruption as Status instead of UB.

#ifndef XSEQ_SRC_UTIL_CODING_H_
#define XSEQ_SRC_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"

namespace xseq {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

inline void PutString(std::string* dst, std::string_view s) {
  PutFixed64(dst, s.size());
  dst->append(s.data(), s.size());
}

template <typename T>
void PutPodVector(std::string* dst, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  PutFixed64(dst, v.size());
  dst->append(reinterpret_cast<const char*>(v.data()),
              v.size() * sizeof(T));
}

/// Bounds-checked sequential reader.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetFixed32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return Truncated();
    const unsigned char* p =
        reinterpret_cast<const unsigned char*>(data_.data() + pos_);
    *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    pos_ += 4;
    return Status::OK();
  }

  Status GetFixed64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    XSEQ_RETURN_IF_ERROR(GetFixed32(&lo));
    XSEQ_RETURN_IF_ERROR(GetFixed32(&hi));
    *v = (static_cast<uint64_t>(hi) << 32) | lo;
    return Status::OK();
  }

  Status GetDouble(double* v) {
    uint64_t bits;
    XSEQ_RETURN_IF_ERROR(GetFixed64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status GetString(std::string* s) {
    uint64_t n;
    XSEQ_RETURN_IF_ERROR(GetFixed64(&n));
    if (data_.size() - pos_ < n) return Truncated();
    s->assign(data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  template <typename T>
  Status GetPodVector(std::vector<T>* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t n;
    XSEQ_RETURN_IF_ERROR(GetFixed64(&n));
    if (n > (data_.size() - pos_) / sizeof(T)) return Truncated();
    v->resize(n);
    std::memcpy(v->data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return Status::OK();
  }

  /// Yields a view of the next `n` raw bytes without copying.
  Status GetRaw(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return Truncated();
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Truncated() const {
    return Status::Corruption("truncated input at offset " +
                              std::to_string(pos_));
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_CODING_H_
