// Deterministic pseudo-random number generation for generators, sequencers
// and benchmarks.
//
// All randomized components of xseq take an explicit Rng (or a seed) so that
// datasets, workloads and test cases are exactly reproducible across runs and
// platforms. The core generator is PCG32 (O'Neill, 2014): small state, good
// statistical quality, and a stable cross-platform output stream.

#ifndef XSEQ_SRC_UTIL_RNG_H_
#define XSEQ_SRC_UTIL_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xseq {

/// PCG32 pseudo-random generator. Deterministic for a given (seed, stream).
class Rng {
 public:
  /// Creates a generator. Distinct `stream` values yield independent
  /// sequences for the same seed.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    Next32();
    state_ += seed;
    Next32();
  }

  /// Uniform 32-bit value.
  uint32_t Next32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted =
        static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  uint64_t Next64() {
    return (static_cast<uint64_t>(Next32()) << 32) | Next32();
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire-style rejection to avoid modulo bias.
  uint32_t Uniform(uint32_t bound) {
    assert(bound > 0);
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = Next32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint32_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with exponent `s`. Approximate
  /// (rejection-free inverse-CDF over precomputable harmonic weights is the
  /// caller's job for hot paths); suitable for workload generation.
  uint32_t Zipf(uint32_t n, double s);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(static_cast<uint32_t>(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_RNG_H_
