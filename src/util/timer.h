// Lightweight wall-clock timing for benchmarks and query statistics.

#ifndef XSEQ_SRC_UTIL_TIMER_H_
#define XSEQ_SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace xseq {

/// Monotonic wall-clock stopwatch. Started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

  /// Elapsed time in seconds (fractional).
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_TIMER_H_
