// Hashing helpers.
//
// FNV-1a is used for hashed attribute-value designators (the paper's
// "v_i = h('boston')" option) because its output stream is stable across
// platforms and standard-library versions, keeping datasets and golden test
// expectations reproducible.

#ifndef XSEQ_SRC_UTIL_HASH_H_
#define XSEQ_SRC_UTIL_HASH_H_

#include <cstdint>
#include <string_view>

namespace xseq {

/// 64-bit FNV-1a over the bytes of `s`.
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Stable hash of `s` reduced into [0, range). Precondition: range > 0.
inline uint32_t HashToRange(std::string_view s, uint32_t range) {
  return static_cast<uint32_t>(Fnv1a64(s) % range);
}

/// Combines two hash values (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_HASH_H_
