#include "src/util/rng.h"

#include <cmath>

namespace xseq {

uint32_t Rng::Zipf(uint32_t n, double s) {
  assert(n > 0);
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger) simplified for
  // workload generation. Deterministic given the generator state.
  double u = NextDouble();
  // Invert an approximate CDF: P(rank <= k) ~ H(k+1)/H(n) with
  // H(x) ~ x^(1-s)/(1-s) for s != 1, ln(x) for s == 1.
  if (std::fabs(s - 1.0) < 1e-9) {
    double hn = std::log(static_cast<double>(n) + 1.0);
    double k = std::exp(u * hn) - 1.0;
    uint32_t r = static_cast<uint32_t>(k);
    return r >= n ? n - 1 : r;
  }
  double e = 1.0 - s;
  double hn = (std::pow(static_cast<double>(n) + 1.0, e) - 1.0) / e;
  double k = std::pow(u * hn * e + 1.0, 1.0 / e) - 1.0;
  uint32_t r = static_cast<uint32_t>(k);
  return r >= n ? n - 1 : r;
}

}  // namespace xseq
