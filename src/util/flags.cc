#include "src/util/flags.h"

#include <cstdlib>
#include <string_view>

namespace xseq {

FlagSet::FlagSet(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq == std::string_view::npos) {
      values_[std::string(arg)] = "";
    } else {
      values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    }
  }
}

bool FlagSet::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagSet::GetString(const std::string& name,
                               std::string def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t FlagSet::GetInt(const std::string& name, int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double FlagSet::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool FlagSet::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace xseq
