// Env: the process's window onto the outside world (filesystem, clock).
//
// All durable-storage code goes through an Env instead of calling the OS
// directly, in the style of LevelDB/RocksDB. This buys two things:
//
//  * a single place where every syscall failure is turned into a
//    Status::IOError carrying strerror(errno), and
//  * substitutable implementations — PosixEnv for production and
//    FaultInjectionEnv for tests, which deterministically injects short
//    writes, failed fsyncs, torn renames, read errors, and bit flips at
//    scheduled operation counts so crash-safety can be proven by sweeping
//    a fault over every I/O operation of a save.
//
// Errors are reported as StatusCode::kIOError (possibly transient; callers
// may retry) except for open-of-missing-file, which is kNotFound.

#ifndef XSEQ_SRC_UTIL_ENV_H_
#define XSEQ_SRC_UTIL_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "src/util/status.h"

namespace xseq {

/// A file being written sequentially. Not thread-safe.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the current end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces written data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the file. Idempotent; the destructor closes if needed but
  /// swallows errors, so callers that care must Close() explicitly.
  virtual Status Close() = 0;
};

/// A read-only file supporting positional reads. Thread-safe.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes starting at `offset` into `*out` (replacing its
  /// contents). Reading at or past EOF yields an empty string, not an error.
  virtual Status Read(uint64_t offset, size_t n, std::string* out) const = 0;

  /// The current size of the file in bytes.
  virtual StatusOr<uint64_t> Size() const = 0;
};

/// Operating-system services used by storage code.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Creates (or truncates) `path` for writing.
  virtual StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Opens `path` for positional reads. kNotFound if it does not exist.
  virtual StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Reads the entire file at `path` into `*out`.
  virtual Status ReadFileToString(const std::string& path, std::string* out);

  virtual bool FileExists(const std::string& path) = 0;

  /// Atomically renames `from` to `to`, replacing `to` if it exists.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Deletes `path`. Removing a missing file is kNotFound.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// fsyncs the directory `dir` so that entry creations/renames inside it
  /// survive a crash.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Monotonic-enough clock for backoff bookkeeping.
  virtual uint64_t NowMicros() = 0;

  /// Blocks the calling thread. Test Envs record instead of sleeping, so
  /// retry backoff is testable without wall-clock delays.
  virtual void SleepForMicroseconds(uint64_t micros) = 0;
};

/// The directory part of `path` ("." when there is no slash).
std::string DirName(const std::string& path);

/// Durably replaces the contents of `path` with `data`: writes
/// `<path>.tmp`, fsyncs it, atomically renames it over `path`, and fsyncs
/// the directory. On failure the previous contents of `path` (if any) are
/// untouched and the temp file is removed best-effort. This is the one
/// write protocol every persisted artifact uses.
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view data);

/// An Env that forwards to a base Env but fails chosen operations, for
/// crash-safety and error-path tests.
///
/// Every mutating filesystem call (open-for-write, append, sync, close,
/// rename, remove, sync-dir) increments a shared operation counter; the
/// value of the counter *before* the call is its operation index. Faults
/// are scheduled at indices: when a scheduled index comes up, that
/// operation fails in a kind-appropriate way:
///
///   append    -> short write: only the first half of the bytes reach the
///                base file, then kIOError
///   sync      -> kIOError without syncing
///   close     -> the data is flushed (close(2) semantics) but kIOError is
///                returned
///   rename    -> torn rename: the source file is destroyed, the
///                destination is left untouched, kIOError
///   open/remove/sync-dir -> kIOError, no effect
///
/// Reads have a separate counter and schedule, since load paths interleave
/// with writes differently: a scheduled read fault either fails the read
/// (kReadError) or silently flips one deterministic bit (kBitFlip).
///
/// Faults are one-shot: once fired, the schedule entry is consumed, so a
/// retry of the failed operation succeeds. Everything is deterministic —
/// the same schedule against the same call sequence fails the same call.
/// SleepForMicroseconds records instead of sleeping.
class FaultInjectionEnv : public Env {
 public:
  enum class ReadFaultKind {
    kReadError,  ///< the read call fails with kIOError
    kBitFlip,    ///< the read succeeds but one bit is flipped
  };

  explicit FaultInjectionEnv(Env* base, uint64_t seed = 0);

  /// Schedules the write-side operation with index `op_index` to fail.
  void FailOperation(uint64_t op_index);

  /// Schedules the `read_index`-th read to misbehave.
  void FailRead(uint64_t read_index, ReadFaultKind kind);

  /// Removes all scheduled faults.
  void ClearFaults();

  /// Write-side operations seen so far. Running a workload once against a
  /// fault-free FaultInjectionEnv measures how many indices a sweep must
  /// cover.
  uint64_t ops_seen() const { return ops_seen_; }
  uint64_t reads_seen() const { return reads_seen_; }

  /// Total time "slept" through SleepForMicroseconds.
  uint64_t slept_micros() const { return slept_micros_; }

  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  uint64_t NowMicros() override;
  void SleepForMicroseconds(uint64_t micros) override;

 private:
  friend class FaultInjectionWritableFile;
  friend class FaultInjectionRandomAccessFile;

  /// Claims the next write-side operation index; true if it must fail.
  bool NextOpShouldFail();
  /// Claims the next read index; true if it must fail, with the kind.
  bool NextReadShouldFail(ReadFaultKind* kind);
  /// Deterministic position for bit flips, derived from the seed and the
  /// read index that faulted.
  uint64_t FlipPoint(uint64_t span);

  Env* const base_;
  const uint64_t seed_;
  uint64_t ops_seen_ = 0;
  uint64_t reads_seen_ = 0;
  uint64_t slept_micros_ = 0;
  std::map<uint64_t, bool> fail_ops_;  // op index -> pending
  std::map<uint64_t, ReadFaultKind> fail_reads_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_ENV_H_
