// String interning: maps strings to dense uint32 ids and back.
//
// Used for designators (element/attribute names) and for exact-mode
// attribute values. Ids are assigned in first-seen order starting at 0,
// which keeps them dense and suitable for direct array indexing.

#ifndef XSEQ_SRC_UTIL_INTERNER_H_
#define XSEQ_SRC_UTIL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/coding.h"

namespace xseq {

/// Bidirectional string <-> dense id map.
class Interner {
 public:
  static constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

  /// Returns the id for `s`, assigning a new one on first sight.
  uint32_t Intern(std::string_view s) {
    auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(s);
    // Key must point at the stable stored string, not the argument.
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id for `s` or kInvalidId if it was never interned.
  uint32_t Find(std::string_view s) const {
    auto it = ids_.find(s);
    return it == ids_.end() ? kInvalidId : it->second;
  }

  /// Precondition: id < size().
  const std::string& Lookup(uint32_t id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

  /// Appends all strings in id order.
  void EncodeTo(std::string* dst) const {
    PutFixed64(dst, strings_.size());
    for (const std::string& s : strings_) PutString(dst, s);
  }

  /// Re-interns strings written by EncodeTo (identical ids).
  static StatusOr<Interner> DecodeFrom(Decoder* in) {
    Interner out;
    uint64_t n;
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&n));
    std::string s;
    for (uint64_t i = 0; i < n; ++i) {
      XSEQ_RETURN_IF_ERROR(in->GetString(&s));
      out.Intern(s);
    }
    return out;
  }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>()(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  // The map owns std::string copies of the keys, so growth of strings_
  // cannot invalidate them.
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t, Hash, Eq> ids_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_INTERNER_H_
