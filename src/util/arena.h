// Arena allocator for document trees.
//
// XML document trees allocate many small Node objects with identical
// lifetime (the whole document). An arena turns those into pointer bumps
// and frees them all at once, which matters when generating and indexing
// millions of synthetic documents.

#ifndef XSEQ_SRC_UTIL_ARENA_H_
#define XSEQ_SRC_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace xseq {

/// Bump allocator. Memory is released when the arena is destroyed; objects
/// allocated with New<T> must be trivially destructible (their destructors
/// are never run).
class Arena {
 public:
  /// `block_size` is the *initial* block size; blocks grow geometrically to
  /// 64 KiB so small documents (millions of them in the benchmarks) stay
  /// cheap while large ones don't thrash the allocator.
  explicit Arena(size_t block_size = 1024) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `bytes` with the given alignment (power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t pos = (pos_ + align - 1) & ~(align - 1);
    if (pos + bytes > cap_) {
      AddBlock(bytes + align);
      pos = (pos_ + align - 1) & ~(align - 1);
    }
    void* p = cur_ + pos;
    pos_ = pos + bytes;
    return p;
  }

  /// Constructs a T in the arena. T must be trivially destructible.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Copies `len` bytes into the arena and returns the stable pointer.
  char* CopyString(const char* data, size_t len) {
    char* p = static_cast<char*>(Allocate(len + 1, 1));
    for (size_t i = 0; i < len; ++i) p[i] = data[i];
    p[len] = '\0';
    return p;
  }

  /// Total bytes reserved from the system.
  size_t BytesReserved() const { return bytes_reserved_; }

 private:
  void AddBlock(size_t min_bytes) {
    size_t sz = min_bytes > block_size_ ? min_bytes : block_size_;
    if (block_size_ < 64 * 1024) block_size_ *= 2;
    blocks_.push_back(std::make_unique<char[]>(sz));
    cur_ = blocks_.back().get();
    cap_ = sz;
    pos_ = 0;
    bytes_reserved_ += sz;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  size_t cap_ = 0;
  size_t pos_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_ARENA_H_
