// Status / StatusOr: error handling without exceptions across the public API.
//
// Modeled on the conventions used by RocksDB and Abseil: functions that can
// fail return a Status (or a StatusOr<T> when they also produce a value).
// Statuses are cheap to copy in the OK case (no allocation).

#ifndef XSEQ_SRC_UTIL_STATUS_H_
#define XSEQ_SRC_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace xseq {

/// Broad category of a failure. Kept intentionally small; detail goes in the
/// message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< a looked-up entity does not exist
  kCorruption,        ///< stored/serialized data failed validation
  kOutOfRange,        ///< index / position outside the valid range
  kFailedPrecondition,///< object not in the required state for the call
  kUnimplemented,     ///< feature intentionally not supported
  kResourceExhausted, ///< a configured limit was exceeded
  kInternal,          ///< invariant violation; indicates a bug in xseq
  kIOError,           ///< the environment failed (disk, filesystem); possibly
                      ///< transient and safe to retry, unlike kCorruption
  kDeadlineExceeded,  ///< the request's time budget ran out mid-flight
  kOverloaded,        ///< load shed: the serving queue is full; retry later
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail. An OK status carries no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const {
    return code() == StatusCode::kUnimplemented;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code() == StatusCode::kOverloaded; }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

  /// Same code as `st` with `context` prefixed onto the message ("context:
  /// original message"). OK passes through untouched. The way layered
  /// operations (per-shard IO, validation pipelines) name the culprit
  /// without flattening every error into one code.
  friend Status AnnotateStatus(const Status& st, const std::string& context);

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<Rep> rep_;  // null <=> OK
};

inline Status AnnotateStatus(const Status& st, const std::string& context) {
  if (st.ok()) return st;
  return Status(st.code(), context + ": " + st.message());
}

/// Either a value of type T or an error Status. Never holds an OK status
/// without a value.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value (the common return path).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status. Must not be OK.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr constructed from an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

/// Propagates a non-OK status to the caller.
#define XSEQ_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::xseq::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_STATUS_H_
