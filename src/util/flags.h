// Minimal command-line flag parsing for the benchmark harnesses.
//
// Supports --name=value and boolean --name. No registry, no globals: each
// harness constructs a FlagSet from argv and queries it.

#ifndef XSEQ_SRC_UTIL_FLAGS_H_
#define XSEQ_SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

namespace xseq {

/// Parsed --key=value / --key command-line flags.
class FlagSet {
 public:
  FlagSet(int argc, char** argv);

  /// True if --name or --name=... was present.
  bool Has(const std::string& name) const;

  /// String value of --name=... or `def` when absent.
  std::string GetString(const std::string& name, std::string def) const;

  /// Integer value of --name=... or `def` when absent or unparsable.
  int64_t GetInt(const std::string& name, int64_t def) const;

  /// Double value of --name=... or `def` when absent or unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean: present without value => true; "true"/"1" => true.
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::unordered_map<std::string, std::string> values_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_FLAGS_H_
