// Shared execution layer: a fixed-width, lazily-started thread pool.
//
// Width resolution (ResolveThreadCount): an explicit count > 0 wins; 0
// consults the XSEQ_THREADS environment variable, then
// std::thread::hardware_concurrency(). Width 1 never spawns a thread —
// Submit() and ParallelFor() run inline on the caller, which is the
// bit-exact serial path the rest of the system is specified against.
//
// ParallelFor uses a shared atomic cursor (dynamic scheduling) and the
// caller always participates, so the calling thread alone can drain its own
// loop even when every worker is busy. That makes nested ParallelFor calls
// and ParallelFor-from-a-worker deadlock-free by construction: waiting is
// only ever for iterations that are actively executing on some thread.
//
// DefaultPool() is the process-wide pool for callers that pass `threads=0`;
// its width is resolved once, on first use.

#ifndef XSEQ_SRC_UTIL_THREAD_POOL_H_
#define XSEQ_SRC_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace xseq {

namespace internal {

/// Registry handles for the pool metrics (shared by every ThreadPool in the
/// process, the DefaultPool included), resolved once.
struct PoolMetricSet {
  obs::Counter* tasks;
  obs::Histogram* task_us;
  obs::Gauge* queue_depth;
};

inline const PoolMetricSet& PoolMetrics() {
  static const PoolMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return PoolMetricSet{r->GetCounter("xseq.pool.tasks"),
                         r->GetHistogram("xseq.pool.task_us"),
                         r->GetGauge("xseq.pool.queue_depth")};
  }();
  return s;
}

}  // namespace internal

/// Resolves a requested thread count to an effective pool width (>= 1):
/// `requested > 0` is taken as-is; 0 means "auto" — the XSEQ_THREADS
/// environment variable if set and positive, else hardware concurrency.
inline int ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("XSEQ_THREADS")) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Fixed-width thread pool. Width 1 degrades to inline serial execution.
class ThreadPool {
 public:
  explicit ThreadPool(int threads = 0) : width_(ResolveThreadCount(threads)) {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Effective width (>= 1). A width-1 pool is the serial path.
  int width() const { return width_; }

  /// Enqueues `fn` for a worker thread; runs it inline when the pool is
  /// serial. Fire-and-forget: completion is the caller's bookkeeping.
  void Submit(std::function<void()> fn) {
    if (width_ <= 1) {
      // Inline execution still counts as one pool task, so serial
      // configurations (one-core hosts) surface the same counters.
      if (obs::MetricsEnabled()) {
        Timer t;
        fn();
        const internal::PoolMetricSet& m = internal::PoolMetrics();
        m.tasks->Increment();
        m.task_us->Record(static_cast<uint64_t>(t.ElapsedMicros()));
      } else {
        fn();
      }
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureStartedLocked();
      queue_.push_back(std::move(fn));
      if (obs::MetricsEnabled()) {
        internal::PoolMetrics().queue_depth->Set(queue_.size());
      }
    }
    cv_.notify_one();
  }

  /// Runs fn(i) for every i in [0, n), distributing iterations over the
  /// pool. The caller participates and the call returns only after every
  /// iteration has finished. Iterations must not touch shared mutable state
  /// without their own synchronization; writes to distinct slots of a
  /// pre-sized array are the intended merge pattern.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    if (width_ <= 1 || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct State {
      std::atomic<size_t> next{0};
      std::atomic<size_t> done{0};
      size_t n = 0;
      std::mutex mu;
      std::condition_variable cv;
    };
    auto st = std::make_shared<State>();
    st->n = n;
    // Helpers hold the state alive; `fn` is only dereferenced after winning
    // an iteration, so a straggler task that runs after this call returned
    // exits without touching it.
    auto run = [st, &fn]() {
      size_t i;
      while ((i = st->next.fetch_add(1)) < st->n) {
        fn(i);
        if (st->done.fetch_add(1) + 1 == st->n) {
          std::lock_guard<std::mutex> lock(st->mu);
          st->cv.notify_all();
        }
      }
    };
    size_t helpers = std::min<size_t>(static_cast<size_t>(width_) - 1, n - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      EnsureStartedLocked();
      for (size_t h = 0; h < helpers; ++h) queue_.push_back(run);
      if (obs::MetricsEnabled()) {
        internal::PoolMetrics().queue_depth->Set(queue_.size());
      }
    }
    cv_.notify_all();
    run();
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() == st->n; });
  }

 private:
  void EnsureStartedLocked() {
    if (!workers_.empty()) return;
    int spawn = width_ - 1;
    workers_.reserve(static_cast<size_t>(spawn));
    for (int i = 0; i < spawn; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and nothing left to drain
        task = std::move(queue_.front());
        queue_.pop_front();
        if (obs::MetricsEnabled()) {
          internal::PoolMetrics().queue_depth->Set(queue_.size());
        }
      }
      if (obs::MetricsEnabled()) {
        Timer t;
        task();
        const internal::PoolMetricSet& m = internal::PoolMetrics();
        m.tasks->Increment();
        m.task_us->Record(static_cast<uint64_t>(t.ElapsedMicros()));
      } else {
        task();
      }
    }
  }

  const int width_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// The process-wide pool used when a caller passes `threads = 0`. Width is
/// ResolveThreadCount(0); workers start on first parallel use.
inline ThreadPool* DefaultPool() {
  static ThreadPool pool(0);
  return &pool;
}

/// Sorts `v` with `cmp` using `pool`: equal chunks are sorted in parallel,
/// then merged pairwise. Falls back to std::sort for serial pools or small
/// inputs. The comparator must be a strict weak order; the result is the
/// same permutation class std::sort produces (ties between equivalent
/// elements may land in either order, exactly as with std::sort).
template <typename T, typename Cmp>
void ParallelSort(ThreadPool* pool, std::vector<T>* v, Cmp cmp) {
  const size_t n = v->size();
  const size_t width =
      pool == nullptr ? 1 : static_cast<size_t>(pool->width());
  if (width <= 1 || n < 2048) {
    std::sort(v->begin(), v->end(), cmp);
    return;
  }
  const size_t chunks = std::min(width, (n + 2047) / 2048);
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  pool->ParallelFor(chunks, [&](size_t c) {
    std::sort(v->begin() + static_cast<ptrdiff_t>(bounds[c]),
              v->begin() + static_cast<ptrdiff_t>(bounds[c + 1]), cmp);
  });
  for (size_t step = 1; step < chunks; step *= 2) {
    const size_t pairs = (chunks + 2 * step - 1) / (2 * step);
    pool->ParallelFor(pairs, [&](size_t p) {
      size_t lo = 2 * step * p;
      size_t mid = lo + step;
      if (mid >= chunks) return;
      size_t hi = std::min(lo + 2 * step, chunks);
      std::inplace_merge(v->begin() + static_cast<ptrdiff_t>(bounds[lo]),
                         v->begin() + static_cast<ptrdiff_t>(bounds[mid]),
                         v->begin() + static_cast<ptrdiff_t>(bounds[hi]),
                         cmp);
    });
  }
}

}  // namespace xseq

#endif  // XSEQ_SRC_UTIL_THREAD_POOL_H_
