#include "src/util/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/timer.h"

namespace xseq {

namespace {

Status PosixError(const std::string& context, int err) {
  std::string msg = context + ": " + std::strerror(err);
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::IOError(std::move(msg));
}

/// Registry handles for the I/O metrics of the default (posix) Env,
/// resolved once. FaultInjectionEnv delegates here, plus its own
/// injected-fault counter below.
struct EnvMetricSet {
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* fsyncs;
  obs::Counter* read_bytes;
  obs::Counter* write_bytes;
  obs::Histogram* read_us;
  obs::Histogram* write_us;
  obs::Histogram* fsync_us;
};

const EnvMetricSet& EnvMetrics() {
  static const EnvMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return EnvMetricSet{r->GetCounter("xseq.env.reads"),
                        r->GetCounter("xseq.env.writes"),
                        r->GetCounter("xseq.env.fsyncs"),
                        r->GetCounter("xseq.env.read_bytes"),
                        r->GetCounter("xseq.env.write_bytes"),
                        r->GetHistogram("xseq.env.read_us"),
                        r->GetHistogram("xseq.env.write_us"),
                        r->GetHistogram("xseq.env.fsync_us")};
  }();
  return s;
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const bool metrics = obs::MetricsEnabled();
    Timer t;
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return PosixError("write " + path_, errno);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (metrics) {
      const EnvMetricSet& m = EnvMetrics();
      m.writes->Increment();
      m.write_bytes->Add(data.size());
      m.write_us->Record(static_cast<uint64_t>(t.ElapsedMicros()));
    }
    return Status::OK();
  }

  Status Sync() override {
    const bool metrics = obs::MetricsEnabled();
    Timer t;
    if (::fsync(fd_) != 0) return PosixError("fsync " + path_, errno);
    if (metrics) {
      const EnvMetricSet& m = EnvMetrics();
      m.fsyncs->Increment();
      m.fsync_us->Record(static_cast<uint64_t>(t.ElapsedMicros()));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return PosixError("close " + path_, errno);
    return Status::OK();
  }

 private:
  int fd_;
  const std::string path_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    const bool metrics = obs::MetricsEnabled();
    Timer t;
    out->clear();
    out->resize(n);
    size_t got = 0;
    while (got < n) {
      ssize_t r = ::pread(fd_, out->data() + got, n - got,
                          static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        out->clear();
        return PosixError("read " + path_, errno);
      }
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    out->resize(got);
    if (metrics) {
      const EnvMetricSet& m = EnvMetrics();
      m.reads->Increment();
      m.read_bytes->Add(got);
      m.read_us->Record(static_cast<uint64_t>(t.ElapsedMicros()));
    }
    return Status::OK();
  }

  StatusOr<uint64_t> Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return PosixError("stat " + path_, errno);
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  const int fd_;
  const std::string path_;
};

class PosixEnv final : public Env {
 public:
  StatusOr<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return PosixError("open for writing " + path, errno);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  StatusOr<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return PosixError("open " + path, errno);
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(fd, path));
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename " + from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return PosixError("remove " + path, errno);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return PosixError("open dir " + dir, errno);
    Status st;
    if (::fsync(fd) != 0) st = PosixError("fsync dir " + dir, errno);
    ::close(fd);
    return st;
  }

  uint64_t NowMicros() override {
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000 +
           static_cast<uint64_t>(ts.tv_nsec) / 1000;
  }

  void SleepForMicroseconds(uint64_t micros) override {
    struct timespec ts;
    ts.tv_sec = static_cast<time_t>(micros / 1000000);
    ts.tv_nsec = static_cast<long>((micros % 1000000) * 1000);
    ::nanosleep(&ts, nullptr);
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv;  // leaked: process-lifetime singleton
  return env;
}

Status Env::ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  auto file = NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  auto size = (*file)->Size();
  if (!size.ok()) return size.status();
  XSEQ_RETURN_IF_ERROR((*file)->Read(0, *size, out));
  if (out->size() != *size) {
    return Status::IOError("short read of " + path + ": got " +
                           std::to_string(out->size()) + " of " +
                           std::to_string(*size) + " bytes");
  }
  return Status::OK();
}

std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view data) {
  const std::string tmp = path + ".tmp";
  auto file = env->NewWritableFile(tmp);
  if (!file.ok()) return file.status();
  Status st = (*file)->Append(data);
  if (st.ok()) st = (*file)->Sync();
  Status close_st = (*file)->Close();
  if (st.ok()) st = close_st;
  if (st.ok()) st = env->RenameFile(tmp, path);
  if (!st.ok()) {
    Status cleanup = env->RemoveFile(tmp);
    (void)cleanup;  // the temp may already be gone (e.g. a torn rename)
    return st;
  }
  // The rename is only durable once the directory entry is synced.
  return env->SyncDir(DirName(path));
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Status Injected(const std::string& what) {
  if (obs::MetricsEnabled()) {
    static obs::Counter* const faults =
        obs::MetricsRegistry::Default()->GetCounter(
            "xseq.env.injected_faults");
    faults->Increment();
  }
  return Status::IOError("injected fault: " + what);
}

}  // namespace

/// Counts Append/Sync/Close against the shared op schedule and applies the
/// kind-appropriate failure.
class FaultInjectionWritableFile final : public WritableFile {
 public:
  FaultInjectionWritableFile(std::unique_ptr<WritableFile> base,
                             std::string path, FaultInjectionEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Append(std::string_view data) override {
    if (env_->NextOpShouldFail()) {
      // Short write: half the bytes land, then the device "fails".
      Status ignored = base_->Append(data.substr(0, data.size() / 2));
      (void)ignored;
      return Injected("short write to " + path_);
    }
    return base_->Append(data);
  }

  Status Sync() override {
    if (env_->NextOpShouldFail()) {
      return Injected("fsync " + path_);
    }
    return base_->Sync();
  }

  Status Close() override {
    if (env_->NextOpShouldFail()) {
      Status ignored = base_->Close();  // fd is gone either way
      (void)ignored;
      return Injected("close " + path_);
    }
    return base_->Close();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  const std::string path_;
  FaultInjectionEnv* const env_;
};

/// Counts Read calls against the read schedule; fails them or flips a bit.
class FaultInjectionRandomAccessFile final : public RandomAccessFile {
 public:
  FaultInjectionRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                                 std::string path, FaultInjectionEnv* env)
      : base_(std::move(base)), path_(std::move(path)), env_(env) {}

  Status Read(uint64_t offset, size_t n, std::string* out) const override {
    FaultInjectionEnv::ReadFaultKind kind;
    if (env_->NextReadShouldFail(&kind)) {
      if (kind == FaultInjectionEnv::ReadFaultKind::kReadError) {
        out->clear();
        return Injected("read " + path_);
      }
      XSEQ_RETURN_IF_ERROR(base_->Read(offset, n, out));
      if (!out->empty()) {
        uint64_t point = env_->FlipPoint(out->size() * 8);
        (*out)[point / 8] ^= static_cast<char>(1u << (point % 8));
      }
      return Status::OK();
    }
    return base_->Read(offset, n, out);
  }

  StatusOr<uint64_t> Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  const std::string path_;
  FaultInjectionEnv* const env_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), seed_(seed) {}

void FaultInjectionEnv::FailOperation(uint64_t op_index) {
  fail_ops_[op_index] = true;
}

void FaultInjectionEnv::FailRead(uint64_t read_index, ReadFaultKind kind) {
  fail_reads_[read_index] = kind;
}

void FaultInjectionEnv::ClearFaults() {
  fail_ops_.clear();
  fail_reads_.clear();
}

bool FaultInjectionEnv::NextOpShouldFail() {
  uint64_t index = ops_seen_++;
  auto it = fail_ops_.find(index);
  if (it == fail_ops_.end()) return false;
  fail_ops_.erase(it);  // one-shot: a retry of this operation succeeds
  return true;
}

bool FaultInjectionEnv::NextReadShouldFail(ReadFaultKind* kind) {
  uint64_t index = reads_seen_++;
  auto it = fail_reads_.find(index);
  if (it == fail_reads_.end()) return false;
  *kind = it->second;
  fail_reads_.erase(it);
  return true;
}

uint64_t FaultInjectionEnv::FlipPoint(uint64_t span) {
  return span == 0 ? 0 : SplitMix64(seed_ ^ (reads_seen_ * 0x51ull)) % span;
}

StatusOr<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path) {
  if (NextOpShouldFail()) return Injected("open for writing " + path);
  auto base = base_->NewWritableFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(new FaultInjectionWritableFile(
      std::move(*base), path, this));
}

StatusOr<std::unique_ptr<RandomAccessFile>>
FaultInjectionEnv::NewRandomAccessFile(const std::string& path) {
  auto base = base_->NewRandomAccessFile(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<RandomAccessFile>(new FaultInjectionRandomAccessFile(
      std::move(*base), path, this));
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (NextOpShouldFail()) {
    // Torn rename: the crash hits after the source entry is unlinked but
    // before the destination entry is durable — the worst honest outcome
    // rename(2) can leave behind. The destination is never half-written.
    Status ignored = base_->RemoveFile(from);
    (void)ignored;
    return Injected("rename " + from + " -> " + to);
  }
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (NextOpShouldFail()) return Injected("remove " + path);
  return base_->RemoveFile(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& dir) {
  if (NextOpShouldFail()) return Injected("fsync dir " + dir);
  return base_->SyncDir(dir);
}

uint64_t FaultInjectionEnv::NowMicros() { return base_->NowMicros(); }

void FaultInjectionEnv::SleepForMicroseconds(uint64_t micros) {
  slept_micros_ += micros;  // recorded, not slept: tests stay fast
}

}  // namespace xseq
