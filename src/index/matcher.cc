#include "src/index/matcher.h"

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Accessor over the in-memory FrozenIndex. Link probes read the fused
/// (serial, end) pairs, so LinkEnd costs no second lookup through nodes_.
class InMemoryAccessor {
 public:
  explicit InMemoryAccessor(const FrozenIndex& idx) : idx_(idx) {}

  uint32_t node_count() const {
    return static_cast<uint32_t>(idx_.node_count());
  }
  uint32_t LinkSize(PathId p) const {
    return static_cast<uint32_t>(idx_.Link(p).size());
  }
  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return idx_.Link(p)[i].serial;
  }
  uint32_t LinkEnd(PathId p, uint32_t i) const { return idx_.Link(p)[i].end; }
  uint32_t LinkCover(PathId p, uint32_t i) const {
    return idx_.LinkCover(p)[i];
  }
  bool HasNested(PathId p) const { return idx_.HasNested(p); }
  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    (void)end;
    return idx_.DocOffsetsInSubtree(serial);
  }
  DocId DocAt(uint32_t offset) const { return idx_.doc_at(offset); }

 private:
  const FrozenIndex& idx_;
};

}  // namespace

StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer) {
  std::vector<const Node*> order = sequencer.EncodeOrder(doc, paths);
  // Node::index is the node's position in Document::nodes(), so a flat
  // array maps it to its sequence position without hashing.
  std::vector<int32_t> position(doc.node_count(), -1);
  QuerySeq q;
  q.paths.reserve(order.size());
  q.parent.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    position[n->index] = static_cast<int32_t>(i);
    q.paths.push_back(paths[n->index]);
    if (n->parent == nullptr) {
      q.parent.push_back(-1);
    } else {
      int32_t parent_pos = position[n->parent->index];
      if (parent_pos < 0) {
        return Status::Internal(
            "sequencer emitted a node before its parent");
      }
      q.parent.push_back(parent_pos);
    }
  }
  return q;
}

std::unique_ptr<MatchContext> MatchContextPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<MatchContext> ctx = std::move(free_.back());
      free_.pop_back();
      return ctx;
    }
  }
  return std::make_unique<MatchContext>();
}

void MatchContextPool::Release(std::unique_ptr<MatchContext> ctx) {
  if (ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ctx));
}

Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats, MatchContext* ctx) {
  return internal::MatchCore(InMemoryAccessor(index), query, mode, out,
                             stats, ctx);
}

namespace internal {

void RecordMatchMetrics(const MatchStats& delta) {
  struct Set {
    obs::Counter* calls;
    obs::Counter* link_binary_searches;
    obs::Counter* link_entries_read;
    obs::Counter* link_gallop_probes;
    obs::Counter* candidates;
    obs::Counter* sibling_checks;
    obs::Counter* sibling_rejections;
    obs::Counter* terminals;
    obs::Counter* result_docs;
  };
  static const Set s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return Set{r->GetCounter("xseq.match.calls"),
               r->GetCounter("xseq.match.link_binary_searches"),
               r->GetCounter("xseq.match.link_entries_read"),
               r->GetCounter("xseq.match.link_gallop_probes"),
               r->GetCounter("xseq.match.candidates"),
               r->GetCounter("xseq.match.sibling_checks"),
               r->GetCounter("xseq.match.sibling_rejections"),
               r->GetCounter("xseq.match.terminals"),
               r->GetCounter("xseq.match.result_docs")};
  }();
  s.calls->Increment();
  s.link_binary_searches->Add(delta.link_binary_searches);
  s.link_entries_read->Add(delta.link_entries_read);
  s.link_gallop_probes->Add(delta.link_gallop_probes);
  s.candidates->Add(delta.candidates);
  s.sibling_checks->Add(delta.sibling_checks);
  s.sibling_rejections->Add(delta.sibling_rejections);
  s.terminals->Add(delta.terminals);
  s.result_docs->Add(delta.result_docs);
}

}  // namespace internal

}  // namespace xseq
