#include "src/index/matcher.h"

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Accessor over the in-memory FrozenIndex. Entry reads decode the owning
/// block into the bound LinkBlockCache; block-header reads (the cursor's
/// skip tier) go straight to the resident header array.
class InMemoryAccessor {
 public:
  explicit InMemoryAccessor(const FrozenIndex& idx) : idx_(&idx) {}

  void BindCache(LinkBlockCache* cache) { cache_ = cache; }

  uint32_t node_count() const {
    return static_cast<uint32_t>(idx_->node_count());
  }
  uint32_t LinkSize(PathId p) const { return idx_->LinkSize(p); }
  uint32_t LinkBlockBaseSerial(PathId p, uint32_t b) const {
    return idx_->LinkBlock(p, b).base_serial;
  }
  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return Block(p, i, kStreamSerials).serials[i & (kLinkBlockSize - 1)];
  }
  uint32_t LinkEnd(PathId p, uint32_t i) const {
    return Block(p, i, kStreamEnds).ends[i & (kLinkBlockSize - 1)];
  }
  uint32_t LinkCover(PathId p, uint32_t i) const {
    return Block(p, i, kStreamCovers).covers[i & (kLinkBlockSize - 1)];
  }
  bool HasNested(PathId p) const { return idx_->HasNested(p); }
  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    (void)end;
    return idx_->DocOffsetsInSubtree(serial);
  }
  DocId DocAt(uint32_t offset) const { return idx_->doc_at(offset); }
  LinkColumns LinkBlockColumns(PathId p, uint32_t b,
                               uint32_t streams) const {
    const LinkBlockScratch& s = BlockAt(p, b, streams);
    return {s.serials, s.ends, s.covers};
  }
  uint64_t DecodeStamp() const { return cache_->decode_stamp(); }
  uint64_t CacheIdentity() const { return idx_->plan_cache_id(); }

 private:
  /// Decodes lazily per stream: search probes touch only the serial
  /// column, so a scanned-past block never pays for ends or covers.
  const LinkBlockScratch& Block(PathId p, uint32_t i,
                                uint32_t streams) const {
    return BlockAt(p, i / kLinkBlockSize, streams);
  }
  const LinkBlockScratch& BlockAt(PathId p, uint32_t b,
                                  uint32_t streams) const {
    return cache_->Get(p, b, streams,
                       [this](PathId path, uint32_t blk, uint32_t missing,
                              LinkBlockScratch* out) {
                         return idx_->DecodeLinkBlockStreams(path, blk,
                                                             missing, out);
                       });
  }

  const FrozenIndex* idx_;
  LinkBlockCache* cache_ = nullptr;
};

}  // namespace

StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer) {
  std::vector<const Node*> order = sequencer.EncodeOrder(doc, paths);
  // Node::index is the node's position in Document::nodes(), so a flat
  // array maps it to its sequence position without hashing.
  std::vector<int32_t> position(doc.node_count(), -1);
  QuerySeq q;
  q.paths.reserve(order.size());
  q.parent.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    position[n->index] = static_cast<int32_t>(i);
    q.paths.push_back(paths[n->index]);
    if (n->parent == nullptr) {
      q.parent.push_back(-1);
    } else {
      int32_t parent_pos = position[n->parent->index];
      if (parent_pos < 0) {
        return Status::Internal(
            "sequencer emitted a node before its parent");
      }
      q.parent.push_back(parent_pos);
    }
  }
  return q;
}

std::unique_ptr<MatchContext> MatchContextPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<MatchContext> ctx = std::move(free_.back());
      free_.pop_back();
      return ctx;
    }
  }
  return std::make_unique<MatchContext>();
}

void MatchContextPool::Release(std::unique_ptr<MatchContext> ctx) {
  if (ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ctx));
}

Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats, MatchContext* ctx) {
  return internal::MatchCore(InMemoryAccessor(index), query, mode, out,
                             stats, ctx);
}

namespace internal {

void RecordMatchMetrics(const MatchStats& delta) {
  struct Set {
    obs::Counter* calls;
    obs::Counter* link_binary_searches;
    obs::Counter* link_entries_read;
    obs::Counter* link_gallop_probes;
    obs::Counter* candidates;
    obs::Counter* sibling_checks;
    obs::Counter* sibling_rejections;
    obs::Counter* terminals;
    obs::Counter* result_docs;
  };
  static const Set s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return Set{r->GetCounter("xseq.match.calls"),
               r->GetCounter("xseq.match.link_binary_searches"),
               r->GetCounter("xseq.match.link_entries_read"),
               r->GetCounter("xseq.match.link_gallop_probes"),
               r->GetCounter("xseq.match.candidates"),
               r->GetCounter("xseq.match.sibling_checks"),
               r->GetCounter("xseq.match.sibling_rejections"),
               r->GetCounter("xseq.match.terminals"),
               r->GetCounter("xseq.match.result_docs")};
  }();
  s.calls->Increment();
  s.link_binary_searches->Add(delta.link_binary_searches);
  s.link_entries_read->Add(delta.link_entries_read);
  s.link_gallop_probes->Add(delta.link_gallop_probes);
  s.candidates->Add(delta.candidates);
  s.sibling_checks->Add(delta.sibling_checks);
  s.sibling_rejections->Add(delta.sibling_rejections);
  s.terminals->Add(delta.terminals);
  s.result_docs->Add(delta.result_docs);
}

}  // namespace internal

}  // namespace xseq
