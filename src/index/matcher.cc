#include "src/index/matcher.h"

#include <unordered_map>

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Accessor over the in-memory FrozenIndex.
class InMemoryAccessor {
 public:
  explicit InMemoryAccessor(const FrozenIndex& idx) : idx_(idx) {}

  uint32_t node_count() const {
    return static_cast<uint32_t>(idx_.node_count());
  }
  uint32_t LinkSize(PathId p) const {
    return static_cast<uint32_t>(idx_.Link(p).size());
  }
  uint32_t LinkSerial(PathId p, uint32_t i) const { return idx_.Link(p)[i]; }
  uint32_t LinkEnd(PathId p, uint32_t i) const {
    return idx_.end(idx_.Link(p)[i]);
  }
  bool HasNested(PathId p) const { return idx_.HasNested(p); }
  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    (void)end;
    return idx_.DocOffsetsInSubtree(serial);
  }
  DocId DocAt(uint32_t offset) const { return idx_.doc_at(offset); }

 private:
  const FrozenIndex& idx_;
};

}  // namespace

StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer) {
  std::vector<const Node*> order = sequencer.EncodeOrder(doc, paths);
  std::unordered_map<uint32_t, int32_t> position;  // node index -> position
  position.reserve(order.size());
  QuerySeq q;
  q.paths.reserve(order.size());
  q.parent.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    position.emplace(n->index, static_cast<int32_t>(i));
    q.paths.push_back(paths[n->index]);
    if (n->parent == nullptr) {
      q.parent.push_back(-1);
    } else {
      auto it = position.find(n->parent->index);
      if (it == position.end()) {
        return Status::Internal(
            "sequencer emitted a node before its parent");
      }
      q.parent.push_back(it->second);
    }
  }
  return q;
}

Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats) {
  return internal::MatchCore(InMemoryAccessor(index), query, mode, out,
                             stats);
}

}  // namespace xseq
