#include "src/index/matcher.h"

#include "src/index/matcher_impl.h"

namespace xseq {

namespace {

/// Accessor over the in-memory FrozenIndex. Link probes read the fused
/// (serial, end) pairs, so LinkEnd costs no second lookup through nodes_.
class InMemoryAccessor {
 public:
  explicit InMemoryAccessor(const FrozenIndex& idx) : idx_(idx) {}

  uint32_t node_count() const {
    return static_cast<uint32_t>(idx_.node_count());
  }
  uint32_t LinkSize(PathId p) const {
    return static_cast<uint32_t>(idx_.Link(p).size());
  }
  uint32_t LinkSerial(PathId p, uint32_t i) const {
    return idx_.Link(p)[i].serial;
  }
  uint32_t LinkEnd(PathId p, uint32_t i) const { return idx_.Link(p)[i].end; }
  uint32_t LinkCover(PathId p, uint32_t i) const {
    return idx_.LinkCover(p)[i];
  }
  bool HasNested(PathId p) const { return idx_.HasNested(p); }
  std::pair<uint32_t, uint32_t> DocOffsets(uint32_t serial,
                                           uint32_t end) const {
    (void)end;
    return idx_.DocOffsetsInSubtree(serial);
  }
  DocId DocAt(uint32_t offset) const { return idx_.doc_at(offset); }

 private:
  const FrozenIndex& idx_;
};

}  // namespace

StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer) {
  std::vector<const Node*> order = sequencer.EncodeOrder(doc, paths);
  // Node::index is the node's position in Document::nodes(), so a flat
  // array maps it to its sequence position without hashing.
  std::vector<int32_t> position(doc.node_count(), -1);
  QuerySeq q;
  q.paths.reserve(order.size());
  q.parent.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    const Node* n = order[i];
    position[n->index] = static_cast<int32_t>(i);
    q.paths.push_back(paths[n->index]);
    if (n->parent == nullptr) {
      q.parent.push_back(-1);
    } else {
      int32_t parent_pos = position[n->parent->index];
      if (parent_pos < 0) {
        return Status::Internal(
            "sequencer emitted a node before its parent");
      }
      q.parent.push_back(parent_pos);
    }
  }
  return q;
}

std::unique_ptr<MatchContext> MatchContextPool::Acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      std::unique_ptr<MatchContext> ctx = std::move(free_.back());
      free_.pop_back();
      return ctx;
    }
  }
  return std::make_unique<MatchContext>();
}

void MatchContextPool::Release(std::unique_ptr<MatchContext> ctx) {
  if (ctx == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(ctx));
}

Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats, MatchContext* ctx) {
  return internal::MatchCore(InMemoryAccessor(index), query, mode, out,
                             stats, ctx);
}

}  // namespace xseq
