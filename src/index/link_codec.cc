#include "src/index/link_codec.h"

#include <algorithm>
#include <bit>

namespace xseq {

namespace {

/// Appends values LSB-first into 64-bit words.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint64_t>* out) : out_(out) {}

  void Put(uint32_t value, uint32_t bits) {
    if (bits == 0) return;
    cur_ |= static_cast<uint64_t>(value) << used_;
    used_ += bits;
    if (used_ >= 64) {
      out_->push_back(cur_);
      used_ -= 64;
      // The spilled high part; when the value fit exactly, nothing spills.
      cur_ = used_ > 0 ? static_cast<uint64_t>(value) >> (bits - used_) : 0;
    }
  }

  void Flush() {
    if (used_ > 0) {
      out_->push_back(cur_);
      cur_ = 0;
      used_ = 0;
    }
  }

 private:
  std::vector<uint64_t>* out_;
  uint64_t cur_ = 0;
  uint32_t used_ = 0;
};

/// Reads values LSB-first from 64-bit words, starting at bit `start`.
class BitReader {
 public:
  explicit BitReader(const uint64_t* words, uint64_t start = 0)
      : words_(words), pos_(start) {}

  uint32_t Get(uint32_t bits) {
    if (bits == 0) return 0;
    const uint64_t word = pos_ >> 6;
    const uint32_t off = static_cast<uint32_t>(pos_ & 63);
    uint64_t v = words_[word] >> off;
    if (off + bits > 64) v |= words_[word + 1] << (64 - off);
    pos_ += bits;
    const uint64_t mask =
        bits >= 64 ? ~0ull : ((1ull << bits) - 1);
    return static_cast<uint32_t>(v & mask);
  }

 private:
  const uint64_t* words_;
  uint64_t pos_ = 0;
};

uint32_t WidthOf(uint32_t max_value) {
  return static_cast<uint32_t>(std::bit_width(max_value));
}

}  // namespace

LinkBlockHeader PackLinkBlock(const uint32_t* serials, const uint32_t* ends,
                              const uint32_t* covers, uint32_t count,
                              uint32_t local_base,
                              std::vector<uint64_t>* words) {
  LinkBlockHeader h{};
  h.base_serial = serials[0];
  h.word_off = static_cast<uint32_t>(words->size());
  h.count_minus_1 = static_cast<uint8_t>(count - 1);

  uint32_t max_delta = 0, max_end_off = 0, max_cover = 0, max_end = 0;
  for (uint32_t i = 0; i < count; ++i) {
    if (i > 0) {
      max_delta = std::max(max_delta, serials[i] - serials[i - 1] - 1);
    }
    max_end_off = std::max(max_end_off, ends[i] - serials[i]);
    max_end = std::max(max_end, ends[i]);
    if (covers[i] != kNoLinkCover) {
      max_cover = std::max(max_cover, local_base + i - covers[i]);
    }
  }
  h.max_end = max_end;
  h.delta_bits = static_cast<uint8_t>(WidthOf(max_delta));
  h.end_bits = static_cast<uint8_t>(WidthOf(max_end_off));
  h.cover_bits = static_cast<uint8_t>(WidthOf(max_cover));

  BitWriter w(words);
  for (uint32_t i = 1; i < count; ++i) {
    w.Put(serials[i] - serials[i - 1] - 1, h.delta_bits);
  }
  for (uint32_t i = 0; i < count; ++i) {
    w.Put(ends[i] - serials[i], h.end_bits);
  }
  for (uint32_t i = 0; i < count; ++i) {
    w.Put(covers[i] == kNoLinkCover ? 0 : local_base + i - covers[i],
          h.cover_bits);
  }
  w.Flush();
  return h;
}

void UnpackLinkSerials(const LinkBlockHeader& h, const uint64_t* words,
                       LinkBlockScratch* out) {
  const uint32_t count = LinkBlockCount(h);
  BitReader r(words);
  uint32_t serial = h.base_serial;
  out->serials[0] = serial;
  for (uint32_t i = 1; i < count; ++i) {
    serial += r.Get(h.delta_bits) + 1;
    out->serials[i] = serial;
  }
}

void UnpackLinkEnds(const LinkBlockHeader& h, const uint64_t* words,
                    LinkBlockScratch* out) {
  const uint32_t count = LinkBlockCount(h);
  BitReader r(words, static_cast<uint64_t>(count - 1) * h.delta_bits);
  for (uint32_t i = 0; i < count; ++i) {
    out->ends[i] = out->serials[i] + r.Get(h.end_bits);
  }
}

void UnpackLinkCovers(const LinkBlockHeader& h, const uint64_t* words,
                      uint32_t local_base, LinkBlockScratch* out) {
  const uint32_t count = LinkBlockCount(h);
  BitReader r(words, static_cast<uint64_t>(count - 1) * h.delta_bits +
                         static_cast<uint64_t>(count) * h.end_bits);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t dist = r.Get(h.cover_bits);
    out->covers[i] = dist == 0 ? kNoLinkCover : local_base + i - dist;
  }
}

void UnpackLinkBlock(const LinkBlockHeader& h, const uint64_t* words,
                     uint32_t local_base, LinkBlockScratch* out) {
  UnpackLinkSerials(h, words, out);
  UnpackLinkEnds(h, words, out);
  UnpackLinkCovers(h, words, local_base, out);
}

}  // namespace xseq
