// Shared template core of Algorithm 1.
//
// The matcher is parameterized over an Accessor so the in-memory index and
// the paged (simulated-disk) index run the identical search while counting
// their own access costs. Links are block-compressed (link_codec.h): entry
// reads decode whole blocks into the MatchContext's LinkBlockCache, and the
// block headers' base serials give the cursor a decode-free skip test. An
// Accessor is a cheap value type (copied into MatchCore) providing:
//
//   void     BindCache(LinkBlockCache* c);            // decode scratch; set
//                                                     //   by MatchCore before
//                                                     //   any link read
//   uint32_t node_count() const;                      // O(1)
//   uint32_t LinkSize(PathId p) const;                // O(1)
//   uint32_t LinkBlockBaseSerial(PathId p, uint32_t b) const;
//                                                     // header read only —
//                                                     //   never decodes;
//                                                     //   equals
//                                                     //   LinkSerial(p, b*B)
//   uint32_t LinkSerial(PathId p, uint32_t i) const;  // ascending in i;
//                                                     //   decodes i's block
//                                                     //   through the cache
//   uint32_t LinkEnd(PathId p, uint32_t i) const;     // n⊣ of the same entry
//   uint32_t LinkCover(PathId p, uint32_t i) const;   // link-local index of
//                                                     //   the tightest
//                                                     //   enclosing
//                                                     //   occurrence of p,
//                                                     //   or kNoLinkCover
//   LinkColumns LinkBlockColumns(PathId p, uint32_t b,
//                                uint32_t streams) const;
//                                                     // borrowed pointers to
//                                                     //   the decoded columns
//                                                     //   of block b; only
//                                                     //   the columns in
//                                                     //   `streams` are
//                                                     //   meaningful, and a
//                                                     //   cache-backed view
//                                                     //   dies on the next
//                                                     //   decode (watch
//                                                     //   DecodeStamp)
//   uint64_t DecodeStamp() const;                     // bumped whenever a
//                                                     //   borrowed view may
//                                                     //   have been
//                                                     //   overwritten; a
//                                                     //   constant for flat
//                                                     //   (decode-free)
//                                                     //   accessors
//   uint64_t CacheIdentity() const;                   // process-unique id of
//                                                     //   the index behind
//                                                     //   this accessor
//                                                     //   (plan_cache_id
//                                                     //   space); binds the
//                                                     //   context's block
//                                                     //   cache so repeat
//                                                     //   matches against one
//                                                     //   index keep decoded
//                                                     //   blocks; 0 = never
//                                                     //   retain
//   bool     HasNested(PathId p) const;               // O(1)
//   std::pair<uint32_t,uint32_t> DocOffsets(uint32_t serial,
//                                           uint32_t end) const;
//   DocId    DocAt(uint32_t offset) const;
//
// Cost model (counters in MatchStats):
//  * A cold link probe — no cursor hint for this query position yet — runs a
//    branchless binary search over the block headers' base serials and then
//    within the one candidate block: one link_binary_searches plus one
//    link_entries_read per probe (header or entry alike).
//  * A warm probe gallops out over block headers from the hint's block and
//    binary-searches down to one block, then within it; every probe counts
//    as link_gallop_probes. Hints are per query position and reset every
//    call, so counters are deterministic and independent of scheduling.
//    Either way at most ONE block decodes per upper-bound search.
//  * The scan loop peeks the next block's header at each block boundary —
//    the base serial IS that entry's serial — so a tail of blocks past the
//    candidate range is skipped without decoding. Within a block it reads
//    through a borrowed LinkColumns view, re-validated by a DecodeStamp
//    compare, so the steady-state per-entry cost is a plain array load and
//    the view survives the recursive calls the scan makes between entries
//    unless a decode actually recycled its cache slot.
//  * The sibling-cover test keeps a per-frame cursor into the parent's link
//    (advanced monotonically; advances count as link_gallop_probes) and
//    resolves TightestContaining by walking the precomputed nesting forest —
//    one link_entries_read per cover step, almost always exactly one. The
//    cursor walk reads a borrowed view of the parent block's columns; only
//    cover-chain hops that leave that block fall back to per-entry
//    accessor reads.

#ifndef XSEQ_SRC_INDEX_MATCHER_IMPL_H_
#define XSEQ_SRC_INDEX_MATCHER_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/index/matcher.h"
#include "src/obs/metrics.h"

namespace xseq {
namespace internal {

/// Adds one match call's counter deltas to the process MetricsRegistry
/// (xseq.match.*). Defined in matcher.cc; called from MatchCore — the one
/// choke point both the in-memory and the paged accessor run through — only
/// when obs::MetricsEnabled().
void RecordMatchMetrics(const MatchStats& delta);

/// "No previous cursor" marker for per-position link hints.
inline constexpr uint32_t kNoCursorHint = 0xFFFFFFFFu;

/// Branchless binary search over a decoded serial column: first offset in
/// [0, count) whose serial is > `after` (count when none). The compare
/// folds into conditional moves, so the loop has one unpredictable branch
/// less than the textbook form on hot links. Operating on the raw column —
/// LinkUpperBound's tier 2 is always confined to one block — keeps each
/// probe a plain array load instead of a block-cache lookup.
inline uint32_t WindowSearch(const uint32_t* serials, int64_t after,
                             uint32_t count, uint64_t* probes) {
  uint32_t lo = 0;
  while (count > 0) {
    uint32_t half = count >> 1;
    uint32_t mid = lo + half;
    ++*probes;
    bool le = static_cast<int64_t>(serials[mid]) <= after;
    lo = le ? mid + 1 : lo;
    count = le ? count - half - 1 : half;
  }
  return lo;
}

/// Branchless binary search over block headers: first block in
/// [lo, lo+count) whose base serial is > `after` (lo+count when none).
/// Header reads never decode a block.
template <typename Accessor>
uint32_t BlockWindowSearch(const Accessor& acc, PathId path, int64_t after,
                           uint32_t lo, uint32_t count, uint64_t* probes) {
  while (count > 0) {
    uint32_t half = count >> 1;
    uint32_t mid = lo + half;
    ++*probes;
    bool le =
        static_cast<int64_t>(acc.LinkBlockBaseSerial(path, mid)) <= after;
    lo = le ? mid + 1 : lo;
    count = le ? count - half - 1 : half;
  }
  return lo;
}

/// Result of the header tier of an upper-bound search: the block upper
/// bound (first block whose base serial is > the target; 0 = even block 0
/// starts past it) and the probe counter the in-block tier must keep
/// feeding (cold searches count entries_read, warm ones gallop_probes).
struct BlockBound {
  uint32_t ub;
  uint64_t* probes;
};

/// Header tier of the two-tier upper-bound search over `path`'s link
/// (`n` = link size, > 0): finds the one block that can contain the first
/// entry serial > `after`, from base serials alone — no decoding. With a
/// hint (the cursor position of the previous search at this query
/// position) it gallops out bidirectionally from the hint's block —
/// successive targets are usually close, but move *backwards* when nested
/// occurrences unwind, so one-directional galloping would be wrong — and
/// binary-searches the bracketed window. Without a hint it falls back to
/// a full binary search. The caller (SearchRec) finishes tier 2 with
/// WindowSearch over the surviving block's decoded serial column, which
/// seeds the frame's scan view — so an upper-bound search decodes at most
/// one block regardless of link size.
template <typename Accessor>
BlockBound LinkBlockUpperBound(const Accessor& acc, PathId path,
                               int64_t after, uint32_t n, uint32_t hint,
                               MatchStats* stats) {
  const uint32_t nb = (n + kLinkBlockSize - 1) / kLinkBlockSize;
  // Tier 1: first block whose base serial is > after, in [0, nb].
  uint32_t ub;
  uint64_t* probes;
  if (hint == kNoCursorHint) {
    ++stats->link_binary_searches;
    probes = &stats->link_entries_read;
    ub = BlockWindowSearch(acc, path, after, 0, nb, probes);
  } else {
    probes = &stats->link_gallop_probes;
    const uint32_t pos = (hint < n ? hint : n - 1) / kLinkBlockSize;
    ++*probes;
    uint32_t lo, hi;
    if (static_cast<int64_t>(acc.LinkBlockBaseSerial(path, pos)) <= after) {
      // Answer is right of pos: probe pos+1, pos+2, pos+4, ...
      lo = pos + 1;
      hi = nb;
      uint64_t step = 1;
      while (static_cast<uint64_t>(pos) + step < nb) {
        uint32_t probe = pos + static_cast<uint32_t>(step);
        ++*probes;
        if (static_cast<int64_t>(acc.LinkBlockBaseSerial(path, probe)) <=
            after) {
          lo = probe + 1;
          step <<= 1;
        } else {
          hi = probe;
          break;
        }
      }
    } else {
      // Answer is at or left of pos: probe pos-1, pos-2, pos-4, ...
      lo = 0;
      hi = pos;
      uint64_t step = 1;
      while (step <= pos) {
        uint32_t probe = pos - static_cast<uint32_t>(step);
        ++*probes;
        if (static_cast<int64_t>(acc.LinkBlockBaseSerial(path, probe)) >
            after) {
          hi = probe;
          step <<= 1;
        } else {
          lo = probe + 1;
          break;
        }
      }
    }
    ub = BlockWindowSearch(acc, path, after, lo, hi - lo, probes);
  }
  return {ub, probes};
}

/// Recursive chain search. Scratch lives in `ctx`; `ctx->ranges` collects
/// doc-offset intervals of terminal subtrees.
template <typename Accessor>
void SearchRec(const Accessor& acc, const QuerySeq& q, MatchMode mode,
               size_t i, int64_t v_serial, int64_t v_end, MatchContext* ctx,
               MatchStats* stats) {
  if (i == q.size()) {
    ++stats->terminals;
    ctx->ranges.push_back(acc.DocOffsets(static_cast<uint32_t>(v_serial),
                                         static_cast<uint32_t>(v_end)));
    return;
  }
  PathId p = q.paths[i];
  uint32_t link_size = acc.LinkSize(p);

  // Borrowed views of the decoded columns the frame is reading — per
  // query position, persisted in the context across the many frames a
  // search spawns at this depth. The scan and the sibling test each touch
  // one block at a time, so per-entry reads go through these views —
  // plain array loads — instead of a block-cache lookup per read. A view
  // dies when a later decode recycles its cache slot; DecodeStamp
  // compares at the few places that can follow a decode (view fetches,
  // cover-chain fallbacks, the recursive call) notice exactly that and
  // re-fetch — a cache hit unless the slot really was stolen. In steady
  // state — hints keep successive frames in the same blocks, the bound
  // cache retains them — a frame runs entirely on revalidation compares,
  // no cache lookups at all. Flat accessors return a constant stamp and
  // permanent views, so every compare is an always-false predicted
  // branch.
  constexpr uint32_t kNoBlock = 0xFFFFFFFFu;
  LinkBlockView& own = ctx->scan_view[i];
  LinkBlockView& par = ctx->sib_view[i];
  // The accessor's decode stamp, mirrored into a register. Within this
  // frame only view fetches, the cover chain's per-entry fallback reads,
  // and the recursive call can decode; each reloads the mirror, so every
  // other staleness check is a register compare instead of a load through
  // the cache pointer — per candidate, that is the difference between the
  // compressed and flat hot loops.
  uint64_t stamp = acc.DecodeStamp();
  auto own_fetch = [&](uint32_t blk, uint32_t streams) {
    own.cols = acc.LinkBlockColumns(p, blk, streams);
    own.blk = blk;
    own.streams = streams;
    own.stamp = stamp = acc.DecodeStamp();
  };
  // Full revalidation (block + streams + stamp) — frame entry and the
  // scan's block transitions; within the frame the targeted checks below
  // suffice.
  auto own_ensure = [&](uint32_t blk, uint32_t streams) {
    if (own.blk != blk || (own.streams & streams) != streams ||
        own.stamp != stamp) {
      own_fetch(blk, own.blk == blk ? (own.streams | streams) : streams);
    }
  };

  // Upper bound for the scan start: header tier, then WindowSearch within
  // the surviving block — whose decoded serial column becomes the scan
  // view, so the search and the scan share one block fetch.
  uint32_t idx = 0;
  if (link_size > 0) {
    BlockBound t1 = LinkBlockUpperBound(acc, p, v_serial, link_size,
                                        ctx->link_hint[i], stats);
    if (t1.ub > 0) {
      const uint32_t fb = t1.ub - 1;
      const uint32_t base = fb * kLinkBlockSize;
      const uint32_t cnt = std::min(link_size - base, kLinkBlockSize);
      own_ensure(fb, kStreamSerials);
      idx = base + WindowSearch(own.cols.serials, v_serial, cnt, t1.probes);
    }
  }
  ctx->link_hint[i] = idx;

  // Sibling-cover test state (Definition 4). The test is needed only when
  // the query parent's path has nested occurrences (Theorem 3). Candidates
  // r grow monotonically within this frame, so `sib_cur` — the last entry
  // of the parent's link with serial <= r — only moves forward; it starts
  // at the matched parent itself and its advances are amortized O(1) per
  // candidate. TightestContaining(r) is then sib_cur or one of its nesting-
  // forest ancestors: walk cover pointers until the range covers r.
  const int32_t parent_pos = q.parent[i];
  const bool need_cover = mode == MatchMode::kConstraint &&
                          parent_pos >= 0 &&
                          acc.HasNested(q.paths[parent_pos]);
  const PathId parent_path =
      parent_pos >= 0 ? q.paths[parent_pos] : kInvalidPath;
  const uint32_t parent_idx =
      parent_pos >= 0
          ? ctx->matched_link_idx[static_cast<size_t>(parent_pos)]
          : 0;
  uint32_t sib_cur = parent_idx;
  uint32_t sib_size = 0;
  int64_t sib_next = 0;
  bool sib_init = false, sib_have_next = false;
  auto par_fetch = [&](uint32_t blk) {
    // The sibling test reads all three parent columns per candidate, so
    // fetch them together.
    par.cols = acc.LinkBlockColumns(parent_path, blk, kStreamAll);
    par.blk = blk;
    par.streams = kStreamAll;
    par.stamp = stamp = acc.DecodeStamp();
  };

  // The scan below revalidates with a block compare alone, which is only
  // sound while the view is known current. Tier 2 just ensured that —
  // unless it was skipped (empty link, or the upper bound landed before
  // block 0), in which case a view inherited from an earlier frame at
  // this position may be stale: drop it and let the scan re-fetch.
  if (own.blk != kNoBlock && own.stamp != stamp) {
    own.blk = kNoBlock;
  }

  for (; idx < link_size; ++idx) {
    ++stats->link_entries_read;
    const uint32_t blk = idx / kLinkBlockSize;
    const uint32_t off = idx & (kLinkBlockSize - 1);
    uint32_t r;
    if (off == 0) {
      // Block boundary: the header's base serial IS this entry's serial,
      // so a tail of blocks past v_end breaks out without decoding.
      // (Header reads never decode, so the views survive them.)
      r = acc.LinkBlockBaseSerial(p, blk);
      if (static_cast<int64_t>(r) > v_end) break;
    }
    if (blk != own.blk) own_fetch(blk, kStreamSerials);
    r = own.cols.serials[off];
    if (static_cast<int64_t>(r) > v_end) break;
    ++stats->candidates;
    if (need_cover) {
      ++stats->sibling_checks;
      if (!sib_init) {
        sib_init = true;
        sib_size = acc.LinkSize(parent_path);
        if (sib_cur + 1 < sib_size) {
          ++stats->link_gallop_probes;
          const uint32_t jb = (sib_cur + 1) / kLinkBlockSize;
          if (par.blk != jb || par.stamp != stamp) {
            par_fetch(jb);
          }
          sib_next = par.cols.serials[(sib_cur + 1) & (kLinkBlockSize - 1)];
          sib_have_next = true;
        }
      } else if (par.blk != kNoBlock && stamp != par.stamp) {
        // Decodes since the previous candidate (its recursion, or a
        // cover-chain fallback) may have recycled the parent view.
        par_fetch(par.blk);
      }
      // Within the gallop only par_fetch itself decodes, and it refreshes
      // the view in place — so block-crossing is the only check needed.
      while (sib_have_next && sib_next <= static_cast<int64_t>(r)) {
        ++sib_cur;
        if (sib_cur + 1 < sib_size) {
          ++stats->link_gallop_probes;
          const uint32_t j = sib_cur + 1;
          if (j / kLinkBlockSize != par.blk) par_fetch(j / kLinkBlockSize);
          sib_next = par.cols.serials[j & (kLinkBlockSize - 1)];
        } else {
          sib_have_next = false;
        }
      }
      // sib_cur is the last parent-link entry with serial <= r; every
      // occurrence containing r encloses it (laminarity), so the tightest
      // is the first cover-chain ancestor-or-self whose range covers r.
      // The chain's first node is usually in the cursor's block; hops
      // that leave it fall back to per-entry accessor reads, whose
      // decodes the stamp compare detects.
      uint32_t tight = sib_cur;
      ++stats->link_entries_read;
      for (;;) {
        uint32_t t_end, t_cover;
        if (tight / kLinkBlockSize == par.blk && stamp == par.stamp) {
          t_end = par.cols.ends[tight & (kLinkBlockSize - 1)];
          t_cover = par.cols.covers[tight & (kLinkBlockSize - 1)];
        } else {
          t_end = acc.LinkEnd(parent_path, tight);
          t_cover = acc.LinkCover(parent_path, tight);
          stamp = acc.DecodeStamp();  // the fallback reads may decode
        }
        if (t_end >= r) break;
        tight = t_cover;
        if (tight == kNoLinkCover) break;  // corrupt index; reject below
        ++stats->link_entries_read;
      }
      if (tight != parent_idx) {
        ++stats->sibling_rejections;
        // A cover-chain fallback may have displaced the scan view.
        if (stamp != own.stamp) own_fetch(blk, own.streams);
        continue;  // sibling-covered: wrong identical sibling
      }
    }
    ctx->matched_link_idx[i] = idx;
    // One combined check: the end column may not be decoded yet, and the
    // sibling test above may have displaced the view.
    if (!(own.streams & kStreamEnds) || stamp != own.stamp) {
      own_fetch(blk, own.streams | kStreamEnds);
    }
    const uint32_t child_end = own.cols.ends[off];
    SearchRec(acc, q, mode, i + 1, r, child_end, ctx, stats);
    // The recursion's decodes may have recycled the scan view's slot.
    stamp = acc.DecodeStamp();
    if (stamp != own.stamp) own_fetch(blk, own.streams);
  }
  ctx->link_hint[i] = idx;
}

/// Full match: search, then merge the terminal doc-offset intervals and
/// materialize sorted, deduplicated document ids. Takes the accessor by
/// value: it is rebound to the resolved context's block cache, and copying
/// keeps the caller's accessor untouched.
template <typename Accessor>
Status MatchCore(Accessor acc, const QuerySeq& q, MatchMode mode,
                 std::vector<DocId>* out, MatchStats* stats,
                 MatchContext* ctx) {
  if (q.paths.empty()) {
    return Status::InvalidArgument("empty query sequence");
  }
  if (q.parent.size() != q.paths.size()) {
    return Status::InvalidArgument("query parent array size mismatch");
  }
  for (size_t i = 0; i < q.parent.size(); ++i) {
    if (q.parent[i] >= static_cast<int32_t>(i)) {
      return Status::InvalidArgument(
          "query parent must precede its child in the sequence");
    }
  }

  MatchStats local;
  MatchStats* st = stats != nullptr ? stats : &local;
  // `st` may accumulate across calls (batch aggregation), so registry
  // metrics are fed this call's delta. One relaxed load when disabled.
  const bool metrics = obs::MetricsEnabled();
  MatchStats before;
  if (metrics) before = *st;
  MatchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  // assign() keeps the capacity a reused context accumulated.
  ctx->matched_link_idx.assign(q.size(), 0);
  ctx->link_hint.assign(q.size(), kNoCursorHint);
  ctx->ranges.clear();
  // Views cache (path, block) pairs of THIS query's positions; they never
  // outlive the call.
  ctx->scan_view.assign(q.size(), LinkBlockView{});
  ctx->sib_view.assign(q.size(), LinkBlockView{});
  // Rebind, don't reset: a context matching repeatedly against one index
  // keeps its decoded blocks (see LinkBlockCache::BindIndex).
  ctx->block_cache.BindIndex(acc.CacheIdentity());
  acc.BindCache(&ctx->block_cache);
  if (acc.node_count() > 0) {
    SearchRec(acc, q, mode, 0, /*v_serial=*/-1,
              /*v_end=*/static_cast<int64_t>(acc.node_count()) - 1, ctx,
              st);
  }

  // Doc lists are disjoint per offset, so merging intervals deduplicates.
  std::sort(ctx->ranges.begin(), ctx->ranges.end());
  size_t out_before = out->size();
  uint32_t cur_lo = 0, cur_hi = 0;
  bool open = false;
  auto flush = [&]() {
    for (uint32_t off = cur_lo; off < cur_hi; ++off) {
      out->push_back(acc.DocAt(off));
    }
  };
  for (const auto& [lo, hi] : ctx->ranges) {
    if (lo >= hi) continue;
    if (!open) {
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      flush();
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  if (open) flush();
  std::sort(out->begin() + static_cast<ptrdiff_t>(out_before), out->end());
  st->result_docs += out->size() - out_before;
  if (metrics) {
    MatchStats delta = *st;
    delta.link_binary_searches -= before.link_binary_searches;
    delta.link_entries_read -= before.link_entries_read;
    delta.link_gallop_probes -= before.link_gallop_probes;
    delta.candidates -= before.candidates;
    delta.sibling_checks -= before.sibling_checks;
    delta.sibling_rejections -= before.sibling_rejections;
    delta.terminals -= before.terminals;
    delta.result_docs -= before.result_docs;
    RecordMatchMetrics(delta);
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_IMPL_H_
