// Shared template core of Algorithm 1.
//
// The matcher is parameterized over an Accessor so the in-memory index and
// the paged (simulated-disk) index run the identical search while counting
// their own access costs. Link entries are fused (serial, end) label pairs —
// the paper's Fig. 8 layout — so LinkSerial and LinkEnd of the same entry
// touch the same cache line / disk page. An Accessor provides:
//
//   uint32_t node_count() const;                      // O(1)
//   uint32_t LinkSize(PathId p) const;                // O(1)
//   uint32_t LinkSerial(PathId p, uint32_t i) const;  // O(1); ascending in i
//   uint32_t LinkEnd(PathId p, uint32_t i) const;     // O(1); n⊣ of the same
//                                                     //   fused entry as
//                                                     //   LinkSerial(p, i)
//   uint32_t LinkCover(PathId p, uint32_t i) const;   // O(1); link-local
//                                                     //   index of the
//                                                     //   tightest enclosing
//                                                     //   occurrence of p,
//                                                     //   or kNoLinkCover
//   bool     HasNested(PathId p) const;               // O(1)
//   std::pair<uint32_t,uint32_t> DocOffsets(uint32_t serial,
//                                           uint32_t end) const;
//   DocId    DocAt(uint32_t offset) const;
//
// Cost model (counters in MatchStats):
//  * A cold link probe — no cursor hint for this query position yet — runs a
//    full branchless binary search: one link_binary_searches plus one
//    link_entries_read per probe.
//  * A warm probe gallops out from the previous cursor position and then
//    binary-searches the bracketed window; every probe counts as
//    link_gallop_probes. Hints are per query position and reset every call,
//    so counters are deterministic and independent of scheduling.
//  * The sibling-cover test keeps a per-frame cursor into the parent's link
//    (advanced monotonically; advances count as link_gallop_probes) and
//    resolves TightestContaining by walking the precomputed nesting forest —
//    one link_entries_read per cover step, almost always exactly one.

#ifndef XSEQ_SRC_INDEX_MATCHER_IMPL_H_
#define XSEQ_SRC_INDEX_MATCHER_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/index/matcher.h"
#include "src/obs/metrics.h"

namespace xseq {
namespace internal {

/// Adds one match call's counter deltas to the process MetricsRegistry
/// (xseq.match.*). Defined in matcher.cc; called from MatchCore — the one
/// choke point both the in-memory and the paged accessor run through — only
/// when obs::MetricsEnabled().
void RecordMatchMetrics(const MatchStats& delta);

/// "No previous cursor" marker for per-position link hints.
inline constexpr uint32_t kNoCursorHint = 0xFFFFFFFFu;

/// Branchless binary search: first index in [lo, lo+count) whose entry
/// serial is > `after` (lo+count when none). The compare folds into
/// conditional moves, so the loop has one unpredictable branch less than
/// the textbook form on hot links.
template <typename Accessor>
uint32_t WindowSearch(const Accessor& acc, PathId path, int64_t after,
                      uint32_t lo, uint32_t count, uint64_t* probes) {
  while (count > 0) {
    uint32_t half = count >> 1;
    uint32_t mid = lo + half;
    ++*probes;
    bool le = static_cast<int64_t>(acc.LinkSerial(path, mid)) <= after;
    lo = le ? mid + 1 : lo;
    count = le ? count - half - 1 : half;
  }
  return lo;
}

/// First link index whose entry serial is > `after`. With a hint (the
/// cursor position of the previous search at this query position) the
/// search gallops out bidirectionally from the hint — successive targets
/// are usually close, but move *backwards* when nested occurrences unwind,
/// so one-directional galloping would be wrong — and binary-searches the
/// bracketed window. Without a hint it falls back to a full binary search.
template <typename Accessor>
uint32_t LinkUpperBound(const Accessor& acc, PathId path, int64_t after,
                        uint32_t hint, MatchStats* stats) {
  const uint32_t n = acc.LinkSize(path);
  if (n == 0) return 0;
  if (hint == kNoCursorHint) {
    ++stats->link_binary_searches;
    return WindowSearch(acc, path, after, 0, n,
                        &stats->link_entries_read);
  }
  const uint32_t pos = hint < n ? hint : n - 1;
  ++stats->link_gallop_probes;
  uint32_t lo, hi;
  if (static_cast<int64_t>(acc.LinkSerial(path, pos)) <= after) {
    // Answer is right of pos: probe pos+1, pos+2, pos+4, ...
    lo = pos + 1;
    hi = n;
    uint64_t step = 1;
    while (static_cast<uint64_t>(pos) + step < n) {
      uint32_t probe = pos + static_cast<uint32_t>(step);
      ++stats->link_gallop_probes;
      if (static_cast<int64_t>(acc.LinkSerial(path, probe)) <= after) {
        lo = probe + 1;
        step <<= 1;
      } else {
        hi = probe;
        break;
      }
    }
  } else {
    // Answer is at or left of pos: probe pos-1, pos-2, pos-4, ...
    lo = 0;
    hi = pos;
    uint64_t step = 1;
    while (step <= pos) {
      uint32_t probe = pos - static_cast<uint32_t>(step);
      ++stats->link_gallop_probes;
      if (static_cast<int64_t>(acc.LinkSerial(path, probe)) > after) {
        hi = probe;
        step <<= 1;
      } else {
        lo = probe + 1;
        break;
      }
    }
  }
  return WindowSearch(acc, path, after, lo, hi - lo,
                      &stats->link_gallop_probes);
}

/// Recursive chain search. Scratch lives in `ctx`; `ctx->ranges` collects
/// doc-offset intervals of terminal subtrees.
template <typename Accessor>
void SearchRec(const Accessor& acc, const QuerySeq& q, MatchMode mode,
               size_t i, int64_t v_serial, int64_t v_end, MatchContext* ctx,
               MatchStats* stats) {
  if (i == q.size()) {
    ++stats->terminals;
    ctx->ranges.push_back(acc.DocOffsets(static_cast<uint32_t>(v_serial),
                                         static_cast<uint32_t>(v_end)));
    return;
  }
  PathId p = q.paths[i];
  uint32_t link_size = acc.LinkSize(p);
  uint32_t idx = LinkUpperBound(acc, p, v_serial, ctx->link_hint[i], stats);
  ctx->link_hint[i] = idx;

  // Sibling-cover test state (Definition 4). The test is needed only when
  // the query parent's path has nested occurrences (Theorem 3). Candidates
  // r grow monotonically within this frame, so `sib_cur` — the last entry
  // of the parent's link with serial <= r — only moves forward; it starts
  // at the matched parent itself and its advances are amortized O(1) per
  // candidate. TightestContaining(r) is then sib_cur or one of its nesting-
  // forest ancestors: walk cover pointers until the range covers r.
  const int32_t parent_pos = q.parent[i];
  const bool need_cover = mode == MatchMode::kConstraint &&
                          parent_pos >= 0 &&
                          acc.HasNested(q.paths[parent_pos]);
  const PathId parent_path =
      parent_pos >= 0 ? q.paths[parent_pos] : kInvalidPath;
  const uint32_t parent_idx =
      parent_pos >= 0
          ? ctx->matched_link_idx[static_cast<size_t>(parent_pos)]
          : 0;
  uint32_t sib_cur = parent_idx;
  uint32_t sib_size = 0;
  int64_t sib_next = 0;
  bool sib_init = false, sib_have_next = false;

  for (; idx < link_size; ++idx) {
    ++stats->link_entries_read;
    uint32_t r = acc.LinkSerial(p, idx);
    if (static_cast<int64_t>(r) > v_end) break;
    ++stats->candidates;
    if (need_cover) {
      ++stats->sibling_checks;
      if (!sib_init) {
        sib_init = true;
        sib_size = acc.LinkSize(parent_path);
        if (sib_cur + 1 < sib_size) {
          ++stats->link_gallop_probes;
          sib_next = acc.LinkSerial(parent_path, sib_cur + 1);
          sib_have_next = true;
        }
      }
      while (sib_have_next && sib_next <= static_cast<int64_t>(r)) {
        ++sib_cur;
        if (sib_cur + 1 < sib_size) {
          ++stats->link_gallop_probes;
          sib_next = acc.LinkSerial(parent_path, sib_cur + 1);
        } else {
          sib_have_next = false;
        }
      }
      // sib_cur is the last parent-link entry with serial <= r; every
      // occurrence containing r encloses it (laminarity), so the tightest
      // is the first cover-chain ancestor-or-self whose range reaches r.
      uint32_t tight = sib_cur;
      ++stats->link_entries_read;
      while (acc.LinkEnd(parent_path, tight) < r) {
        tight = acc.LinkCover(parent_path, tight);
        if (tight == kNoLinkCover) break;  // corrupt index; reject below
        ++stats->link_entries_read;
      }
      if (tight != parent_idx) {
        ++stats->sibling_rejections;
        continue;  // sibling-covered: wrong identical sibling
      }
    }
    ctx->matched_link_idx[i] = idx;
    SearchRec(acc, q, mode, i + 1, r, acc.LinkEnd(p, idx), ctx, stats);
  }
  ctx->link_hint[i] = idx;
}

/// Full match: search, then merge the terminal doc-offset intervals and
/// materialize sorted, deduplicated document ids.
template <typename Accessor>
Status MatchCore(const Accessor& acc, const QuerySeq& q, MatchMode mode,
                 std::vector<DocId>* out, MatchStats* stats,
                 MatchContext* ctx) {
  if (q.paths.empty()) {
    return Status::InvalidArgument("empty query sequence");
  }
  if (q.parent.size() != q.paths.size()) {
    return Status::InvalidArgument("query parent array size mismatch");
  }
  for (size_t i = 0; i < q.parent.size(); ++i) {
    if (q.parent[i] >= static_cast<int32_t>(i)) {
      return Status::InvalidArgument(
          "query parent must precede its child in the sequence");
    }
  }

  MatchStats local;
  MatchStats* st = stats != nullptr ? stats : &local;
  // `st` may accumulate across calls (batch aggregation), so registry
  // metrics are fed this call's delta. One relaxed load when disabled.
  const bool metrics = obs::MetricsEnabled();
  MatchStats before;
  if (metrics) before = *st;
  MatchContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  // assign() keeps the capacity a reused context accumulated.
  ctx->matched_link_idx.assign(q.size(), 0);
  ctx->link_hint.assign(q.size(), kNoCursorHint);
  ctx->ranges.clear();
  if (acc.node_count() > 0) {
    SearchRec(acc, q, mode, 0, /*v_serial=*/-1,
              /*v_end=*/static_cast<int64_t>(acc.node_count()) - 1, ctx,
              st);
  }

  // Doc lists are disjoint per offset, so merging intervals deduplicates.
  std::sort(ctx->ranges.begin(), ctx->ranges.end());
  size_t out_before = out->size();
  uint32_t cur_lo = 0, cur_hi = 0;
  bool open = false;
  auto flush = [&]() {
    for (uint32_t off = cur_lo; off < cur_hi; ++off) {
      out->push_back(acc.DocAt(off));
    }
  };
  for (const auto& [lo, hi] : ctx->ranges) {
    if (lo >= hi) continue;
    if (!open) {
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      flush();
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  if (open) flush();
  std::sort(out->begin() + static_cast<ptrdiff_t>(out_before), out->end());
  st->result_docs += out->size() - out_before;
  if (metrics) {
    MatchStats delta = *st;
    delta.link_binary_searches -= before.link_binary_searches;
    delta.link_entries_read -= before.link_entries_read;
    delta.link_gallop_probes -= before.link_gallop_probes;
    delta.candidates -= before.candidates;
    delta.sibling_checks -= before.sibling_checks;
    delta.sibling_rejections -= before.sibling_rejections;
    delta.terminals -= before.terminals;
    delta.result_docs -= before.result_docs;
    RecordMatchMetrics(delta);
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_IMPL_H_
