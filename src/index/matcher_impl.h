// Shared template core of Algorithm 1.
//
// The matcher is parameterized over an Accessor so the in-memory index and
// the paged (simulated-disk) index run the identical search while counting
// their own access costs. Link entries are (serial, end) label pairs — the
// paper's Fig. 8 layout — so one entry access yields the full range. An
// Accessor provides:
//
//   uint32_t node_count() const;
//   uint32_t LinkSize(PathId p) const;
//   uint32_t LinkSerial(PathId p, uint32_t i) const;  // ascending in i
//   uint32_t LinkEnd(PathId p, uint32_t i) const;     // n⊣ of that node
//   bool     HasNested(PathId p) const;
//   std::pair<uint32_t,uint32_t> DocOffsets(uint32_t serial,
//                                           uint32_t end) const;
//   DocId    DocAt(uint32_t offset) const;

#ifndef XSEQ_SRC_INDEX_MATCHER_IMPL_H_
#define XSEQ_SRC_INDEX_MATCHER_IMPL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/index/matcher.h"

namespace xseq {
namespace internal {

/// First link index whose entry serial is > `after`, by binary search.
template <typename Accessor>
uint32_t LinkUpperBound(const Accessor& acc, PathId path, int64_t after,
                        MatchStats* stats) {
  uint32_t lo = 0;
  uint32_t hi = acc.LinkSize(path);
  ++stats->link_binary_searches;
  while (lo < hi) {
    uint32_t mid = lo + (hi - lo) / 2;
    ++stats->link_entries_read;
    if (static_cast<int64_t>(acc.LinkSerial(path, mid)) <= after) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// The tightest occurrence of `path` whose range contains `serial`
/// (precondition: at least one exists). Entries before `serial` in the link
/// are either ancestors (end >= serial) or disjoint (end < serial); the
/// first ancestor found scanning backwards has the largest serial and is
/// therefore the tightest.
template <typename Accessor>
uint32_t TightestContaining(const Accessor& acc, PathId path,
                            uint32_t serial, MatchStats* stats) {
  uint32_t idx = LinkUpperBound(acc, path, serial, stats);
  while (idx > 0) {
    --idx;
    ++stats->link_entries_read;
    if (acc.LinkEnd(path, idx) >= serial) return acc.LinkSerial(path, idx);
  }
  return 0xFFFFFFFFu;  // unreachable when the precondition holds
}

/// Recursive chain search. `ranges` collects doc-offset intervals of
/// terminal subtrees.
template <typename Accessor>
void SearchRec(const Accessor& acc, const QuerySeq& q, MatchMode mode,
               size_t i, int64_t v_serial, int64_t v_end,
               std::vector<uint32_t>* matched,
               std::vector<std::pair<uint32_t, uint32_t>>* ranges,
               MatchStats* stats) {
  if (i == q.size()) {
    ++stats->terminals;
    ranges->push_back(acc.DocOffsets(static_cast<uint32_t>(v_serial),
                                     static_cast<uint32_t>(v_end)));
    return;
  }
  PathId p = q.paths[i];
  uint32_t link_size = acc.LinkSize(p);
  uint32_t idx = LinkUpperBound(acc, p, v_serial, stats);
  for (; idx < link_size; ++idx) {
    ++stats->link_entries_read;
    uint32_t r = acc.LinkSerial(p, idx);
    if (static_cast<int64_t>(r) > v_end) break;
    ++stats->candidates;
    if (mode == MatchMode::kConstraint && q.parent[i] >= 0) {
      PathId parent_path = q.paths[static_cast<size_t>(q.parent[i])];
      if (acc.HasNested(parent_path)) {
        ++stats->sibling_checks;
        uint32_t tight = TightestContaining(acc, parent_path, r, stats);
        if (tight != (*matched)[static_cast<size_t>(q.parent[i])]) {
          ++stats->sibling_rejections;
          continue;  // sibling-covered: wrong identical sibling
        }
      }
    }
    (*matched)[i] = r;
    SearchRec(acc, q, mode, i + 1, r, acc.LinkEnd(p, idx), matched, ranges,
              stats);
  }
}

/// Full match: search, then merge the terminal doc-offset intervals and
/// materialize sorted, deduplicated document ids.
template <typename Accessor>
Status MatchCore(const Accessor& acc, const QuerySeq& q, MatchMode mode,
                 std::vector<DocId>* out, MatchStats* stats) {
  if (q.paths.empty()) {
    return Status::InvalidArgument("empty query sequence");
  }
  if (q.parent.size() != q.paths.size()) {
    return Status::InvalidArgument("query parent array size mismatch");
  }
  for (size_t i = 0; i < q.parent.size(); ++i) {
    if (q.parent[i] >= static_cast<int32_t>(i)) {
      return Status::InvalidArgument(
          "query parent must precede its child in the sequence");
    }
  }

  MatchStats local;
  MatchStats* st = stats != nullptr ? stats : &local;
  std::vector<uint32_t> matched(q.size());
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  if (acc.node_count() > 0) {
    SearchRec(acc, q, mode, 0, /*v_serial=*/-1,
              /*v_end=*/static_cast<int64_t>(acc.node_count()) - 1, &matched,
              &ranges, st);
  }

  // Doc lists are disjoint per offset, so merging intervals deduplicates.
  std::sort(ranges.begin(), ranges.end());
  size_t before = out->size();
  uint32_t cur_lo = 0, cur_hi = 0;
  bool open = false;
  auto flush = [&]() {
    for (uint32_t off = cur_lo; off < cur_hi; ++off) {
      out->push_back(acc.DocAt(off));
    }
  };
  for (const auto& [lo, hi] : ranges) {
    if (lo >= hi) continue;
    if (!open) {
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      flush();
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  if (open) flush();
  std::sort(out->begin() + static_cast<ptrdiff_t>(before), out->end());
  st->result_docs += out->size() - before;
  return Status::OK();
}

}  // namespace internal
}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_IMPL_H_
