// The index tree (Section 4.1): a trie over constraint sequences.
//
// Construction follows the paper's three steps:
//   1. SEQUENCE INSERTION — every document's constraint sequence is inserted
//      into a trie; the document id is appended to the id list of the node
//      where the insertion ends. Static data can be bulk loaded by sorting
//      the sequences first.
//   2. TREE LABELING — each trie node n gets (n⊢, n⊣): its pre-order serial
//      and the largest serial in its subtree, so x is a descendant of y iff
//      x⊢ ∈ (y⊢, y⊣].
//   3. PATH LINKING — for every distinct path, the sorted list of trie-node
//      labels carrying that path ("horizontal links", binary searchable).
//
// TrieBuilder is the mutable construction stage; Freeze() produces the
// immutable FrozenIndex the matchers and the paged serializer consume.
// Horizontal links are stored block-compressed (src/index/link_codec.h):
// delta-encoded serials, serial-relative ends and backward cover distances,
// bit-packed in blocks of kLinkBlockSize entries behind 16-byte headers.
// The matcher skips and decodes blocks through a per-cursor scratch cache;
// cold callers materialize whole links with Link()/LinkCover().

#ifndef XSEQ_SRC_INDEX_TRIE_H_
#define XSEQ_SRC_INDEX_TRIE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/index/link_codec.h"
#include "src/seq/sequence.h"
#include "src/util/coding.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/xml/symbols.h"

namespace xseq {

/// On-disk layout of the horizontal links inside an encoded index section.
enum class LinkSectionFormat : uint8_t {
  kPlainSerials,  ///< v2 images: one flat serial list; ends/covers derived
  kPackedBlocks,  ///< v3 images: block headers + packed words, verbatim
};

/// Immutable flattened index tree. Node serials are pre-order positions;
/// nodes() is indexed by serial.
class FrozenIndex {
 public:
  /// One trie node: the path it carries and the largest serial in its
  /// subtree (the serial itself is the array position).
  struct NodeRec {
    PathId path;
    uint32_t end;
  };

  /// One horizontal-link entry: the (n⊢, n⊣) label pair of Fig. 8. The
  /// resident representation is block-compressed; this is the materialized
  /// form Link() hands to cold callers (serializers, tests, tools).
  struct LinkEntry {
    uint32_t serial;
    uint32_t end;
  };

  size_t node_count() const { return nodes_.size(); }
  PathId path(uint32_t serial) const { return nodes_[serial].path; }
  uint32_t end(uint32_t serial) const { return nodes_[serial].end; }

  /// Entries in the horizontal link of `path`. O(1).
  uint32_t LinkSize(PathId path) const {
    if (path + 1 >= link_off_.size()) return 0;
    return link_off_[path + 1] - link_off_[path];
  }

  /// Compressed blocks in the horizontal link of `path`. O(1).
  uint32_t LinkBlocks(PathId path) const {
    return (LinkSize(path) + kLinkBlockSize - 1) / kLinkBlockSize;
  }

  /// Header of block `b` of `path`'s link — base serial, max end, widths —
  /// readable without decoding the block (the cursor's skip test).
  const LinkBlockHeader& LinkBlock(PathId path, uint32_t b) const {
    return link_blocks_[link_block_off_[path] + b];
  }

  /// Decodes block `b` of `path`'s link into `*out` (serials, ends, and
  /// link-local cover indices). The hot path caches these per cursor
  /// (LinkBlockCache); cold paths may decode straight to the stack.
  void DecodeLinkBlock(PathId path, uint32_t b, LinkBlockScratch* out) const;

  /// Decodes only the scratch columns in `streams` (kStream* mask) of
  /// block `b`. Requesting ends implies serials (ends are stored
  /// serial-relative). Returns the mask actually decoded — what a
  /// LinkBlockCache records per slot.
  uint32_t DecodeLinkBlockStreams(PathId path, uint32_t b, uint32_t streams,
                                  LinkBlockScratch* out) const;

  /// Materializes the horizontal link of `path`: (serial, end) pairs,
  /// serials ascending. O(link size) decode — for serializers, reference
  /// implementations, and tests, not for the match loop.
  std::vector<LinkEntry> Link(PathId path) const;

  /// Materializes the link's static nesting forest: element i is the
  /// link-local index of the tightest occurrence of `path` strictly
  /// enclosing entry i, or kNoLinkCover when none encloses it. O(link
  /// size); the match loop reads covers from decoded blocks instead.
  std::vector<uint32_t> LinkCover(PathId path) const;

  /// True when `path`'s link contains nested occurrences (identical sibling
  /// nodes, Eq. 5) — the only case where the sibling-cover test is needed.
  bool HasNested(PathId path) const {
    return path < nested_.size() && nested_[path] != 0;
  }

  /// Document ids attached exactly at node `serial` (the documents whose
  /// constraint sequence ends there). Together with the pre-order node walk
  /// this recovers every indexed document's sequence: the chain of path()
  /// labels from the root to `serial` *is* the sequence (the trie stores
  /// sequences; Theorem 1 then rebuilds the tree). Used by the offline
  /// reshard path.
  std::span<const DocId> DocsAtNode(uint32_t serial) const {
    uint32_t lo = node_docs_off_[serial];
    uint32_t hi = node_docs_off_[serial + 1];
    return std::span<const DocId>(docs_).subspan(lo, hi - lo);
  }

  /// Document ids attached in the subtree of `serial` (contiguous because
  /// doc lists are laid out in serial order).
  std::span<const DocId> DocsInSubtree(uint32_t serial) const {
    uint32_t lo = node_docs_off_[serial];
    uint32_t hi = node_docs_off_[nodes_[serial].end + 1];
    return std::span<const DocId>(docs_).subspan(lo, hi - lo);
  }

  /// Offset range into the global doc array for the subtree of `serial`.
  std::pair<uint32_t, uint32_t> DocOffsetsInSubtree(uint32_t serial) const {
    return {node_docs_off_[serial], node_docs_off_[nodes_[serial].end + 1]};
  }

  DocId doc_at(uint32_t offset) const { return docs_[offset]; }
  uint32_t total_docs() const { return static_cast<uint32_t>(docs_.size()); }

  /// Process-unique identity for compiled-query caching: assigned from a
  /// monotone counter at Freeze()/DecodeFrom() time, never reused within a
  /// process, never persisted. Two indexes share an id only if they are the
  /// same object, so a cache keyed on it can never serve a plan compiled
  /// against different vocabulary/link state. 0 = default-constructed
  /// (unfrozen) index; such indexes are never cached against.
  uint64_t plan_cache_id() const { return plan_cache_id_; }

  /// Draws a fresh id from the same never-reused process-wide space as
  /// plan_cache_id(). For alternative index representations (the paged
  /// index) whose caches key on index identity.
  static uint64_t NextIndexCacheId();
  size_t distinct_paths() const {
    return link_off_.empty() ? 0 : link_off_.size() - 1;
  }

  /// The packed link region verbatim (global block order / packed words),
  /// for serializers that ship the compressed form unchanged.
  std::span<const LinkBlockHeader> link_blocks() const { return link_blocks_; }
  std::span<const uint64_t> link_words() const { return link_words_; }

  /// Bytes of the resident arrays (the in-memory index footprint; links
  /// counted packed).
  uint64_t MemoryBytes() const;
  /// Bytes of the packed link region proper: block headers + packed
  /// words. Matches what InspectEncodedIndex reports for the on-disk v3
  /// link section; the per-path block directory is small bookkeeping
  /// that exists in both layouts and is counted by MemoryBytes only.
  uint64_t PackedLinkBytes() const;
  /// Bytes the links would occupy flat: 12 per entry (fused serial+end
  /// pair plus cover word) — the pre-compression representation.
  uint64_t LogicalLinkBytes() const;

  /// Deep integrity check of every structural invariant: laminar ranges,
  /// links partitioning the nodes in ascending order, block headers
  /// (counts, word offsets, bit widths, base serials, max ends) agreeing
  /// with their decoded contents, nested flags matching actual containment,
  /// and monotone doc offsets. O(index size). Used after deserialization
  /// and available to callers that load index files from untrusted media.
  Status Validate() const;

  /// Appends a binary encoding of the index to `dst` (see
  /// src/core/persist.h for the file format around it). kPackedBlocks
  /// writes the resident block-compressed links verbatim (v3 images);
  /// kPlainSerials writes the flat serial list (v2 images, for
  /// compatibility fixtures and downgrade tooling).
  void EncodeTo(std::string* dst,
                LinkSectionFormat format =
                    LinkSectionFormat::kPackedBlocks) const;
  /// Decodes an index previously written by EncodeTo with `format`.
  /// kPlainSerials input is recompressed into blocks on load.
  static StatusOr<FrozenIndex> DecodeFrom(
      Decoder* in,
      LinkSectionFormat format = LinkSectionFormat::kPackedBlocks);

 private:
  friend class TrieBuilder;

  /// Builds the packed link region (block directory, headers, words) from
  /// flat fused entries partitioned by link_off_; computes each link's
  /// nesting forest in one stack pass as it packs.
  void CompressLinks(const std::vector<LinkEntry>& entries);

  std::vector<NodeRec> nodes_;
  std::vector<uint32_t> node_docs_off_;  // size node_count()+1
  std::vector<DocId> docs_;              // grouped by owning node, serial order
  std::vector<uint32_t> link_off_;       // entry offsets; size max_path+2
  std::vector<uint32_t> link_block_off_; // block offsets; size max_path+2
  std::vector<LinkBlockHeader> link_blocks_;
  std::vector<uint64_t> link_words_;     // packed block payloads
  std::vector<uint8_t> nested_;          // per path
  uint64_t plan_cache_id_ = 0;           // derived: see plan_cache_id()
};

/// Mutable trie under construction.
class TrieBuilder {
 public:
  TrieBuilder() { pool_.push_back(BuildNode{kInvalidPath, -1, -1, {}}); }

  /// Inserts one sequence, attaching `doc` at the final node. Empty
  /// sequences are rejected.
  Status Insert(const Sequence& seq, DocId doc);

  /// Bulk load: sorts (sequence, doc) pairs and inserts them with
  /// longest-common-prefix reuse — no hash probing, better locality.
  /// Clears `input`.
  ///
  /// With a pool of width > 1 the sort runs in parallel, the sorted array is
  /// split into contiguous ranges built as independent subtries on the pool,
  /// and the subtries are stitched serially along the shared prefix spine
  /// between adjacent ranges. The resulting trie — and the FrozenIndex it
  /// freezes into — is bit-identical to the serial build.
  Status BulkLoad(std::vector<std::pair<Sequence, DocId>>* input,
                  ThreadPool* pool = nullptr);

  /// Number of trie nodes excluding the virtual root.
  size_t node_count() const { return pool_.size() - 1; }

  /// Flattens into the immutable index. The builder is consumed.
  FrozenIndex Freeze() &&;

 private:
  struct BuildNode {
    PathId path;
    int32_t first_child;
    int32_t last_child;  // for append-order child chaining
    std::vector<DocId> docs;
    int32_t next_sibling = -1;
  };

  int32_t FindOrAddChild(int32_t parent, PathId path);

  /// Appends the sorted range `data[0..count)` into `pool` (which must hold
  /// only a root) with LCP-stack reuse and no hash probing. Pure function of
  /// its arguments; safe to run on many ranges concurrently.
  static Status BuildSortedRange(const std::pair<Sequence, DocId>* data,
                                 size_t count, std::vector<BuildNode>* pool);

  /// Recomputes child_index_ from the pool (bulk loads skip hash
  /// maintenance; the first Insert afterwards pays for the rebuild).
  void RebuildChildIndex();

  std::vector<BuildNode> pool_;
  // (parent node id, path) -> child node id; used by incremental Insert.
  std::unordered_map<uint64_t, int32_t> child_index_;
  bool child_index_stale_ = false;
};

}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_TRIE_H_
