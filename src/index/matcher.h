// Constraint subsequence matching (Section 4.2, Algorithm 1).
//
// A query is a sequence of path-encoded elements plus, for each element, the
// position of its query-tree parent. Matching walks the index tree top-down
// through the horizontal path links: each element is matched to a trie node
// strictly inside the range of the previously matched node, so a successful
// match always lies on one root-to-leaf trie path.
//
// Two modes:
//  * kNaive      — plain subsequence matching (criterion 1 of Definition 3
//                  only). This is what ViST does before its join-based
//                  cleanup; with identical siblings it produces false alarms.
//  * kConstraint — additionally enforces criterion 2 through the
//                  sibling-cover test (Definition 4, generalized to tries):
//                  a candidate for element y with query parent x matched to
//                  node v is valid iff the tightest occurrence of path(x)
//                  containing the candidate is v itself. When path(x) has no
//                  nested occurrences the test is vacuous (Theorem 3).

#ifndef XSEQ_SRC_INDEX_MATCHER_H_
#define XSEQ_SRC_INDEX_MATCHER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/index/trie.h"
#include "src/seq/sequencer.h"
#include "src/util/status.h"

namespace xseq {

/// A compiled query sequence: element paths in match order and the query
/// tree's parent relation expressed in sequence positions.
struct QuerySeq {
  Sequence paths;
  std::vector<int32_t> parent;  ///< position of the parent element; -1 = root

  size_t size() const { return paths.size(); }
};

/// Builds the QuerySeq of a query tree `doc` under `sequencer` (which must
/// be the same strategy used for the data). Fails if the strategy emits a
/// child before its parent (never the case for the built-in sequencers).
StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer);

/// Matching mode (see file comment).
enum class MatchMode { kNaive, kConstraint };

/// Cost counters of one match run. See DESIGN.md "Query engine cost model"
/// for what each counter measures and how the fast paths are accounted.
struct MatchStats {
  uint64_t link_binary_searches = 0; ///< cold (unhinted) full binary searches
  uint64_t link_entries_read = 0;    ///< path-link entry accesses
  uint64_t link_gallop_probes = 0;   ///< hinted gallop / windowed probes
  uint64_t candidates = 0;           ///< candidate trie nodes expanded
  uint64_t sibling_checks = 0;       ///< sibling-cover tests performed
  uint64_t sibling_rejections = 0;   ///< candidates killed by the test
  uint64_t terminals = 0;            ///< complete query embeddings found
  uint64_t result_docs = 0;

  void Add(const MatchStats& o) {
    link_binary_searches += o.link_binary_searches;
    link_entries_read += o.link_entries_read;
    link_gallop_probes += o.link_gallop_probes;
    candidates += o.candidates;
    sibling_checks += o.sibling_checks;
    sibling_rejections += o.sibling_rejections;
    terminals += o.terminals;
    result_docs += o.result_docs;
  }
};

/// Borrowed view of one decoded link block's columns. Accessors hand these
/// out pointing either into a LinkBlockCache slot (compressed indexes) or
/// straight into flat arrays (uncompressed baselines). Only the columns
/// named in the `streams` mask of the call that produced the view are
/// meaningful; cache-backed views die on the next decode — watch the
/// accessor's DecodeStamp() to know when to re-fetch.
struct LinkColumns {
  const uint32_t* serials = nullptr;
  const uint32_t* ends = nullptr;
  const uint32_t* covers = nullptr;
};

/// A LinkColumns view plus what it takes to know it is still current:
/// which block it shows, which streams were requested, and the accessor's
/// DecodeStamp() when fetched. Match frames keep one per query position
/// (see MatchContext), so the frame spawned for the next candidate at the
/// same position — usually landing in the same block — revalidates with
/// two compares instead of refetching.
struct LinkBlockView {
  LinkColumns cols;
  uint32_t blk = 0xFFFFFFFFu;  ///< block shown; ~0 = empty
  uint32_t streams = 0;        ///< kStream* mask the view was fetched with
  uint64_t stamp = 0;          ///< accessor DecodeStamp() at fetch time
};

/// Set-associative cache of decoded link blocks, owned by a MatchContext.
/// Links are stored block-compressed; a query touches a modest set of hot
/// blocks (each element's scan window plus its parent's cover chain), and
/// batch workloads revisit the same blocks query after query, so the cache
/// is sized to hold the hot set of a medium index outright — decoding each
/// block once per context instead of once per touch. Four ways per set
/// absorb the hash collisions that made the old direct-mapped layout
/// re-decode two hot blocks against each other in lockstep. Slots are
/// allocated lazily on the first Get (one arena, ~1.5 MB) and recycled
/// with the context, so steady-state matching through a MatchContextPool
/// never allocates.
class LinkBlockCache {
 public:
  static constexpr uint32_t kWays = 4;
  static constexpr uint32_t kSets = 256;
  static constexpr uint32_t kSlots = kWays * kSets;

  LinkBlockCache() { keys_.fill(kEmptyKey); }

  /// Forgets all cached blocks.
  void Reset() { keys_.fill(kEmptyKey); }

  /// Rebinds the cache to the index identified by `id` (a process-unique
  /// FrozenIndex::plan_cache_id()-space value; called at the top of every
  /// match). Decoded blocks are immutable for a given index, so a context
  /// rebound to the SAME index keeps its contents — batch workloads
  /// decode each hot block once, not once per query. Any other id — or 0,
  /// the unfrozen/cache-less sentinel — drops everything.
  void BindIndex(uint64_t id) {
    if (id == bound_index_ && id != 0) return;
    bound_index_ = id;
    Reset();
  }

  /// Returns the decoded form of `block` of `path`'s link with at least
  /// the scratch columns in `streams` (kStream* mask) filled, invoking
  /// `decode(path, block, missing_mask, LinkBlockScratch*) -> filled_mask`
  /// for whatever is absent. Ends imply serials (they are stored
  /// serial-relative), so requesting kStreamEnds fetches both.
  template <typename DecodeFn>
  const LinkBlockScratch& Get(PathId path, uint32_t block, uint32_t streams,
                              DecodeFn&& decode) {
    if (streams & kStreamEnds) streams |= kStreamSerials;
    const uint64_t key =
        (static_cast<uint64_t>(path) << 32) | static_cast<uint64_t>(block);
    // Multiplicative mix of both halves: a query frame scans consecutive
    // blocks of its path while deeper frames scan other paths', so the
    // naive (path + block) % kSets degenerates into lockstep collisions
    // — each one a full block re-decode.
    const uint32_t base =
        (((path * 0x9E3779B1u) ^ (block * 0x85EBCA77u)) >> 16 &
         (kSets - 1)) *
        kWays;
    uint32_t slot = kSlots;
    for (uint32_t w = 0; w < kWays; ++w) {
      if (keys_[base + w] == key) {
        slot = base + w;
        break;
      }
    }
    if (slots_ == nullptr) {
      // Default-init: the POD scratch is guarded by keys_/have_, so a
      // fresh cache must not pay the multi-MB zero-fill.
      slots_.reset(new std::array<LinkBlockScratch, kSlots>);
    }
    if (slot == kSlots) {
      // Miss: evict the least-recently-used way of the set.
      slot = base;
      for (uint32_t w = 1; w < kWays; ++w) {
        if (ticks_[base + w] < ticks_[slot]) slot = base + w;
      }
      keys_[slot] = key;
      have_[slot] = decode(path, block, streams, &(*slots_)[slot]);
      ++decode_stamp_;
    } else if ((have_[slot] & streams) != streams) {
      have_[slot] |=
          decode(path, block, streams & ~have_[slot], &(*slots_)[slot]);
      ++decode_stamp_;
    }
    ticks_[slot] = ++tick_;
    return (*slots_)[slot];
  }

  /// Bumped on every decode into a slot — i.e. whenever a borrowed view
  /// into the cache may have been overwritten. A view fetched at stamp S
  /// is intact as long as decode_stamp() == S: slots are only rewritten
  /// by decodes, and a decode that merely adds a stream to a slot
  /// rewrites the existing columns with identical values.
  uint64_t decode_stamp() const { return decode_stamp_; }

 private:
  /// PathId is 31-bit and block directories are dense, so no valid
  /// (path, block) key packs to all-ones; ~0 is a safe empty marker.
  static constexpr uint64_t kEmptyKey = ~0ull;

  std::array<uint64_t, kSlots> keys_;
  std::array<uint32_t, kSlots> have_{};   // kStream* mask per slot
  std::array<uint32_t, kSlots> ticks_{};  // LRU stamps (see tick_)
  uint64_t bound_index_ = 0;
  uint64_t decode_stamp_ = 0;
  uint32_t tick_ = 0;  // monotone use counter feeding ticks_
  std::unique_ptr<std::array<LinkBlockScratch, kSlots>> slots_;
};

/// Reusable per-match scratch space. A match run needs a handful of small
/// arrays (matched serials, link cursors, terminal ranges) plus the decoded
/// block cache; batch workloads that allocate them per call churn the
/// allocator, so callers running many matches pass one context and the
/// buffers keep their capacity across calls. Contents carry no information
/// between calls — every MatchSequence resets them — so any context can
/// serve any query against any index, but a context must not be used by two
/// concurrent matches.
struct MatchContext {
  /// Link-local entry index of the matched node, per query position.
  std::vector<uint32_t> matched_link_idx;
  /// Last link cursor per query position (gallop-search seed).
  std::vector<uint32_t> link_hint;
  /// Doc-offset intervals of terminal subtrees.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  /// Per query position: the borrowed view of the block the scan loop is
  /// reading (scan_view) and of the parent block the sibling-cover test
  /// is walking (sib_view). See LinkBlockView.
  std::vector<LinkBlockView> scan_view;
  std::vector<LinkBlockView> sib_view;
  /// Decoded link blocks, keyed (path, block); see LinkBlockCache.
  LinkBlockCache block_cache;
};

/// A mutex-guarded free list of MatchContexts for concurrent batch callers.
/// Acquire/Release cost one lock each — negligible next to a match — and
/// contexts created once are recycled for the pool's lifetime.
class MatchContextPool {
 public:
  MatchContextPool() = default;
  MatchContextPool(const MatchContextPool&) = delete;
  MatchContextPool& operator=(const MatchContextPool&) = delete;

  /// Returns a free context, creating one when the pool is empty.
  std::unique_ptr<MatchContext> Acquire();
  /// Returns `ctx` to the free list.
  void Release(std::unique_ptr<MatchContext> ctx);

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<MatchContext>> free_;
};

/// RAII lease: acquires on construction, releases on destruction.
class MatchContextLease {
 public:
  explicit MatchContextLease(MatchContextPool* pool)
      : pool_(pool), ctx_(pool->Acquire()) {}
  ~MatchContextLease() { pool_->Release(std::move(ctx_)); }
  MatchContextLease(const MatchContextLease&) = delete;
  MatchContextLease& operator=(const MatchContextLease&) = delete;

  MatchContext* get() const { return ctx_.get(); }

 private:
  MatchContextPool* pool_;
  std::unique_ptr<MatchContext> ctx_;
};

/// Runs subsequence matching of `query` against `index`, appending matching
/// document ids (sorted, deduplicated) to `out`. `ctx`, when given, supplies
/// reusable scratch space (see MatchContext); results are identical with or
/// without it.
Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats = nullptr,
                     MatchContext* ctx = nullptr);

}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_H_
