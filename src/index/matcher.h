// Constraint subsequence matching (Section 4.2, Algorithm 1).
//
// A query is a sequence of path-encoded elements plus, for each element, the
// position of its query-tree parent. Matching walks the index tree top-down
// through the horizontal path links: each element is matched to a trie node
// strictly inside the range of the previously matched node, so a successful
// match always lies on one root-to-leaf trie path.
//
// Two modes:
//  * kNaive      — plain subsequence matching (criterion 1 of Definition 3
//                  only). This is what ViST does before its join-based
//                  cleanup; with identical siblings it produces false alarms.
//  * kConstraint — additionally enforces criterion 2 through the
//                  sibling-cover test (Definition 4, generalized to tries):
//                  a candidate for element y with query parent x matched to
//                  node v is valid iff the tightest occurrence of path(x)
//                  containing the candidate is v itself. When path(x) has no
//                  nested occurrences the test is vacuous (Theorem 3).

#ifndef XSEQ_SRC_INDEX_MATCHER_H_
#define XSEQ_SRC_INDEX_MATCHER_H_

#include <cstdint>
#include <vector>

#include "src/index/trie.h"
#include "src/seq/sequencer.h"
#include "src/util/status.h"

namespace xseq {

/// A compiled query sequence: element paths in match order and the query
/// tree's parent relation expressed in sequence positions.
struct QuerySeq {
  Sequence paths;
  std::vector<int32_t> parent;  ///< position of the parent element; -1 = root

  size_t size() const { return paths.size(); }
};

/// Builds the QuerySeq of a query tree `doc` under `sequencer` (which must
/// be the same strategy used for the data). Fails if the strategy emits a
/// child before its parent (never the case for the built-in sequencers).
StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer);

/// Matching mode (see file comment).
enum class MatchMode { kNaive, kConstraint };

/// Cost counters of one match run.
struct MatchStats {
  uint64_t link_binary_searches = 0;
  uint64_t link_entries_read = 0;    ///< path-link entry accesses
  uint64_t candidates = 0;           ///< candidate trie nodes expanded
  uint64_t sibling_checks = 0;       ///< sibling-cover tests performed
  uint64_t sibling_rejections = 0;   ///< candidates killed by the test
  uint64_t terminals = 0;            ///< complete query embeddings found
  uint64_t result_docs = 0;

  void Add(const MatchStats& o) {
    link_binary_searches += o.link_binary_searches;
    link_entries_read += o.link_entries_read;
    candidates += o.candidates;
    sibling_checks += o.sibling_checks;
    sibling_rejections += o.sibling_rejections;
    terminals += o.terminals;
    result_docs += o.result_docs;
  }
};

/// Runs subsequence matching of `query` against `index`, appending matching
/// document ids (sorted, deduplicated) to `out`.
Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats = nullptr);

}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_H_
