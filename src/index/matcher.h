// Constraint subsequence matching (Section 4.2, Algorithm 1).
//
// A query is a sequence of path-encoded elements plus, for each element, the
// position of its query-tree parent. Matching walks the index tree top-down
// through the horizontal path links: each element is matched to a trie node
// strictly inside the range of the previously matched node, so a successful
// match always lies on one root-to-leaf trie path.
//
// Two modes:
//  * kNaive      — plain subsequence matching (criterion 1 of Definition 3
//                  only). This is what ViST does before its join-based
//                  cleanup; with identical siblings it produces false alarms.
//  * kConstraint — additionally enforces criterion 2 through the
//                  sibling-cover test (Definition 4, generalized to tries):
//                  a candidate for element y with query parent x matched to
//                  node v is valid iff the tightest occurrence of path(x)
//                  containing the candidate is v itself. When path(x) has no
//                  nested occurrences the test is vacuous (Theorem 3).

#ifndef XSEQ_SRC_INDEX_MATCHER_H_
#define XSEQ_SRC_INDEX_MATCHER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/index/trie.h"
#include "src/seq/sequencer.h"
#include "src/util/status.h"

namespace xseq {

/// A compiled query sequence: element paths in match order and the query
/// tree's parent relation expressed in sequence positions.
struct QuerySeq {
  Sequence paths;
  std::vector<int32_t> parent;  ///< position of the parent element; -1 = root

  size_t size() const { return paths.size(); }
};

/// Builds the QuerySeq of a query tree `doc` under `sequencer` (which must
/// be the same strategy used for the data). Fails if the strategy emits a
/// child before its parent (never the case for the built-in sequencers).
StatusOr<QuerySeq> BuildQuerySeq(const Document& doc,
                                 const std::vector<PathId>& paths,
                                 const Sequencer& sequencer);

/// Matching mode (see file comment).
enum class MatchMode { kNaive, kConstraint };

/// Cost counters of one match run. See DESIGN.md "Query engine cost model"
/// for what each counter measures and how the fast paths are accounted.
struct MatchStats {
  uint64_t link_binary_searches = 0; ///< cold (unhinted) full binary searches
  uint64_t link_entries_read = 0;    ///< path-link entry accesses
  uint64_t link_gallop_probes = 0;   ///< hinted gallop / windowed probes
  uint64_t candidates = 0;           ///< candidate trie nodes expanded
  uint64_t sibling_checks = 0;       ///< sibling-cover tests performed
  uint64_t sibling_rejections = 0;   ///< candidates killed by the test
  uint64_t terminals = 0;            ///< complete query embeddings found
  uint64_t result_docs = 0;

  void Add(const MatchStats& o) {
    link_binary_searches += o.link_binary_searches;
    link_entries_read += o.link_entries_read;
    link_gallop_probes += o.link_gallop_probes;
    candidates += o.candidates;
    sibling_checks += o.sibling_checks;
    sibling_rejections += o.sibling_rejections;
    terminals += o.terminals;
    result_docs += o.result_docs;
  }
};

/// Reusable per-match scratch space. A match run needs a handful of small
/// arrays (matched serials, link cursors, terminal ranges); batch workloads
/// that allocate them per call churn the allocator, so callers running many
/// matches pass one context and the arrays keep their capacity across
/// calls. Contents carry no information between calls — every MatchSequence
/// resets them — so any context can serve any query against any index, but
/// a context must not be used by two concurrent matches.
struct MatchContext {
  /// Link-local entry index of the matched node, per query position.
  std::vector<uint32_t> matched_link_idx;
  /// Last link cursor per query position (gallop-search seed).
  std::vector<uint32_t> link_hint;
  /// Doc-offset intervals of terminal subtrees.
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
};

/// A mutex-guarded free list of MatchContexts for concurrent batch callers.
/// Acquire/Release cost one lock each — negligible next to a match — and
/// contexts created once are recycled for the pool's lifetime.
class MatchContextPool {
 public:
  MatchContextPool() = default;
  MatchContextPool(const MatchContextPool&) = delete;
  MatchContextPool& operator=(const MatchContextPool&) = delete;

  /// Returns a free context, creating one when the pool is empty.
  std::unique_ptr<MatchContext> Acquire();
  /// Returns `ctx` to the free list.
  void Release(std::unique_ptr<MatchContext> ctx);

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<MatchContext>> free_;
};

/// RAII lease: acquires on construction, releases on destruction.
class MatchContextLease {
 public:
  explicit MatchContextLease(MatchContextPool* pool)
      : pool_(pool), ctx_(pool->Acquire()) {}
  ~MatchContextLease() { pool_->Release(std::move(ctx_)); }
  MatchContextLease(const MatchContextLease&) = delete;
  MatchContextLease& operator=(const MatchContextLease&) = delete;

  MatchContext* get() const { return ctx_.get(); }

 private:
  MatchContextPool* pool_;
  std::unique_ptr<MatchContext> ctx_;
};

/// Runs subsequence matching of `query` against `index`, appending matching
/// document ids (sorted, deduplicated) to `out`. `ctx`, when given, supplies
/// reusable scratch space (see MatchContext); results are identical with or
/// without it.
Status MatchSequence(const FrozenIndex& index, const QuerySeq& query,
                     MatchMode mode, std::vector<DocId>* out,
                     MatchStats* stats = nullptr,
                     MatchContext* ctx = nullptr);

}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_MATCHER_H_
