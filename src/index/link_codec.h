// Block codec for horizontal path links.
//
// A link is a serial-sorted list of (serial, end, cover) triples. Stored
// flat that is 12 bytes per entry; almost all of it is redundancy — serials
// within a link are strictly ascending with tiny gaps, ends hug their
// serials, and cover pointers reach back only a few entries. The codec
// chops each link into fixed-size blocks of kLinkBlockSize entries and
// bit-packs each block with per-block widths:
//
//   serial  — stored as (delta to the previous serial) - 1; serials are
//             strictly ascending so the delta is >= 1, and runs of
//             identical-sibling leaves (consecutive serials) cost 0 bits.
//             The first serial of the block lives in the header.
//   end     — stored as end - serial (the subtree width; >= 0, and 0 for
//             every leaf).
//   cover   — stored as the backward distance (index - cover) to the
//             tightest enclosing occurrence, or 0 for "no cover"
//             (kNoLinkCover). Links without nesting pack to 0 bits.
//
// Each block carries a 16-byte POD header with the base serial (so a
// cursor can skip a block on the serial alone, without decoding), the
// block's maximum subtree end (the widest reach of any entry — lets range
// consumers rule a block out wholesale), the offset of the block's first
// packed word, and the three bit widths. Values are packed LSB-first into
// little-endian uint64 words; a block always starts on a word boundary, so
// blocks decode independently and a paged reader can lift exactly the
// block's words. Bit widths are chosen minimal per block, so a single
// outlier widens only its own block.

#ifndef XSEQ_SRC_INDEX_LINK_CODEC_H_
#define XSEQ_SRC_INDEX_LINK_CODEC_H_

#include <cstdint>
#include <vector>

namespace xseq {

/// Sentinel in link cover arrays: the entry has no enclosing occurrence of
/// its own path (it is a root of the link's nesting forest).
inline constexpr uint32_t kNoLinkCover = 0xFFFFFFFFu;

/// Entries per block. 128 keeps the decoded scratch (3 x 128 x 4 bytes)
/// inside L1 and a worst-case block (32-bit widths throughout) under half
/// a page.
inline constexpr uint32_t kLinkBlockSize = 128;

/// Per-block header. POD, fixed 16 bytes, written to disk verbatim.
struct LinkBlockHeader {
  uint32_t base_serial;    ///< serial of the block's first entry
  uint32_t max_end;        ///< max subtree end over the block's entries
  uint32_t word_off;       ///< index of the block's first packed word
  uint8_t count_minus_1;   ///< entries in the block, minus one
  uint8_t delta_bits;      ///< width of (serial delta - 1); 0 = consecutive
  uint8_t end_bits;        ///< width of (end - serial); 0 = all leaves
  uint8_t cover_bits;      ///< width of backward cover distance; 0 = none
};
static_assert(sizeof(LinkBlockHeader) == 16,
              "LinkBlockHeader is written to disk as raw bytes");

/// Decoded form of one block, the per-cursor scratch the matcher reads.
/// `covers` holds link-local indices (kNoLinkCover when none).
struct LinkBlockScratch {
  uint32_t serials[kLinkBlockSize];
  uint32_t ends[kLinkBlockSize];
  uint32_t covers[kLinkBlockSize];
};

/// Stream selectors for partial decodes. The three packed streams decode
/// independently (ends additionally need the serial stream, since they are
/// stored serial-relative); search probes read only serials, so decoding
/// per stream cuts the hot path's unpack work to a third.
inline constexpr uint32_t kStreamSerials = 1u << 0;
inline constexpr uint32_t kStreamEnds = 1u << 1;
inline constexpr uint32_t kStreamCovers = 1u << 2;
inline constexpr uint32_t kStreamAll =
    kStreamSerials | kStreamEnds | kStreamCovers;

/// Number of entries in block header `h`.
inline uint32_t LinkBlockCount(const LinkBlockHeader& h) {
  return static_cast<uint32_t>(h.count_minus_1) + 1;
}

/// Packed payload size of block `h` in 64-bit words. A block whose three
/// streams are all zero-width (single leaf entry, or a run of consecutive
/// sibling leaves) occupies no words at all — it is header-only.
inline uint32_t LinkBlockWords(const LinkBlockHeader& h) {
  const uint64_t c = LinkBlockCount(h);
  const uint64_t bits = (c - 1) * h.delta_bits + c * h.end_bits +
                        c * h.cover_bits;
  return static_cast<uint32_t>((bits + 63) / 64);
}

/// Hard ceiling of LinkBlockWords over all legal headers (widths <= 32):
/// paged readers use it to size block staging buffers on the stack.
inline constexpr uint32_t kMaxLinkBlockWords =
    ((kLinkBlockSize - 1) * 32 + kLinkBlockSize * 32 + kLinkBlockSize * 32 +
     63) /
    64;

/// Packs entries [0, count) of one link — `count` in [1, kLinkBlockSize] —
/// into a header plus words appended to `*words`. `local_base` is the
/// link-local index of entry 0 (cover distances are relative to it);
/// `covers[i]` must be kNoLinkCover or a link-local index < local_base + i.
/// Serials must be strictly ascending and ends[i] >= serials[i].
/// The returned header's word_off is the words->size() before the append.
LinkBlockHeader PackLinkBlock(const uint32_t* serials, const uint32_t* ends,
                              const uint32_t* covers, uint32_t count,
                              uint32_t local_base,
                              std::vector<uint64_t>* words);

/// Decodes the block `h` whose packed payload starts at `words` (the
/// block's first word, i.e. the caller already applied h.word_off).
/// `local_base` must be the same value the block was packed with. Fills
/// the first LinkBlockCount(h) slots of `*out`.
void UnpackLinkBlock(const LinkBlockHeader& h, const uint64_t* words,
                     uint32_t local_base, LinkBlockScratch* out);

/// Per-stream decodes (same contract as UnpackLinkBlock, restricted to one
/// scratch column). UnpackLinkEnds requires out->serials to be decoded
/// already — ends are stored as offsets from their serials.
void UnpackLinkSerials(const LinkBlockHeader& h, const uint64_t* words,
                       LinkBlockScratch* out);
void UnpackLinkEnds(const LinkBlockHeader& h, const uint64_t* words,
                    LinkBlockScratch* out);
void UnpackLinkCovers(const LinkBlockHeader& h, const uint64_t* words,
                      uint32_t local_base, LinkBlockScratch* out);

}  // namespace xseq

#endif  // XSEQ_SRC_INDEX_LINK_CODEC_H_
