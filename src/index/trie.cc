#include "src/index/trie.h"

#include <algorithm>
#include <atomic>

namespace xseq {

namespace {

/// Plan-cache identities start at 1 so 0 stays the "unfrozen" sentinel.
uint64_t NextPlanCacheId() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

uint64_t FrozenIndex::NextIndexCacheId() { return NextPlanCacheId(); }

uint64_t FrozenIndex::MemoryBytes() const {
  return nodes_.size() * sizeof(NodeRec) +
         node_docs_off_.size() * sizeof(uint32_t) +
         docs_.size() * sizeof(DocId) +
         link_off_.size() * sizeof(uint32_t) +
         link_block_off_.size() * sizeof(uint32_t) + nested_.size() +
         PackedLinkBytes();
}

uint64_t FrozenIndex::PackedLinkBytes() const {
  return link_blocks_.size() * sizeof(LinkBlockHeader) +
         link_words_.size() * sizeof(uint64_t);
}

uint64_t FrozenIndex::LogicalLinkBytes() const {
  const uint64_t entries = link_off_.empty() ? 0 : link_off_.back();
  return entries * (sizeof(LinkEntry) + sizeof(uint32_t));
}

void FrozenIndex::CompressLinks(const std::vector<LinkEntry>& entries) {
  link_blocks_.clear();
  link_words_.clear();
  link_block_off_.assign(link_off_.size(), 0);
  if (link_off_.empty()) return;

  std::vector<uint32_t> serials, ends, covers, stack;
  for (PathId p = 0; p + 1 < link_off_.size(); ++p) {
    link_block_off_[p] = static_cast<uint32_t>(link_blocks_.size());
    const uint32_t base = link_off_[p];
    const uint32_t size = link_off_[p + 1] - base;
    if (size == 0) continue;
    serials.resize(size);
    ends.resize(size);
    covers.resize(size);
    stack.clear();
    // One stack pass computes the nesting forest (tightest still-open
    // occurrence) alongside the column split the packer wants.
    for (uint32_t i = 0; i < size; ++i) {
      const LinkEntry& e = entries[base + i];
      serials[i] = e.serial;
      ends[i] = e.end;
      while (!stack.empty() && ends[stack.back()] < e.serial) {
        stack.pop_back();
      }
      covers[i] = stack.empty() ? kNoLinkCover : stack.back();
      stack.push_back(i);
    }
    for (uint32_t off = 0; off < size; off += kLinkBlockSize) {
      const uint32_t cnt = std::min(size - off, kLinkBlockSize);
      link_blocks_.push_back(PackLinkBlock(serials.data() + off,
                                           ends.data() + off,
                                           covers.data() + off, cnt, off,
                                           &link_words_));
    }
  }
  link_block_off_.back() = static_cast<uint32_t>(link_blocks_.size());
}

void FrozenIndex::DecodeLinkBlock(PathId path, uint32_t b,
                                  LinkBlockScratch* out) const {
  const LinkBlockHeader& h = link_blocks_[link_block_off_[path] + b];
  UnpackLinkBlock(h, link_words_.data() + h.word_off, b * kLinkBlockSize,
                  out);
}

uint32_t FrozenIndex::DecodeLinkBlockStreams(PathId path, uint32_t b,
                                             uint32_t streams,
                                             LinkBlockScratch* out) const {
  if (streams & kStreamEnds) streams |= kStreamSerials;
  const LinkBlockHeader& h = link_blocks_[link_block_off_[path] + b];
  const uint64_t* words = link_words_.data() + h.word_off;
  if (streams & kStreamSerials) UnpackLinkSerials(h, words, out);
  if (streams & kStreamEnds) UnpackLinkEnds(h, words, out);
  if (streams & kStreamCovers) {
    UnpackLinkCovers(h, words, b * kLinkBlockSize, out);
  }
  return streams;
}

std::vector<FrozenIndex::LinkEntry> FrozenIndex::Link(PathId path) const {
  std::vector<LinkEntry> out;
  const uint32_t size = LinkSize(path);
  out.reserve(size);
  LinkBlockScratch scratch;
  for (uint32_t b = 0; b * kLinkBlockSize < size; ++b) {
    DecodeLinkBlock(path, b, &scratch);
    const uint32_t cnt =
        std::min(size - b * kLinkBlockSize, kLinkBlockSize);
    for (uint32_t i = 0; i < cnt; ++i) {
      out.push_back(LinkEntry{scratch.serials[i], scratch.ends[i]});
    }
  }
  return out;
}

std::vector<uint32_t> FrozenIndex::LinkCover(PathId path) const {
  std::vector<uint32_t> out;
  const uint32_t size = LinkSize(path);
  out.reserve(size);
  LinkBlockScratch scratch;
  for (uint32_t b = 0; b * kLinkBlockSize < size; ++b) {
    DecodeLinkBlock(path, b, &scratch);
    const uint32_t cnt =
        std::min(size - b * kLinkBlockSize, kLinkBlockSize);
    for (uint32_t i = 0; i < cnt; ++i) out.push_back(scratch.covers[i]);
  }
  return out;
}

Status FrozenIndex::Validate() const {
  uint32_t n = static_cast<uint32_t>(nodes_.size());
  if (node_docs_off_.size() != n + 1 && !(n == 0 && node_docs_off_.empty())) {
    return Status::Corruption("doc offset array size mismatch");
  }
  // Ranges laminar and in-bounds.
  std::vector<uint32_t> stack;
  for (uint32_t s = 0; s < n; ++s) {
    if (nodes_[s].end < s || nodes_[s].end >= n) {
      return Status::Corruption("node range out of bounds at serial " +
                                std::to_string(s));
    }
    while (!stack.empty() && nodes_[stack.back()].end < s) stack.pop_back();
    if (!stack.empty() && nodes_[s].end > nodes_[stack.back()].end) {
      return Status::Corruption("node ranges are not laminar at serial " +
                                std::to_string(s));
    }
    stack.push_back(s);
  }
  // Doc offsets monotone and bounded.
  for (size_t i = 0; i + 1 < node_docs_off_.size(); ++i) {
    if (node_docs_off_[i] > node_docs_off_[i + 1]) {
      return Status::Corruption("doc offsets not monotone");
    }
  }
  if (!node_docs_off_.empty() && node_docs_off_.back() != docs_.size()) {
    return Status::Corruption("doc offsets do not cover the doc array");
  }
  // Links: ascending serials, fused ends matching the nodes, correct
  // paths, full partition, exact nested flags, exact cover forest, and
  // block headers (counts, widths, word offsets, max ends) agreeing with
  // their decoded contents.
  if (link_off_.empty() ? n != 0 : link_off_.back() != n) {
    return Status::Corruption("link array size mismatch");
  }
  if (link_block_off_.size() != link_off_.size()) {
    return Status::Corruption("link block directory size mismatch");
  }
  if (!link_block_off_.empty() &&
      link_block_off_.back() != link_blocks_.size()) {
    return Status::Corruption("link block directory does not cover blocks");
  }
  uint64_t word_cursor = 0;
  for (const LinkBlockHeader& h : link_blocks_) {
    if (LinkBlockCount(h) > kLinkBlockSize) {
      return Status::Corruption("link block entry count out of range");
    }
    if (h.delta_bits > 32 || h.end_bits > 32 || h.cover_bits > 32) {
      return Status::Corruption("link block bit width out of range");
    }
    if (h.word_off != word_cursor) {
      return Status::Corruption("link block word offset wrong");
    }
    word_cursor += LinkBlockWords(h);
  }
  if (word_cursor != link_words_.size()) {
    return Status::Corruption("link words do not cover the word array");
  }
  size_t paths = distinct_paths();
  std::vector<uint32_t> cover_stack;
  std::vector<uint32_t> s_all, e_all, c_all;
  LinkBlockScratch scratch;
  for (PathId p = 0; p < paths; ++p) {
    if (link_off_[p] > link_off_[p + 1] || link_off_[p + 1] > n) {
      return Status::Corruption("link offsets invalid for path " +
                                std::to_string(p));
    }
    const uint32_t size = link_off_[p + 1] - link_off_[p];
    const uint32_t blocks = (size + kLinkBlockSize - 1) / kLinkBlockSize;
    if (link_block_off_[p] > link_block_off_[p + 1] ||
        link_block_off_[p + 1] - link_block_off_[p] != blocks) {
      return Status::Corruption("link block count wrong for path " +
                                std::to_string(p));
    }
    s_all.resize(size);
    e_all.resize(size);
    c_all.resize(size);
    for (uint32_t b = 0; b < blocks; ++b) {
      const LinkBlockHeader& h = LinkBlock(p, b);
      const uint32_t off = b * kLinkBlockSize;
      const uint32_t cnt = std::min(size - off, kLinkBlockSize);
      if (LinkBlockCount(h) != cnt) {
        return Status::Corruption("link block entry count wrong for path " +
                                  std::to_string(p));
      }
      DecodeLinkBlock(p, b, &scratch);
      uint32_t block_max_end = 0;
      for (uint32_t i = 0; i < cnt; ++i) {
        s_all[off + i] = scratch.serials[i];
        e_all[off + i] = scratch.ends[i];
        c_all[off + i] = scratch.covers[i];
        block_max_end = std::max(block_max_end, scratch.ends[i]);
      }
      if (h.max_end != block_max_end) {
        return Status::Corruption("link block max end wrong for path " +
                                  std::to_string(p));
      }
    }
    bool contained = false, seen = false;
    uint32_t prev = 0, max_end = 0;
    cover_stack.clear();
    for (uint32_t i = 0; i < size; ++i) {
      uint32_t s = s_all[i];
      if (s >= n || nodes_[s].path != p) {
        return Status::Corruption("link entry points at a foreign node");
      }
      if (e_all[i] != nodes_[s].end) {
        return Status::Corruption("fused link end disagrees with node " +
                                  std::to_string(s));
      }
      if (seen && s <= prev) {
        return Status::Corruption("link not strictly ascending");
      }
      if (seen && s <= max_end) contained = true;
      max_end = seen ? std::max(max_end, e_all[i]) : e_all[i];
      prev = s;
      seen = true;
      // The cover entry must name the tightest still-open occurrence.
      while (!cover_stack.empty() && e_all[cover_stack.back()] < s) {
        cover_stack.pop_back();
      }
      uint32_t expect =
          cover_stack.empty() ? kNoLinkCover : cover_stack.back();
      if (c_all[i] != expect) {
        return Status::Corruption("link cover wrong for path " +
                                  std::to_string(p));
      }
      cover_stack.push_back(i);
    }
    bool flagged = p < nested_.size() && nested_[p] != 0;
    if (flagged != contained) {
      return Status::Corruption("nested flag wrong for path " +
                                std::to_string(p));
    }
  }
  return Status::OK();
}

void FrozenIndex::EncodeTo(std::string* dst, LinkSectionFormat format) const {
  PutPodVector(dst, nodes_);
  PutPodVector(dst, node_docs_off_);
  PutPodVector(dst, docs_);
  PutPodVector(dst, link_off_);
  if (format == LinkSectionFormat::kPlainSerials) {
    // v2 images store one flat serial list; ends, covers, and blocks are
    // derived on load. Kept for compatibility fixtures and downgrades.
    std::vector<uint32_t> serials;
    serials.reserve(link_off_.empty() ? 0 : link_off_.back());
    for (PathId p = 0; p + 1 < link_off_.size(); ++p) {
      for (const LinkEntry& e : Link(p)) serials.push_back(e.serial);
    }
    PutPodVector(dst, serials);
  } else {
    // v3 images ship the packed blocks verbatim: re-encoding a decoded
    // image is byte-identical, and loading needs no recompression. The
    // per-path block directory is derived from link_off_ on load.
    PutPodVector(dst, link_blocks_);
    PutPodVector(dst, link_words_);
  }
  PutPodVector(dst, nested_);
}

StatusOr<FrozenIndex> FrozenIndex::DecodeFrom(Decoder* in,
                                              LinkSectionFormat format) {
  FrozenIndex out;
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.nodes_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.node_docs_off_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.docs_));
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.link_off_));
  // Bounds must hold before the derived arrays are built (Validate runs
  // later and assumes in-bounds access).
  for (size_t i = 0; i + 1 < out.link_off_.size(); ++i) {
    if (out.link_off_[i] > out.link_off_[i + 1]) {
      return Status::Corruption("link offsets not monotone");
    }
  }
  if (!out.link_off_.empty() && out.link_off_.back() != out.nodes_.size()) {
    return Status::Corruption("link array size mismatch");
  }
  if (out.link_off_.empty() && !out.nodes_.empty()) {
    return Status::Corruption("link array size mismatch");
  }
  if (format == LinkSectionFormat::kPlainSerials) {
    std::vector<uint32_t> serials;
    XSEQ_RETURN_IF_ERROR(in->GetPodVector(&serials));
    if (serials.size() != out.nodes_.size()) {
      return Status::Corruption("link array size mismatch");
    }
    std::vector<LinkEntry> entries(serials.size());
    for (size_t i = 0; i < serials.size(); ++i) {
      if (serials[i] >= out.nodes_.size()) {
        return Status::Corruption("link entry serial out of range");
      }
      entries[i] = LinkEntry{serials[i], out.nodes_[serials[i]].end};
    }
    out.CompressLinks(entries);
  } else {
    XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.link_blocks_));
    XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.link_words_));
    // Rebuild the per-path block directory from link_off_ and verify the
    // headers are structurally safe (entry counts within the scratch,
    // widths within the reader, word offsets exactly cumulative) BEFORE
    // anything decodes a block. Content checks live in Validate().
    out.link_block_off_.assign(out.link_off_.size(), 0);
    uint64_t block_cursor = 0;
    for (size_t p = 0; p + 1 < out.link_off_.size(); ++p) {
      out.link_block_off_[p] = static_cast<uint32_t>(block_cursor);
      const uint32_t size = out.link_off_[p + 1] - out.link_off_[p];
      block_cursor += (size + kLinkBlockSize - 1) / kLinkBlockSize;
    }
    if (!out.link_block_off_.empty()) {
      out.link_block_off_.back() = static_cast<uint32_t>(block_cursor);
    }
    if (block_cursor != out.link_blocks_.size()) {
      return Status::Corruption("link block count disagrees with offsets");
    }
    uint64_t word_cursor = 0;
    for (const LinkBlockHeader& h : out.link_blocks_) {
      if (LinkBlockCount(h) > kLinkBlockSize) {
        return Status::Corruption("link block entry count out of range");
      }
      if (h.delta_bits > 32 || h.end_bits > 32 || h.cover_bits > 32) {
        return Status::Corruption("link block bit width out of range");
      }
      if (h.word_off != word_cursor) {
        return Status::Corruption("link block word offset wrong");
      }
      word_cursor += LinkBlockWords(h);
    }
    if (word_cursor != out.link_words_.size()) {
      return Status::Corruption("link words do not cover the word array");
    }
  }
  XSEQ_RETURN_IF_ERROR(in->GetPodVector(&out.nested_));
  if (out.node_docs_off_.size() != out.nodes_.size() + 1 &&
      !(out.nodes_.empty() && out.node_docs_off_.empty())) {
    return Status::Corruption("index arrays are inconsistent");
  }
  out.plan_cache_id_ = NextPlanCacheId();
  return out;
}

void TrieBuilder::RebuildChildIndex() {
  child_index_.clear();
  child_index_.reserve(pool_.size());
  for (int32_t id = 0; id < static_cast<int32_t>(pool_.size()); ++id) {
    for (int32_t c = pool_[id].first_child; c != -1;
         c = pool_[c].next_sibling) {
      child_index_.emplace(
          (static_cast<uint64_t>(id) << 32) | pool_[c].path, c);
    }
  }
  child_index_stale_ = false;
}

int32_t TrieBuilder::FindOrAddChild(int32_t parent, PathId path) {
  uint64_t key = (static_cast<uint64_t>(parent) << 32) | path;
  auto it = child_index_.find(key);
  if (it != child_index_.end()) return it->second;
  int32_t id = static_cast<int32_t>(pool_.size());
  pool_.push_back(BuildNode{path, -1, -1, {}, -1});
  BuildNode& p = pool_[parent];
  if (p.last_child == -1) {
    p.first_child = id;
  } else {
    pool_[p.last_child].next_sibling = id;
  }
  p.last_child = id;
  child_index_.emplace(key, id);
  return id;
}

Status TrieBuilder::Insert(const Sequence& seq, DocId doc) {
  if (seq.empty()) {
    return Status::InvalidArgument("cannot index an empty sequence");
  }
  if (child_index_stale_) RebuildChildIndex();
  int32_t cur = 0;
  for (PathId p : seq) {
    if (p == kInvalidPath || p == kEpsilonPath) {
      return Status::InvalidArgument("sequence contains an invalid path id");
    }
    cur = FindOrAddChild(cur, p);
  }
  pool_[cur].docs.push_back(doc);
  return Status::OK();
}

Status TrieBuilder::BuildSortedRange(const std::pair<Sequence, DocId>* data,
                                     size_t count,
                                     std::vector<BuildNode>* pool) {
  std::vector<int32_t> stack;  // node ids along the previous sequence
  const Sequence* prev = nullptr;
  for (size_t r = 0; r < count; ++r) {
    const Sequence& seq = data[r].first;
    if (seq.empty()) {
      return Status::InvalidArgument("cannot index an empty sequence");
    }
    size_t lcp = 0;
    if (prev != nullptr) {
      size_t n = std::min(prev->size(), seq.size());
      while (lcp < n && (*prev)[lcp] == seq[lcp]) ++lcp;
    }
    stack.resize(lcp);
    for (size_t i = lcp; i < seq.size(); ++i) {
      PathId p = seq[i];
      if (p == kInvalidPath || p == kEpsilonPath) {
        return Status::InvalidArgument(
            "sequence contains an invalid path id");
      }
      int32_t parent = stack.empty() ? 0 : stack.back();
      // In sorted order a reusable child is always covered by the LCP with
      // the previous sequence, so a fresh node is always correct here — no
      // hash probing needed.
      int32_t id = static_cast<int32_t>(pool->size());
      pool->push_back(BuildNode{p, -1, -1, {}, -1});
      BuildNode& par = (*pool)[parent];
      if (par.last_child == -1) {
        par.first_child = id;
      } else {
        (*pool)[par.last_child].next_sibling = id;
      }
      par.last_child = id;
      stack.push_back(id);
    }
    (*pool)[stack.back()].docs.push_back(data[r].second);
    prev = &seq;
  }
  return Status::OK();
}

Status TrieBuilder::BulkLoad(std::vector<std::pair<Sequence, DocId>>* input,
                             ThreadPool* pool) {
  auto cmp = [](const std::pair<Sequence, DocId>& a,
                const std::pair<Sequence, DocId>& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  };

  if (pool_.size() > 1 || !child_index_.empty()) {
    // Incremental bulk into a non-empty trie: existing children may be
    // reusable beyond the LCP with the previous sequence, so fall back to
    // hash-probing inserts.
    if (child_index_stale_) RebuildChildIndex();
    std::sort(input->begin(), input->end(), cmp);
    std::vector<int32_t> stack;
    const Sequence* prev = nullptr;
    for (auto& [seq, doc] : *input) {
      if (seq.empty()) {
        return Status::InvalidArgument("cannot index an empty sequence");
      }
      size_t lcp = 0;
      if (prev != nullptr) {
        size_t n = std::min(prev->size(), seq.size());
        while (lcp < n && (*prev)[lcp] == seq[lcp]) ++lcp;
      }
      stack.resize(lcp);
      for (size_t i = lcp; i < seq.size(); ++i) {
        PathId p = seq[i];
        if (p == kInvalidPath || p == kEpsilonPath) {
          return Status::InvalidArgument(
              "sequence contains an invalid path id");
        }
        int32_t parent = stack.empty() ? 0 : stack.back();
        stack.push_back(FindOrAddChild(parent, p));
      }
      pool_[stack.back()].docs.push_back(doc);
      prev = &seq;
    }
    input->clear();
    return Status::OK();
  }

  const size_t width =
      pool == nullptr ? 1 : static_cast<size_t>(pool->width());
  ParallelSort(pool, input, cmp);

  if (width <= 1 || input->size() < 64) {
    Status st = BuildSortedRange(input->data(), input->size(), &pool_);
    if (!st.ok()) return st;
    child_index_stale_ = pool_.size() > 1;
    input->clear();
    return Status::OK();
  }

  // Split the sorted array into contiguous ranges and build each range as an
  // independent subtrie on the pool. (Partitioning by first element alone
  // would be useless for single-rooted corpora — every record sequence
  // starts with the root path — so ranges are equal-size slices and the
  // stitch below merges the prefix spine adjacent ranges share.)
  const size_t n = input->size();
  const size_t ranges = std::min(width, n);
  std::vector<size_t> bounds(ranges + 1);
  for (size_t c = 0; c <= ranges; ++c) bounds[c] = n * c / ranges;
  struct Local {
    std::vector<BuildNode> pool;
    Status status;
  };
  std::vector<Local> locals(ranges);
  pool->ParallelFor(ranges, [&](size_t c) {
    locals[c].pool.push_back(BuildNode{kInvalidPath, -1, -1, {}, -1});
    locals[c].status = BuildSortedRange(input->data() + bounds[c],
                                        bounds[c + 1] - bounds[c],
                                        &locals[c].pool);
  });
  for (const Local& local : locals) {
    if (!local.status.ok()) return local.status;
  }

  // Serial stitch. Adjacent ranges overlap only along one root-to-node path:
  // the LCP of the last sequence of the merged prefix and the first sequence
  // of the incoming range — i.e. the merged trie's rightmost spine vs the
  // local trie's leftmost spine. Shared spine nodes merge; every other local
  // node is appended with remapped child/sibling pointers. Child chains stay
  // in ascending path order (grafted children sort after everything already
  // in the chain), so Freeze() emits the same pre-order index as a serial
  // build.
  std::vector<int32_t> spine;  // global rightmost spine, by depth
  for (size_t c = 0; c < ranges; ++c) {
    std::vector<BuildNode>& L = locals[c].pool;
    if (L.size() <= 1) continue;

    size_t shared = 0;
    {
      int32_t lnode = L[0].first_child;
      while (lnode != -1 && shared < spine.size() &&
             pool_[spine[shared]].path == L[lnode].path) {
        ++shared;
        lnode = L[lnode].first_child;
      }
    }

    std::vector<int32_t> map(L.size(), -1);
    map[0] = 0;
    {
      int32_t lnode = L[0].first_child;
      for (size_t d = 0; d < shared; ++d) {
        map[lnode] = spine[d];
        lnode = L[lnode].first_child;
      }
    }
    const int32_t base = static_cast<int32_t>(pool_.size());
    {
      int32_t next_id = base;
      for (size_t x = 1; x < L.size(); ++x) {
        if (map[x] == -1) map[x] = next_id++;
      }
    }
    auto remap = [&map](int32_t v) { return v == -1 ? -1 : map[v]; };
    pool_.reserve(pool_.size() + L.size() - 1 - shared);
    for (size_t x = 1; x < L.size(); ++x) {
      if (map[x] < base) continue;  // merged into an existing spine node
      BuildNode bn{L[x].path, remap(L[x].first_child),
                   remap(L[x].last_child), std::move(L[x].docs),
                   remap(L[x].next_sibling)};
      pool_.push_back(std::move(bn));
    }

    // Graft the local chain starting at `lchild` (local ids) onto the end
    // of `gnode`'s child chain.
    auto graft = [&](int32_t gnode, int32_t lchild) {
      for (int32_t ch = lchild; ch != -1; ch = L[ch].next_sibling) {
        int32_t gc = map[ch];
        BuildNode& g = pool_[gnode];
        if (g.last_child == -1) {
          g.first_child = gc;
        } else {
          pool_[g.last_child].next_sibling = gc;
        }
        g.last_child = gc;
      }
    };

    int32_t lnode = L[0].first_child;
    graft(0, shared == 0 ? lnode : L[lnode].next_sibling);
    for (size_t d = 0; d < shared; ++d) {
      BuildNode& ln = L[lnode];
      int32_t gid = spine[d];
      pool_[gid].docs.insert(pool_[gid].docs.end(), ln.docs.begin(),
                             ln.docs.end());
      int32_t child = ln.first_child;
      if (d + 1 < shared) {
        graft(gid, L[child].next_sibling);
        lnode = child;
      } else {
        graft(gid, child);
      }
    }

    spine.clear();
    for (int32_t x = L[0].last_child; x != -1; x = L[x].last_child) {
      spine.push_back(map[x]);
    }
  }

  child_index_stale_ = pool_.size() > 1;
  input->clear();
  return Status::OK();
}

FrozenIndex TrieBuilder::Freeze() && {
  FrozenIndex out;
  size_t n = pool_.size() - 1;
  out.nodes_.reserve(n);
  out.node_docs_off_.reserve(n + 1);

  PathId max_path = 0;
  uint32_t doc_cursor = 0;

  // Iterative pre-order DFS. An entry with enter=true assigns the serial;
  // the matching enter=false entry patches the subtree end once all
  // descendants are numbered. Children are pushed in reverse so they pop in
  // insertion order.
  struct Work {
    int32_t node;
    uint32_t serial;  // meaningful when !enter
    bool enter;
  };
  std::vector<Work> work;

  auto push_children = [&](int32_t node) {
    size_t first = work.size();
    for (int32_t c = pool_[node].first_child; c != -1;
         c = pool_[c].next_sibling) {
      work.push_back(Work{c, 0, true});
    }
    std::reverse(work.begin() + static_cast<ptrdiff_t>(first), work.end());
  };

  push_children(0);
  while (!work.empty()) {
    Work w = work.back();
    work.pop_back();
    if (!w.enter) {
      out.nodes_[w.serial].end =
          static_cast<uint32_t>(out.nodes_.size()) - 1;
      continue;
    }
    BuildNode& bn = pool_[w.node];
    uint32_t serial = static_cast<uint32_t>(out.nodes_.size());
    out.nodes_.push_back(FrozenIndex::NodeRec{bn.path, serial});
    max_path = std::max(max_path, bn.path);

    out.node_docs_off_.push_back(doc_cursor);
    std::sort(bn.docs.begin(), bn.docs.end());
    for (DocId d : bn.docs) {
      out.docs_.push_back(d);
      ++doc_cursor;
    }

    work.push_back(Work{w.node, serial, false});
    push_children(w.node);
  }
  out.node_docs_off_.push_back(doc_cursor);

  // Path links: counting sort of serials by path. Iterating serials in
  // ascending order keeps every link sorted.
  out.link_off_.assign(static_cast<size_t>(max_path) + 2, 0);
  for (const auto& rec : out.nodes_) ++out.link_off_[rec.path + 1];
  for (size_t i = 1; i < out.link_off_.size(); ++i) {
    out.link_off_[i] += out.link_off_[i - 1];
  }
  std::vector<FrozenIndex::LinkEntry> entries(out.nodes_.size());
  out.nested_.assign(static_cast<size_t>(max_path) + 1, 0);
  {
    std::vector<uint32_t> cursor(out.link_off_.begin(),
                                 out.link_off_.end() - 1);
    // Running max subtree end per path detects nested occurrences
    // (identical sibling nodes, Eq. 5) in one ascending pass.
    std::vector<uint32_t> max_end(static_cast<size_t>(max_path) + 1, 0);
    std::vector<uint8_t> seen(static_cast<size_t>(max_path) + 1, 0);
    for (uint32_t serial = 0;
         serial < static_cast<uint32_t>(out.nodes_.size()); ++serial) {
      PathId p = out.nodes_[serial].path;
      entries[cursor[p]++] =
          FrozenIndex::LinkEntry{serial, out.nodes_[serial].end};
      if (seen[p] && serial <= max_end[p]) out.nested_[p] = 1;
      max_end[p] = std::max(seen[p] ? max_end[p] : 0u,
                            out.nodes_[serial].end);
      seen[p] = 1;
    }
  }
  out.CompressLinks(entries);
  out.plan_cache_id_ = NextPlanCacheId();

  pool_.clear();
  child_index_.clear();
  return out;
}

}  // namespace xseq
