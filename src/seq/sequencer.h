// Sequencers: user strategies `g` that order path-encoded nodes.
//
// All strategies except breadth-first produce *valid* constraint sequences
// under the forward-prefix constraint f2 (Eq. 3): whenever a node's path is
// marked repeatable (identical siblings can occur for it anywhere in the
// data), its whole subtree is emitted contiguously, which is the paper's
// Algorithm 2 grouping rule.
//
// The grouping decision is driven by the *schema* (may_repeat per path), not
// by the instance. This is what keeps the order of a query sequence
// compatible with the order of every data sequence — a query that does not
// itself contain the repeated sibling still groups the same way the data
// does (see DESIGN.md, "Grouping must be schema-driven").
//
// Breadth-first is provided because the paper evaluates it (Fig. 14), but it
// is only a valid constraint sequencing for data without identical siblings.

#ifndef XSEQ_SRC_SEQ_SEQUENCER_H_
#define XSEQ_SRC_SEQ_SEQUENCER_H_

#include <memory>
#include <vector>

#include "src/seq/sequence.h"
#include "src/util/rng.h"
#include "src/xml/tree.h"

namespace xseq {

/// Per-path inputs of the probability strategy g_best: the weighted root
/// occurrence probability p'(C|root) = p(C|root) * w(C) and the repeatable
/// flag. Indexed by PathId; built by Schema::BuildModel().
struct SequencingModel {
  std::vector<double> priority;     ///< p'(path | root); higher emits earlier
  std::vector<uint8_t> may_repeat;  ///< identical siblings possible for path

  double PriorityOf(PathId p) const {
    return p < priority.size() ? priority[p] : 0.0;
  }
  bool MayRepeat(PathId p) const {
    return p < may_repeat.size() && may_repeat[p] != 0;
  }
};

/// The available strategies.
enum class SequencerKind {
  kDepthFirst,
  kBreadthFirst,
  kRandom,       ///< arbitrary order within constraint f2
  kProbability,  ///< g_best: descending p'(C|root) within constraint f2
};

/// Returns a short stable name ("depth-first", ...).
const char* SequencerKindName(SequencerKind kind);

/// Interface of a sequencing strategy.
class Sequencer {
 public:
  virtual ~Sequencer() = default;

  /// Emits the nodes of `doc` in sequence order. `paths[node->index]` must
  /// hold the PathId of every node (from BindPaths).
  virtual std::vector<const Node*> EncodeOrder(
      const Document& doc, const std::vector<PathId>& paths) const = 0;

  /// The constraint sequence of `doc`: EncodeOrder mapped through `paths`.
  Sequence Encode(const Document& doc,
                  const std::vector<PathId>& paths) const;

  virtual SequencerKind kind() const = 0;
};

/// Depth-first traversal in document child order (ViST's sequencing).
class DepthFirstSequencer : public Sequencer {
 public:
  std::vector<const Node*> EncodeOrder(
      const Document& doc, const std::vector<PathId>& paths) const override;
  SequencerKind kind() const override { return SequencerKind::kDepthFirst; }
};

/// Level-order traversal. Valid only without identical siblings.
class BreadthFirstSequencer : public Sequencer {
 public:
  std::vector<const Node*> EncodeOrder(
      const Document& doc, const std::vector<PathId>& paths) const override;
  SequencerKind kind() const override { return SequencerKind::kBreadthFirst; }
};

/// Uniformly random order among the nodes whose parent was emitted, subject
/// to the f2 grouping rule. Deterministic per (seed, doc id).
class RandomSequencer : public Sequencer {
 public:
  explicit RandomSequencer(std::shared_ptr<const SequencingModel> model,
                           uint64_t seed = 42)
      : model_(std::move(model)), seed_(seed) {}

  std::vector<const Node*> EncodeOrder(
      const Document& doc, const std::vector<PathId>& paths) const override;
  SequencerKind kind() const override { return SequencerKind::kRandom; }

 private:
  std::shared_ptr<const SequencingModel> model_;
  uint64_t seed_;
};

/// g_best (Algorithm 2): emit available nodes by descending weighted
/// occurrence probability; subtrees of repeatable paths are contiguous.
class ProbabilitySequencer : public Sequencer {
 public:
  explicit ProbabilitySequencer(std::shared_ptr<const SequencingModel> model)
      : model_(std::move(model)) {}

  std::vector<const Node*> EncodeOrder(
      const Document& doc, const std::vector<PathId>& paths) const override;
  SequencerKind kind() const override { return SequencerKind::kProbability; }

 private:
  std::shared_ptr<const SequencingModel> model_;
};

/// Factory. `model` is required for kRandom and kProbability.
std::unique_ptr<Sequencer> MakeSequencer(
    SequencerKind kind, std::shared_ptr<const SequencingModel> model = {},
    uint64_t seed = 42);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_SEQUENCER_H_
