#include "src/seq/prufer.h"

#include <queue>

namespace xseq {

namespace {

void PostOrderRec(const Node* n, uint32_t* counter,
                  std::vector<uint32_t>* out) {
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    PostOrderRec(c, counter, out);
  }
  (*out)[n->index] = ++(*counter);
}

}  // namespace

std::vector<uint32_t> PostOrderNumbers(const Document& doc) {
  std::vector<uint32_t> out(doc.node_count(), 0);
  uint32_t counter = 0;
  if (doc.root() != nullptr) PostOrderRec(doc.root(), &counter, &out);
  return out;
}

std::vector<uint32_t> PruferEncode(const Document& doc) {
  size_t n = doc.node_count();
  std::vector<uint32_t> code;
  if (n <= 1) return code;
  code.reserve(n - 1);

  std::vector<uint32_t> number = PostOrderNumbers(doc);
  // by_number[l] = node with post-order number l (1-based).
  std::vector<const Node*> by_number(n + 1, nullptr);
  for (const Node* node : doc.nodes()) by_number[number[node->index]] = node;

  std::vector<uint32_t> remaining_children(n, 0);
  for (const Node* node : doc.nodes()) {
    remaining_children[node->index] =
        static_cast<uint32_t>(node->ChildCount());
  }

  // Min-heap of numbers of current leaves.
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> leaves;
  for (const Node* node : doc.nodes()) {
    if (node->first_child == nullptr) leaves.push(number[node->index]);
  }

  uint32_t root_number = number[doc.root()->index];
  while (code.size() < n - 1) {
    uint32_t l = leaves.top();
    leaves.pop();
    if (l == root_number) continue;  // never delete the root
    const Node* leaf = by_number[l];
    const Node* parent = leaf->parent;
    code.push_back(number[parent->index]);
    if (--remaining_children[parent->index] == 0) {
      leaves.push(number[parent->index]);
    }
  }
  return code;
}

StatusOr<std::vector<uint32_t>> PruferDecode(
    const std::vector<uint32_t>& code) {
  if (code.empty()) {
    // Single-node tree: label 1 is the root.
    return std::vector<uint32_t>{0, 0};
  }
  uint32_t n = static_cast<uint32_t>(code.size()) + 1;
  std::vector<uint32_t> child_count(n + 1, 0);
  for (uint32_t p : code) {
    if (p < 1 || p > n) {
      return Status::InvalidArgument("Prüfer code symbol out of range");
    }
    ++child_count[p];
  }

  std::vector<uint32_t> parent(n + 1, 0);
  std::priority_queue<uint32_t, std::vector<uint32_t>, std::greater<>> leaves;
  for (uint32_t l = 1; l <= n; ++l) {
    if (child_count[l] == 0) {
      if (l == n) {
        return Status::InvalidArgument(
            "root (largest label) must appear in a non-trivial code");
      }
      leaves.push(l);
    }
  }

  for (uint32_t p : code) {
    if (leaves.empty()) {
      return Status::InvalidArgument("malformed Prüfer code (no leaf left)");
    }
    uint32_t l = leaves.top();
    leaves.pop();
    parent[l] = p;
    if (--child_count[p] == 0 && p != n) leaves.push(p);
  }
  parent[n] = 0;  // root
  return parent;
}

}  // namespace xseq
