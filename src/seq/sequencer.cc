#include "src/seq/sequencer.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>

namespace xseq {

const char* SequencerKindName(SequencerKind kind) {
  switch (kind) {
    case SequencerKind::kDepthFirst:
      return "depth-first";
    case SequencerKind::kBreadthFirst:
      return "breadth-first";
    case SequencerKind::kRandom:
      return "random";
    case SequencerKind::kProbability:
      return "constraint";  // the paper's "CS" series
  }
  return "unknown";
}

Sequence Sequencer::Encode(const Document& doc,
                           const std::vector<PathId>& paths) const {
  std::vector<const Node*> order = EncodeOrder(doc, paths);
  Sequence out;
  out.reserve(order.size());
  for (const Node* n : order) out.push_back(paths[n->index]);
  return out;
}

namespace {

/// Children of `n` in canonical order: ascending path id, document position
/// breaking ties among identical siblings. Sequencing must be a pure
/// function of the paths — not of the incidental child order in the input —
/// or a query whose branches are written in a different order than the data
/// would be falsely dismissed.
std::vector<const Node*> CanonicalChildren(const Node* n,
                                           const std::vector<PathId>& paths) {
  std::vector<const Node*> kids;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    kids.push_back(c);
  }
  std::stable_sort(kids.begin(), kids.end(),
                   [&paths](const Node* a, const Node* b) {
                     return paths[a->index] < paths[b->index];
                   });
  return kids;
}

void DepthFirstRec(const Node* n, const std::vector<PathId>& paths,
                   std::vector<const Node*>* out) {
  out->push_back(n);
  for (const Node* c : CanonicalChildren(n, paths)) {
    DepthFirstRec(c, paths, out);
  }
}

}  // namespace

std::vector<const Node*> DepthFirstSequencer::EncodeOrder(
    const Document& doc, const std::vector<PathId>& paths) const {
  std::vector<const Node*> out;
  out.reserve(doc.node_count());
  if (doc.root() != nullptr) DepthFirstRec(doc.root(), paths, &out);
  return out;
}

std::vector<const Node*> BreadthFirstSequencer::EncodeOrder(
    const Document& doc, const std::vector<PathId>& paths) const {
  std::vector<const Node*> out;
  out.reserve(doc.node_count());
  if (doc.root() == nullptr) return out;
  std::deque<const Node*> queue{doc.root()};
  while (!queue.empty()) {
    const Node* n = queue.front();
    queue.pop_front();
    out.push_back(n);
    for (const Node* c : CanonicalChildren(n, paths)) {
      queue.push_back(c);
    }
  }
  return out;
}

namespace {

/// Max-heap comparator for g_best: higher priority first; ties broken by
/// path id then document position so the order is a pure function of the
/// path priorities (identical across data and query sequencing).
struct PriorityCmp {
  const SequencingModel* model;
  const std::vector<PathId>* paths;

  bool operator()(const Node* a, const Node* b) const {
    PathId pa = (*paths)[a->index];
    PathId pb = (*paths)[b->index];
    double qa = model->PriorityOf(pa);
    double qb = model->PriorityOf(pb);
    if (qa != qb) return qa < qb;  // lower priority sinks
    if (pa != pb) return pa > pb;
    return a->index > b->index;
  }
};

using PriorityHeap =
    std::priority_queue<const Node*, std::vector<const Node*>, PriorityCmp>;

/// Emits `x` and its entire subtree contiguously (the Algorithm 2 recursion
/// for nodes with identical siblings), ordering within the subtree by the
/// same strategy.
void EmitGroupedByPriority(const Node* x, const SequencingModel& model,
                           const std::vector<PathId>& paths,
                           std::vector<const Node*>* out) {
  out->push_back(x);
  PriorityHeap local{PriorityCmp{&model, &paths}};
  for (const Node* c = x->first_child; c != nullptr; c = c->next_sibling) {
    local.push(c);
  }
  while (!local.empty()) {
    const Node* y = local.top();
    local.pop();
    if (model.MayRepeat(paths[y->index])) {
      EmitGroupedByPriority(y, model, paths, out);
    } else {
      out->push_back(y);
      for (const Node* c = y->first_child; c != nullptr;
           c = c->next_sibling) {
        local.push(c);
      }
    }
  }
}

}  // namespace

std::vector<const Node*> ProbabilitySequencer::EncodeOrder(
    const Document& doc, const std::vector<PathId>& paths) const {
  assert(model_ != nullptr);
  std::vector<const Node*> out;
  out.reserve(doc.node_count());
  if (doc.root() == nullptr) return out;
  // The root cannot have identical siblings; treat the whole document like
  // one grouped emission rooted at the document root.
  EmitGroupedByPriority(doc.root(), *model_, paths, &out);
  return out;
}

namespace {

/// Emits `x`'s subtree contiguously in uniformly random constraint order.
void EmitGroupedRandom(const Node* x, const SequencingModel& model,
                       const std::vector<PathId>& paths, Rng* rng,
                       std::vector<const Node*>* out) {
  out->push_back(x);
  std::vector<const Node*> avail;
  for (const Node* c = x->first_child; c != nullptr; c = c->next_sibling) {
    avail.push_back(c);
  }
  while (!avail.empty()) {
    size_t i = rng->Uniform(static_cast<uint32_t>(avail.size()));
    const Node* y = avail[i];
    avail[i] = avail.back();
    avail.pop_back();
    if (model.MayRepeat(paths[y->index])) {
      EmitGroupedRandom(y, model, paths, rng, out);
    } else {
      out->push_back(y);
      for (const Node* c = y->first_child; c != nullptr;
           c = c->next_sibling) {
        avail.push_back(c);
      }
    }
  }
}

}  // namespace

std::vector<const Node*> RandomSequencer::EncodeOrder(
    const Document& doc, const std::vector<PathId>& paths) const {
  assert(model_ != nullptr);
  std::vector<const Node*> out;
  out.reserve(doc.node_count());
  if (doc.root() == nullptr) return out;
  Rng rng(seed_, /*stream=*/doc.id() * 2 + 1);
  EmitGroupedRandom(doc.root(), *model_, paths, &rng, &out);
  return out;
}

std::unique_ptr<Sequencer> MakeSequencer(
    SequencerKind kind, std::shared_ptr<const SequencingModel> model,
    uint64_t seed) {
  switch (kind) {
    case SequencerKind::kDepthFirst:
      return std::make_unique<DepthFirstSequencer>();
    case SequencerKind::kBreadthFirst:
      return std::make_unique<BreadthFirstSequencer>();
    case SequencerKind::kRandom:
      return std::make_unique<RandomSequencer>(std::move(model), seed);
    case SequencerKind::kProbability:
      return std::make_unique<ProbabilitySequencer>(std::move(model));
  }
  return nullptr;
}

}  // namespace xseq
