#include "src/seq/sequence.h"

namespace xseq {

std::string SequenceToString(const Sequence& seq, const PathDict& dict,
                             const NameTable& names) {
  std::string out = "<";
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += ", ";
    out += dict.ToString(seq[i], names);
  }
  out += ">";
  return out;
}

size_t CommonPrefix(const Sequence& a, const Sequence& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace xseq
