#include "src/seq/constraint.h"

#include <algorithm>
#include <unordered_map>

namespace xseq {

StatusOr<std::vector<int32_t>> ForwardPrefixParents(const Sequence& seq,
                                                    const PathDict& dict) {
  std::unordered_map<PathId, std::vector<int32_t>> positions;
  for (size_t i = 0; i < seq.size(); ++i) {
    positions[seq[i]].push_back(static_cast<int32_t>(i));
  }

  std::vector<int32_t> parents(seq.size(), -1);
  int roots = 0;
  for (size_t i = 0; i < seq.size(); ++i) {
    PathId p = seq[i];
    if (p == kEpsilonPath || p == kInvalidPath) {
      return Status::InvalidArgument("sequence contains an invalid path id");
    }
    PathId q = dict.parent(p);
    if (q == kEpsilonPath) {
      ++roots;
      parents[i] = -1;
      continue;
    }
    auto it = positions.find(q);
    if (it == positions.end()) {
      return Status::InvalidArgument(
          "constraint violated: parent path of element " + std::to_string(i) +
          " does not occur in the sequence");
    }
    const std::vector<int32_t>& occ = it->second;
    // Last occurrence before i, else first occurrence after i.
    auto lb = std::lower_bound(occ.begin(), occ.end(),
                               static_cast<int32_t>(i));
    if (lb != occ.begin()) {
      parents[i] = *(lb - 1);
    } else if (lb != occ.end()) {
      parents[i] = *lb;
    } else {
      return Status::InvalidArgument("no parent occurrence found");
    }
  }
  if (roots != 1) {
    return Status::InvalidArgument(
        "a constraint sequence must contain exactly one root element, got " +
        std::to_string(roots));
  }
  return parents;
}

bool IsConstraintSequence(const Sequence& seq, const PathDict& dict) {
  return ForwardPrefixParents(seq, dict).ok();
}

bool AncestorsPrecedeDescendants(const Sequence& seq, const PathDict& dict) {
  auto parents = ForwardPrefixParents(seq, dict);
  if (!parents.ok()) return false;
  for (size_t i = 0; i < seq.size(); ++i) {
    if ((*parents)[i] > static_cast<int32_t>(i)) return false;
  }
  return true;
}

bool IdenticalSiblingGroupsContiguous(const Sequence& seq,
                                      const PathDict& dict) {
  auto parents_or = ForwardPrefixParents(seq, dict);
  if (!parents_or.ok()) return false;
  const std::vector<int32_t>& parents = *parents_or;

  // Group elements by (path, reconstructed parent position) to find
  // identical siblings, then require each such sibling's subtree to occupy
  // the contiguous positions [i, i + |subtree| - 1].
  std::unordered_map<uint64_t, int> group_size;
  for (size_t i = 0; i < seq.size(); ++i) {
    uint64_t key = (static_cast<uint64_t>(seq[i]) << 32) |
                   static_cast<uint32_t>(parents[i] + 1);
    ++group_size[key];
  }

  // Subtree extents: max position and node count per subtree root.
  std::vector<int32_t> max_pos(seq.size());
  std::vector<int32_t> count(seq.size(), 1);
  for (size_t i = 0; i < seq.size(); ++i) {
    max_pos[i] = static_cast<int32_t>(i);
  }
  // Accumulate along ancestor chains (ancestors precede descendants is NOT
  // assumed here, so walk chains explicitly).
  for (size_t i = 0; i < seq.size(); ++i) {
    int32_t a = parents[i];
    while (a != -1) {
      max_pos[a] = std::max(max_pos[a], static_cast<int32_t>(i));
      ++count[a];
      a = parents[a];
    }
  }

  for (size_t i = 0; i < seq.size(); ++i) {
    uint64_t key = (static_cast<uint64_t>(seq[i]) << 32) |
                   static_cast<uint32_t>(parents[i] + 1);
    if (group_size[key] < 2) continue;  // no identical sibling
    if (max_pos[i] != static_cast<int32_t>(i) + count[i] - 1) return false;
  }
  return true;
}

}  // namespace xseq
