#include "src/seq/path_dict.h"

#include <algorithm>

namespace xseq {

std::vector<Sym> PathDict::Steps(PathId p) const {
  std::vector<Sym> steps;
  while (p != kEpsilonPath && p != kInvalidPath) {
    steps.push_back(entries_[p].sym);
    p = entries_[p].parent;
  }
  std::reverse(steps.begin(), steps.end());
  return steps;
}

std::string PathDict::ToString(PathId p, const NameTable& names) const {
  if (p == kEpsilonPath) return "/";
  std::string out;
  for (Sym s : Steps(p)) {
    if (s.is_value()) {
      out += "=v";
      out += std::to_string(s.id());
    } else {
      out += '/';
      out += names.Lookup(s.id());
    }
  }
  return out;
}

void PathDict::EncodeTo(std::string* dst) const {
  PutFixed64(dst, entries_.size() - 1);
  for (size_t i = 1; i < entries_.size(); ++i) {
    PutFixed32(dst, entries_[i].parent);
    PutFixed32(dst, entries_[i].sym.raw());
  }
}

StatusOr<PathDict> PathDict::DecodeFrom(Decoder* in) {
  PathDict out;
  uint64_t n = 0;  // GCC can't see GetFixed64 under ASan
  XSEQ_RETURN_IF_ERROR(in->GetFixed64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t parent = 0, raw = 0;  // GCC can't see GetFixed32 under TSan
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&parent));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&raw));
    if (parent >= out.entries_.size()) {
      return Status::Corruption("path dictionary parent out of range");
    }
    out.Intern(parent, Sym::FromRaw(raw));
  }
  return out;
}

PathId PathDict::Resolve(std::string_view slash_path,
                         const NameTable& names) const {
  PathId cur = kEpsilonPath;
  size_t i = 0;
  while (i < slash_path.size()) {
    if (slash_path[i] == '/') {
      ++i;
      continue;
    }
    size_t end = slash_path.find('/', i);
    if (end == std::string_view::npos) end = slash_path.size();
    NameId name = names.Find(slash_path.substr(i, end - i));
    if (name == Interner::kInvalidId) return kInvalidPath;
    cur = Find(cur, Sym::ForName(name));
    if (cur == kInvalidPath) return kInvalidPath;
    i = end;
  }
  return cur == kEpsilonPath ? kInvalidPath : cur;
}

namespace {

void BindRec(const Node* n, PathId parent_path, PathDict* dict,
             std::vector<PathId>* out) {
  PathId p = dict->Intern(parent_path, n->sym);
  (*out)[n->index] = p;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    BindRec(c, p, dict, out);
  }
}

void FindRec(const Node* n, PathId parent_path, const PathDict& dict,
             std::vector<PathId>* out) {
  PathId p = parent_path == kInvalidPath
                 ? kInvalidPath
                 : dict.Find(parent_path, n->sym);
  (*out)[n->index] = p;
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    FindRec(c, p, dict, out);
  }
}

}  // namespace

std::vector<PathId> BindPaths(const Document& doc, PathDict* dict) {
  std::vector<PathId> out(doc.node_count(), kInvalidPath);
  if (doc.root() != nullptr) BindRec(doc.root(), kEpsilonPath, dict, &out);
  return out;
}

std::vector<PathId> FindPaths(const Document& doc, const PathDict& dict) {
  std::vector<PathId> out(doc.node_count(), kInvalidPath);
  if (doc.root() != nullptr) FindRec(doc.root(), kEpsilonPath, dict, &out);
  return out;
}

}  // namespace xseq
