// Path dictionary: interning of root paths.
//
// The paper encodes each tree node by the path leading from the root to it
// ("P", "PR", "PRL", "PRLv1", ...). The dictionary is a trie over path
// steps (Syms); every distinct root path observed anywhere in a collection
// gets a dense PathId. Sequences, the index tree, path links and the schema
// all speak PathIds, making node encodings O(1) to compare and hash.

#ifndef XSEQ_SRC_SEQ_PATH_DICT_H_
#define XSEQ_SRC_SEQ_PATH_DICT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/coding.h"
#include "src/xml/name_table.h"
#include "src/xml/symbols.h"
#include "src/xml/tree.h"

namespace xseq {

/// Dense id of an interned root path.
using PathId = uint32_t;

/// The empty path ε (virtual parent of every document root).
inline constexpr PathId kEpsilonPath = 0;

/// Sentinel for "no such path".
inline constexpr PathId kInvalidPath = 0xFFFFFFFFu;

/// Trie of root paths with dense ids.
class PathDict {
 public:
  PathDict() {
    // Entry 0 is ε.
    entries_.push_back(Entry{kInvalidPath, Sym(), 0, kInvalidPath,
                             kInvalidPath});
  }

  /// Returns the id for `parent`'s extension by `sym`, interning on first
  /// sight.
  PathId Intern(PathId parent, Sym sym) {
    uint64_t key = Key(parent, sym);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    PathId id = static_cast<PathId>(entries_.size());
    entries_.push_back(Entry{parent, sym, entries_[parent].depth + 1,
                             kInvalidPath, entries_[parent].first_child});
    entries_[parent].first_child = id;
    index_.emplace(key, id);
    return id;
  }

  /// Returns the existing id, or kInvalidPath when never interned.
  PathId Find(PathId parent, Sym sym) const {
    auto it = index_.find(Key(parent, sym));
    return it == index_.end() ? kInvalidPath : it->second;
  }

  PathId parent(PathId p) const { return entries_[p].parent; }
  Sym sym(PathId p) const { return entries_[p].sym; }
  uint32_t depth(PathId p) const { return entries_[p].depth; }

  /// First interned extension of `p` (iteration order: most recent first).
  PathId FirstChild(PathId p) const { return entries_[p].first_child; }
  /// Next sibling in the child list of parent(p).
  PathId NextSibling(PathId p) const { return entries_[p].next_sibling; }

  /// True iff `a` is a (non-strict) prefix of `b`.
  bool IsPrefixOf(PathId a, PathId b) const {
    while (b != kInvalidPath) {
      if (a == b) return true;
      b = entries_[b].parent;
    }
    return false;
  }

  /// Number of interned paths, including ε.
  size_t size() const { return entries_.size(); }

  /// Steps of `p` from the root downwards (excluding ε).
  std::vector<Sym> Steps(PathId p) const;

  /// Human-readable rendering, e.g. "/Project/Research/Loc=v3".
  std::string ToString(PathId p, const NameTable& names) const;

  /// Appends a binary encoding (parent, sym) per interned path, in id
  /// order, so decoding re-interns them with identical ids.
  void EncodeTo(std::string* dst) const;
  /// Decodes a dictionary previously written by EncodeTo.
  static StatusOr<PathDict> DecodeFrom(Decoder* in);

  /// Resolves a slash-separated element path ("/Project/Research/Loc" or
  /// "Project/Research/Loc") to its PathId, or kInvalidPath when any step
  /// is unknown. Element steps only (no values, no wildcards).
  PathId Resolve(std::string_view slash_path, const NameTable& names) const;

 private:
  struct Entry {
    PathId parent;
    Sym sym;
    uint32_t depth;
    PathId first_child;
    PathId next_sibling;
  };

  static uint64_t Key(PathId parent, Sym sym) {
    return (static_cast<uint64_t>(parent) << 32) | sym.raw();
  }

  std::vector<Entry> entries_;
  std::unordered_map<uint64_t, PathId> index_;
};

/// Computes the PathId of every node of `doc`, indexed by node->index,
/// interning new paths into `dict`.
std::vector<PathId> BindPaths(const Document& doc, PathDict* dict);

/// As BindPaths but read-only: nodes whose path was never interned get
/// kInvalidPath.
std::vector<PathId> FindPaths(const Document& doc, const PathDict& dict);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_PATH_DICT_H_
