// Sequence -> tree reconstruction (Theorem 1).
//
// Rebuilds the unique document tree a constraint sequence represents by
// resolving every element's parent through the forward-prefix rule. Used by
// the property tests (tree -> sequence -> tree roundtrips) and by the
// ViST-like baseline's verification pass.

#ifndef XSEQ_SRC_SEQ_RECONSTRUCT_H_
#define XSEQ_SRC_SEQ_RECONSTRUCT_H_

#include "src/seq/constraint.h"
#include "src/seq/sequence.h"
#include "src/util/status.h"
#include "src/xml/tree.h"

namespace xseq {

/// Reconstructs the tree encoded by `seq`. Element kinds degrade to
/// kElement/kValue (the attribute distinction is not part of the encoding).
/// Fails when `seq` is not a constraint sequence.
StatusOr<Document> ReconstructTree(const Sequence& seq, const PathDict& dict,
                                   DocId id = 0);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_RECONSTRUCT_H_
