// Prüfer codes for rooted trees (the PRIX lineage).
//
// The paper discusses Prüfer sequences as the succinct ad hoc encoding used
// by PRIX [16]: number the n nodes, repeatedly delete the leaf with the
// smallest number and append its parent's number; stop when only the root
// remains (n-1 output symbols for a rooted tree). We number nodes by
// post-order, as PRIX does, which makes the code of a subtree a contiguous
// subword. Both directions are provided; the roundtrip is exercised by the
// property tests.

#ifndef XSEQ_SRC_SEQ_PRUFER_H_
#define XSEQ_SRC_SEQ_PRUFER_H_

#include <cstdint>
#include <vector>

#include "src/util/status.h"
#include "src/xml/tree.h"

namespace xseq {

/// Post-order numbers of all nodes (1-based, root = n), indexed by
/// node->index.
std::vector<uint32_t> PostOrderNumbers(const Document& doc);

/// Prüfer code of `doc` under post-order numbering: for i = 1..n-1 in
/// deletion order, the number of the deleted leaf's parent.
std::vector<uint32_t> PruferEncode(const Document& doc);

/// Rebuilds the parent relation from a Prüfer code over labels 1..n where
/// n = code.size() + 1 and n is the root. Returns parent[l] for l = 1..n
/// (parent[n] = 0). Fails on malformed codes.
StatusOr<std::vector<uint32_t>> PruferDecode(
    const std::vector<uint32_t>& code);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_PRUFER_H_
