// Constraint sequences: the sequential representation of a tree.
//
// A sequence is simply the list of path-encoded nodes in emission order.
// Whether a given order is a *valid* constraint sequence (reconstructible
// into a unique tree, Theorem 1) is checked by the validators in
// constraint.h.

#ifndef XSEQ_SRC_SEQ_SEQUENCE_H_
#define XSEQ_SRC_SEQ_SEQUENCE_H_

#include <string>
#include <vector>

#include "src/seq/path_dict.h"

namespace xseq {

/// A sequence of path-encoded nodes.
using Sequence = std::vector<PathId>;

/// Renders a sequence like "<P, PR, PRL, PRLv1>" using single-letter-ish
/// path renderings. For debugging, tests and the examples.
std::string SequenceToString(const Sequence& seq, const PathDict& dict,
                             const NameTable& names);

/// Length of the longest common prefix of two sequences.
size_t CommonPrefix(const Sequence& a, const Sequence& b);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_SEQUENCE_H_
