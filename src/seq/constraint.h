// Constraints on sequences of path-encoded nodes (Definitions 1 and 2).
//
// A *constraint* f disambiguates ancestor/descendant relationships among
// path-encoded nodes so any sequence satisfying it maps back to a unique
// tree (Theorem 1). We implement the paper's forward-prefix constraint f2:
// the parent of element p_i is the occurrence of p_i's parent path that
// appears *before* p_i and closest to it; if none appears before, the
// closest occurrence after it.

#ifndef XSEQ_SRC_SEQ_CONSTRAINT_H_
#define XSEQ_SRC_SEQ_CONSTRAINT_H_

#include <cstdint>
#include <vector>

#include "src/seq/sequence.h"
#include "src/util/status.h"

namespace xseq {

/// For each element of `seq`, the position of its parent occurrence under
/// the forward-prefix rule, or -1 for the root element. Fails with
/// InvalidArgument when some element's parent path has no occurrence at all
/// (Definition 1 violated) or the sequence has no unique root.
StatusOr<std::vector<int32_t>> ForwardPrefixParents(const Sequence& seq,
                                                    const PathDict& dict);

/// True iff `seq` satisfies Definition 1 under f2: every element's ancestor
/// paths all occur in the sequence, and exactly one element is a root
/// (depth-1) element... of which there is exactly one occurrence position
/// mapped to -1 by ForwardPrefixParents.
bool IsConstraintSequence(const Sequence& seq, const PathDict& dict);

/// True iff every element's parent occurrence *precedes* it (the stronger
/// property Algorithm 2 guarantees; required by the trie-based index).
bool AncestorsPrecedeDescendants(const Sequence& seq, const PathDict& dict);

/// True iff every element that has an identical sibling (same path, same
/// reconstructed parent) has its whole subtree emitted contiguously starting
/// at the element itself. This is the grouping discipline of Algorithm 2 —
/// a *sufficient* condition for the forward-prefix reconstruction to return
/// the encoder's tree (Definition 2 admits looser layouts, e.g. Table 2's
/// trailing childless siblings; roundtrip tests cover those separately).
bool IdenticalSiblingGroupsContiguous(const Sequence& seq,
                                      const PathDict& dict);

}  // namespace xseq

#endif  // XSEQ_SRC_SEQ_CONSTRAINT_H_
