#include "src/seq/reconstruct.h"

#include <vector>

namespace xseq {

StatusOr<Document> ReconstructTree(const Sequence& seq, const PathDict& dict,
                                   DocId id) {
  auto parents_or = ForwardPrefixParents(seq, dict);
  if (!parents_or.ok()) return parents_or.status();
  const std::vector<int32_t>& parents = *parents_or;

  Document doc(id);
  std::vector<Node*> nodes(seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    Sym s = dict.sym(seq[i]);
    nodes[i] = s.is_value() ? doc.CreateValue(s.id())
                            : doc.CreateElement(s.id());
  }
  for (size_t i = 0; i < seq.size(); ++i) {
    if (parents[i] == -1) {
      doc.SetRoot(nodes[i]);
    } else {
      doc.AppendChild(nodes[static_cast<size_t>(parents[i])], nodes[i]);
    }
  }
  return doc;
}

}  // namespace xseq
