#include "src/vindex/compare.h"

#include <algorithm>
#include <functional>

namespace xseq {

namespace {

/// A step with its name resolved against one index's NameTable. A named
/// step whose name the table has never seen matches nothing there.
struct ResolvedStep {
  bool descendant = false;
  bool wildcard = false;
  NameId name = Interner::kInvalidId;
};

/// Resolves cmp.steps against `names`; false when a named step is unknown
/// (the comparison is unsatisfiable in that index).
bool ResolveSteps(const std::vector<ValueComparison::Step>& steps,
                  const NameTable& names, std::vector<ResolvedStep>* out) {
  out->clear();
  out->reserve(steps.size());
  for (const ValueComparison::Step& s : steps) {
    ResolvedStep r;
    r.descendant = s.descendant;
    r.wildcard = s.wildcard;
    if (!s.wildcard) {
      r.name = names.Find(s.name);
      if (r.name == Interner::kInvalidId) return false;
    }
    out->push_back(r);
  }
  return true;
}

ValueComparison::Step StepOf(const PatternNode& n) {
  ValueComparison::Step s;
  s.descendant = n.axis == PatternNode::Axis::kDescendant;
  s.wildcard = n.test == PatternNode::Test::kWildcard;
  if (!s.wildcard) s.name = n.name;
  return s;
}

std::unique_ptr<PatternNode> CloneRec(
    const PatternNode* n, std::vector<ValueComparison::Step>* chain,
    std::vector<ValueComparison>* out) {
  auto copy = std::make_unique<PatternNode>();
  copy->axis = n->axis;
  copy->test = n->test;
  copy->name = n->name;
  copy->value = n->value;
  copy->op = n->op;
  for (const auto& c : n->children) {
    if (c->test == PatternNode::Test::kValueCompare) {
      ValueComparison vc;
      vc.steps = *chain;
      vc.op = c->op;
      vc.literal = TypedValue::Of(c->value);
      out->push_back(std::move(vc));
      continue;
    }
    if (c->test == PatternNode::Test::kName ||
        c->test == PatternNode::Test::kWildcard) {
      chain->push_back(StepOf(*c));
      copy->children.push_back(CloneRec(c.get(), chain, out));
      chain->pop_back();
    } else {
      // Value leaves carry no comparisons below them.
      copy->children.push_back(CloneRec(c.get(), chain, out));
    }
  }
  return copy;
}

/// Dictionary-trie walk collecting every path whose element chain matches
/// the resolved steps.
void EnumerateHosts(const PathDict& dict,
                    const std::vector<ResolvedStep>& steps, size_t i,
                    PathId p, std::vector<PathId>* hosts) {
  if (i == steps.size()) {
    hosts->push_back(p);
    return;
  }
  const ResolvedStep& st = steps[i];
  for (PathId c = dict.FirstChild(p); c != kInvalidPath;
       c = dict.NextSibling(c)) {
    // Chains are element chains: value steps neither match nor carry
    // elements below them worth descending into.
    if (!dict.sym(c).is_name()) continue;
    if (st.wildcard || dict.sym(c).id() == st.name) {
      EnumerateHosts(dict, steps, i + 1, c, hosts);
    }
    if (st.descendant) {
      EnumerateHosts(dict, steps, i, c, hosts);
    }
  }
}

/// Document-tree twin of EnumerateHosts + Collect.
struct DocMatcher {
  const std::vector<ResolvedStep>& steps;
  const ValueComparison& cmp;

  bool HostHasValue(const Node* host) const {
    for (const Node* c = host->first_child; c != nullptr;
         c = c->next_sibling) {
      if (!c->is_value() || c->text == nullptr) continue;
      if (ValueSatisfies(c->text, cmp.op, cmp.literal)) return true;
    }
    return false;
  }

  bool AtParent(const Node* parent, size_t i) const {
    if (i == steps.size()) return HostHasValue(parent);
    return OverChildren(parent->first_child, i);
  }

  bool OverChildren(const Node* first, size_t i) const {
    const ResolvedStep& st = steps[i];
    for (const Node* c = first; c != nullptr; c = c->next_sibling) {
      if (!c->sym.is_name()) continue;
      if ((st.wildcard || c->sym.id() == st.name) && AtParent(c, i + 1)) {
        return true;
      }
      // '//' may pass through c: keep looking for step i below it.
      if (st.descendant && OverChildren(c->first_child, i)) return true;
    }
    return false;
  }
};

}  // namespace

bool HasComparisons(const QueryPattern& pattern) {
  std::function<bool(const PatternNode*)> rec =
      [&rec](const PatternNode* n) -> bool {
    if (n->test == PatternNode::Test::kValueCompare) return true;
    for (const auto& c : n->children) {
      if (rec(c.get())) return true;
    }
    return false;
  };
  return pattern.root != nullptr && rec(pattern.root.get());
}

QueryPattern StripComparisons(const QueryPattern& pattern,
                              std::vector<ValueComparison>* out) {
  QueryPattern skeleton;
  skeleton.source = pattern.source;
  if (pattern.root == nullptr) return skeleton;
  std::vector<ValueComparison::Step> chain;
  skeleton.root = CloneRec(pattern.root.get(), &chain, out);
  return skeleton;
}

bool ComparisonImpliesSkeleton(const QueryPattern& skeleton,
                               const std::vector<ValueComparison>& cmps) {
  if (skeleton.root == nullptr) return false;
  std::vector<ValueComparison::Step> chain;
  for (const PatternNode* n = skeleton.root.get(); !n->children.empty();) {
    if (n->children.size() != 1) return false;  // branching skeleton
    n = n->children.front().get();
    if (n->test != PatternNode::Test::kName &&
        n->test != PatternNode::Test::kWildcard) {
      return false;  // value constraints are not implied by candidacy
    }
    chain.push_back(StepOf(*n));
  }
  if (chain.empty()) return false;
  for (const ValueComparison& c : cmps) {
    if (c.steps.size() != chain.size()) continue;
    bool same = true;
    for (size_t i = 0; i < chain.size() && same; ++i) {
      same = c.steps[i].descendant == chain[i].descendant &&
             c.steps[i].wildcard == chain[i].wildcard &&
             c.steps[i].name == chain[i].name;
    }
    if (same) return true;
  }
  return false;
}

std::vector<DocId> CandidateDocs(const ValueIndex& vindex,
                                 const PathDict& dict,
                                 const NameTable& names,
                                 const ValueComparison& cmp,
                                 uint64_t* probes, uint64_t* candidates) {
  std::vector<DocId> docs;
  std::vector<ResolvedStep> steps;
  if (!ResolveSteps(cmp.steps, names, &steps)) return docs;
  std::vector<PathId> hosts;
  EnumerateHosts(dict, steps, 0, kEpsilonPath, &hosts);
  // Descendant/wildcard combinations can reach the same host path through
  // different intermediate assignments; probe each path once.
  std::sort(hosts.begin(), hosts.end());
  hosts.erase(std::unique(hosts.begin(), hosts.end()), hosts.end());
  for (PathId h : hosts) {
    vindex.Collect(h, cmp.op, cmp.literal, &docs);
  }
  if (probes != nullptr) *probes += hosts.size();
  if (candidates != nullptr) *candidates += docs.size();
  std::sort(docs.begin(), docs.end());
  docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
  return docs;
}

bool DocMatchesComparison(const Document& doc, const NameTable& names,
                          const ValueComparison& cmp) {
  const Node* root = doc.root();
  if (root == nullptr) return false;
  std::vector<ResolvedStep> steps;
  if (!ResolveSteps(cmp.steps, names, &steps)) return false;
  DocMatcher m{steps, cmp};
  if (steps.empty()) return false;  // comparisons always have a host step
  return m.OverChildren(root, 0);
}

bool DocMatchesComparisons(const Document& doc, const NameTable& names,
                           const std::vector<ValueComparison>& cmps) {
  for (const ValueComparison& c : cmps) {
    if (!DocMatchesComparison(doc, names, c)) return false;
  }
  return true;
}

}  // namespace xseq
