#include "src/vindex/value_index.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>

namespace xseq {

namespace {

/// Total order of entries within one path: numbers before strings, numbers
/// by value, strings by raw bytes; ties by raw text, then doc id.
bool EntryLess(const ValueIndex::Entry& a, const ValueIndex::Entry& b) {
  if (a.numeric != b.numeric) return a.numeric;
  if (a.numeric) {
    if (a.num != b.num) return a.num < b.num;
  } else if (a.text != b.text) {
    return a.text < b.text;
  }
  if (a.text != b.text) return a.text < b.text;
  return a.doc < b.doc;
}

}  // namespace

bool ParseWholeNumber(std::string_view text, double* out) {
  size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  if (b == e) return false;
  std::string buf(text.substr(b, e - b));
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

TypedValue TypedValue::Of(std::string_view text) {
  TypedValue v;
  v.text = std::string(text);
  v.numeric = ParseWholeNumber(text, &v.num);
  return v;
}

bool ValueSatisfies(std::string_view text, CompareOp op,
                    const TypedValue& literal) {
  if (op == CompareOp::kNe) return text != literal.text;
  double num = 0.0;
  const bool numeric = ParseWholeNumber(text, &num);
  // Ordering comparisons stay within one type class: a numeric literal is
  // invisible to string values and vice versa — "apple < 30" has no
  // meaningful answer and silently coercing would make results depend on
  // the corpus's stray non-numeric values.
  if (numeric != literal.numeric) return false;
  if (numeric) {
    switch (op) {
      case CompareOp::kLt:
        return num < literal.num;
      case CompareOp::kLe:
        return num <= literal.num;
      case CompareOp::kGt:
        return num > literal.num;
      case CompareOp::kGe:
        return num >= literal.num;
      case CompareOp::kNe:
        break;
    }
    return false;
  }
  switch (op) {
    case CompareOp::kLt:
      return text < literal.text;
    case CompareOp::kLe:
      return text <= literal.text;
    case CompareOp::kGt:
      return text > literal.text;
    case CompareOp::kGe:
      return text >= literal.text;
    case CompareOp::kNe:
      break;
  }
  return false;
}

void ValueIndex::Collect(PathId path, CompareOp op,
                         const TypedValue& literal,
                         std::vector<DocId>* out) const {
  auto it = std::lower_bound(paths_.begin(), paths_.end(), path);
  if (it == paths_.end() || *it != path) return;
  const size_t pi = static_cast<size_t>(it - paths_.begin());
  const Entry* b = entries_.data() + offsets_[pi];
  const Entry* e = entries_.data() + offsets_[pi + 1];

  if (op == CompareOp::kNe) {
    for (const Entry* p = b; p != e; ++p) {
      if (p->text != literal.text) out->push_back(p->doc);
    }
    return;
  }

  // Numeric prefix / string suffix split of the sorted span.
  const Entry* m = std::partition_point(
      b, e, [](const Entry& x) { return x.numeric; });
  const Entry* lo = b;
  const Entry* hi = b;
  if (literal.numeric) {
    auto num_less = [](const Entry& x, double v) { return x.num < v; };
    auto num_le = [](double v, const Entry& x) { return v < x.num; };
    switch (op) {
      case CompareOp::kLt:
        lo = b;
        hi = std::lower_bound(b, m, literal.num, num_less);
        break;
      case CompareOp::kLe:
        lo = b;
        hi = std::upper_bound(b, m, literal.num, num_le);
        break;
      case CompareOp::kGt:
        lo = std::upper_bound(b, m, literal.num, num_le);
        hi = m;
        break;
      case CompareOp::kGe:
        lo = std::lower_bound(b, m, literal.num, num_less);
        hi = m;
        break;
      case CompareOp::kNe:
        return;  // handled above
    }
  } else {
    auto txt_less = [](const Entry& x, const std::string& v) {
      return x.text < v;
    };
    auto txt_le = [](const std::string& v, const Entry& x) {
      return v < x.text;
    };
    switch (op) {
      case CompareOp::kLt:
        lo = m;
        hi = std::lower_bound(m, e, literal.text, txt_less);
        break;
      case CompareOp::kLe:
        lo = m;
        hi = std::upper_bound(m, e, literal.text, txt_le);
        break;
      case CompareOp::kGt:
        lo = std::upper_bound(m, e, literal.text, txt_le);
        hi = e;
        break;
      case CompareOp::kGe:
        lo = std::lower_bound(m, e, literal.text, txt_less);
        hi = e;
        break;
      case CompareOp::kNe:
        return;  // handled above
    }
  }
  for (const Entry* p = lo; p != hi; ++p) out->push_back(p->doc);
}

uint64_t ValueIndex::MemoryBytes() const {
  uint64_t bytes = paths_.size() * sizeof(PathId) +
                   offsets_.size() * sizeof(uint32_t) +
                   entries_.size() * sizeof(Entry);
  for (const Entry& en : entries_) bytes += en.text.size();
  return bytes;
}

void ValueIndex::EncodeTo(std::string* out) const {
  PutFixed32(out, static_cast<uint32_t>(paths_.size()));
  for (size_t i = 0; i < paths_.size(); ++i) {
    PutFixed32(out, paths_[i]);
    PutFixed64(out, EntryCountAt(i));
  }
  for (const Entry& en : entries_) {
    PutString(out, en.text);
    PutFixed32(out, en.doc);
  }
}

StatusOr<ValueIndex> ValueIndex::DecodeFrom(Decoder* in) {
  ValueIndex out;
  uint32_t path_count = 0;
  XSEQ_RETURN_IF_ERROR(in->GetFixed32(&path_count));
  if (path_count > in->remaining() / 12) {
    return Status::Corruption("value index path directory overruns section");
  }
  out.paths_.reserve(path_count);
  out.offsets_.reserve(path_count + 1);
  out.offsets_.push_back(0);
  uint64_t total = 0;
  for (uint32_t i = 0; i < path_count; ++i) {
    uint32_t path = 0;
    uint64_t count = 0;
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&path));
    XSEQ_RETURN_IF_ERROR(in->GetFixed64(&count));
    total += count;
    // 12 bytes is the floor per entry (8-byte length prefix + 4-byte doc).
    if (total > in->remaining() / 12) {
      return Status::Corruption("value index entry counts overrun section");
    }
    out.paths_.push_back(path);
    out.offsets_.push_back(static_cast<uint32_t>(total));
  }
  out.entries_.resize(total);
  for (Entry& en : out.entries_) {
    XSEQ_RETURN_IF_ERROR(in->GetString(&en.text));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&en.doc));
    en.numeric = ParseWholeNumber(en.text, &en.num);
  }
  // Normalize the empty shape to match Build(): no paths, no offsets —
  // Validate() treats a lone zero offset as corruption.
  if (out.paths_.empty()) out.offsets_.clear();
  return out;
}

Status ValueIndex::Validate() const {
  if (paths_.empty()) {
    if (!offsets_.empty() || !entries_.empty()) {
      return Status::Corruption("value index has entries but no paths");
    }
    return Status::OK();
  }
  if (offsets_.size() != paths_.size() + 1 || offsets_.front() != 0 ||
      offsets_.back() != entries_.size()) {
    return Status::Corruption("value index offsets are inconsistent");
  }
  for (size_t i = 0; i + 1 < paths_.size(); ++i) {
    if (paths_[i] >= paths_[i + 1]) {
      return Status::Corruption("value index paths are not ascending");
    }
  }
  for (size_t i = 0; i < paths_.size(); ++i) {
    for (uint32_t j = offsets_[i]; j + 1 < offsets_[i + 1]; ++j) {
      if (EntryLess(entries_[j + 1], entries_[j])) {
        return Status::Corruption("value index entries are out of order");
      }
    }
  }
  for (const Entry& en : entries_) {
    double num = 0.0;
    if (en.numeric != ParseWholeNumber(en.text, &num) ||
        (en.numeric && num != en.num)) {
      return Status::Corruption("value index numeric flag mismatches text");
    }
  }
  return Status::OK();
}

void ValueIndexBuilder::Add(PathId parent, std::string_view text,
                            DocId doc) {
  Raw r;
  r.path = parent;
  r.entry.text = std::string(text);
  r.entry.doc = doc;
  r.entry.numeric = ParseWholeNumber(text, &r.entry.num);
  raw_.push_back(std::move(r));
}

ValueIndex ValueIndexBuilder::Build() && {
  std::sort(raw_.begin(), raw_.end(), [](const Raw& a, const Raw& b) {
    if (a.path != b.path) return a.path < b.path;
    return EntryLess(a.entry, b.entry);
  });
  // Identical (path, text, doc) triples carry no extra information for
  // doc-level answers; drop them.
  raw_.erase(std::unique(raw_.begin(), raw_.end(),
                         [](const Raw& a, const Raw& b) {
                           return a.path == b.path &&
                                  a.entry.text == b.entry.text &&
                                  a.entry.doc == b.entry.doc;
                         }),
             raw_.end());
  ValueIndex out;
  for (Raw& r : raw_) {
    if (out.paths_.empty() || out.paths_.back() != r.path) {
      out.paths_.push_back(r.path);
      out.offsets_.push_back(static_cast<uint32_t>(out.entries_.size()));
    }
    out.entries_.push_back(std::move(r.entry));
  }
  out.offsets_.push_back(static_cast<uint32_t>(out.entries_.size()));
  if (out.paths_.empty()) out.offsets_.clear();
  raw_.clear();
  return out;
}

}  // namespace xseq
