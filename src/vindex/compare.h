// Comparison-predicate rewrite: pattern skeletons, value-index candidate
// sets, and the brute-force document check they must agree with.
//
// A comparison predicate is a *document-level* filter layered over the
// structural match (DESIGN.md §2k): a document answers
// `/a//b[price < 30]` when
//
//   (1) the skeleton `/a//b[price]` embeds into it (the existing exact
//       engine, untouched), and
//   (2) some value node whose root-to-parent element chain matches
//       /a//b/price satisfies `< 30`.
//
// (2) is answered two ways that must be bit-identical: by enumerating the
// dictionary paths matching the chain and probing the ValueIndex (frozen
// segments), or by walking the document tree directly (unsealed documents
// and the differential oracle). Both reduce to ValueSatisfies().

#ifndef XSEQ_SRC_VINDEX_COMPARE_H_
#define XSEQ_SRC_VINDEX_COMPARE_H_

#include <string>
#include <vector>

#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/status.h"
#include "src/vindex/value_index.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// One comparison predicate lifted out of a pattern: the root-to-host
/// element chain plus the operator and typed literal.
struct ValueComparison {
  struct Step {
    bool descendant = false;  ///< '//' edge into this step
    bool wildcard = false;
    std::string name;  ///< for non-wildcard steps
  };
  std::vector<Step> steps;  ///< root element down to the host element
  CompareOp op = CompareOp::kLt;
  TypedValue literal;
};

/// True when the pattern holds at least one kValueCompare node. Patterns
/// without comparisons take the existing execution path, bit for bit.
bool HasComparisons(const QueryPattern& pattern);

/// Deep-copies `pattern` minus its kValueCompare nodes (host elements
/// stay), appending one ValueComparison per removed node to `out`.
QueryPattern StripComparisons(const QueryPattern& pattern,
                              std::vector<ValueComparison>* out);

/// True when some comparison's root-to-host chain IS the whole skeleton: the
/// skeleton is one linear chain of element steps and cmp.steps mirrors it
/// node for node (axis, wildcard, name). A CandidateDocs posting exists only
/// because its document realizes that root-to-host chain, so for such
/// patterns candidacy already implies the structural match and the executor
/// may return the intersected candidate set without a structural scan —
/// bit-identical to scanning, in every match mode, since candidates are
/// true matches and sound matchers never drop a true match.
bool ComparisonImpliesSkeleton(const QueryPattern& skeleton,
                               const std::vector<ValueComparison>& cmps);

/// Sorted, de-duplicated ids of every doc with a value satisfying `cmp`:
/// the union of ValueIndex::Collect over every dictionary path whose
/// element chain matches cmp.steps. `probes` counts paths probed,
/// `candidates` the postings touched (both may be null).
std::vector<DocId> CandidateDocs(const ValueIndex& vindex,
                                 const PathDict& dict,
                                 const NameTable& names,
                                 const ValueComparison& cmp,
                                 uint64_t* probes, uint64_t* candidates);

/// Brute-force (2): does `doc` hold a value node satisfying `cmp` under an
/// element whose root chain matches cmp.steps?
bool DocMatchesComparison(const Document& doc, const NameTable& names,
                          const ValueComparison& cmp);

/// Applies every comparison: true when DocMatchesComparison holds for all.
bool DocMatchesComparisons(const Document& doc, const NameTable& names,
                           const std::vector<ValueComparison>& cmps);

}  // namespace xseq

#endif  // XSEQ_SRC_VINDEX_COMPARE_H_
