// Ordered value index: the range-predicate complement to the structural
// sequence index.
//
// The sequence index answers structure + exact-value queries holistically,
// but a range predicate like [price < 30] has no designator to match: it
// needs the *ordering* of the values, which hashing and interning both
// discard. The ValueIndex keeps, per root-to-leaf *element* path, the raw
// text of every value observed under that path, typed and sorted:
//
//   - a value is numeric iff strtod consumes its whole trimmed text and
//     the result is finite ("30", " 4.5 ", "1e3"); everything else is a
//     string;
//   - numbers order before strings; numbers by value, strings
//     lexicographically by raw bytes; ties by raw text, then doc id.
//
// A comparison literal follows the same typing: a numeric literal is
// answered by a binary search over the numeric prefix of the path's entry
// span, a string literal over the string suffix, and `!=` is raw-text
// inequality over the whole span. Because entries store raw text (not the
// ValueEncoder's designators), lookups are exact in all three value modes —
// hashed designators may collide, the value index never does.
//
// Built at Freeze/Seal time from the original (pre-chain-expansion)
// documents; persisted as its own checksummed section of the v4 index
// image (v2/v3 images load with an empty value index).

#ifndef XSEQ_SRC_VINDEX_VALUE_INDEX_H_
#define XSEQ_SRC_VINDEX_VALUE_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/query/query_pattern.h"
#include "src/seq/path_dict.h"
#include "src/util/coding.h"
#include "src/util/status.h"
#include "src/xml/symbols.h"

namespace xseq {

/// Parses `text` as a number iff strtod consumes the whole
/// whitespace-trimmed string and the result is finite.
bool ParseWholeNumber(std::string_view text, double* out);

/// A comparison literal, typed once so every probe agrees on its class.
struct TypedValue {
  std::string text;
  double num = 0.0;
  bool numeric = false;

  static TypedValue Of(std::string_view text);
};

/// True when value text `text` satisfies (text `op` literal) under the
/// typed ordering rules above. This is the definition; the ValueIndex's
/// binary searches and the brute-force oracle must both agree with it.
bool ValueSatisfies(std::string_view text, CompareOp op,
                    const TypedValue& literal);

/// Immutable per-path sorted value postings.
class ValueIndex {
 public:
  struct Entry {
    std::string text;
    double num = 0.0;  ///< valid when `numeric`
    DocId doc = 0;
    bool numeric = false;
  };

  ValueIndex() = default;

  /// Appends (unsorted, possibly duplicated) every doc id whose entry under
  /// `path` satisfies (value `op` literal). No-op for unknown paths.
  void Collect(PathId path, CompareOp op, const TypedValue& literal,
               std::vector<DocId>* out) const;

  size_t path_count() const { return paths_.size(); }
  uint64_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Indexed paths in ascending PathId order.
  const std::vector<PathId>& paths() const { return paths_; }
  /// Number of entries under paths()[i].
  uint64_t EntryCountAt(size_t i) const {
    return offsets_[i + 1] - offsets_[i];
  }

  uint64_t MemoryBytes() const;

  void EncodeTo(std::string* out) const;
  static StatusOr<ValueIndex> DecodeFrom(Decoder* in);

  /// Cross-checks the invariants (paths ascending, entries sorted within
  /// each path, numeric flags consistent with the text).
  Status Validate() const;

 private:
  friend class ValueIndexBuilder;

  /// Entries of paths_[i] are entries_[offsets_[i], offsets_[i+1]).
  std::vector<PathId> paths_;
  std::vector<uint32_t> offsets_;  ///< size paths_.size() + 1 (or empty)
  std::vector<Entry> entries_;
};

/// Accumulates (parent element path, value text, doc) triples during
/// Observe and sorts them into a ValueIndex at Finish.
class ValueIndexBuilder {
 public:
  void Add(PathId parent, std::string_view text, DocId doc);
  ValueIndex Build() &&;

 private:
  struct Raw {
    PathId path;
    ValueIndex::Entry entry;
  };
  std::vector<Raw> raw_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_VINDEX_VALUE_INDEX_H_
