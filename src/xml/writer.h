// Serializes Documents back to XML text (round-trip support and examples).

#ifndef XSEQ_SRC_XML_WRITER_H_
#define XSEQ_SRC_XML_WRITER_H_

#include <string>

#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Writer knobs.
struct WriteOptions {
  /// Pretty-print with 2-space indentation. NOTE: indentation inserts
  /// whitespace around text content, so parse(write(doc)) is only an exact
  /// round trip with indent = false.
  bool indent = false;
  bool declaration = false; ///< emit an <?xml version="1.0"?> prolog
};

/// Renders `doc` as XML text. Attribute nodes become tag attributes;
/// value leaves become text content. Value nodes generated without original
/// text are rendered as "v<id>".
std::string WriteXml(const Document& doc, const NameTable& names,
                     const WriteOptions& options = WriteOptions());

/// Escapes &, <, >, " and ' for inclusion in XML text/attributes.
std::string EscapeXml(std::string_view raw);

}  // namespace xseq

#endif  // XSEQ_SRC_XML_WRITER_H_
