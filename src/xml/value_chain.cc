#include "src/xml/value_chain.h"

#include <string_view>

namespace xseq {

namespace {

void ExpandRec(const Node* n, Node* parent, Document* out) {
  if (n->is_value() && n->text != nullptr) {
    std::string_view text = n->text;
    Node* cur = parent;
    for (unsigned char c : text) {
      Node* ch = out->CreateValue(static_cast<ValueId>(c));
      out->AppendChild(cur, ch);
      cur = ch;
    }
    Node* term = out->CreateValue(kChainTerminator);
    out->AppendChild(cur, term);
    return;  // value leaves have no children
  }
  Node* copy = n->is_value() ? out->CreateValue(n->sym.id())
                             : out->CreateElement(n->sym.id());
  if (n->kind == NodeKind::kAttribute) copy->kind = NodeKind::kAttribute;
  if (parent == nullptr) {
    out->SetRoot(copy);
  } else {
    out->AppendChild(parent, copy);
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    ExpandRec(c, copy, out);
  }
}

}  // namespace

Document ExpandValueChains(const Document& src) {
  Document out(src.id());
  if (src.root() != nullptr) ExpandRec(src.root(), nullptr, &out);
  return out;
}

}  // namespace xseq
