// Core identifier types shared across xseq.
//
// The paper designates every element/attribute name by a *designator* and
// every attribute value by a value designator (hashed or exact). A path step
// is therefore one of two symbol spaces; Sym packs the space tag and the id
// into 32 bits so paths, sequences and index nodes stay compact.

#ifndef XSEQ_SRC_XML_SYMBOLS_H_
#define XSEQ_SRC_XML_SYMBOLS_H_

#include <cstdint>
#include <functional>

namespace xseq {

/// Dense id of an element/attribute name (designator).
using NameId = uint32_t;

/// Dense or hashed id of an attribute/text value.
using ValueId = uint32_t;

/// Id of an indexed document/record.
using DocId = uint32_t;

/// A step symbol in a root path: either a name designator or a value
/// designator. The high bit tags the space; ids are limited to 2^31-1.
class Sym {
 public:
  Sym() : raw_(0) {}

  static Sym ForName(NameId id) { return Sym(id & kIdMask); }
  static Sym ForValue(ValueId id) { return Sym((id & kIdMask) | kValueBit); }

  bool is_value() const { return (raw_ & kValueBit) != 0; }
  bool is_name() const { return !is_value(); }
  uint32_t id() const { return raw_ & kIdMask; }

  /// Raw packed representation (stable; usable as a map key).
  uint32_t raw() const { return raw_; }
  static Sym FromRaw(uint32_t raw) { return Sym(raw); }

  friend bool operator==(Sym a, Sym b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Sym a, Sym b) { return a.raw_ != b.raw_; }
  friend bool operator<(Sym a, Sym b) { return a.raw_ < b.raw_; }

 private:
  explicit Sym(uint32_t raw) : raw_(raw) {}

  static constexpr uint32_t kValueBit = 0x80000000u;
  static constexpr uint32_t kIdMask = 0x7FFFFFFFu;

  uint32_t raw_;
};

}  // namespace xseq

template <>
struct std::hash<xseq::Sym> {
  size_t operator()(xseq::Sym s) const noexcept {
    return std::hash<uint32_t>()(s.raw());
  }
};

#endif  // XSEQ_SRC_XML_SYMBOLS_H_
