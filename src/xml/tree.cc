#include "src/xml/tree.h"

#include <algorithm>

namespace xseq {

namespace {

void ComputeRegionsRec(const Node* n, uint16_t level, uint32_t* counter,
                       std::vector<Region>* out) {
  Region& r = (*out)[n->index];
  r.begin = (*counter)++;
  r.level = level;
  for (Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    ComputeRegionsRec(c, static_cast<uint16_t>(level + 1), counter, out);
  }
  r.end = *counter - 1;
}

}  // namespace

std::vector<Region> ComputeRegions(const Document& doc) {
  std::vector<Region> out(doc.node_count());
  uint32_t counter = 0;
  if (doc.root() != nullptr) ComputeRegionsRec(doc.root(), 0, &counter, &out);
  return out;
}

std::string CanonicalString(const Node* node) {
  std::vector<std::string> kids;
  for (Node* c = node->first_child; c != nullptr; c = c->next_sibling) {
    kids.push_back(CanonicalString(c));
  }
  std::sort(kids.begin(), kids.end());
  std::string out = "(";
  out += std::to_string(node->sym.raw());
  for (const std::string& k : kids) out += k;
  out += ")";
  return out;
}

bool UnorderedEqual(const Node* a, const Node* b) {
  if (a == nullptr || b == nullptr) return a == b;
  return CanonicalString(a) == CanonicalString(b);
}

namespace {

uint32_t Depth(const Node* n) {
  uint32_t best = 0;
  for (Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    best = std::max(best, Depth(c) + 1);
  }
  return best;
}

}  // namespace

CollectionStats ComputeStats(const std::vector<Document>& docs) {
  CollectionStats s;
  s.documents = docs.size();
  for (const Document& d : docs) {
    s.nodes += d.node_count();
    for (const Node* n : d.nodes()) {
      if (n->is_value()) ++s.value_nodes;
    }
    if (d.root() != nullptr) {
      s.max_depth = std::max(s.max_depth, Depth(d.root()));
    }
  }
  s.avg_nodes_per_doc =
      s.documents == 0 ? 0.0
                       : static_cast<double>(s.nodes) /
                             static_cast<double>(s.documents);
  return s;
}

namespace {

Node* CloneRec(const Node* n, Document* out) {
  Node* copy;
  if (n->is_value()) {
    copy = n->text != nullptr ? out->CreateValue(n->sym.id(), n->text)
                              : out->CreateValue(n->sym.id());
  } else {
    copy = out->CreateElement(n->sym.id());
    copy->kind = n->kind;  // preserve the attribute distinction
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    out->AppendChild(copy, CloneRec(c, out));
  }
  return copy;
}

}  // namespace

Document CloneDocument(const Document& src) {
  Document out(src.id());
  if (src.root() != nullptr) out.SetRoot(CloneRec(src.root(), &out));
  return out;
}

}  // namespace xseq
