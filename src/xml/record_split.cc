#include "src/xml/record_split.h"

#include <algorithm>

namespace xseq {

namespace {

Node* CopySubtree(const Node* n, Document* out) {
  Node* copy;
  if (n->is_value()) {
    copy = n->text != nullptr ? out->CreateValue(n->sym.id(), n->text)
                              : out->CreateValue(n->sym.id());
  } else {
    copy = out->CreateElement(n->sym.id());
    copy->kind = n->kind;
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    out->AppendChild(copy, CopySubtree(c, out));
  }
  return copy;
}

/// Builds one record: the ancestor chain (elements only, no siblings) and
/// the record subtree.
Document MakeRecord(const Node* record_root, DocId id) {
  Document out(id);
  // Collect ancestors root-first.
  std::vector<const Node*> chain;
  for (const Node* a = record_root->parent; a != nullptr; a = a->parent) {
    chain.push_back(a);
  }
  std::reverse(chain.begin(), chain.end());
  Node* parent = nullptr;
  for (const Node* a : chain) {
    Node* copy = out.CreateElement(a->sym.id());
    copy->kind = a->kind;
    if (parent == nullptr) {
      out.SetRoot(copy);
    } else {
      out.AppendChild(parent, copy);
    }
    parent = copy;
  }
  Node* subtree = CopySubtree(record_root, &out);
  if (parent == nullptr) {
    out.SetRoot(subtree);
  } else {
    out.AppendChild(parent, subtree);
  }
  return out;
}

void FindRecordRoots(const Node* n, const std::vector<NameId>& tags,
                     std::vector<const Node*>* out) {
  if (!n->is_value() &&
      std::find(tags.begin(), tags.end(), n->sym.id()) != tags.end()) {
    out->push_back(n);
    return;  // nested record tags stay inside the outer record
  }
  for (const Node* c = n->first_child; c != nullptr; c = c->next_sibling) {
    FindRecordRoots(c, tags, out);
  }
}

}  // namespace

std::vector<Document> SplitIntoRecords(const Document& doc,
                                       const std::vector<NameId>& record_tags,
                                       DocId first_id) {
  std::vector<Document> records;
  if (doc.root() == nullptr) return records;
  std::vector<const Node*> roots;
  FindRecordRoots(doc.root(), record_tags, &roots);
  DocId id = first_id;
  records.reserve(roots.size());
  for (const Node* r : roots) {
    records.push_back(MakeRecord(r, id++));
  }
  return records;
}

}  // namespace xseq
