// Record splitting: one large XML document -> many record documents.
//
// The paper indexes *records* (DBLP publications, XMark substructures) and
// notes that a large document's DTD "can always be decomposed into multiple
// small, homogeneous structures" with a separate index per substructure.
// SplitIntoRecords implements that decomposition: every element whose tag
// is in `record_tags` roots one record; the record document preserves the
// chain of ancestors down from the root (so absolute paths — /site//item —
// still resolve), the record subtree itself, and nothing else.

#ifndef XSEQ_SRC_XML_RECORD_SPLIT_H_
#define XSEQ_SRC_XML_RECORD_SPLIT_H_

#include <vector>

#include "src/util/status.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Splits `doc` at elements whose NameId is in `record_tags`. Records are
/// numbered `first_id`, `first_id + 1`, ... in document order. Nested
/// record tags are not split again (the outer record keeps its subtree).
/// Returns an empty vector when no record tag occurs.
std::vector<Document> SplitIntoRecords(
    const Document& doc, const std::vector<NameId>& record_tags,
    DocId first_id = 0);

}  // namespace xseq

#endif  // XSEQ_SRC_XML_RECORD_SPLIT_H_
