// A from-scratch, non-validating XML parser producing xseq Documents.
//
// Supported: elements, attributes, text content, self-closing tags,
// comments, processing instructions, CDATA sections, DOCTYPE (skipped),
// the five predefined entities and numeric character references.
// Not supported (rejected or ignored, by design — the paper's data model
// does not use them): external entities, namespaces-aware validation
// (prefixes are kept as part of the name), DTD content models.

#ifndef XSEQ_SRC_XML_PARSER_H_
#define XSEQ_SRC_XML_PARSER_H_

#include <string_view>

#include "src/util/status.h"
#include "src/xml/name_table.h"
#include "src/xml/tree.h"

namespace xseq {

/// Parser knobs.
struct ParseOptions {
  /// Keep text nodes that consist solely of whitespace (default: dropped,
  /// as they are formatting artifacts).
  bool keep_whitespace_text = false;
};

/// Parses XML text into Documents, interning names/values into the shared
/// vocabulary tables.
class XmlParser {
 public:
  XmlParser(NameTable* names, ValueEncoder* values)
      : names_(names), values_(values) {}

  /// Parses one well-formed XML document.
  StatusOr<Document> Parse(std::string_view xml, DocId id = 0,
                           const ParseOptions& options = ParseOptions());

 private:
  NameTable* names_;
  ValueEncoder* values_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_XML_PARSER_H_
