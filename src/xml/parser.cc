#include "src/xml/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace xseq {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

bool IsAllWhitespace(std::string_view s) {
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Cursor over the input with line tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < s_.size() ? s_[pos_ + off] : '\0';
  }
  void Advance() {
    if (s_[pos_] == '\n') ++line_;
    ++pos_;
  }
  bool StartsWith(std::string_view prefix) const {
    return s_.substr(pos_, prefix.size()) == prefix;
  }
  void Skip(size_t n) {
    for (size_t i = 0; i < n && !AtEnd(); ++i) Advance();
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  std::string_view Slice(size_t from, size_t to) const {
    return s_.substr(from, to - from);
  }

  Status Error(const std::string& what) const {
    return Status::Corruption("XML parse error at line " +
                              std::to_string(line_) + ": " + what);
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
  int line_ = 1;
};

/// Decodes entity and character references in `raw` into `out`.
Status DecodeText(Cursor* cur_for_err, std::string_view raw,
                  std::string* out) {
  out->clear();
  out->reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c != '&') {
      out->push_back(c);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return cur_for_err->Error("unterminated entity reference");
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      int base = 10;
      std::string_view digits = ent.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return cur_for_err->Error("bad character reference");
      unsigned long cp = 0;
      for (char d : digits) {
        int v;
        if (d >= '0' && d <= '9') {
          v = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          v = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          v = d - 'A' + 10;
        } else {
          return cur_for_err->Error("bad character reference");
        }
        cp = cp * base + static_cast<unsigned long>(v);
        if (cp > 0x10FFFF) {
          return cur_for_err->Error("character reference out of range");
        }
      }
      // Encode the code point as UTF-8.
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
    } else {
      return cur_for_err->Error("unknown entity '&" + std::string(ent) +
                                ";'");
    }
    i = semi;
  }
  return Status::OK();
}

}  // namespace

StatusOr<Document> XmlParser::Parse(std::string_view xml, DocId id,
                                    const ParseOptions& options) {
  Document doc(id);
  Cursor cur(xml);
  std::vector<Node*> stack;  // open elements
  std::string scratch;

  auto flush_text = [&](std::string_view raw) -> Status {
    if (stack.empty()) {
      if (IsAllWhitespace(raw)) return Status::OK();
      return cur.Error("text outside the root element");
    }
    if (!options.keep_whitespace_text && IsAllWhitespace(raw)) {
      return Status::OK();
    }
    XSEQ_RETURN_IF_ERROR(DecodeText(&cur, raw, &scratch));
    Node* v = doc.CreateValue(values_->Encode(scratch), scratch);
    doc.AppendChild(stack.back(), v);
    return Status::OK();
  };

  auto parse_name = [&]() -> StatusOr<std::string_view> {
    size_t start = cur.pos();
    if (cur.AtEnd() || !IsNameStartChar(cur.Peek())) {
      return cur.Error("expected a name");
    }
    while (!cur.AtEnd() && IsNameChar(cur.Peek())) cur.Advance();
    return cur.Slice(start, cur.pos());
  };

  while (!cur.AtEnd()) {
    if (cur.Peek() != '<') {
      // Text run up to the next tag.
      size_t start = cur.pos();
      while (!cur.AtEnd() && cur.Peek() != '<') cur.Advance();
      XSEQ_RETURN_IF_ERROR(flush_text(cur.Slice(start, cur.pos())));
      continue;
    }

    if (cur.StartsWith("<!--")) {
      cur.Skip(4);
      size_t start = cur.pos();
      while (!cur.AtEnd() && !cur.StartsWith("-->")) cur.Advance();
      if (cur.AtEnd()) return cur.Error("unterminated comment");
      (void)start;
      cur.Skip(3);
      continue;
    }
    if (cur.StartsWith("<![CDATA[")) {
      cur.Skip(9);
      size_t start = cur.pos();
      while (!cur.AtEnd() && !cur.StartsWith("]]>")) cur.Advance();
      if (cur.AtEnd()) return cur.Error("unterminated CDATA section");
      std::string_view raw = cur.Slice(start, cur.pos());
      cur.Skip(3);
      if (stack.empty()) return cur.Error("CDATA outside the root element");
      if (!raw.empty()) {
        Node* v = doc.CreateValue(values_->Encode(raw), raw);
        doc.AppendChild(stack.back(), v);
      }
      continue;
    }
    if (cur.StartsWith("<?")) {
      cur.Skip(2);
      while (!cur.AtEnd() && !cur.StartsWith("?>")) cur.Advance();
      if (cur.AtEnd()) return cur.Error("unterminated processing instruction");
      cur.Skip(2);
      continue;
    }
    if (cur.StartsWith("<!DOCTYPE") || cur.StartsWith("<!doctype")) {
      // Skip to the matching '>' accounting for an internal subset.
      int depth = 0;
      while (!cur.AtEnd()) {
        char c = cur.Peek();
        cur.Advance();
        if (c == '[') ++depth;
        if (c == ']') --depth;
        if (c == '>' && depth <= 0) break;
      }
      continue;
    }
    if (cur.StartsWith("</")) {
      cur.Skip(2);
      auto name = parse_name();
      if (!name.ok()) return name.status();
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Peek() != '>') {
        return cur.Error("malformed closing tag");
      }
      cur.Advance();
      if (stack.empty()) {
        return cur.Error("closing tag with no open element");
      }
      NameId expect = stack.back()->sym.id();
      if (names_->Lookup(expect) != *name) {
        return cur.Error("mismatched closing tag </" + std::string(*name) +
                         ">, expected </" + names_->Lookup(expect) + ">");
      }
      stack.pop_back();
      continue;
    }

    // Opening tag.
    cur.Advance();  // consume '<'
    auto name = parse_name();
    if (!name.ok()) return name.status();
    Node* elem = doc.CreateElement(names_->Intern(*name));
    if (stack.empty()) {
      if (doc.root() != nullptr) {
        return cur.Error("multiple root elements");
      }
      doc.SetRoot(elem);
    } else {
      doc.AppendChild(stack.back(), elem);
    }

    // Attributes.
    for (;;) {
      cur.SkipWhitespace();
      if (cur.AtEnd()) return cur.Error("unterminated tag");
      if (cur.Peek() == '>' || cur.StartsWith("/>")) break;
      auto attr = parse_name();
      if (!attr.ok()) return attr.status();
      cur.SkipWhitespace();
      if (cur.AtEnd() || cur.Peek() != '=') {
        return cur.Error("attribute without value");
      }
      cur.Advance();
      cur.SkipWhitespace();
      if (cur.AtEnd() || (cur.Peek() != '"' && cur.Peek() != '\'')) {
        return cur.Error("attribute value must be quoted");
      }
      char quote = cur.Peek();
      cur.Advance();
      size_t vstart = cur.pos();
      while (!cur.AtEnd() && cur.Peek() != quote) cur.Advance();
      if (cur.AtEnd()) return cur.Error("unterminated attribute value");
      std::string_view raw = cur.Slice(vstart, cur.pos());
      cur.Advance();
      XSEQ_RETURN_IF_ERROR(DecodeText(&cur, raw, &scratch));
      Node* a = doc.CreateAttribute(names_->Intern(*attr));
      doc.AppendChild(elem, a);
      Node* v = doc.CreateValue(values_->Encode(scratch), scratch);
      doc.AppendChild(a, v);
    }

    if (cur.StartsWith("/>")) {
      cur.Skip(2);
      // Element already closed; nothing pushed.
    } else {
      cur.Advance();  // '>'
      stack.push_back(elem);
    }
  }

  if (!stack.empty()) {
    return cur.Error("unclosed element <" +
                     names_->Lookup(stack.back()->sym.id()) + ">");
  }
  if (doc.root() == nullptr) {
    return cur.Error("no root element");
  }
  return doc;
}

}  // namespace xseq
