// Designator tables: element/attribute names and attribute values.
//
// Values support the paper's two options:
//  * kExact  — every distinct value string gets its own designator
//              (collision-free; the default),
//  * kHashed — values are reduced by a stable hash into a fixed range
//              (ViST's choice; collisions can cause extra candidate
//              documents, never missed ones).

#ifndef XSEQ_SRC_XML_NAME_TABLE_H_
#define XSEQ_SRC_XML_NAME_TABLE_H_

#include <string>
#include <string_view>

#include "src/util/hash.h"
#include "src/util/interner.h"
#include "src/xml/symbols.h"

namespace xseq {

/// Interns element/attribute names into dense NameIds.
class NameTable {
 public:
  NameId Intern(std::string_view name) { return names_.Intern(name); }

  /// Returns the id for `name` or Interner::kInvalidId if never seen.
  NameId Find(std::string_view name) const { return names_.Find(name); }

  const std::string& Lookup(NameId id) const { return names_.Lookup(id); }

  size_t size() const { return names_.size(); }

  void EncodeTo(std::string* dst) const { names_.EncodeTo(dst); }
  static StatusOr<NameTable> DecodeFrom(Decoder* in) {
    auto interner = Interner::DecodeFrom(in);
    if (!interner.ok()) return interner.status();
    NameTable out;
    out.names_ = std::move(*interner);
    return out;
  }

 private:
  Interner names_;
};

/// How attribute/text values are mapped to value designators.
enum class ValueMode {
  kExact,         ///< one designator per distinct string (default)
  kHashed,        ///< stable hash into [0, hash_range)
  kCharSequence,  ///< per-character chains (Index Fabric style); enables
                  ///< prefix predicates — see src/xml/value_chain.h
};

/// Maps value strings to ValueIds under a ValueMode.
class ValueEncoder {
 public:
  explicit ValueEncoder(ValueMode mode = ValueMode::kExact,
                        uint32_t hash_range = 1000)
      : mode_(mode), hash_range_(hash_range) {}

  ValueMode mode() const { return mode_; }
  uint32_t hash_range() const { return hash_range_; }

  /// Encodes `text`. In kHashed mode distinct strings may collide.
  ValueId Encode(std::string_view text) {
    if (mode_ == ValueMode::kHashed) return HashToRange(text, hash_range_);
    return values_.Intern(text);
  }

  /// Encodes without interning new ids; returns Interner::kInvalidId for an
  /// exact-mode string never seen in the data (such a value matches nothing).
  ValueId EncodeForLookup(std::string_view text) const {
    if (mode_ == ValueMode::kHashed) return HashToRange(text, hash_range_);
    return values_.Find(text);
  }

  /// Exact mode only: the original string for `id`.
  const std::string& Lookup(ValueId id) const { return values_.Lookup(id); }

  /// Number of distinct designators issued (exact mode).
  size_t size() const { return values_.size(); }

  void EncodeTo(std::string* dst) const {
    PutFixed32(dst, static_cast<uint32_t>(mode_));
    PutFixed32(dst, hash_range_);
    values_.EncodeTo(dst);
  }
  static StatusOr<ValueEncoder> DecodeFrom(Decoder* in) {
    uint32_t mode = 0, range = 0;
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&mode));
    XSEQ_RETURN_IF_ERROR(in->GetFixed32(&range));
    if (mode > static_cast<uint32_t>(ValueMode::kCharSequence)) {
      return Status::Corruption("unknown value mode");
    }
    auto interner = Interner::DecodeFrom(in);
    if (!interner.ok()) return interner.status();
    ValueEncoder out(static_cast<ValueMode>(mode), range);
    out.values_ = std::move(*interner);
    return out;
  }

 private:
  ValueMode mode_;
  uint32_t hash_range_;
  Interner values_;
};

}  // namespace xseq

#endif  // XSEQ_SRC_XML_NAME_TABLE_H_
