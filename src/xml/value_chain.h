// Character-chain value representation (the paper's second option).
//
// Instead of one designator per value ("boston" -> v1), a value can be
// represented by the sequence of its characters ("b,o,s,t,o,n", as in
// Index Fabric), each character a path step. Equality predicates then match
// the full chain plus a terminator; *prefix* predicates (starts-with)
// match the chain without the terminator — substring search inside values
// becomes ordinary subsequence matching.
//
// The transform keeps the tree model unchanged: a value leaf becomes a
// unary chain of value nodes whose ids are the character codes, closed by
// a terminator node.

#ifndef XSEQ_SRC_XML_VALUE_CHAIN_H_
#define XSEQ_SRC_XML_VALUE_CHAIN_H_

#include "src/xml/tree.h"

namespace xseq {

/// The value id closing every character chain (no character maps to it).
inline constexpr ValueId kChainTerminator = 256;

/// Returns a copy of `src` where every value leaf carrying text is replaced
/// by its character chain. Value leaves without retained text keep their
/// designator unchanged.
Document ExpandValueChains(const Document& src);

}  // namespace xseq

#endif  // XSEQ_SRC_XML_VALUE_CHAIN_H_
