// Document tree model.
//
// XML documents (and the synthetic records of the paper's experiments) are
// unordered labeled trees with three node kinds: elements, attributes and
// values. Attributes are modeled as children of their element — the paper
// treats them identically to sub-elements — and every attribute/text value
// is a leaf value node.
//
// Nodes are arena-allocated; a Document owns its arena and exposes nodes in
// creation order through nodes() for cheap per-node side arrays.

#ifndef XSEQ_SRC_XML_TREE_H_
#define XSEQ_SRC_XML_TREE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/arena.h"
#include "src/xml/name_table.h"
#include "src/xml/symbols.h"

namespace xseq {

/// Node kinds. Attributes behave exactly like elements for indexing; the
/// distinction is kept only for faithful re-serialization.
enum class NodeKind : uint8_t {
  kElement,
  kAttribute,
  kValue,
};

/// A tree node. Trivially destructible (arena-allocated).
struct Node {
  NodeKind kind = NodeKind::kElement;
  Sym sym;                    ///< name symbol, or value symbol for kValue
  uint32_t index = 0;         ///< position in Document::nodes()
  const char* text = nullptr; ///< original text of a value node, else null
  Node* parent = nullptr;
  Node* first_child = nullptr;
  Node* last_child = nullptr;
  Node* next_sibling = nullptr;

  bool is_value() const { return kind == NodeKind::kValue; }

  /// Number of children (O(children)).
  size_t ChildCount() const {
    size_t n = 0;
    for (Node* c = first_child; c != nullptr; c = c->next_sibling) ++n;
    return n;
  }
};

/// An XML document / record: a rooted tree plus its arena.
class Document {
 public:
  explicit Document(DocId id = 0) : id_(id) {}

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;
  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  DocId id() const { return id_; }
  void set_id(DocId id) { id_ = id; }

  Node* root() const { return root_; }

  /// All nodes in creation order; node->index is the position here.
  const std::vector<Node*>& nodes() const { return nodes_; }
  size_t node_count() const { return nodes_.size(); }

  /// Creates an element node (detached until appended / set as root).
  Node* CreateElement(NameId name) {
    return Create(NodeKind::kElement, Sym::ForName(name), nullptr, 0);
  }

  /// Creates an attribute node.
  Node* CreateAttribute(NameId name) {
    return Create(NodeKind::kAttribute, Sym::ForName(name), nullptr, 0);
  }

  /// Creates a value (text) leaf. `text` is copied into the arena.
  Node* CreateValue(ValueId value, std::string_view text) {
    return Create(NodeKind::kValue, Sym::ForValue(value), text.data(),
                  text.size());
  }

  /// Creates a value leaf without retaining the original text (generators
  /// that only care about designators).
  Node* CreateValue(ValueId value) {
    return Create(NodeKind::kValue, Sym::ForValue(value), nullptr, 0);
  }

  /// Makes `node` the document root. Precondition: no root set yet.
  void SetRoot(Node* node) { root_ = node; }

  /// Appends `child` as the last child of `parent`.
  void AppendChild(Node* parent, Node* child) {
    child->parent = parent;
    if (parent->last_child == nullptr) {
      parent->first_child = child;
    } else {
      parent->last_child->next_sibling = child;
    }
    parent->last_child = child;
  }

  /// Approximate heap footprint.
  size_t MemoryUsage() const {
    return arena_.BytesReserved() + nodes_.capacity() * sizeof(Node*);
  }

 private:
  Node* Create(NodeKind kind, Sym sym, const char* text, size_t len) {
    Node* n = arena_.New<Node>();
    n->kind = kind;
    n->sym = sym;
    n->index = static_cast<uint32_t>(nodes_.size());
    if (text != nullptr) n->text = arena_.CopyString(text, len);
    nodes_.push_back(n);
    return n;
  }

  DocId id_;
  Arena arena_;
  Node* root_ = nullptr;
  std::vector<Node*> nodes_;
};

/// Pre-order region label of a node: begin = pre-order rank, end = largest
/// rank in the subtree, level = depth (root = 0). The classic interval
/// containment scheme used by XISS-style structural joins.
struct Region {
  uint32_t begin = 0;
  uint32_t end = 0;
  uint16_t level = 0;
};

/// Computes region labels for every node, indexed by node->index.
std::vector<Region> ComputeRegions(const Document& doc);

/// Canonical string of the subtree at `node`: equal strings <=> the subtrees
/// are isomorphic as *unordered* labeled trees. Quadratic worst case; meant
/// for tests and small trees.
std::string CanonicalString(const Node* node);

/// Unordered-isomorphism comparison of two trees.
bool UnorderedEqual(const Node* a, const Node* b);

/// Summary statistics of a document collection.
struct CollectionStats {
  uint64_t documents = 0;
  uint64_t nodes = 0;        ///< elements + attributes + values
  uint64_t value_nodes = 0;
  uint32_t max_depth = 0;
  double avg_nodes_per_doc = 0.0;
};

/// Computes statistics over `docs`.
CollectionStats ComputeStats(const std::vector<Document>& docs);

/// Deep copy of `src` (kinds, symbols and value text preserved).
Document CloneDocument(const Document& src);

}  // namespace xseq

#endif  // XSEQ_SRC_XML_TREE_H_
