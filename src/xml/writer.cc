#include "src/xml/writer.h"

namespace xseq {

std::string EscapeXml(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string ValueText(const Node* v) {
  if (v->text != nullptr) return v->text;
  return "v" + std::to_string(v->sym.id());
}

void WriteNode(const Node* n, const NameTable& names,
               const WriteOptions& options, int depth, std::string* out) {
  auto pad = [&]() {
    if (options.indent) out->append(static_cast<size_t>(depth) * 2, ' ');
  };

  if (n->is_value()) {
    pad();
    *out += EscapeXml(ValueText(n));
    if (options.indent) *out += '\n';
    return;
  }

  pad();
  *out += '<';
  *out += names.Lookup(n->sym.id());

  // Leading attribute children become tag attributes.
  const Node* c = n->first_child;
  for (; c != nullptr && c->kind == NodeKind::kAttribute;
       c = c->next_sibling) {
    *out += ' ';
    *out += names.Lookup(c->sym.id());
    *out += "=\"";
    *out += c->first_child != nullptr ? EscapeXml(ValueText(c->first_child))
                                      : "";
    *out += '"';
  }

  if (c == nullptr) {
    *out += "/>";
    if (options.indent) *out += '\n';
    return;
  }
  *out += '>';
  if (options.indent) *out += '\n';
  for (; c != nullptr; c = c->next_sibling) {
    WriteNode(c, names, options, depth + 1, out);
  }
  pad();
  *out += "</";
  *out += names.Lookup(n->sym.id());
  *out += '>';
  if (options.indent) *out += '\n';
}

}  // namespace

std::string WriteXml(const Document& doc, const NameTable& names,
                     const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out += "<?xml version=\"1.0\"?>";
    if (options.indent) out += '\n';
  }
  if (doc.root() != nullptr) {
    WriteNode(doc.root(), names, options, 0, &out);
  }
  return out;
}

}  // namespace xseq
