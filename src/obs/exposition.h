// Prometheus text exposition (version 0.0.4) of a MetricsSnapshot, so the
// serving plane can be scraped by stock collectors instead of polled with
// xseq_tool. Dotted registry names ("xseq.server.frames") become legal
// Prometheus series names ("xseq_server_frames"); an optional prefix maps
// the whole registry under a binary-specific namespace (xseq_serve_*).
//
// Rendering rules:
//   counter    -> `# TYPE <name> counter` + one sample
//   gauge      -> `# TYPE <name> gauge` + one sample (the _max companion
//                 gauge is exported as `<name>_max`)
//   histogram  -> Prometheus *summary*: quantile-labeled samples for
//                 p50/p90/p99 plus `_sum`, `_count`, and a `_max` gauge
//                 (the registry keeps power-of-two buckets, not the
//                 cumulative buckets a Prometheus histogram type needs).

#ifndef XSEQ_SRC_OBS_EXPOSITION_H_
#define XSEQ_SRC_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "src/obs/metrics.h"

namespace xseq {
namespace obs {

/// `name` with every character outside [a-zA-Z0-9_] replaced by '_', and a
/// leading '_' prepended when the first character would be a digit.
std::string PrometheusName(std::string_view name);

/// Renders `snap` in the Prometheus text exposition format. `prefix` (e.g.
/// "xseq_serve_") is sanitized and prepended to every series name.
std::string PrometheusDump(const MetricsSnapshot& snap,
                           std::string_view prefix = "");

/// PrometheusDump of MetricsRegistry::Default()->Snapshot().
std::string PrometheusDefaultDump(std::string_view prefix = "");

}  // namespace obs
}  // namespace xseq

#endif  // XSEQ_SRC_OBS_EXPOSITION_H_
