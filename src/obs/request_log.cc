#include "src/obs/request_log.h"

#include <cinttypes>
#include <cstdio>

#include "src/obs/metrics.h"

namespace xseq {
namespace obs {

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

struct LogMetricSet {
  Counter* records;
  Counter* dropped;
  Counter* rotations;
  Counter* errors;
};

const LogMetricSet& LogMetrics() {
  static const LogMetricSet s = [] {
    MetricsRegistry* r = MetricsRegistry::Default();
    return LogMetricSet{r->GetCounter("xseq.log.records"),
                        r->GetCounter("xseq.log.dropped"),
                        r->GetCounter("xseq.log.rotations"),
                        r->GetCounter("xseq.log.errors")};
  }();
  return s;
}

}  // namespace

std::string RequestLogLine(const RequestLogRecord& rec,
                           std::string_view reason) {
  char buf[160];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"ts_us\":%" PRIu64 ",\"id\":%" PRIu64 ",",
                rec.ts_us, rec.request_id);
  out.append(buf);
  if (rec.trace_id != 0) {
    std::snprintf(buf, sizeof(buf), "\"trace_id\":%" PRIu64 ",", rec.trace_id);
    out.append(buf);
  }
  out.append("\"op\":");
  AppendJsonString(&out, rec.op);
  out.append(",\"query\":");
  AppendJsonString(&out, rec.query);
  out.append(",\"status\":");
  AppendJsonString(&out, rec.status);
  out.append(",\"reason\":");
  AppendJsonString(&out, reason);
  std::snprintf(buf, sizeof(buf),
                ",\"ok\":%s,\"shed\":%s,\"deadline_miss\":%s,"
                "\"result_cache_hit\":%s,\"plan_cache_hit\":%s",
                rec.ok ? "true" : "false", rec.shed ? "true" : "false",
                rec.deadline_miss ? "true" : "false",
                rec.result_cache_hit ? "true" : "false",
                rec.plan_cache_hit ? "true" : "false");
  out.append(buf);
  std::snprintf(buf, sizeof(buf),
                ",\"latency_us\":%" PRIu64 ",\"queue_us\":%" PRIu64
                ",\"docs\":%" PRIu64,
                rec.latency_us, rec.queue_us, rec.docs);
  out.append(buf);
  if (!rec.explain_json.empty()) {
    out.append(",\"explain\":");
    out.append(rec.explain_json);  // already a JSON object
  }
  out.push_back('}');
  return out;
}

StatusOr<std::unique_ptr<RequestLog>> RequestLog::Open(
    const RequestLogOptions& options) {
  RequestLogOptions opts = options;
  if (opts.env == nullptr) opts.env = Env::Default();
  std::unique_ptr<RequestLog> log(new RequestLog(opts));
  auto file = opts.env->NewWritableFile(opts.path);
  if (!file.ok()) return file.status();
  log->file_ = std::move(*file);
  return log;
}

const char* RequestLog::Classify(const RequestLogRecord& rec) const {
  if (rec.shed) return "shed";
  if (rec.deadline_miss) return "deadline";
  if (!rec.ok) return "error";
  if (opts_.slow_micros > 0 && rec.latency_us >= opts_.slow_micros) {
    return "slow";
  }
  return opts_.sample_every > 0 ? "sampled" : "";
}

Status RequestLog::RotateLocked() {
  Status st = file_->Close();
  file_.reset();
  if (st.ok()) {
    st = opts_.env->RenameFile(opts_.path, opts_.path + ".1");
  }
  auto file = opts_.env->NewWritableFile(opts_.path);
  if (!file.ok()) return file.status();
  file_ = std::move(*file);
  bytes_ = 0;
  ++rotations_;
  if (MetricsEnabled()) LogMetrics().rotations->Increment();
  return st;
}

Status RequestLog::Append(const RequestLogRecord& rec) {
  const std::string_view reason = Classify(rec);
  if (reason.empty()) {  // sample_every == 0: drop every OK-and-fast record
    std::lock_guard<std::mutex> lock(mu_);
    ++dropped_;
    if (MetricsEnabled()) LogMetrics().dropped->Increment();
    return Status::OK();
  }
  if (reason == "sampled") {
    std::lock_guard<std::mutex> lock(mu_);
    if (ok_seen_++ % opts_.sample_every != 0) {
      ++dropped_;
      if (MetricsEnabled()) LogMetrics().dropped->Increment();
      return Status::OK();
    }
  }
  std::string line = RequestLogLine(rec, reason);
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("request log is closed");
  }
  Status st = file_->Append(line);
  if (!st.ok()) {
    if (MetricsEnabled()) LogMetrics().errors->Increment();
    return st;
  }
  bytes_ += line.size();
  ++written_;
  if (MetricsEnabled()) LogMetrics().records->Increment();
  if (opts_.rotate_bytes > 0 && bytes_ >= opts_.rotate_bytes) {
    st = RotateLocked();
    if (!st.ok() && MetricsEnabled()) LogMetrics().errors->Increment();
  }
  return st;
}

Status RequestLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("request log is closed");
  }
  return file_->Sync();
}

uint64_t RequestLog::records_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

uint64_t RequestLog::records_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t RequestLog::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

}  // namespace obs
}  // namespace xseq
