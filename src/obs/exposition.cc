#include "src/obs/exposition.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace xseq {
namespace obs {

namespace {

void AppendName(std::string* out, std::string_view prefix,
                std::string_view name) {
  out->append(PrometheusName(prefix));
  // The prefix was sanitized on its own, so a digit-leading metric name
  // can't produce an illegal series start once appended after it.
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out->push_back(ok ? c : '_');
  }
}

void AppendU64Sample(std::string* out, std::string_view prefix,
                     std::string_view name, std::string_view suffix,
                     uint64_t value) {
  AppendName(out, prefix, name);
  out->append(suffix);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", value);
  out->append(buf);
}

void AppendI64Sample(std::string* out, std::string_view prefix,
                     std::string_view name, std::string_view suffix,
                     int64_t value) {
  AppendName(out, prefix, name);
  out->append(suffix);
  char buf[32];
  std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", value);
  out->append(buf);
}

void AppendType(std::string* out, std::string_view prefix,
                std::string_view name, std::string_view suffix,
                std::string_view type) {
  out->append("# TYPE ");
  AppendName(out, prefix, name);
  out->append(suffix);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

void AppendQuantile(std::string* out, std::string_view prefix,
                    std::string_view name, const char* q, double value) {
  AppendName(out, prefix, name);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{quantile=\"%s\"} %.17g\n", q, value);
  out->append(buf);
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusDump(const MetricsSnapshot& snap,
                           std::string_view prefix) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    AppendType(&out, prefix, name, "", "counter");
    AppendU64Sample(&out, prefix, name, "", value);
  }
  for (const auto& [name, value] : snap.gauges) {
    AppendType(&out, prefix, name, "", "gauge");
    AppendI64Sample(&out, prefix, name, "", value);
  }
  for (const auto& [name, value] : snap.gauge_maxes) {
    AppendType(&out, prefix, name, "_max", "gauge");
    AppendI64Sample(&out, prefix, name, "_max", value);
  }
  for (const MetricsSnapshot::HistogramView& h : snap.histograms) {
    AppendType(&out, prefix, h.name, "", "summary");
    AppendQuantile(&out, prefix, h.name, "0.5", h.p50);
    AppendQuantile(&out, prefix, h.name, "0.9", h.p90);
    AppendQuantile(&out, prefix, h.name, "0.99", h.p99);
    AppendU64Sample(&out, prefix, h.name, "_sum", h.sum);
    AppendU64Sample(&out, prefix, h.name, "_count", h.count);
    AppendType(&out, prefix, h.name, "_max", "gauge");
    AppendU64Sample(&out, prefix, h.name, "_max", h.max);
  }
  return out;
}

std::string PrometheusDefaultDump(std::string_view prefix) {
  return PrometheusDump(MetricsRegistry::Default()->Snapshot(), prefix);
}

}  // namespace obs
}  // namespace xseq
