// Per-query tracing: span trees with wall-clock timings and counter
// annotations, a bounded ring buffer of recent traces, and a Chrome
// `trace_event` JSON exporter (load the file in chrome://tracing or
// https://ui.perfetto.dev).
//
// A query's trace is built by a TraceBuilder threaded down the execution
// path (see ExecOptions::tracer): the entry point opens the root span,
// every stage opens child spans (compile -> instantiate -> per-ordering
// match -> per-segment probe), and the finished tree is committed into a
// Tracer's ring buffer. Builders are internally synchronized, so spans may
// be opened from pool workers during parallel matching; span ids are
// indices into the trace's span array and parent links always point to an
// earlier index.
//
// Tracing is strictly opt-in per query: a null Tracer* costs one pointer
// compare per stage. Overhead while enabled is two clock reads plus one
// short critical section per span.

#ifndef XSEQ_SRC_OBS_TRACE_H_
#define XSEQ_SRC_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xseq {
namespace obs {

/// Root / "no parent" marker for span parent links.
inline constexpr uint32_t kNoSpan = 0xFFFFFFFFu;

/// Distributed trace identity, propagated across process boundaries (wire
/// protocol v4 carries one per query frame). `trace_id` is a nonzero
/// 48-bit id shared by every span of one end-to-end request; `parent_span`
/// is the span id *in the sender's trace* the receiver should treat as its
/// logical parent; `sampled` asks the receiver to record (and return) its
/// side of the trace. A zero trace_id means "no context".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  bool sampled = false;

  bool valid() const { return trace_id != 0; }
};

/// A fresh nonzero 48-bit trace id (masked so it survives a round-trip
/// through JSON doubles and Chrome "pid" fields). Thread-safe.
uint64_t GenerateTraceId();

/// One timed node of a trace tree. Timestamps are microseconds relative to
/// the trace's start.
struct TraceSpan {
  std::string name;
  uint32_t parent = kNoSpan;  ///< index of the parent span, kNoSpan for root
  uint32_t tid = 0;           ///< small per-trace thread slot
  uint64_t start_us = 0;
  uint64_t dur_us = 0;
  bool closed = false;
  /// Counter annotations, rendered as Chrome "args".
  std::vector<std::pair<std::string, uint64_t>> args;
};

/// A finished span tree.
struct Trace {
  uint64_t id = 0;            ///< assigned by the Tracer at commit
  uint64_t trace_id = 0;      ///< distributed id (0 = purely local trace)
  /// Span id in the *remote sender's* trace under which this tree logically
  /// hangs; kNoSpan when this process started the request.
  uint64_t parent_span = kNoSpan;
  uint64_t wall_start_us = 0; ///< steady-clock micros at StartTrace
  std::vector<TraceSpan> spans;
};

/// Serializes `trace` as one Chrome trace_event JSON document
/// ({"traceEvents":[...]}, "X" complete events, ts/dur in microseconds).
std::string TraceToChromeJson(const Trace& trace);

class Tracer;

/// Accumulates the spans of one trace. Thread-safe: concurrent BeginSpan /
/// EndSpan calls from pool workers serialize on an internal mutex. Use is
/// optional-by-pointer everywhere; a null builder means "not tracing".
class TraceBuilder {
 public:
  TraceBuilder() = default;
  TraceBuilder(const TraceBuilder&) = delete;
  TraceBuilder& operator=(const TraceBuilder&) = delete;

  /// Opens the root span and starts the clock. Returns the root span id.
  uint32_t StartTrace(std::string_view root_name);

  /// As StartTrace, but adopts (or mints) a distributed identity: the
  /// trace's id becomes `ctx.trace_id` when the context is valid, otherwise
  /// a fresh GenerateTraceId(); `ctx.parent_span` is remembered so exports
  /// can stitch this tree under the sender's span.
  uint32_t StartTrace(std::string_view root_name, const TraceContext& ctx);

  /// A context other processes can attach under: this trace's id plus
  /// `span` as the parent. Invalid (zero) context when not active.
  TraceContext ContextFor(uint32_t span) const;

  /// Splices a remote subtree (a trace returned by a peer) under local span
  /// `parent`: remote spans are appended with parents re-pointed, thread
  /// slots moved to fresh lanes, and timestamps shifted so the remote root
  /// ends "now" (the moment the response landed). Returns the local id of
  /// the grafted root, or kNoSpan if inactive or `remote` is empty.
  uint32_t Graft(const Trace& remote, uint32_t parent);

  /// Opens a child span of `parent` (kNoSpan only for the root). Returns
  /// the new span id.
  uint32_t BeginSpan(std::string_view name, uint32_t parent);

  /// Closes `span`, fixing its duration. Idempotent.
  void EndSpan(uint32_t span);

  /// Attaches a counter annotation to `span`.
  void Annotate(uint32_t span, std::string_view key, uint64_t value);

  bool active() const { return active_; }

  /// Closes any open spans (root included) and hands the finished trace to
  /// `tracer`'s ring buffer. The builder resets to inactive.
  void Commit(Tracer* tracer);

  /// As Commit, but returns the trace instead of recording it.
  Trace Finish();

 private:
  uint64_t NowUs() const;
  uint32_t TidSlot();

  mutable std::mutex mu_;
  bool active_ = false;
  Trace trace_;
  std::vector<uint64_t> tid_hashes_;  ///< hash -> slot, per trace
};

/// RAII span: begins on construction (when `builder` is non-null), ends on
/// destruction. The id is usable as a parent for nested scopes.
class SpanScope {
 public:
  SpanScope(TraceBuilder* builder, std::string_view name, uint32_t parent)
      : builder_(builder),
        id_(builder != nullptr ? builder->BeginSpan(name, parent) : kNoSpan) {}
  ~SpanScope() {
    if (builder_ != nullptr) builder_->EndSpan(id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  uint32_t id() const { return id_; }
  void Annotate(std::string_view key, uint64_t value) {
    if (builder_ != nullptr) builder_->Annotate(id_, key, value);
  }
  /// Closes the span early (EndSpan is idempotent; the destructor is then a
  /// no-op). For spans that must end before their C++ scope does.
  void End() {
    if (builder_ != nullptr) builder_->EndSpan(id_);
  }

 private:
  TraceBuilder* const builder_;
  const uint32_t id_;
};

/// A bounded ring buffer of recent traces. Thread-safe.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 32)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Stores `trace` (assigning its id), evicting the oldest when full.
  void Record(Trace&& trace);

  /// Copies of the retained traces, oldest first.
  std::vector<Trace> Recent() const;

  /// The most recently recorded trace; empty Trace when none.
  Trace Latest() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;

  /// One Chrome JSON document holding every retained trace (ids become
  /// Chrome "pid"s so chrome://tracing shows one lane group per query).
  std::string ExportChromeJson() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Trace> ring_;
  uint64_t next_id_ = 1;
  uint64_t total_ = 0;
};

/// Renders `trace` as an indented span tree with durations and
/// annotations, for terminal output (xseq_tool trace).
std::string FormatTraceTree(const Trace& trace);

}  // namespace obs
}  // namespace xseq

#endif  // XSEQ_SRC_OBS_TRACE_H_
