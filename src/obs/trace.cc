#include "src/obs/trace.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

namespace xseq {
namespace obs {

namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendEventJson(std::string* out, const TraceSpan& span, uint64_t pid) {
  char buf[128];
  out->append("{\"name\":\"");
  AppendEscaped(out, span.name);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"X\",\"pid\":%llu,\"tid\":%u,\"ts\":%llu,"
                "\"dur\":%llu",
                static_cast<unsigned long long>(pid), span.tid,
                static_cast<unsigned long long>(span.start_us),
                static_cast<unsigned long long>(span.dur_us));
  out->append(buf);
  out->append(",\"args\":{");
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    AppendEscaped(out, key);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(value));
    out->append(buf);
  }
  out->append("}}");
}

}  // namespace

std::string TraceToChromeJson(const Trace& trace) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('\n');
    AppendEventJson(&out, trace.spans[i], trace.id);
  }
  out.append("\n]}\n");
  return out;
}

uint64_t TraceBuilder::NowUs() const {
  return SteadyNowUs() - trace_.wall_start_us;
}

uint32_t TraceBuilder::TidSlot() {
  // Small, per-trace stable thread slots: slot 0 is the thread that started
  // the trace, helpers get 1, 2, ... in first-span order.
  uint64_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (size_t i = 0; i < tid_hashes_.size(); ++i) {
    if (tid_hashes_[i] == h) return static_cast<uint32_t>(i);
  }
  tid_hashes_.push_back(h);
  return static_cast<uint32_t>(tid_hashes_.size() - 1);
}

uint32_t TraceBuilder::StartTrace(std::string_view root_name) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = Trace();
  tid_hashes_.clear();
  trace_.wall_start_us = SteadyNowUs();
  active_ = true;
  TraceSpan root;
  root.name = std::string(root_name);
  root.parent = kNoSpan;
  root.tid = TidSlot();
  root.start_us = 0;
  trace_.spans.push_back(std::move(root));
  return 0;
}

uint32_t TraceBuilder::BeginSpan(std::string_view name, uint32_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) return kNoSpan;
  TraceSpan span;
  span.name = std::string(name);
  span.parent = parent;
  span.tid = TidSlot();
  span.start_us = NowUs();
  trace_.spans.push_back(std::move(span));
  return static_cast<uint32_t>(trace_.spans.size() - 1);
}

void TraceBuilder::EndSpan(uint32_t span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || span >= trace_.spans.size()) return;
  TraceSpan& s = trace_.spans[span];
  if (s.closed) return;
  s.dur_us = NowUs() - s.start_us;
  s.closed = true;
}

void TraceBuilder::Annotate(uint32_t span, std::string_view key,
                            uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || span >= trace_.spans.size()) return;
  trace_.spans[span].args.emplace_back(std::string(key), value);
}

Trace TraceBuilder::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t now = NowUs();
  for (TraceSpan& s : trace_.spans) {
    if (!s.closed) {
      s.dur_us = now - s.start_us;
      s.closed = true;
    }
  }
  active_ = false;
  return std::move(trace_);
}

void TraceBuilder::Commit(Tracer* tracer) {
  Trace done = Finish();
  if (tracer != nullptr) tracer->Record(std::move(done));
}

void Tracer::Record(Trace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  trace.id = next_id_++;
  ++total_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Trace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(ring_.begin(), ring_.end());
}

Trace Tracer::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? Trace() : ring_.back();
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<Trace> traces = Recent();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Trace& t : traces) {
    for (const TraceSpan& span : t.spans) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('\n');
      AppendEventJson(&out, span, t.id);
    }
  }
  out.append("\n]}\n");
  return out;
}

namespace {

void FormatSpanRec(const Trace& trace, uint32_t span, int depth,
                   std::string* out) {
  const TraceSpan& s = trace.spans[span];
  char buf[64];
  for (int i = 0; i < depth; ++i) out->append("  ");
  out->append(s.name);
  std::snprintf(buf, sizeof(buf), "  %llu us",
                static_cast<unsigned long long>(s.dur_us));
  out->append(buf);
  for (const auto& [key, value] : s.args) {
    out->append("  ");
    out->append(key);
    std::snprintf(buf, sizeof(buf), "=%llu",
                  static_cast<unsigned long long>(value));
    out->append(buf);
  }
  out->push_back('\n');
  for (uint32_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].parent == span) {
      FormatSpanRec(trace, i, depth + 1, out);
    }
  }
}

}  // namespace

std::string FormatTraceTree(const Trace& trace) {
  std::string out;
  for (uint32_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].parent == kNoSpan) {
      FormatSpanRec(trace, i, 0, &out);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace xseq
