#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

namespace xseq {
namespace obs {

namespace {

uint64_t SteadyNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendEventJson(std::string* out, const TraceSpan& span, uint64_t pid) {
  char buf[128];
  out->append("{\"name\":\"");
  AppendEscaped(out, span.name);
  std::snprintf(buf, sizeof(buf),
                "\",\"ph\":\"X\",\"pid\":%llu,\"tid\":%u,\"ts\":%llu,"
                "\"dur\":%llu",
                static_cast<unsigned long long>(pid), span.tid,
                static_cast<unsigned long long>(span.start_us),
                static_cast<unsigned long long>(span.dur_us));
  out->append(buf);
  out->append(",\"args\":{");
  bool first = true;
  for (const auto& [key, value] : span.args) {
    if (!first) out->push_back(',');
    first = false;
    out->push_back('"');
    AppendEscaped(out, key);
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(value));
    out->append(buf);
  }
  out->append("}}");
}

// Chrome "pid" groups a trace's lanes together; the distributed trace id
// (shared across processes) is the natural group key when present, falling
// back to the ring-assigned local id.
uint64_t ChromePid(const Trace& trace) {
  return trace.trace_id != 0 ? trace.trace_id : trace.id;
}

}  // namespace

uint64_t GenerateTraceId() {
  // Nonzero, 48-bit, unique within a process and very likely across the
  // processes of one request's lifetime: a steady-clock read mixed with a
  // process-wide counter through a 64-bit FNV-style scramble.
  static std::atomic<uint64_t> counter{1};
  uint64_t x = SteadyNowUs() * 0x100000001B3ull;
  x ^= counter.fetch_add(1, std::memory_order_relaxed) * 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  x &= 0xFFFFFFFFFFFFull;  // 48 bits: exact in JSON doubles
  return x == 0 ? 1 : x;
}

std::string TraceToChromeJson(const Trace& trace) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('\n');
    AppendEventJson(&out, trace.spans[i], ChromePid(trace));
  }
  out.append("\n]}\n");
  return out;
}

uint64_t TraceBuilder::NowUs() const {
  return SteadyNowUs() - trace_.wall_start_us;
}

uint32_t TraceBuilder::TidSlot() {
  // Small, per-trace stable thread slots: slot 0 is the thread that started
  // the trace, helpers get 1, 2, ... in first-span order.
  uint64_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  for (size_t i = 0; i < tid_hashes_.size(); ++i) {
    if (tid_hashes_[i] == h) return static_cast<uint32_t>(i);
  }
  tid_hashes_.push_back(h);
  return static_cast<uint32_t>(tid_hashes_.size() - 1);
}

uint32_t TraceBuilder::StartTrace(std::string_view root_name) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = Trace();
  tid_hashes_.clear();
  trace_.wall_start_us = SteadyNowUs();
  active_ = true;
  TraceSpan root;
  root.name = std::string(root_name);
  root.parent = kNoSpan;
  root.tid = TidSlot();
  root.start_us = 0;
  trace_.spans.push_back(std::move(root));
  return 0;
}

uint32_t TraceBuilder::StartTrace(std::string_view root_name,
                                  const TraceContext& ctx) {
  uint32_t root = StartTrace(root_name);
  std::lock_guard<std::mutex> lock(mu_);
  trace_.trace_id = ctx.valid() ? ctx.trace_id : GenerateTraceId();
  trace_.parent_span = ctx.valid() ? ctx.parent_span : kNoSpan;
  return root;
}

TraceContext TraceBuilder::ContextFor(uint32_t span) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || trace_.trace_id == 0) return TraceContext{};
  return TraceContext{trace_.trace_id, span, true};
}

uint32_t TraceBuilder::Graft(const Trace& remote, uint32_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || remote.spans.empty()) return kNoSpan;
  const uint32_t index_base = static_cast<uint32_t>(trace_.spans.size());
  const uint32_t tid_base = static_cast<uint32_t>(tid_hashes_.size());
  // Reserve fresh thread lanes for the remote spans so later local threads
  // don't land on them. Sentinel hashes: astronomically unlikely to collide
  // with a real std::thread::id hash, and a collision only shares a lane.
  uint32_t remote_tids = 0;
  for (const TraceSpan& s : remote.spans) {
    remote_tids = std::max(remote_tids, s.tid + 1);
  }
  for (uint32_t i = 0; i < remote_tids; ++i) {
    tid_hashes_.push_back(0xC2B2AE3D27D4EB4Full ^
                          (static_cast<uint64_t>(tid_base + i) << 32));
  }
  // Shift remote timestamps so the remote tree ends "now" — the response
  // just landed, so only the return-path network latency is misattributed.
  const uint64_t now = NowUs();
  const uint64_t remote_total = remote.spans[0].dur_us;
  const uint64_t offset = now > remote_total ? now - remote_total : 0;
  for (const TraceSpan& s : remote.spans) {
    TraceSpan copy = s;
    copy.parent = s.parent == kNoSpan ? parent : s.parent + index_base;
    copy.tid = s.tid + tid_base;
    copy.start_us = s.start_us + offset;
    copy.closed = true;
    trace_.spans.push_back(std::move(copy));
  }
  return index_base;
}

uint32_t TraceBuilder::BeginSpan(std::string_view name, uint32_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) return kNoSpan;
  TraceSpan span;
  span.name = std::string(name);
  span.parent = parent;
  span.tid = TidSlot();
  span.start_us = NowUs();
  trace_.spans.push_back(std::move(span));
  return static_cast<uint32_t>(trace_.spans.size() - 1);
}

void TraceBuilder::EndSpan(uint32_t span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || span >= trace_.spans.size()) return;
  TraceSpan& s = trace_.spans[span];
  if (s.closed) return;
  s.dur_us = NowUs() - s.start_us;
  s.closed = true;
}

void TraceBuilder::Annotate(uint32_t span, std::string_view key,
                            uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_ || span >= trace_.spans.size()) return;
  trace_.spans[span].args.emplace_back(std::string(key), value);
}

Trace TraceBuilder::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t now = NowUs();
  for (TraceSpan& s : trace_.spans) {
    if (!s.closed) {
      s.dur_us = now - s.start_us;
      s.closed = true;
    }
  }
  active_ = false;
  return std::move(trace_);
}

void TraceBuilder::Commit(Tracer* tracer) {
  Trace done = Finish();
  if (tracer != nullptr) tracer->Record(std::move(done));
}

void Tracer::Record(Trace&& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  trace.id = next_id_++;
  ++total_;
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Trace> Tracer::Recent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Trace>(ring_.begin(), ring_.end());
}

Trace Tracer::Latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? Trace() : ring_.back();
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

uint64_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string Tracer::ExportChromeJson() const {
  std::vector<Trace> traces = Recent();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Trace& t : traces) {
    for (const TraceSpan& span : t.spans) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('\n');
      AppendEventJson(&out, span, ChromePid(t));
    }
  }
  out.append("\n]}\n");
  return out;
}

namespace {

void FormatSpanRec(const Trace& trace, uint32_t span, int depth,
                   std::string* out) {
  const TraceSpan& s = trace.spans[span];
  char buf[64];
  for (int i = 0; i < depth; ++i) out->append("  ");
  out->append(s.name);
  std::snprintf(buf, sizeof(buf), "  %llu us",
                static_cast<unsigned long long>(s.dur_us));
  out->append(buf);
  for (const auto& [key, value] : s.args) {
    out->append("  ");
    out->append(key);
    std::snprintf(buf, sizeof(buf), "=%llu",
                  static_cast<unsigned long long>(value));
    out->append(buf);
  }
  out->push_back('\n');
  for (uint32_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].parent == span) {
      FormatSpanRec(trace, i, depth + 1, out);
    }
  }
}

}  // namespace

std::string FormatTraceTree(const Trace& trace) {
  std::string out;
  for (uint32_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].parent == kNoSpan) {
      FormatSpanRec(trace, i, 0, &out);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace xseq
