// Low-overhead process metrics: counters, gauges, and power-of-two
// histograms collected in a MetricsRegistry, in the style of the
// LevelDB/RocksDB statistics objects.
//
// Design constraints (see DESIGN.md "Observability"):
//
//  * Hot paths pay a few *relaxed* atomic operations per event and nothing
//    else: no locks, no allocation, no clock reads unless the site needs a
//    latency (and then only when metrics are enabled).
//  * Every instrumentation site is guarded by MetricsEnabled() — a single
//    relaxed atomic load — so the fully disabled cost is one load + one
//    predictable branch per site.
//  * Metric objects are registered once (under a mutex) and the returned
//    pointers are stable for the registry's lifetime, so call sites cache
//    them in function-local statics and never touch the map again.
//
// Histograms use fixed power-of-two buckets: bucket 0 holds the value 0,
// bucket b >= 1 holds [2^(b-1), 2^b - 1]. Percentiles interpolate linearly
// inside the winning bucket, which makes them deterministic functions of
// the recorded multiset (tested exactly in tests/obs_test.cc); the maximum
// is tracked exactly.

#ifndef XSEQ_SRC_OBS_METRICS_H_
#define XSEQ_SRC_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xseq {
namespace obs {

/// Global metrics switch. Relaxed load; sites check it before recording so
/// the disabled path costs one load + branch. Defaults to enabled.
inline std::atomic<bool>& MetricsEnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

inline bool MetricsEnabled() {
  return MetricsEnabledFlag().load(std::memory_order_relaxed);
}

inline void SetMetricsEnabled(bool enabled) {
  MetricsEnabledFlag().store(enabled, std::memory_order_relaxed);
}

/// RAII toggle for tests and benchmarks; restores the previous state.
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled) : prev_(MetricsEnabled()) {
    SetMetricsEnabled(enabled);
  }
  ~ScopedMetricsEnabled() { SetMetricsEnabled(prev_); }
  ScopedMetricsEnabled(const ScopedMetricsEnabled&) = delete;
  ScopedMetricsEnabled& operator=(const ScopedMetricsEnabled&) = delete;

 private:
  const bool prev_;
};

/// Monotone event counter.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, buffered documents). Tracks the
/// maximum level ever Set/added so short-lived spikes remain observable.
class Gauge {
 public:
  void Set(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    UpdateMax(v);
  }
  void Add(int64_t d) {
    int64_t now = value_.fetch_add(d, std::memory_order_relaxed) + d;
    UpdateMax(now);
  }
  void Sub(int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void Reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void UpdateMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket power-of-two histogram (see file comment for the bucket
/// scheme). Record() is wait-free: three relaxed fetch_adds plus a relaxed
/// CAS loop for the exact maximum.
class Histogram {
 public:
  /// Bucket 0 = {0}; bucket b in [1, 63] = [2^(b-1), 2^b - 1]; values with
  /// the top bit set land in the last bucket.
  static constexpr int kBuckets = 64;

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur && !max_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double average() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// The estimated value at percentile `p` in [0, 100]: the rank-ceil(p% of
  /// count) recorded value, linearly interpolated across its bucket. Exact
  /// bucket-boundary semantics: a bucket of n entries is modeled as n values
  /// evenly spaced over [lo, hi]. 0 when the histogram is empty.
  double Percentile(double p) const;

  /// Per-bucket counts (index -> count), for inspection and serialization.
  uint64_t bucket(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Inclusive value range [lo, hi] of bucket `b`.
  static std::pair<uint64_t, uint64_t> BucketBounds(int b);

  void Reset();

  static int BucketOf(uint64_t value) {
    if (value == 0) return 0;
    int b = std::bit_width(value);  // floor(log2(v)) + 1, in [1, 64]
    return b >= kBuckets ? kBuckets - 1 : b;
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// A consistent-enough view of one registry (values read relaxed, so a
/// snapshot taken during writes may mix per-metric values; totals of any
/// single metric are exact once its writers are quiescent).
struct MetricsSnapshot {
  struct HistogramView {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;     ///< current value
  std::vector<std::pair<std::string, int64_t>> gauge_maxes;
  std::vector<HistogramView> histograms;
};

/// Named metrics, created on first use. Get* never fails and the returned
/// pointer is valid for the registry's lifetime; the process-wide registry
/// (Default()) is never destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation point uses.
  static MetricsRegistry* Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Human-readable dump, one metric per line, sorted by name.
  std::string TextDump() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"gauge_maxes":{...},
  /// "histograms":{name:{"count":..,"sum":..,"avg":..,"p50":..,"p90":..,
  /// "p99":..,"max":..},...}}.
  std::string JsonDump() const;

  /// Zeroes every registered metric (tests and benchmarks; pointers stay
  /// valid).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace xseq

#endif  // XSEQ_SRC_OBS_METRICS_H_
