// Structured access log for the serving plane: one JSON object per line,
// with size-based rotation and a tail-sampling policy so heavy OK traffic
// is decimated while every interesting request survives.
//
// Policy (evaluated per record, in order):
//   error     — a non-OK status that is neither a shed nor a deadline miss
//   shed      — admission queue was full (kOverloaded)
//   deadline  — the request's deadline expired (kDeadlineExceeded)
//   slow      — latency_us >= slow_micros (when slow_micros > 0)
//   sampled   — 1 of every `sample_every` remaining OK requests
//               (sample_every = 0 drops all of them)
// The first four classes are always written; the winning class is recorded
// in the line's "reason" field.
//
// Rotation: when an append pushes the file past `rotate_bytes`, the file is
// closed, renamed to `<path>.1` (replacing any previous one) and a fresh
// `<path>` is opened — a bounded two-file footprint, no background thread.
//
// The log is internally synchronized; QueryService workers append
// concurrently. Formatting happens outside the lock, the write inside.

#ifndef XSEQ_SRC_OBS_REQUEST_LOG_H_
#define XSEQ_SRC_OBS_REQUEST_LOG_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/util/env.h"

namespace xseq {
namespace obs {

struct RequestLogOptions {
  std::string path;
  /// Rotate after the file grows past this many bytes. 0 = never rotate.
  uint64_t rotate_bytes = 64ull << 20;
  /// Latency threshold (microseconds) above which an OK request is always
  /// logged. 0 disables the slow rule.
  uint64_t slow_micros = 0;
  /// Log 1 of every N OK-and-fast requests; 1 = all, 0 = none.
  uint32_t sample_every = 1;
  Env* env = nullptr;  ///< null = Env::Default()
};

/// One request's worth of log fields, filled by the serving layer.
struct RequestLogRecord {
  uint64_t ts_us = 0;       ///< unix wall clock, microseconds
  uint64_t request_id = 0;  ///< wire request id (0 for local callers)
  uint64_t trace_id = 0;    ///< distributed trace id (0 = untraced)
  std::string op = "query";
  std::string query;        ///< the XPath text
  std::string status = "OK";
  bool ok = true;
  bool shed = false;           ///< rejected by admission control
  bool deadline_miss = false;  ///< kDeadlineExceeded anywhere in flight
  bool result_cache_hit = false;
  bool plan_cache_hit = false;
  uint64_t latency_us = 0;  ///< end-to-end, as the server saw it
  uint64_t queue_us = 0;    ///< admission-queue wait
  uint64_t docs = 0;        ///< result size
  /// Pre-rendered planner explain object (QueryExplain::ToJson); empty =
  /// field omitted.
  std::string explain_json;
};

/// Serializes `rec` as one JSON object (no trailing newline). `reason` is
/// the sampling class that admitted it; exposed for tests and the CLI.
std::string RequestLogLine(const RequestLogRecord& rec,
                           std::string_view reason);

class RequestLog {
 public:
  /// Opens (truncating) `options.path` for appending.
  static StatusOr<std::unique_ptr<RequestLog>> Open(
      const RequestLogOptions& options);
  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Applies the sampling policy to `rec` and appends one line when it is
  /// admitted. Returns OK when the record was sampled out; IO failures
  /// count into xseq.log.errors and are returned (callers may ignore —
  /// logging must never fail a request).
  Status Append(const RequestLogRecord& rec);

  /// The sampling class `rec` would be admitted under, or "" when it would
  /// be dropped. Pure policy; does not consume a sampling slot.
  const char* Classify(const RequestLogRecord& rec) const;

  /// fsyncs the current file (tests; shutdown paths).
  Status Sync();

  uint64_t records_written() const;
  uint64_t records_dropped() const;
  uint64_t rotations() const;

 private:
  explicit RequestLog(const RequestLogOptions& options) : opts_(options) {}

  Status RotateLocked();

  RequestLogOptions opts_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  uint64_t bytes_ = 0;
  uint64_t ok_seen_ = 0;   ///< OK-and-fast records seen, drives sampling
  uint64_t written_ = 0;
  uint64_t dropped_ = 0;
  uint64_t rotations_ = 0;
};

}  // namespace obs
}  // namespace xseq

#endif  // XSEQ_SRC_OBS_REQUEST_LOG_H_
