#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xseq {
namespace obs {

std::pair<uint64_t, uint64_t> Histogram::BucketBounds(int b) {
  if (b <= 0) return {0, 0};
  uint64_t lo = uint64_t{1} << (b - 1);
  uint64_t hi = b >= 64 ? ~uint64_t{0}
                        : (uint64_t{1} << b) - 1;
  if (b == kBuckets - 1) hi = ~uint64_t{0};  // top bucket absorbs the rest
  return {lo, hi};
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // The rank (1-based) of the requested order statistic.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    uint64_t c = bucket(b);
    if (c == 0) continue;
    if (cum + c >= rank) {
      auto [lo, hi] = BucketBounds(b);
      // Model the bucket's c entries as evenly spaced over [lo, hi]: the
      // k-th entry (1-based) sits at lo + (hi - lo) * k / c. Deterministic
      // and exact for single-bucket distributions (tested).
      uint64_t k = rank - cum;
      double span = static_cast<double>(hi - lo);
      return static_cast<double>(lo) +
             span * static_cast<double>(k) / static_cast<double>(c);
    }
    cum += c;
  }
  return static_cast<double>(max());  // only reachable under concurrent writes
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry;  // leaked singleton
  return registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
    snap.gauge_maxes.emplace_back(name, g->max());
  }
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramView v;
    v.name = name;
    v.count = h->count();
    v.sum = h->sum();
    v.max = h->max();
    v.p50 = h->Percentile(50);
    v.p90 = h->Percentile(90);
    v.p99 = h->Percentile(99);
    snap.histograms.push_back(std::move(v));
  }
  return snap;
}

std::string MetricsRegistry::TextDump() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  char buf[256];
  for (const auto& [name, v] : snap.counters) {
    std::snprintf(buf, sizeof(buf), "%-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%-40s %lld (max %lld)\n",
                  snap.gauges[i].first.c_str(),
                  static_cast<long long>(snap.gauges[i].second),
                  static_cast<long long>(snap.gauge_maxes[i].second));
    out += buf;
  }
  for (const auto& h : snap.histograms) {
    std::snprintf(buf, sizeof(buf),
                  "%-40s count=%llu sum=%llu p50=%.1f p90=%.1f p99=%.1f "
                  "max=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), h.p50, h.p90, h.p99,
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  out->push_back('"');
  // Metric names are plain identifiers; escape the two characters that
  // could break the framing anyway.
  for (char c : name) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->append("\":");
}

}  // namespace

std::string MetricsRegistry::JsonDump() const {
  MetricsSnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  char buf[192];
  for (size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonKey(&out, snap.counters[i].first);
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(snap.counters[i].second));
    out += buf;
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonKey(&out, snap.gauges[i].first);
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(snap.gauges[i].second));
    out += buf;
  }
  out += "},\"gauge_maxes\":{";
  for (size_t i = 0; i < snap.gauge_maxes.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonKey(&out, snap.gauge_maxes[i].first);
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(snap.gauge_maxes[i].second));
    out += buf;
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i > 0) out.push_back(',');
    AppendJsonKey(&out, h.name);
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"sum\":%llu,\"p50\":%.3f,\"p90\":%.3f,"
                  "\"p99\":%.3f,\"max\":%llu}",
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.sum), h.p50, h.p90, h.p99,
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace xseq
