// Index persistence: save a built CollectionIndex to a single binary file
// and load it back, ready to answer queries.
//
// File format (all little-endian):
//   magic   "XSEQIDX" (7 bytes) + format version byte (currently 4)
//   framed sections, in order: header, names, values, dict, schema, index,
//     and (version >= 4) vindex
//     each frame: payload length (fixed64), FNV-1a64 of the payload
//     (fixed64), then the payload bytes
//   footer  — FNV-1a64 over everything between the version byte and the
//             footer (so frame headers are covered too)
//
// Per-section checksums let a failed load name the section that is damaged;
// every frame length is validated against the remaining input before any
// allocation, so an adversarial header cannot force a huge allocation.
//
// Durability: SaveCollectionIndex writes `<path>.tmp`, fsyncs it, atomically
// renames it over `path`, and fsyncs the directory. A crash or I/O error at
// any point leaves the previous index at `path` intact; the temp file is
// removed on failure. All filesystem access goes through an Env, so tests
// inject faults deterministically (src/util/env.h). Transient failures
// (kIOError) are retried with exponential backoff, bounded by
// PersistOptions::max_attempts; corruption is never retried.
//
// Retained documents are NOT persisted: a loaded index answers queries but
// has an empty documents() (baselines needing raw documents must rebuild
// from the source).

#ifndef XSEQ_SRC_CORE_PERSIST_H_
#define XSEQ_SRC_CORE_PERSIST_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/collection_index.h"
#include "src/util/env.h"

namespace xseq {

/// The format version written by this build. Version 4 appends the ordered
/// value index section (src/vindex/value_index.h) for comparison
/// predicates; version 3 stores the index's horizontal links
/// block-compressed (src/index/link_codec.h); version 2 stored them as one
/// flat serial list.
inline constexpr uint8_t kIndexFormatVersion = 4;
/// Oldest version this build still loads. Version-2 images are accepted
/// and their links recompressed into blocks during decode; pre-v4 images
/// load with no value index (comparison queries fail cleanly).
inline constexpr uint8_t kMinIndexFormatVersion = 2;

/// Environment and retry policy for on-disk save/load.
struct PersistOptions {
  /// Filesystem to use; nullptr means Env::Default().
  Env* env = nullptr;
  /// Total tries for transient (kIOError) failures; >= 1.
  int max_attempts = 3;
  /// First retry backoff, doubled per subsequent retry. Sleeps go through
  /// Env::SleepForMicroseconds, so test Envs can make them free.
  uint64_t backoff_micros = 1000;
};

/// Serializes `index` into a byte buffer (current format version).
std::string EncodeCollectionIndex(const CollectionIndex& index);

/// Serializes `index` at a specific format version — kIndexFormatVersion
/// for the current layout, kMinIndexFormatVersion for a downgrade image
/// (flat link serials; loadable by older builds). Used by compatibility
/// fixtures and downgrade tooling. `version` outside the supported range
/// falls back to the current version.
std::string EncodeCollectionIndex(const CollectionIndex& index,
                                  uint8_t version);

/// Reconstructs an index from EncodeCollectionIndex output. Verifies the
/// magic, version, per-section checksums, and footer; validates
/// cross-structure invariants; errors name the failing section.
StatusOr<CollectionIndex> DecodeCollectionIndex(std::string_view data);

/// Writes `index` to `path` crash-safely (temp file + fsync + rename).
/// On failure the previous contents of `path`, if any, are untouched.
Status SaveCollectionIndex(const CollectionIndex& index,
                           const std::string& path,
                           const PersistOptions& options = {});

/// Reads an index previously written by SaveCollectionIndex.
StatusOr<CollectionIndex> LoadCollectionIndex(
    const std::string& path, const PersistOptions& options = {});

/// One framed section as seen by InspectEncodedIndex.
struct IndexSectionInfo {
  std::string name;      ///< "header", "names", "values", ...
  uint64_t offset = 0;   ///< payload offset within the file
  uint64_t length = 0;   ///< payload length in bytes
  bool checksum_ok = false;
};

/// Integrity report over an encoded index image (see `xseq_tool verify`).
struct IndexFileReport {
  bool magic_ok = false;
  uint32_t version = 0;
  bool version_supported = false;
  std::vector<IndexSectionInfo> sections;
  bool footer_ok = false;
  uint64_t trailing_bytes = 0;
  /// In-memory bytes of the derived structures DecodeFrom materializes
  /// beyond the stored "index" payload (the per-path block directory for
  /// v3 images; the full recompressed block region for v2 images); 0 when
  /// that section is damaged.
  uint64_t index_derived_bytes = 0;
  /// Bytes of the stored packed link region (block headers + payload
  /// words) in a v3 image; 0 for v2 images, whose links are recompressed
  /// on load.
  uint64_t index_packed_link_bytes = 0;
  /// Bytes the same links would occupy flat (12 per entry: fused
  /// serial+end pair plus cover word) — the uncompressed baseline the
  /// packed bytes are measured against.
  uint64_t index_logical_link_bytes = 0;
  /// Value-index shape skimmed from the vindex section's path directory
  /// (v4 images with an intact section; all zero/empty otherwise).
  /// `vindex_path_counts` pairs each dictionary path id with its posting
  /// count, in stored (ascending-path) order.
  uint64_t vindex_paths = 0;
  uint64_t vindex_entries = 0;
  std::vector<std::pair<uint32_t, uint64_t>> vindex_path_counts;
  /// OK iff every check above passed; otherwise the first failure,
  /// matching what DecodeCollectionIndex would report.
  Status status;
};

/// Walks the file structure without building an index: cheap integrity
/// checking and attribution. Never allocates proportionally to claimed
/// (possibly adversarial) lengths.
IndexFileReport InspectEncodedIndex(std::string_view data);

}  // namespace xseq

#endif  // XSEQ_SRC_CORE_PERSIST_H_
