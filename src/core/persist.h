// Index persistence: save a built CollectionIndex to a single binary file
// and load it back, ready to answer queries.
//
// File format, version 2 (all little-endian):
//   magic   "XSEQIDX" (7 bytes) + format version byte (currently 2)
//   6 framed sections, in order: header, names, values, dict, schema, index
//     each frame: payload length (fixed64), FNV-1a64 of the payload
//     (fixed64), then the payload bytes
//   footer  — FNV-1a64 over everything between the version byte and the
//             footer (so frame headers are covered too)
//
// Per-section checksums let a failed load name the section that is damaged;
// every frame length is validated against the remaining input before any
// allocation, so an adversarial header cannot force a huge allocation.
//
// Durability: SaveCollectionIndex writes `<path>.tmp`, fsyncs it, atomically
// renames it over `path`, and fsyncs the directory. A crash or I/O error at
// any point leaves the previous index at `path` intact; the temp file is
// removed on failure. All filesystem access goes through an Env, so tests
// inject faults deterministically (src/util/env.h). Transient failures
// (kIOError) are retried with exponential backoff, bounded by
// PersistOptions::max_attempts; corruption is never retried.
//
// Retained documents are NOT persisted: a loaded index answers queries but
// has an empty documents() (baselines needing raw documents must rebuild
// from the source).

#ifndef XSEQ_SRC_CORE_PERSIST_H_
#define XSEQ_SRC_CORE_PERSIST_H_

#include <string>
#include <vector>

#include "src/core/collection_index.h"
#include "src/util/env.h"

namespace xseq {

/// The format version written by this build.
inline constexpr uint8_t kIndexFormatVersion = 2;

/// Environment and retry policy for on-disk save/load.
struct PersistOptions {
  /// Filesystem to use; nullptr means Env::Default().
  Env* env = nullptr;
  /// Total tries for transient (kIOError) failures; >= 1.
  int max_attempts = 3;
  /// First retry backoff, doubled per subsequent retry. Sleeps go through
  /// Env::SleepForMicroseconds, so test Envs can make them free.
  uint64_t backoff_micros = 1000;
};

/// Serializes `index` into a byte buffer.
std::string EncodeCollectionIndex(const CollectionIndex& index);

/// Reconstructs an index from EncodeCollectionIndex output. Verifies the
/// magic, version, per-section checksums, and footer; validates
/// cross-structure invariants; errors name the failing section.
StatusOr<CollectionIndex> DecodeCollectionIndex(std::string_view data);

/// Writes `index` to `path` crash-safely (temp file + fsync + rename).
/// On failure the previous contents of `path`, if any, are untouched.
Status SaveCollectionIndex(const CollectionIndex& index,
                           const std::string& path,
                           const PersistOptions& options = {});

/// Reads an index previously written by SaveCollectionIndex.
StatusOr<CollectionIndex> LoadCollectionIndex(
    const std::string& path, const PersistOptions& options = {});

/// One framed section as seen by InspectEncodedIndex.
struct IndexSectionInfo {
  std::string name;      ///< "header", "names", "values", ...
  uint64_t offset = 0;   ///< payload offset within the file
  uint64_t length = 0;   ///< payload length in bytes
  bool checksum_ok = false;
};

/// Integrity report over an encoded index image (see `xseq_tool verify`).
struct IndexFileReport {
  bool magic_ok = false;
  uint32_t version = 0;
  bool version_supported = false;
  std::vector<IndexSectionInfo> sections;
  bool footer_ok = false;
  uint64_t trailing_bytes = 0;
  /// In-memory bytes of the derived query-engine arrays (fused link
  /// entries + nesting-forest cover) that DecodeFrom materializes beyond
  /// the stored "index" payload; 0 when that section is damaged.
  uint64_t index_derived_bytes = 0;
  /// OK iff every check above passed; otherwise the first failure,
  /// matching what DecodeCollectionIndex would report.
  Status status;
};

/// Walks the file structure without building an index: cheap integrity
/// checking and attribution. Never allocates proportionally to claimed
/// (possibly adversarial) lengths.
IndexFileReport InspectEncodedIndex(std::string_view data);

}  // namespace xseq

#endif  // XSEQ_SRC_CORE_PERSIST_H_
