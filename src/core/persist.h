// Index persistence: save a built CollectionIndex to a single binary file
// and load it back, ready to answer queries.
//
// File format (all little-endian):
//   magic "XSEQIDX1" (8 bytes)
//   payload:
//     header   — sequencer kind, random seed, doc count, seq elements
//     names    — NameTable strings
//     values   — ValueEncoder (mode, range, strings)
//     dict     — PathDict entries
//     schema   — counts, presence counts, repeat flags, weights
//     index    — FrozenIndex flat arrays
//   footer   — FNV-1a64 checksum of the payload
//
// Retained documents are NOT persisted: a loaded index answers queries but
// has an empty documents() (baselines needing raw documents must rebuild
// from the source).

#ifndef XSEQ_SRC_CORE_PERSIST_H_
#define XSEQ_SRC_CORE_PERSIST_H_

#include <string>

#include "src/core/collection_index.h"

namespace xseq {

/// Serializes `index` into a byte buffer.
std::string EncodeCollectionIndex(const CollectionIndex& index);

/// Reconstructs an index from EncodeCollectionIndex output. Verifies the
/// magic and checksum and validates cross-structure invariants.
StatusOr<CollectionIndex> DecodeCollectionIndex(std::string_view data);

/// Writes `index` to `path` (atomically via rename is NOT attempted; this
/// is a plain write).
Status SaveCollectionIndex(const CollectionIndex& index,
                           const std::string& path);

/// Reads an index previously written by SaveCollectionIndex.
StatusOr<CollectionIndex> LoadCollectionIndex(const std::string& path);

}  // namespace xseq

#endif  // XSEQ_SRC_CORE_PERSIST_H_
