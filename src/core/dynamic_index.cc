#include "src/core/dynamic_index.h"

#include <algorithm>

#include "src/xml/value_chain.h"

namespace xseq {

DynamicIndex::DynamicIndex(DynamicOptions options)
    : options_(options),
      names_(std::make_unique<NameTable>()),
      values_(std::make_unique<ValueEncoder>(options.index.value_mode,
                                             options.index.hash_range)) {
  // Segments must retain their documents so Compact() can re-sequence them
  // under fresher statistics.
  options_.index.keep_documents = true;
}

Status DynamicIndex::Add(Document&& doc) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  buffer_.push_back(std::move(doc));
  ++total_docs_;
  if (buffer_.size() >= options_.flush_threshold) {
    return SealBuffer();
  }
  return Status::OK();
}

Status DynamicIndex::Flush() {
  if (buffer_.empty()) return Status::OK();
  return SealBuffer();
}

Status DynamicIndex::SealBuffer() {
  CollectionBuilder builder(options_.index, *names_, *values_);
  for (Document& doc : buffer_) {
    XSEQ_RETURN_IF_ERROR(builder.Add(std::move(doc)));
  }
  buffer_.clear();
  auto segment = std::move(builder).Finish();
  if (!segment.ok()) return segment.status();
  segments_.push_back(
      std::make_unique<CollectionIndex>(std::move(*segment)));
  return Status::OK();
}

Status DynamicIndex::Compact() {
  CollectionBuilder builder(options_.index, *names_, *values_);
  for (const auto& segment : segments_) {
    for (const Document& doc : segment->documents()) {
      XSEQ_RETURN_IF_ERROR(builder.Add(CloneDocument(doc)));
    }
  }
  for (Document& doc : buffer_) {
    XSEQ_RETURN_IF_ERROR(builder.Add(std::move(doc)));
  }
  buffer_.clear();
  auto merged = std::move(builder).Finish();
  if (!merged.ok()) return merged.status();
  segments_.clear();
  segments_.push_back(std::make_unique<CollectionIndex>(std::move(*merged)));
  return Status::OK();
}

StatusOr<std::vector<DocId>> DynamicIndex::Query(
    std::string_view xpath, const ExecOptions& options) const {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  return ExecutePattern(*pattern, options);
}

StatusOr<std::vector<DocId>> DynamicIndex::ExecutePattern(
    const xseq::QueryPattern& pattern_in, const ExecOptions& options) const {
  const xseq::QueryPattern* pattern = &pattern_in;

  std::vector<DocId> out;
  for (const auto& segment : segments_) {
    auto part = segment->executor().ExecutePattern(*pattern, nullptr,
                                                   options);
    if (!part.ok()) return part.status();
    out.insert(out.end(), part->begin(), part->end());
  }

  // Unsealed buffer: brute-force scan via the oracle, instantiating the
  // pattern against a transient dictionary of the buffered documents.
  // Char-sequence mode scans chain-expanded copies so value chains resolve.
  if (!buffer_.empty()) {
    const bool chain_mode =
        values_->mode() == ValueMode::kCharSequence;
    std::vector<Document> expanded;
    if (chain_mode) {
      expanded.reserve(buffer_.size());
      for (const Document& doc : buffer_) {
        expanded.push_back(ExpandValueChains(doc));
      }
    }
    const std::vector<Document>& scan = chain_mode ? expanded : buffer_;
    PathDict dict;
    for (const Document& doc : scan) {
      BindPaths(doc, &dict);
    }
    auto inst = InstantiatePattern(*pattern, dict, *names_, *values_,
                                   options.instantiate);
    if (!inst.ok()) return inst.status();
    for (const ConcreteQuery& cq : inst->queries) {
      std::vector<DocId> part = OracleScan(scan, cq);
      out.insert(out.end(), part.begin(), part.end());
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t DynamicIndex::TotalIndexNodes() const {
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    total += segment->Stats().trie_nodes;
  }
  return total;
}

}  // namespace xseq
