#include "src/core/dynamic_index.h"

#include <algorithm>
#include <utility>

#include "src/obs/metrics.h"
#include "src/util/timer.h"
#include "src/vindex/compare.h"
#include "src/xml/value_chain.h"

namespace xseq {

namespace {

/// Registry handles for the LSM-side metrics, resolved once. Gauges mirror
/// the live buffer depth and in-flight background seals.
struct DynMetricSet {
  obs::Counter* adds;
  obs::Counter* deletes;
  obs::Counter* updates;
  obs::Counter* seals;
  obs::Counter* seal_failures;
  obs::Counter* compactions;
  obs::Histogram* seal_us;
  obs::Histogram* compact_us;
  obs::Gauge* pending_seals;
  obs::Gauge* buffered_docs;
  obs::Gauge* tombstoned_docs;
};

const DynMetricSet& DynMetrics() {
  static const DynMetricSet s = [] {
    obs::MetricsRegistry* r = obs::MetricsRegistry::Default();
    return DynMetricSet{r->GetCounter("xseq.dynamic.adds"),
                        r->GetCounter("xseq.dynamic.deletes"),
                        r->GetCounter("xseq.dynamic.updates"),
                        r->GetCounter("xseq.dynamic.seals"),
                        r->GetCounter("xseq.dynamic.seal_failures"),
                        r->GetCounter("xseq.dynamic.compactions"),
                        r->GetHistogram("xseq.dynamic.seal_us"),
                        r->GetHistogram("xseq.dynamic.compact_us"),
                        r->GetGauge("xseq.dynamic.pending_seals"),
                        r->GetGauge("xseq.dynamic.buffered_docs"),
                        r->GetGauge("xseq.dynamic.tombstoned_docs")};
  }();
  return s;
}

/// Strips tombstoned ids from one source's result ids in place.
void RemoveDeadIds(const std::unordered_set<DocId>* dead,
                   std::vector<DocId>* ids) {
  if (dead == nullptr || dead->empty() || ids->empty()) return;
  ids->erase(std::remove_if(ids->begin(), ids->end(),
                            [dead](DocId d) { return dead->count(d) != 0; }),
             ids->end());
}

/// Id histogram of a document batch, fixed at slot-reservation time.
std::shared_ptr<const std::unordered_map<DocId, uint32_t>> CountIds(
    const std::vector<Document>& docs) {
  auto ids = std::make_shared<std::unordered_map<DocId, uint32_t>>();
  for (const Document& doc : docs) ++(*ids)[doc.id()];
  return ids;
}

}  // namespace

DynamicIndex::DynamicIndex(DynamicOptions options)
    : options_(options),
      names_(std::make_unique<NameTable>()),
      values_(std::make_unique<ValueEncoder>(options.index.value_mode,
                                             options.index.hash_range)),
      pool_(std::make_unique<ThreadPool>(options.index.threads)) {
  // Segments must retain their documents so Compact() can re-sequence them
  // under fresher statistics.
  options_.index.keep_documents = true;
}

DynamicIndex::~DynamicIndex() {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForSealsLocked(&lock);
}

Status DynamicIndex::Add(Document&& doc) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  std::unique_lock<std::mutex> lock(mu_);
  XSEQ_RETURN_IF_ERROR(TakeSealErrorLocked());
  buffer_.push_back(std::move(doc));
  ++total_docs_;
  ++generation_;
  if (obs::MetricsEnabled()) {
    const DynMetricSet& m = DynMetrics();
    m.adds->Increment();
    m.buffered_docs->Set(buffer_.size());
  }
  if (buffer_.size() >= options_.flush_threshold) {
    return SealBufferLocked();
  }
  return Status::OK();
}

uint64_t DynamicIndex::RemoveLocked(DocId id) {
  uint64_t removed = 0;
  const size_t before = buffer_.size();
  buffer_.erase(
      std::remove_if(buffer_.begin(), buffer_.end(),
                     [id](const Document& d) { return d.id() == id; }),
      buffer_.end());
  removed += before - buffer_.size();
  for (SlotState& slot : slot_state_) {
    if (slot.ids == nullptr) continue;
    auto hit = slot.ids->find(id);
    if (hit == slot.ids->end()) continue;
    if (slot.dead != nullptr && slot.dead->count(id) != 0) continue;
    // Copy-on-write: queries holding the old set keep filtering with it.
    auto next = slot.dead != nullptr
                    ? std::make_shared<std::unordered_set<DocId>>(*slot.dead)
                    : std::make_shared<std::unordered_set<DocId>>();
    next->insert(id);
    slot.dead = std::move(next);
    removed += hit->second;
    tombstoned_docs_ += hit->second;
  }
  if (obs::MetricsEnabled()) {
    DynMetrics().tombstoned_docs->Set(tombstoned_docs_);
  }
  total_docs_ -= std::min<uint64_t>(removed, total_docs_);
  return removed;
}

Status DynamicIndex::Delete(DocId id) {
  std::unique_lock<std::mutex> lock(mu_);
  XSEQ_RETURN_IF_ERROR(TakeSealErrorLocked());
  RemoveLocked(id);
  ++generation_;
  if (obs::MetricsEnabled()) {
    const DynMetricSet& m = DynMetrics();
    m.deletes->Increment();
    m.buffered_docs->Set(buffer_.size());
  }
  return Status::OK();
}

Status DynamicIndex::Update(Document&& doc, DocId id) {
  if (doc.root() == nullptr) {
    return Status::InvalidArgument("document has no root");
  }
  if (doc.id() != id) {
    return Status::InvalidArgument(
        "replacement document carries id " + std::to_string(doc.id()) +
        ", expected " + std::to_string(id));
  }
  std::unique_lock<std::mutex> lock(mu_);
  XSEQ_RETURN_IF_ERROR(TakeSealErrorLocked());
  RemoveLocked(id);
  buffer_.push_back(std::move(doc));
  ++total_docs_;
  ++generation_;
  if (obs::MetricsEnabled()) {
    const DynMetricSet& m = DynMetrics();
    m.updates->Increment();
    m.buffered_docs->Set(buffer_.size());
  }
  if (buffer_.size() >= options_.flush_threshold) {
    return SealBufferLocked();
  }
  return Status::OK();
}

Status DynamicIndex::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  XSEQ_RETURN_IF_ERROR(TakeSealErrorLocked());
  // Sealing re-sequences the batch under the segment's own model, so be
  // conservative and retire cached results even though the document set is
  // unchanged.
  ++generation_;
  return SealBufferLocked();
}

Status DynamicIndex::SealBufferLocked() {
  if (buffer_.empty()) return Status::OK();
  const bool metrics = obs::MetricsEnabled();
  if (pool_->width() <= 1) {
    // Serial pool: build inline under the lock (the legacy path).
    Timer seal_timer;
    auto slot_ids = CountIds(buffer_);
    CollectionBuilder builder(options_.index, *names_, *values_);
    for (Document& doc : buffer_) {
      XSEQ_RETURN_IF_ERROR(builder.Add(std::move(doc)));
    }
    buffer_.clear();
    auto segment = std::move(builder).Finish();
    if (metrics) {
      const DynMetricSet& m = DynMetrics();
      m.buffered_docs->Set(0);
      if (segment.ok()) {
        m.seals->Increment();
        m.seal_us->Record(
            static_cast<uint64_t>(seal_timer.ElapsedMicros()));
      } else {
        m.seal_failures->Increment();
      }
    }
    if (!segment.ok()) return segment.status();
    segments_.push_back(
        std::make_shared<const CollectionIndex>(std::move(*segment)));
    slot_state_.push_back({std::move(slot_ids), nullptr});
    return Status::OK();
  }

  // Move the buffer into an immutable in-flight batch, reserve its slot in
  // segments_ (so ordering and segment_count are fixed now), and build off
  // this thread. The builder copies the vocabulary tables, so it must be
  // constructed here, under the lock, not in the task.
  auto batch = std::make_shared<SealBatch>();
  batch->docs = std::move(buffer_);
  buffer_.clear();
  batch->slot = segments_.size();
  segments_.push_back(nullptr);
  slot_state_.push_back({CountIds(batch->docs), nullptr});
  sealing_.push_back(batch);
  ++pending_seals_;
  if (metrics) {
    const DynMetricSet& m = DynMetrics();
    m.buffered_docs->Set(0);
    m.pending_seals->Set(pending_seals_);
  }
  auto builder = std::make_shared<CollectionBuilder>(options_.index, *names_,
                                                     *values_);
  pool_->Submit([this, batch, builder] {
    Timer seal_timer;
    Status st;
    for (const Document& doc : batch->docs) {
      st = builder->Add(CloneDocument(doc));
      if (!st.ok()) break;
    }
    std::shared_ptr<const CollectionIndex> built;
    if (st.ok()) {
      auto segment = std::move(*builder).Finish();
      if (segment.ok()) {
        built =
            std::make_shared<const CollectionIndex>(std::move(*segment));
      } else {
        st = segment.status();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (built != nullptr) {
        segments_[batch->slot] = std::move(built);
        sealing_.erase(std::find(sealing_.begin(), sealing_.end(), batch));
      } else {
        // Keep the batch in sealing_ so its documents stay queryable (and
        // reachable by a later Compact()); surface the error on the next
        // mutating call.
        if (seal_error_.ok()) seal_error_ = st;
      }
      --pending_seals_;
      if (obs::MetricsEnabled()) {
        const DynMetricSet& m = DynMetrics();
        m.pending_seals->Set(pending_seals_);
        if (built != nullptr) {
          m.seals->Increment();
          m.seal_us->Record(
              static_cast<uint64_t>(seal_timer.ElapsedMicros()));
        } else {
          m.seal_failures->Increment();
        }
      }
      // Notify under the lock: a drained waiter (e.g. the destructor) may
      // destroy the condition variable the moment it re-acquires mu_.
      seal_cv_.notify_all();
    }
  });
  return Status::OK();
}

void DynamicIndex::WaitForSealsLocked(std::unique_lock<std::mutex>* lock)
    const {
  seal_cv_.wait(*lock, [this] { return pending_seals_ == 0; });
}

Status DynamicIndex::TakeSealErrorLocked() {
  Status st = seal_error_;
  seal_error_ = Status::OK();
  return st;
}

Status DynamicIndex::Compact() {
  Timer compact_timer;
  std::unique_lock<std::mutex> lock(mu_);
  WaitForSealsLocked(&lock);
  XSEQ_RETURN_IF_ERROR(TakeSealErrorLocked());
  ++generation_;
  CollectionBuilder builder(options_.index, *names_, *values_);
  auto merged_ids = std::make_shared<std::unordered_map<DocId, uint32_t>>();
  // Tombstoned documents are purged here: they are simply not fed to the
  // rebuild, so the merged segment starts with an empty tombstone set.
  auto alive = [this](size_t slot, const Document& doc) {
    const auto& dead = slot_state_[slot].dead;
    return dead == nullptr || dead->count(doc.id()) == 0;
  };
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i] == nullptr) continue;
    for (const Document& doc : segments_[i]->documents()) {
      if (!alive(i, doc)) continue;
      ++(*merged_ids)[doc.id()];
      XSEQ_RETURN_IF_ERROR(builder.Add(CloneDocument(doc)));
    }
  }
  // Batches whose background build failed (they are the only entries left
  // once pending_seals_ == 0) still hold their documents; fold them in.
  for (const auto& batch : sealing_) {
    for (const Document& doc : batch->docs) {
      if (!alive(batch->slot, doc)) continue;
      ++(*merged_ids)[doc.id()];
      XSEQ_RETURN_IF_ERROR(builder.Add(CloneDocument(doc)));
    }
  }
  for (Document& doc : buffer_) {
    ++(*merged_ids)[doc.id()];
    XSEQ_RETURN_IF_ERROR(builder.Add(std::move(doc)));
  }
  buffer_.clear();
  auto merged = std::move(builder).Finish();
  if (!merged.ok()) return merged.status();
  segments_.clear();
  slot_state_.clear();
  sealing_.clear();
  tombstoned_docs_ = 0;
  segments_.push_back(
      std::make_shared<const CollectionIndex>(std::move(*merged)));
  slot_state_.push_back({std::move(merged_ids), nullptr});
  if (obs::MetricsEnabled()) {
    const DynMetricSet& m = DynMetrics();
    m.compactions->Increment();
    m.compact_us->Record(
        static_cast<uint64_t>(compact_timer.ElapsedMicros()));
    m.buffered_docs->Set(0);
    m.tombstoned_docs->Set(0);
  }
  return Status::OK();
}

Status DynamicIndex::SaveCompacted(const std::string& path,
                                   const PersistOptions& persist) {
  XSEQ_RETURN_IF_ERROR(Compact());
  // Compact() leaves exactly one sealed segment (even for an empty index).
  // Snapshot the shared_ptr under the lock and write outside it, so
  // queries and further mutations proceed while the file lands; the
  // snapshot is immutable, so a concurrent Add simply isn't in this image.
  std::shared_ptr<const CollectionIndex> merged;
  {
    std::unique_lock<std::mutex> lock(mu_);
    WaitForSealsLocked(&lock);
    if (!segments_.empty() && segments_.front() != nullptr) {
      merged = segments_.front();
    }
  }
  if (merged == nullptr) {
    return Status::Internal("compaction left no segment to save");
  }
  return SaveCollectionIndex(*merged, path, persist);
}

StatusOr<std::vector<DocId>> DynamicIndex::Query(
    std::string_view xpath, const ExecOptions& options) const {
  auto pattern = ParseXPath(xpath);
  if (!pattern.ok()) return pattern.status();
  // Key the per-segment plan caches on the query text (each segment index
  // carries its own plan_cache_id, so entries never cross segments).
  ExecOptions opts = options;
  if (opts.plan.cache_key.empty()) opts.plan.cache_key = xpath;
  return ExecutePattern(*pattern, opts);
}

StatusOr<std::vector<DocId>> DynamicIndex::ExecutePattern(
    const xseq::QueryPattern& pattern, const ExecOptions& options,
    ExecStats* stats) const {
  return ExecutePatternImpl(pattern, options, stats,
                            /*parallel_segments=*/true);
}

Status DynamicIndex::ScanDocs(const std::vector<Document>& docs,
                              const xseq::QueryPattern& pattern,
                              const ExecOptions& options,
                              const std::unordered_set<DocId>* dead,
                              std::vector<DocId>* out) const {
  if (docs.empty()) return Status::OK();
  // Comparison predicates: scan the skeleton, then keep only ids whose
  // document satisfies every comparison — the unsealed-data twin of the
  // value-index probe the sealed segments run.
  std::vector<ValueComparison> cmps;
  QueryPattern skeleton;
  const QueryPattern* effective = &pattern;
  if (HasComparisons(pattern)) {
    skeleton = StripComparisons(pattern, &cmps);
    effective = &skeleton;
  }
  // Brute-force scan via the oracle, instantiating the pattern against a
  // transient dictionary of just these documents. Char-sequence mode scans
  // chain-expanded copies so value chains resolve.
  const bool chain_mode = values_->mode() == ValueMode::kCharSequence;
  std::vector<Document> expanded;
  if (chain_mode) {
    expanded.reserve(docs.size());
    for (const Document& doc : docs) {
      expanded.push_back(ExpandValueChains(doc));
    }
  }
  const std::vector<Document>& scan = chain_mode ? expanded : docs;
  PathDict dict;
  for (const Document& doc : scan) {
    BindPaths(doc, &dict);
  }
  auto inst = InstantiatePattern(*effective, dict, *names_, *values_,
                                 options.instantiate);
  if (!inst.ok()) return inst.status();
  std::vector<DocId> part;
  for (const ConcreteQuery& cq : inst->queries) {
    std::vector<DocId> one = OracleScan(scan, cq);
    part.insert(part.end(), one.begin(), one.end());
  }
  if (!cmps.empty() && !part.empty()) {
    // Comparisons check the ORIGINAL documents: value nodes retain their
    // raw text in every value mode, so ordering stays exact even when the
    // index hashes or chain-encodes values.
    std::unordered_set<DocId> satisfying;
    for (const Document& doc : docs) {
      if (DocMatchesComparisons(doc, *names_, cmps)) {
        satisfying.insert(doc.id());
      }
    }
    part.erase(std::remove_if(part.begin(), part.end(),
                              [&satisfying](DocId d) {
                                return satisfying.count(d) == 0;
                              }),
               part.end());
  }
  RemoveDeadIds(dead, &part);
  out->insert(out->end(), part.begin(), part.end());
  return Status::OK();
}

StatusOr<std::vector<DocId>> DynamicIndex::ExecutePatternImpl(
    const xseq::QueryPattern& pattern, const ExecOptions& options,
    ExecStats* stats, bool parallel_segments) const {
  // Tracing: a dynamic query owns the trace so the per-segment probes (and
  // the unsealed-data scans) appear as siblings under one root. The options
  // copy handed to segment executors carries the builder, never the tracer,
  // so the nested executors attach instead of committing traces of their
  // own.
  obs::TraceBuilder owned_trace;
  ExecOptions opts = options;
  obs::Tracer* commit_to = nullptr;
  if (opts.trace == nullptr && opts.tracer != nullptr) {
    opts.trace_parent = owned_trace.StartTrace("dynamic_query");
    opts.trace = &owned_trace;
    commit_to = opts.tracer;
    opts.tracer = nullptr;
  }
  const uint32_t root_span = opts.trace_parent;
  struct CommitOnExit {
    obs::TraceBuilder* builder;
    obs::Tracer* tracer;
    ~CommitOnExit() {
      if (tracer != nullptr) builder->Commit(tracer);
    }
  } commit{&owned_trace, commit_to};

  std::vector<DocId> out;
  std::vector<std::shared_ptr<const CollectionIndex>> segments;
  std::vector<std::shared_ptr<const std::unordered_set<DocId>>> seg_dead;
  std::vector<std::shared_ptr<const SealBatch>> batches;
  std::vector<std::shared_ptr<const std::unordered_set<DocId>>> batch_dead;
  {
    obs::SpanScope scan_span(opts.trace, "scan_unsealed", root_span);
    {
      std::unique_lock<std::mutex> lock(mu_);
      segments.reserve(segments_.size());
      for (size_t i = 0; i < segments_.size(); ++i) {
        if (segments_[i] != nullptr) {
          segments.push_back(segments_[i]);
          seg_dead.push_back(slot_state_[i].dead);
        }
      }
      batches = sealing_;
      for (const auto& batch : batches) {
        batch_dead.push_back(slot_state_[batch->slot].dead);
      }
      // The live buffer mutates under Add(), so it is scanned while the lock
      // is held. Everything snapshotted above is immutable (tombstone sets
      // are copy-on-write); a batch that lands as a segment mid-query was
      // excluded from `segments`, so no document is counted twice. Deletes
      // erase from the buffer outright, so its scan needs no filter.
      XSEQ_RETURN_IF_ERROR(ScanDocs(buffer_, pattern, opts, nullptr, &out));
    }
    for (size_t i = 0; i < batches.size(); ++i) {
      XSEQ_RETURN_IF_ERROR(ScanDocs(batches[i]->docs, pattern, opts,
                                    batch_dead[i].get(), &out));
    }
    scan_span.Annotate("sealing_batches", batches.size());
    scan_span.Annotate("docs", out.size());
  }

  if (parallel_segments && pool_->width() > 1 && segments.size() > 1) {
    const size_t k = segments.size();
    std::vector<std::vector<DocId>> parts(k);
    std::vector<ExecStats> part_stats(k);
    std::vector<Status> results(k, Status::OK());
    pool_->ParallelFor(k, [&](size_t i) {
      MatchContextLease lease(&match_contexts_);
      obs::SpanScope seg_span(opts.trace, "segment_probe", root_span);
      ExecOptions seg_opts = opts;
      seg_opts.trace_parent = seg_span.id();
      auto part = segments[i]->executor().ExecutePattern(
          pattern, &part_stats[i], seg_opts, lease.get());
      if (part.ok()) {
        RemoveDeadIds(seg_dead[i].get(), &*part);
        seg_span.Annotate("docs", part->size());
        parts[i] = std::move(*part);
      } else {
        results[i] = part.status();
      }
    });
    for (size_t i = 0; i < k; ++i) {
      XSEQ_RETURN_IF_ERROR(results[i]);
      if (stats != nullptr) stats->Add(part_stats[i]);
      out.insert(out.end(), parts[i].begin(), parts[i].end());
    }
  } else {
    // One leased context serves every segment probe of this query.
    MatchContextLease lease(&match_contexts_);
    for (size_t i = 0; i < segments.size(); ++i) {
      const auto& segment = segments[i];
      ExecStats part_stats;
      obs::SpanScope seg_span(opts.trace, "segment_probe", root_span);
      ExecOptions seg_opts = opts;
      seg_opts.trace_parent = seg_span.id();
      auto part = segment->executor().ExecutePattern(pattern, &part_stats,
                                                     seg_opts, lease.get());
      if (!part.ok()) return part.status();
      RemoveDeadIds(seg_dead[i].get(), &*part);
      seg_span.Annotate("docs", part->size());
      if (stats != nullptr) stats->Add(part_stats);
      out.insert(out.end(), part->begin(), part->end());
    }
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (opts.trace != nullptr) {
    opts.trace->Annotate(root_span, "segments", segments.size());
    opts.trace->Annotate(root_span, "result_docs", out.size());
  }
  return out;
}

std::vector<StatusOr<std::vector<DocId>>> DynamicIndex::QueryBatch(
    const std::vector<std::string>& xpaths,
    const ExecOptions& options) const {
  std::vector<StatusOr<std::vector<DocId>>> out(
      xpaths.size(), Status::Internal("query was not executed"));
  ExecOptions per_query = options;
  per_query.threads = 1;  // batch parallelism replaces match parallelism
  auto run_one = [&](size_t i) -> StatusOr<std::vector<DocId>> {
    auto pattern = ParseXPath(xpaths[i]);
    if (!pattern.ok()) return pattern.status();
    ExecOptions opts = per_query;
    if (opts.plan.cache_key.empty()) opts.plan.cache_key = xpaths[i];
    // Inner segment probing is serial: the batch saturates the pool.
    return ExecutePatternImpl(*pattern, opts, nullptr,
                              /*parallel_segments=*/false);
  };
  if (pool_->width() <= 1 || xpaths.size() <= 1) {
    for (size_t i = 0; i < xpaths.size(); ++i) out[i] = run_one(i);
    return out;
  }
  pool_->ParallelFor(xpaths.size(), [&](size_t i) { out[i] = run_one(i); });
  return out;
}

uint64_t DynamicIndex::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

size_t DynamicIndex::segment_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return segments_.size();
}

size_t DynamicIndex::buffered_documents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

uint64_t DynamicIndex::total_documents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_docs_;
}

uint64_t DynamicIndex::tombstoned_documents() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstoned_docs_;
}

uint64_t DynamicIndex::TotalIndexNodes() const {
  std::unique_lock<std::mutex> lock(mu_);
  WaitForSealsLocked(&lock);
  uint64_t total = 0;
  for (const auto& segment : segments_) {
    if (segment != nullptr) total += segment->Stats().trie_nodes;
  }
  return total;
}

}  // namespace xseq
